//! The repo-invariant lint passes (L001–L005) over lexed sources.
//!
//! Every pass works on the token/comment streams from [`crate::lexer`]
//! — never on raw text — so nothing inside a string, raw string, char
//! literal or comment can ever produce a finding (pinned by the
//! seeded-PRNG property tests in `tests/`).
//!
//! | code | invariant |
//! |------|-----------|
//! | L001 | every `unsafe` block/fn/impl is immediately preceded by a `// SAFETY:` comment |
//! | L002 | every atomic `Ordering::*` use in non-test code has a justification in `lint/atomics.allow` |
//! | L003 | panic-prone calls in non-test library code respect the per-crate ratchet in `lint/panics.baseline`; `// INVARIANT:` comments escape individual sites |
//! | L004 | `std::env::var("CRACKDB_*")` only in the env registry; every `CRACKDB_*` name in README/CI exists in the registry |
//! | L005 | `.lock().unwrap()` / `.lock().expect(...)` forbidden — use `lock_unpoisoned` |

use crate::config::{AllowEntry, Baseline};
use crate::lexer::{lex, Comment, Lexed, TokKind, Token};
use std::collections::{BTreeMap, BTreeSet};

/// The five atomic memory orderings; `std::cmp::Ordering`'s variants
/// (`Less`/`Equal`/`Greater`) are disjoint, so qualified matches can
/// never confuse the two enums.
pub const ATOMIC_ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// The only files allowed to read `CRACKDB_*` environment variables:
/// the strict/lenient env registry in `exec` and the kernel dispatch
/// (which must stay self-contained inside `crackdb-cracking`).
pub const ENV_REGISTRY_FILES: [&str; 2] = [
    "crates/engine/src/exec/mod.rs",
    "crates/cracking/src/kernel.rs",
];

/// How severe a finding is; drives the process exit code
/// (clean → 0, warnings only → 1, any error → 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Exit 1: actionable but not a new violation (ratchet slack,
    /// stale allow entries).
    Warn,
    /// Exit 2: a violated invariant.
    Error,
}

/// One lint finding, pointing at a file/line when the violation is a
/// concrete site (ratchet-level findings point at the baseline file).
#[derive(Debug, Clone)]
pub struct Finding {
    /// Lint code (`L001`..`L005`).
    pub code: &'static str,
    /// Drives the exit code.
    pub severity: Severity,
    /// Workspace-relative file.
    pub path: String,
    /// 1-based line, or 0 for file/workspace-level findings.
    pub line: usize,
    /// Human explanation including the fix direction.
    pub message: String,
}

/// What part of a crate a file belongs to — decides which lints apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// `src/` library code: all lints.
    Lib,
    /// `src/bin/` binary code: all but the L003 panic ratchet
    /// (bench/CLI binaries may fail fast; libraries may not).
    Bin,
    /// `tests/`, `benches/`, `examples/`: L001 and L005 only.
    TestDir,
}

/// One source file, virtualized so tests can lint inline fixtures.
#[derive(Debug, Clone)]
pub struct VFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// The crate this file belongs to (baseline bucket for L003).
    pub crate_name: String,
    /// Which lints apply.
    pub role: Role,
    /// Full source text.
    pub content: String,
}

/// A whole workspace as the lints see it.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Every `.rs` file of every member crate.
    pub files: Vec<VFile>,
    /// Justified atomic-ordering uses (`lint/atomics.allow`).
    pub atomics_allow: Vec<AllowEntry>,
    /// Per-crate panic-site ratchet (`lint/panics.baseline`).
    pub panics_baseline: Baseline,
    /// Non-Rust documents scanned for `CRACKDB_*` drift: README, CI.
    pub docs: Vec<(String, String)>,
}

/// The result of a full lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, sorted by (code, path, line).
    pub findings: Vec<Finding>,
    /// Actual panic-site counts per crate (post-escape), for baseline
    /// updates and the human summary.
    pub panic_counts: BTreeMap<String, usize>,
    /// Every counted panic site as `(crate, path, line)` — the
    /// burn-down worklist behind `--list-panics`.
    pub panic_sites: Vec<(String, String, usize)>,
}

impl Report {
    /// Severity-based process exit code.
    pub fn exit_code(&self) -> i32 {
        if self.findings.iter().any(|f| f.severity == Severity::Error) {
            2
        } else if self.findings.is_empty() {
            0
        } else {
            1
        }
    }
}

/// Run every lint over the workspace.
pub fn run(ws: &Workspace) -> Report {
    let mut report = Report::default();
    let mut ordering_uses: BTreeSet<(String, String)> = BTreeSet::new();
    let mut env_names: BTreeSet<String> = BTreeSet::new();
    let mut panic_counts: BTreeMap<String, usize> = BTreeMap::new();
    let mut panic_sites: Vec<(String, String, usize)> = Vec::new();

    // Registry names must be collected before the doc-drift check, and
    // crates with zero panic sites still need baseline entries — so
    // pre-seed every crate at 0.
    for f in &ws.files {
        panic_counts.entry(f.crate_name.clone()).or_insert(0);
        if ENV_REGISTRY_FILES.contains(&f.path.as_str()) {
            collect_env_names(&lex(&f.content), &mut env_names);
        }
    }

    for f in &ws.files {
        let lexed = lex(&f.content);
        let test_spans = test_token_ranges(&lexed.tokens);
        lint_file(
            f,
            &lexed,
            &test_spans,
            &mut report.findings,
            &mut ordering_uses,
            &mut panic_sites,
        );
    }
    for (krate, _, _) in &panic_sites {
        *panic_counts.entry(krate.clone()).or_insert(0) += 1;
    }

    check_atomics_allow(ws, &ordering_uses, &mut report.findings);
    check_panic_baseline(ws, &panic_counts, &mut report.findings);
    check_doc_drift(ws, &env_names, &mut report.findings);

    report.panic_counts = panic_counts;
    report.panic_sites = panic_sites;
    report
        .findings
        .sort_by(|a, b| (a.code, &a.path, a.line).cmp(&(b.code, &b.path, b.line)));
    report
}

/// Token-index ranges covered by `#[cfg(test)]` / `#[test]` items: the
/// attribute arms a pending flag, the next `{` opens the excluded
/// region (its brace-matched span), and a `;` before any `{` cancels
/// (e.g. `#[cfg(test)] use …;`).
fn test_token_ranges(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut pending = false;
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i].kind {
            TokKind::Punct('#')
                if matches!(
                    tokens.get(i + 1).map(|t| &t.kind),
                    Some(TokKind::Punct('['))
                ) =>
            {
                let (idents, end) = attr_idents(tokens, i + 1);
                let is_test = idents.iter().any(|s| s == "test")
                    && (idents.len() == 1 || idents.iter().any(|s| s == "cfg"));
                if is_test {
                    pending = true;
                }
                i = end;
                continue;
            }
            TokKind::Punct(';') if pending => pending = false,
            TokKind::Punct('{') if pending => {
                pending = false;
                let close = matching_brace(tokens, i);
                ranges.push((i, close));
            }
            _ => {}
        }
        i += 1;
    }
    ranges
}

/// Identifiers inside a `[...]` attribute starting at the opening
/// bracket index; returns them plus the index just past the closing
/// bracket.
fn attr_idents(tokens: &[Token], open: usize) -> (Vec<String>, usize) {
    let mut depth = 0usize;
    let mut idents = Vec::new();
    let mut i = open;
    while i < tokens.len() {
        match &tokens[i].kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return (idents, i + 1);
                }
            }
            TokKind::Ident(s) => idents.push(s.clone()),
            _ => {}
        }
        i += 1;
    }
    (idents, i)
}

/// Index of the `}` matching the `{` at `open` (end of stream if the
/// source is unbalanced — lenient, like the lexer).
fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        match t.kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    tokens.len()
}

fn in_ranges(ranges: &[(usize, usize)], i: usize) -> bool {
    ranges.iter().any(|&(a, b)| i >= a && i <= b)
}

/// True when a comment containing `marker` immediately precedes
/// `line`: either a contiguous comment block whose last line is
/// `line - 1` (chained upward, so multi-comment blocks work) or a
/// comment starting on `line` itself (trailing / inline).
fn marker_comment_precedes(comments: &[Comment], line: usize, marker: &str) -> bool {
    if comments
        .iter()
        .any(|c| c.start_line == line && c.text.contains(marker))
    {
        return true;
    }
    let mut expected = line.saturating_sub(1);
    while expected > 0 {
        match comments.iter().find(|c| c.end_line == expected) {
            Some(c) => {
                if c.text.contains(marker) {
                    return true;
                }
                expected = c.start_line.saturating_sub(1);
            }
            None => return false,
        }
    }
    false
}

/// Collect `"CRACKDB_*"` string literals (the registry's env names).
fn collect_env_names(lexed: &Lexed, out: &mut BTreeSet<String>) {
    for t in &lexed.tokens {
        if let TokKind::Str(s) = &t.kind {
            if is_crackdb_name(s) {
                out.insert(s.clone());
            }
        }
    }
}

/// A well-formed `CRACKDB_*` env name: the prefix plus uppercase /
/// digits / underscores only.
fn is_crackdb_name(s: &str) -> bool {
    s.starts_with("CRACKDB_")
        && s.len() > "CRACKDB_".len()
        && s.chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
}

/// All single-file passes in one token walk per file.
fn lint_file(
    f: &VFile,
    lexed: &Lexed,
    test_spans: &[(usize, usize)],
    findings: &mut Vec<Finding>,
    ordering_uses: &mut BTreeSet<(String, String)>,
    panic_sites: &mut Vec<(String, String, usize)>,
) {
    let toks = &lexed.tokens;
    let ident = |i: usize| match toks.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    };
    let punct = |i: usize, c: char| matches!(toks.get(i).map(|t| &t.kind), Some(TokKind::Punct(p)) if *p == c);

    for i in 0..toks.len() {
        let line = toks[i].line;
        let in_test = f.role == Role::TestDir || in_ranges(test_spans, i);

        // L001 — unsafe demands a SAFETY argument, test code included:
        // an unsound test can corrupt every assertion that follows it.
        if ident(i) == Some("unsafe") && !marker_comment_precedes(&lexed.comments, line, "SAFETY:")
        {
            findings.push(Finding {
                code: "L001",
                severity: Severity::Error,
                path: f.path.clone(),
                line,
                message: "`unsafe` without an immediately preceding `// SAFETY:` comment".into(),
            });
        }

        // L005 — `.lock().unwrap()` / `.lock().expect(…)`: poison must
        // be recovered (`lock_unpoisoned`), not escalated into a
        // panic cascade across unrelated threads.
        if punct(i, '.')
            && ident(i + 1) == Some("lock")
            && punct(i + 2, '(')
            && punct(i + 3, ')')
            && punct(i + 4, '.')
            && matches!(ident(i + 5), Some("unwrap" | "expect"))
            && punct(i + 6, '(')
        {
            findings.push(Finding {
                code: "L005",
                severity: Severity::Error,
                path: f.path.clone(),
                line,
                message: format!(
                    "`.lock().{}(…)` — use `lock_unpoisoned` (poison-recovering idiom)",
                    ident(i + 5).unwrap_or("unwrap")
                ),
            });
        }

        if in_test {
            continue;
        }

        // L002 — atomic ordering uses (qualified `Ordering::X`, plus
        // the unambiguous bare imports `SeqCst` / `AcqRel`).
        if ident(i) == Some("Ordering") && punct(i + 1, ':') && punct(i + 2, ':') {
            if let Some(ord) = ident(i + 3).filter(|s| ATOMIC_ORDERINGS.contains(s)) {
                ordering_uses.insert((f.path.clone(), ord.to_string()));
            }
        }
        if matches!(ident(i), Some("SeqCst" | "AcqRel"))
            && !(punct(i.wrapping_sub(1), ':') && punct(i.wrapping_sub(2), ':'))
        {
            // A bare use without a `::` path — only possible via a
            // `use …::Ordering::X` import (itself caught above), so
            // record the use site too.
            if let Some(ord) = ident(i) {
                ordering_uses.insert((f.path.clone(), ord.to_string()));
            }
        }

        // L004 — CRACKDB_* env reads outside the registry.
        if ident(i) == Some("env")
            && punct(i + 1, ':')
            && punct(i + 2, ':')
            && ident(i + 3) == Some("var")
            && punct(i + 4, '(')
        {
            if let Some(TokKind::Str(s)) = toks.get(i + 5).map(|t| &t.kind) {
                if s.starts_with("CRACKDB_") && !ENV_REGISTRY_FILES.contains(&f.path.as_str()) {
                    findings.push(Finding {
                        code: "L004",
                        severity: Severity::Error,
                        path: f.path.clone(),
                        line,
                        message: format!(
                            "`env::var(\"{s}\")` outside the env registry ({})",
                            ENV_REGISTRY_FILES.join(", ")
                        ),
                    });
                }
            }
        }

        // L003 — panic-prone calls in library code (ratcheted;
        // `// INVARIANT:` comments escape individual argued sites).
        if f.role == Role::Lib {
            let is_panic_site = (matches!(ident(i), Some("unwrap" | "expect"))
                && punct(i + 1, '('))
                || (matches!(ident(i), Some("panic" | "todo" | "unimplemented"))
                    && punct(i + 1, '!'));
            if is_panic_site && !marker_comment_precedes(&lexed.comments, line, "INVARIANT:") {
                panic_sites.push((f.crate_name.clone(), f.path.clone(), line));
            }
        }
    }
}

/// L002 back end: every ordering use needs an allow entry; every allow
/// entry must still match a use (staleness keeps the file honest).
fn check_atomics_allow(
    ws: &Workspace,
    uses: &BTreeSet<(String, String)>,
    findings: &mut Vec<Finding>,
) {
    for (path, ord) in uses {
        let justified = ws
            .atomics_allow
            .iter()
            .any(|e| &e.path == path && &e.ordering == ord);
        if !justified {
            findings.push(Finding {
                code: "L002",
                severity: Severity::Error,
                path: path.clone(),
                line: 0,
                message: format!(
                    "`Ordering::{ord}` has no justification in lint/atomics.allow \
                     (add `{path} {ord} — <why this ordering is sufficient>`)"
                ),
            });
        }
    }
    for e in &ws.atomics_allow {
        if !uses.contains(&(e.path.clone(), e.ordering.clone())) {
            findings.push(Finding {
                code: "L002",
                severity: Severity::Warn,
                path: "lint/atomics.allow".into(),
                line: e.line,
                message: format!(
                    "stale entry: `{} {}` no longer matches any non-test use",
                    e.path, e.ordering
                ),
            });
        }
    }
}

/// L003 back end: per-crate counts may only go down.
fn check_panic_baseline(
    ws: &Workspace,
    counts: &BTreeMap<String, usize>,
    findings: &mut Vec<Finding>,
) {
    for (krate, &n) in counts {
        match ws.panics_baseline.counts.get(krate) {
            None => findings.push(Finding {
                code: "L003",
                severity: Severity::Error,
                path: "lint/panics.baseline".into(),
                line: 0,
                message: format!(
                    "crate `{krate}` ({n} panic sites) missing from the baseline — \
                     run with --update-baselines"
                ),
            }),
            Some(&base) if n > base => findings.push(Finding {
                code: "L003",
                severity: Severity::Error,
                path: "lint/panics.baseline".into(),
                line: 0,
                message: format!(
                    "crate `{krate}` has {n} panic sites, baseline allows {base}: \
                     convert to typed errors or argue `// INVARIANT:` escapes"
                ),
            }),
            Some(&base) if n < base => findings.push(Finding {
                code: "L003",
                severity: Severity::Warn,
                path: "lint/panics.baseline".into(),
                line: 0,
                message: format!(
                    "crate `{krate}` improved to {n} panic sites (baseline {base}) — \
                     ratchet down with --update-baselines"
                ),
            }),
            Some(_) => {}
        }
    }
    for krate in ws.panics_baseline.counts.keys() {
        if !counts.contains_key(krate) {
            findings.push(Finding {
                code: "L003",
                severity: Severity::Warn,
                path: "lint/panics.baseline".into(),
                line: 0,
                message: format!("baseline names unknown crate `{krate}`"),
            });
        }
    }
}

/// L004 doc-drift back end: every `CRACKDB_*` name mentioned in the
/// scanned documents must exist in the env registry.
fn check_doc_drift(ws: &Workspace, names: &BTreeSet<String>, findings: &mut Vec<Finding>) {
    for (path, content) in &ws.docs {
        for (lineno, line) in content.lines().enumerate() {
            for name in crackdb_mentions(line) {
                if !names.contains(&name) {
                    findings.push(Finding {
                        code: "L004",
                        severity: Severity::Error,
                        path: path.clone(),
                        line: lineno + 1,
                        message: format!(
                            "`{name}` is not in the env registry \
                             ({}) — doc drift",
                            ENV_REGISTRY_FILES.join(", ")
                        ),
                    });
                }
            }
        }
    }
}

/// Maximal `CRACKDB_[A-Z0-9_]+` runs in a plain-text line.
fn crackdb_mentions(line: &str) -> Vec<String> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while let Some(off) = line[i..].find("CRACKDB_") {
        let start = i + off;
        // Must not be the tail of a larger identifier.
        if start > 0 {
            let prev = bytes[start - 1];
            if prev.is_ascii_alphanumeric() || prev == b'_' {
                i = start + 1;
                continue;
            }
        }
        let mut end = start;
        while end < bytes.len()
            && (bytes[end].is_ascii_uppercase()
                || bytes[end].is_ascii_digit()
                || bytes[end] == b'_')
        {
            end += 1;
        }
        let name = line[start..end].trim_end_matches('_').to_string();
        if is_crackdb_name(&name) {
            out.push(name);
        }
        i = end;
    }
    out
}
