//! `crackdb-lint` CLI.
//!
//! ```text
//! cargo run -p crackdb-lint -- --check [--json findings.json]
//! cargo run -p crackdb-lint -- --update-baselines
//! cargo run -p crackdb-lint -- --list-panics
//! ```
//!
//! Exit codes: 0 clean, 1 warnings only (e.g. ratchet slack — a crate
//! improved past its baseline), 2 errors (new unsafe without SAFETY,
//! unjustified ordering, ratchet exceeded, env/doc drift, forbidden
//! lock idiom) or usage/IO failure.

use crackdb_lint::{lints, report, workspace};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: Option<PathBuf>,
    json: Option<PathBuf>,
    update_baselines: bool,
    list_panics: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        json: None,
        update_baselines: false,
        list_panics: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--check" => {} // the default mode
            "--update-baselines" => args.update_baselines = true,
            "--list-panics" => args.list_panics = true,
            "--json" => match it.next() {
                Some(p) => args.json = Some(PathBuf::from(p)),
                None => return Err("--json requires a path".into()),
            },
            "--root" => match it.next() {
                Some(p) => args.root = Some(PathBuf::from(p)),
                None => return Err("--root requires a path".into()),
            },
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn run() -> Result<i32, String> {
    let args = parse_args()?;
    let root = match &args.root {
        Some(r) => r.clone(),
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("current dir: {e}"))?;
            workspace::find_root(&cwd)?
        }
    };
    let ws = workspace::load(&root)?;
    let rep = lints::run(&ws);

    if args.list_panics {
        // The L003 burn-down worklist: every counted site, one per line.
        for (krate, path, line) in &rep.panic_sites {
            println!("{krate}\t{path}:{line}");
        }
        return Ok(0);
    }

    if let Some(path) = &args.json {
        std::fs::write(path, report::json(&rep)).map_err(|e| format!("{}: {e}", path.display()))?;
    }

    if args.update_baselines {
        let path = root.join(workspace::PANICS_BASELINE_PATH);
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        }
        std::fs::write(&path, workspace::render_baseline(&rep.panic_counts))
            .map_err(|e| format!("{}: {e}", path.display()))?;
        println!(
            "wrote {} ({} crates)",
            workspace::PANICS_BASELINE_PATH,
            rep.panic_counts.len()
        );
        // Re-lint against the fresh baseline so the exit code reflects
        // what CI would now see (ratchet findings disappear; anything
        // else stays loud).
        let ws = workspace::load(&root)?;
        let rep = lints::run(&ws);
        print!("{}", report::human(&rep));
        return Ok(rep.exit_code());
    }

    print!("{}", report::human(&rep));
    Ok(rep.exit_code())
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => ExitCode::from(code as u8),
        Err(msg) => {
            eprintln!("crackdb-lint: {msg}");
            ExitCode::from(2)
        }
    }
}
