//! Load the real workspace from disk into the [`crate::lints`] model:
//! member discovery from the root `Cargo.toml`, `.rs` file walking
//! with role classification, and the two policy files.

use crate::config::{parse_atomics_allow, parse_baseline};
use crate::lints::{Role, VFile, Workspace};
use std::fs;
use std::path::{Path, PathBuf};

/// Where the policy files live, relative to the workspace root.
pub const ATOMICS_ALLOW_PATH: &str = "lint/atomics.allow";
/// See [`ATOMICS_ALLOW_PATH`].
pub const PANICS_BASELINE_PATH: &str = "lint/panics.baseline";

/// Documents scanned for `CRACKDB_*` drift (L004): the README and CI.
pub const DOC_PATHS: [&str; 2] = ["README.md", ".github/workflows/ci.yml"];

/// Find the workspace root: walk up from `start` to the first
/// directory whose `Cargo.toml` contains a `[workspace]` table.
pub fn find_root(start: &Path) -> Result<PathBuf, String> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = fs::read_to_string(&manifest)
                .map_err(|e| format!("{}: {e}", manifest.display()))?;
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace Cargo.toml above the current directory".into());
        }
    }
}

/// Load everything the lints need from a workspace root.
pub fn load(root: &Path) -> Result<Workspace, String> {
    let mut ws = Workspace::default();
    for member in members(root)? {
        let dir = root.join(&member);
        let crate_name = package_name(&dir.join("Cargo.toml"))?;
        for (sub, role) in [
            ("src", Role::Lib),
            ("tests", Role::TestDir),
            ("benches", Role::TestDir),
            ("examples", Role::TestDir),
        ] {
            collect_rs(root, &dir.join(sub), &crate_name, role, &mut ws.files)?;
        }
    }
    ws.files.sort_by(|a, b| a.path.cmp(&b.path));

    ws.atomics_allow = read_policy(root, ATOMICS_ALLOW_PATH, parse_atomics_allow)?;
    ws.panics_baseline = read_policy(root, PANICS_BASELINE_PATH, |s| parse_baseline(s).map(Some))?
        .unwrap_or_default();

    for doc in DOC_PATHS {
        let p = root.join(doc);
        if p.is_file() {
            ws.docs.push((
                doc.to_string(),
                fs::read_to_string(&p).map_err(|e| format!("{doc}: {e}"))?,
            ));
        }
    }
    Ok(ws)
}

/// A policy file is optional on disk (first run) but must parse when
/// present.
fn read_policy<T: Default>(
    root: &Path,
    rel: &str,
    parse: impl Fn(&str) -> Result<T, String>,
) -> Result<T, String> {
    let p = root.join(rel);
    if !p.is_file() {
        return Ok(T::default());
    }
    let text = fs::read_to_string(&p).map_err(|e| format!("{rel}: {e}"))?;
    parse(&text)
}

/// Workspace members from the root manifest's `members = [...]` list —
/// plus the root package itself when the manifest also has
/// `[package]`. Deliberately simple line-oriented parsing: the
/// manifest is ours and CI builds it with real cargo first.
fn members(root: &Path) -> Result<Vec<String>, String> {
    let manifest = root.join("Cargo.toml");
    let text = fs::read_to_string(&manifest).map_err(|e| format!("Cargo.toml: {e}"))?;
    let mut out = Vec::new();
    if text.contains("[package]") {
        out.push(".".to_string());
    }
    let Some(start) = text.find("members") else {
        return Err("Cargo.toml: no `members` list".into());
    };
    let Some(open) = text[start..].find('[') else {
        return Err("Cargo.toml: malformed `members` list".into());
    };
    let Some(close) = text[start + open..].find(']') else {
        return Err("Cargo.toml: unterminated `members` list".into());
    };
    let list = &text[start + open + 1..start + open + close];
    for part in list.split(',') {
        let name = part.trim().trim_matches('"');
        if !name.is_empty() && name != "." {
            out.push(name.to_string());
        }
    }
    Ok(out)
}

/// The `name = "..."` of a member's `[package]` table.
fn package_name(manifest: &Path) -> Result<String, String> {
    let text = fs::read_to_string(manifest).map_err(|e| format!("{}: {e}", manifest.display()))?;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(rest) = rest.strip_prefix('=') {
                return Ok(rest.trim().trim_matches('"').to_string());
            }
        }
    }
    Err(format!("{}: no package name", manifest.display()))
}

/// Recursively collect `.rs` files under `dir`. Files under a
/// `src/bin/` directory are binaries (L003-exempt) regardless of the
/// role the caller passed for `src/`, and a file literally named
/// `tests.rs` under `src/` is test code by workspace convention (it is
/// only reachable via a `#[cfg(test)] mod tests;` declaration, which
/// lives in the *parent* file where a single-file lint cannot see it).
fn collect_rs(
    root: &Path,
    dir: &Path,
    crate_name: &str,
    role: Role,
    out: &mut Vec<VFile>,
) -> Result<(), String> {
    if !dir.is_dir() {
        return Ok(());
    }
    let entries = fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            let role = if path.file_name().is_some_and(|n| n == "bin") && role == Role::Lib {
                Role::Bin
            } else {
                role
            };
            collect_rs(root, &path, crate_name, role, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let role = if role == Role::Lib && path.file_name().is_some_and(|n| n == "tests.rs") {
                Role::TestDir
            } else {
                role
            };
            let rel = path
                .strip_prefix(root)
                .map_err(|e| format!("{}: {e}", path.display()))?
                .to_string_lossy()
                .replace('\\', "/");
            let content =
                fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
            out.push(VFile {
                path: rel,
                crate_name: crate_name.to_string(),
                role,
                content,
            });
        }
    }
    Ok(())
}

// Re-exported so `main` can write the ratchet file.
pub use crate::config::render_baseline;
