//! A hand-rolled, token-aware Rust lexer — just enough structure for
//! the repo lints: identifiers, punctuation, string/raw-string/char
//! literals, line/block comments (kept as a side list with line spans)
//! and line numbers on every token.
//!
//! It is *not* a full Rust lexer; it only needs two guarantees:
//!
//! 1. nothing inside a comment, string, raw string, byte string or
//!    char literal ever becomes an identifier or punctuation token
//!    (so `// call unwrap()` and `"panic!"` can never fire a lint);
//! 2. identifiers, `::` paths, string literals and brace structure
//!    survive intact (so the lint passes can match token shapes and
//!    track `#[cfg(test)]` module spans).
//!
//! The classic traps are handled explicitly: nested block comments,
//! raw strings with arbitrary `#` fences, byte/raw-byte strings,
//! lifetimes vs char literals (`'a` vs `'a'`), raw identifiers
//! (`r#type`), and float literals vs range expressions (`1.5` vs
//! `0..n`).

/// One lexed token with the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokKind,
    /// 1-based line the token starts on.
    pub line: usize,
}

/// Token kinds the lints care about. Literal *contents* are kept only
/// for strings (the env-registry lint reads `"CRACKDB_*"` names);
/// everything else is shape-only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `unwrap`, `Ordering`, ...).
    Ident(String),
    /// Single punctuation character (`.`, `:`, `{`, `!`, ...).
    Punct(char),
    /// String literal (plain, raw, byte or raw-byte) with its cooked
    /// source content (escapes are *not* processed — lints only match
    /// prefixes of plain names, which never contain escapes).
    Str(String),
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    CharLit,
    /// Lifetime (`'a`) — kept distinct so `'a` never swallows code.
    Lifetime,
    /// Numeric literal (shape-only; suffixes folded in).
    Num,
}

/// A comment with its 1-based line span (block comments may span
/// several lines) and raw text including the delimiters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based first line of the comment.
    pub start_line: usize,
    /// 1-based last line (equals `start_line` for line comments).
    pub end_line: usize,
    /// Raw text including delimiters.
    pub text: String,
}

/// The result of lexing one source file: code tokens in order, plus
/// comments as a separate ordered list.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Lex `src`. Never fails: unterminated literals or comments consume
/// to end-of-file, which is the lenient behavior a lint wants (rustc
/// rejects such files anyway, so CI sees the real error first).
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Advance one char, tracking line numbers.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokKind, line: usize) {
        self.out.tokens.push(Token { kind, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(line),
                'r' if matches!(self.peek(1), Some('"' | '#')) => self.raw_or_ident(line, false),
                'b' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.string(line);
                }
                'b' if self.peek(1) == Some('\'') => {
                    self.bump();
                    self.char_lit(line);
                }
                'b' if self.peek(1) == Some('r') && matches!(self.peek(2), Some('"' | '#')) => {
                    self.bump();
                    self.raw_or_ident(line, true);
                }
                '\'' => self.quote(line),
                _ if c.is_alphabetic() || c == '_' => self.ident(line),
                _ if c.is_ascii_digit() => self.number(line),
                _ => {
                    self.bump();
                    self.push(TokKind::Punct(c), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let (start, mut text) = (self.line, String::new());
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment {
            start_line: start,
            end_line: start,
            text,
        });
    }

    /// Block comment; Rust block comments nest.
    fn block_comment(&mut self) {
        let (start, mut text, mut depth) = (self.line, String::new(), 0usize);
        loop {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    text.push_str("/*");
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    text.push_str("*/");
                    self.bump();
                    self.bump();
                    if depth == 0 {
                        break;
                    }
                }
                (Some(c), _) => {
                    text.push(c);
                    self.bump();
                }
                (None, _) => break,
            }
        }
        self.out.comments.push(Comment {
            start_line: start,
            end_line: self.line,
            text,
        });
    }

    /// Plain (escaped) string literal; the opening `"` is current.
    fn string(&mut self, line: usize) {
        self.bump(); // opening quote
        let mut content = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    // Consume the escaped char so `\"` cannot close.
                    if let Some(e) = self.bump() {
                        content.push('\\');
                        content.push(e);
                    }
                }
                '"' => break,
                _ => content.push(c),
            }
        }
        self.push(TokKind::Str(content), line);
    }

    /// At `r`: either a raw string (`r"`, `r#"`, `r##"`, ...), a raw
    /// identifier (`r#match`), or a plain identifier starting with r.
    fn raw_or_ident(&mut self, line: usize, _byte: bool) {
        // Count `#` after the `r` without consuming yet.
        let mut hashes = 0;
        while self.peek(1 + hashes) == Some('#') {
            hashes += 1;
        }
        match self.peek(1 + hashes) {
            Some('"') => {
                self.bump(); // r
                for _ in 0..hashes {
                    self.bump();
                }
                self.bump(); // opening quote
                self.raw_string_body(line, hashes);
            }
            // `r#ident` — raw identifier (exactly one hash, then
            // an identifier start).
            Some(c) if hashes == 1 && (c.is_alphabetic() || c == '_') => {
                self.bump(); // r
                self.bump(); // #
                self.ident(line);
            }
            // Plain identifier beginning with `r`.
            _ => self.ident(line),
        }
    }

    /// Raw-string body after the opening quote: ends at `"` followed
    /// by `hashes` `#` characters. No escape processing.
    fn raw_string_body(&mut self, line: usize, hashes: usize) {
        let mut content = String::new();
        while let Some(c) = self.peek(0) {
            if c == '"' {
                let closed = (0..hashes).all(|i| self.peek(1 + i) == Some('#'));
                if closed {
                    self.bump();
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
            }
            content.push(c);
            self.bump();
        }
        self.push(TokKind::Str(content), line);
    }

    /// At `'`: lifetime or char literal. `'a` (identifier-ish, no
    /// closing quote right after) is a lifetime; everything else is a
    /// char literal (`'x'`, `'\''`, `'\u{1F980}'`).
    fn quote(&mut self, line: usize) {
        let next = self.peek(1);
        let lifetime_start = next.map(|c| c.is_alphabetic() || c == '_').unwrap_or(false);
        if lifetime_start {
            // Find the end of the identifier run after the quote.
            let mut n = 2;
            while self
                .peek(n)
                .map(|c| c.is_alphanumeric() || c == '_')
                .unwrap_or(false)
            {
                n += 1;
            }
            if self.peek(n) != Some('\'') {
                // `'ident` not followed by a quote: lifetime.
                for _ in 0..n {
                    self.bump();
                }
                self.push(TokKind::Lifetime, line);
                return;
            }
        }
        self.char_lit(line);
    }

    /// Char literal; the opening `'` is current.
    fn char_lit(&mut self, line: usize) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
        self.push(TokKind::CharLit, line);
    }

    fn ident(&mut self, line: usize) {
        let mut s = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Ident(s), line);
    }

    /// Numeric literal, loosely: digits and suffix chars, plus a
    /// fractional part only when `.` is followed by a digit — so
    /// `1.5f64` is one token but `0..n` leaves `..` intact.
    fn number(&mut self, line: usize) {
        let consume_digits = |lx: &mut Self| {
            while let Some(c) = lx.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    lx.bump();
                } else {
                    break;
                }
            }
        };
        consume_digits(self);
        if self.peek(0) == Some('.') && self.peek(1).map(|c| c.is_ascii_digit()).unwrap_or(false) {
            self.bump();
            consume_digits(self);
        }
        self.push(TokKind::Num, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_produce_no_idents() {
        let src = r##"
            // unsafe unwrap() panic!
            /* expect( /* nested unsafe */ still comment */
            let s = "unsafe { unwrap() }";
            let r = r#"panic!("x")"#;
            let b = b"todo!()";
            let c = 'u';
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"unsafe".to_string()), "{ids:?}");
        assert!(!ids.contains(&"unwrap".to_string()), "{ids:?}");
        assert!(!ids.contains(&"panic".to_string()), "{ids:?}");
        assert!(!ids.contains(&"todo".to_string()), "{ids:?}");
        assert!(!ids.contains(&"expect".to_string()), "{ids:?}");
    }

    #[test]
    fn lifetimes_do_not_swallow_code() {
        let ids = idents("fn f<'a>(x: &'a str) { x.unwrap() }");
        assert!(ids.contains(&"unwrap".to_string()));
    }

    #[test]
    fn char_literal_with_quote_escape() {
        let ids = idents(r"let c = '\''; x.unwrap();");
        assert!(ids.contains(&"unwrap".to_string()));
    }

    #[test]
    fn raw_identifier_is_an_ident() {
        assert_eq!(idents("r#type"), vec!["type"]);
    }

    #[test]
    fn ranges_survive_numbers() {
        let toks = lex("0..n").tokens;
        assert_eq!(
            toks.iter().map(|t| &t.kind).collect::<Vec<_>>(),
            vec![
                &TokKind::Num,
                &TokKind::Punct('.'),
                &TokKind::Punct('.'),
                &TokKind::Ident("n".into())
            ]
        );
        assert_eq!(lex("1.5f64").tokens.len(), 1);
    }

    #[test]
    fn line_numbers_track_multiline_constructs() {
        let src = "/* a\nb */\nlet x = 1;\n\"s\ntr\"\nunsafe";
        let l = lex(src);
        assert_eq!(l.comments[0].start_line, 1);
        assert_eq!(l.comments[0].end_line, 2);
        let last = l.tokens.last().expect("tokens");
        assert_eq!(last.kind, TokKind::Ident("unsafe".into()));
        assert_eq!(last.line, 6);
    }

    #[test]
    fn raw_string_fences() {
        let l = lex(r###"let s = r##"has "# inside"##; done"###);
        assert!(l
            .tokens
            .iter()
            .any(|t| matches!(&t.kind, TokKind::Str(s) if s.contains("has"))));
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Ident("done".into())));
    }
}
