#![warn(missing_docs)]
//! # crackdb-lint
//!
//! A zero-dependency, repo-specific static-analysis pass over the
//! crackdb workspace: a hand-rolled token-aware Rust [`lexer`] feeding
//! five [`lints`] that enforce invariants grep cannot (SAFETY-comment
//! coverage for `unsafe`, a justification file for atomic memory
//! orderings, a per-crate panic ratchet, env-registry containment plus
//! README/CI doc-drift, and the poison-recovering lock idiom).
//!
//! The binary (`cargo run -p crackdb-lint -- --check`) lints the real
//! workspace; the library surface exists so the test suite can lint
//! inline fixtures without touching the filesystem.

pub mod config;
pub mod lexer;
pub mod lints;
pub mod report;
pub mod workspace;

pub use config::{parse_atomics_allow, parse_baseline, render_baseline, AllowEntry, Baseline};
pub use lints::{run, Finding, Report, Role, Severity, VFile, Workspace};
