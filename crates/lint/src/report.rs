//! Finding output: a human-readable table on stdout and a
//! machine-readable JSON document for the CI artifact. JSON is
//! hand-rolled (the tool is zero-dependency); only strings need
//! escaping and only findings are emitted, so the writer stays tiny.

use crate::lints::{Report, Severity};
use std::fmt::Write as _;

/// Render the human table plus per-crate ratchet summary.
pub fn human(report: &Report) -> String {
    let mut out = String::new();
    if report.findings.is_empty() {
        out.push_str("crackdb-lint: no findings\n");
    } else {
        // Column widths over the actual rows keep the table aligned
        // without a table-layout dependency.
        let loc = |f: &crate::lints::Finding| {
            if f.line > 0 {
                format!("{}:{}", f.path, f.line)
            } else {
                f.path.clone()
            }
        };
        let wcode = report
            .findings
            .iter()
            .map(|f| f.code.len())
            .max()
            .unwrap_or(4);
        let wloc = report
            .findings
            .iter()
            .map(|f| loc(f).len())
            .max()
            .unwrap_or(8);
        for f in &report.findings {
            let sev = match f.severity {
                Severity::Error => "error",
                Severity::Warn => "warn ",
            };
            let _ = writeln!(
                out,
                "{sev}  {:<wcode$}  {:<wloc$}  {}",
                f.code,
                loc(f),
                f.message
            );
        }
    }
    let _ = writeln!(out, "\npanic-site ratchet (L003, non-test library code):");
    for (krate, n) in &report.panic_counts {
        let _ = writeln!(out, "  {krate:<24} {n}");
    }
    let errors = report
        .findings
        .iter()
        .filter(|f| f.severity == Severity::Error)
        .count();
    let warns = report.findings.len() - errors;
    let _ = writeln!(out, "\n{errors} error(s), {warns} warning(s)");
    out
}

/// Render the JSON findings document.
pub fn json(report: &Report) -> String {
    let mut out = String::from("{\n  \"findings\": [\n");
    for (i, f) in report.findings.iter().enumerate() {
        let sev = match f.severity {
            Severity::Error => "error",
            Severity::Warn => "warn",
        };
        let _ = write!(
            out,
            "    {{\"code\": {}, \"severity\": {}, \"path\": {}, \"line\": {}, \"message\": {}}}",
            escape(f.code),
            escape(sev),
            escape(&f.path),
            f.line,
            escape(&f.message)
        );
        out.push_str(if i + 1 < report.findings.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ],\n  \"panic_counts\": {\n");
    let n = report.panic_counts.len();
    for (i, (krate, count)) in report.panic_counts.iter().enumerate() {
        let _ = write!(out, "    {}: {count}", escape(krate));
        out.push_str(if i + 1 < n { ",\n" } else { "\n" });
    }
    out.push_str("  }\n}\n");
    out
}

/// Minimal JSON string escaping: quotes, backslashes, control chars.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lints::Finding;

    #[test]
    fn json_escapes_and_structures() {
        let mut r = Report::default();
        r.findings.push(Finding {
            code: "L001",
            severity: Severity::Error,
            path: "a \"b\".rs".into(),
            line: 3,
            message: "back\\slash\nnewline".into(),
        });
        r.panic_counts.insert("crackdb-core".into(), 7);
        let j = json(&r);
        assert!(j.contains(r#""path": "a \"b\".rs""#), "{j}");
        assert!(j.contains(r#"back\\slash\nnewline"#), "{j}");
        assert!(j.contains(r#""crackdb-core": 7"#), "{j}");
    }

    #[test]
    fn human_mentions_ratchet_and_counts() {
        let mut r = Report::default();
        r.panic_counts.insert("crackdb-core".into(), 7);
        let h = human(&r);
        assert!(h.contains("no findings"));
        assert!(h.contains("crackdb-core"));
        assert!(h.contains("0 error(s)"));
    }
}
