//! The two committed lint policy files.
//!
//! `lint/atomics.allow` — one justified atomic-ordering use per line:
//!
//! ```text
//! # path                          ordering  why
//! crates/core/src/epoch.rs        SeqCst    the module-level total-order argument requires it
//! ```
//!
//! `lint/panics.baseline` — the per-crate panic-site ratchet:
//!
//! ```text
//! crackdb-core 37
//! ```
//!
//! Both formats are whitespace-separated so they diff line-per-fact;
//! `#` starts a comment, blank lines are ignored.

use std::collections::BTreeMap;

/// One `lint/atomics.allow` line: this file may use this ordering,
/// because.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Workspace-relative file the ordering appears in.
    pub path: String,
    /// One of the five atomic orderings.
    pub ordering: String,
    /// Why this ordering is sufficient at these sites.
    pub why: String,
    /// 1-based line in the allow file (for stale-entry findings).
    pub line: usize,
}

/// Parse `lint/atomics.allow`. Malformed lines are hard errors — a
/// silently dropped justification would let an unjustified ordering
/// through on the next edit.
pub fn parse_atomics_allow(content: &str) -> Result<Vec<AllowEntry>, String> {
    let mut out = Vec::new();
    for (i, raw) in content.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (path, ordering) = match (parts.next(), parts.next()) {
            (Some(p), Some(o)) => (p.to_string(), o.to_string()),
            _ => {
                return Err(format!(
                    "lint/atomics.allow:{}: expected `<path> <ordering> <why>`",
                    i + 1
                ))
            }
        };
        let why = parts.collect::<Vec<_>>().join(" ");
        if why
            .trim_matches(|c: char| c == '—' || c == '-' || c.is_whitespace())
            .is_empty()
        {
            return Err(format!(
                "lint/atomics.allow:{}: `{path} {ordering}` has no justification",
                i + 1
            ));
        }
        if !crate::lints::ATOMIC_ORDERINGS.contains(&ordering.as_str()) {
            return Err(format!(
                "lint/atomics.allow:{}: `{ordering}` is not an atomic ordering",
                i + 1
            ));
        }
        out.push(AllowEntry {
            path,
            ordering,
            why,
            line: i + 1,
        });
    }
    Ok(out)
}

/// The per-crate panic-site ratchet.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Max allowed panic sites per crate.
    pub counts: BTreeMap<String, usize>,
}

/// Parse `lint/panics.baseline`.
pub fn parse_baseline(content: &str) -> Result<Baseline, String> {
    let mut counts = BTreeMap::new();
    for (i, raw) in content.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match (parts.next(), parts.next().map(str::parse::<usize>)) {
            (Some(name), Some(Ok(n))) => {
                counts.insert(name.to_string(), n);
            }
            _ => {
                return Err(format!(
                    "lint/panics.baseline:{}: expected `<crate> <count>`",
                    i + 1
                ))
            }
        }
    }
    Ok(Baseline { counts })
}

/// Serialize a baseline back out (for `--update-baselines`).
pub fn render_baseline(counts: &BTreeMap<String, usize>) -> String {
    let mut s = String::from(
        "# L003 panic-site ratchet: per-crate counts of unwrap()/expect(/panic!/todo!/\n\
         # unimplemented! in non-test library code without an `// INVARIANT:` escape.\n\
         # Counts may only decrease. Regenerate with:\n\
         #   cargo run -p crackdb-lint -- --update-baselines\n",
    );
    for (k, v) in counts {
        s.push_str(&format!("{k} {v}\n"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_roundtrip_and_errors() {
        let ok = parse_atomics_allow(
            "# header\n\ncrates/core/src/epoch.rs SeqCst — total-order argument\n",
        )
        .expect("parses");
        assert_eq!(ok.len(), 1);
        assert_eq!(ok[0].ordering, "SeqCst");
        assert_eq!(ok[0].line, 3);
        assert!(parse_atomics_allow("a.rs SeqCst").is_err(), "no why");
        assert!(parse_atomics_allow("a.rs Sideways because").is_err());
    }

    #[test]
    fn baseline_roundtrip() {
        let b = parse_baseline("# c\ncrackdb-core 37\ncrackdb-lint 0\n").expect("parses");
        assert_eq!(b.counts["crackdb-core"], 37);
        let out = render_baseline(&b.counts);
        assert_eq!(parse_baseline(&out).expect("reparses"), b);
        assert!(parse_baseline("crackdb-core many").is_err());
    }
}
