//! End-to-end tests of the lint passes over in-memory fixtures: one
//! firing and one clean case per code, ratchet behavior, staleness,
//! doc drift, and seeded-PRNG property tests pinning the lexer-backed
//! guarantee that comments and strings can never produce findings.

use crackdb_lint::config::{parse_atomics_allow, parse_baseline};
use crackdb_lint::lints::{run, Role, Severity, VFile, Workspace};
use crackdb_rng::{Rng, SeedableRng};

/// One library file named `crates/x/src/lib.rs` in crate `x`.
fn lib_file(content: &str) -> VFile {
    VFile {
        path: "crates/x/src/lib.rs".into(),
        crate_name: "x".into(),
        role: Role::Lib,
        content: content.into(),
    }
}

/// A workspace holding just `f`, with a baseline allowing `panics`
/// sites in crate `x` (so L003 noise never leaks into other tests).
fn ws_with(f: VFile, panics: usize) -> Workspace {
    Workspace {
        files: vec![f],
        atomics_allow: Vec::new(),
        panics_baseline: parse_baseline(&format!("x {panics}\n")).expect("fixture baseline"),
        docs: Vec::new(),
    }
}

fn codes(ws: &Workspace) -> Vec<&'static str> {
    run(ws).findings.iter().map(|f| f.code).collect()
}

// ---------------------------------------------------------------- L001

#[test]
fn l001_fires_on_unsafe_without_safety_comment() {
    let ws = ws_with(
        lib_file("pub fn f(p: *const u8) -> u8 { unsafe { *p } }"),
        0,
    );
    assert_eq!(codes(&ws), vec!["L001"]);
}

#[test]
fn l001_clean_with_preceding_safety_comment() {
    let src = "pub fn f(p: *const u8) -> u8 {\n    // SAFETY: caller contract says p is valid.\n    unsafe { *p }\n}\n";
    let ws = ws_with(lib_file(src), 0);
    assert!(codes(&ws).is_empty(), "{:?}", run(&ws).findings);
}

#[test]
fn l001_accepts_multi_line_comment_blocks_and_trailing_comments() {
    let block = "fn f(p: *const u8) -> u8 {\n    // SAFETY: a longer argument\n    // spanning two comment lines.\n    unsafe { *p }\n}\n";
    assert!(codes(&ws_with(lib_file(block), 0)).is_empty());
    let trailing =
        "fn f(p: *const u8) -> u8 {\n    unsafe { *p } // SAFETY: same-line argument.\n}\n";
    assert!(codes(&ws_with(lib_file(trailing), 0)).is_empty());
}

#[test]
fn l001_fires_even_in_test_code() {
    let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { unsafe { std::hint::unreachable_unchecked() } }\n}\n";
    let ws = ws_with(lib_file(src), 0);
    assert_eq!(codes(&ws), vec!["L001"]);
}

// ---------------------------------------------------------------- L002

#[test]
fn l002_fires_on_unjustified_ordering() {
    let src = "use std::sync::atomic::{AtomicU64, Ordering};\npub fn f(a: &AtomicU64) -> u64 { a.load(Ordering::Acquire) }\n";
    let ws = ws_with(lib_file(src), 0);
    assert_eq!(codes(&ws), vec!["L002"]);
}

#[test]
fn l002_clean_with_allow_entry_and_flags_stale_entries() {
    let src = "use std::sync::atomic::{AtomicU64, Ordering};\npub fn f(a: &AtomicU64) -> u64 { a.load(Ordering::Acquire) }\n";
    let mut ws = ws_with(lib_file(src), 0);
    ws.atomics_allow = parse_atomics_allow(
        "crates/x/src/lib.rs Acquire — pairs with the writer's Release\n\
         crates/x/src/lib.rs SeqCst — no longer used anywhere\n",
    )
    .expect("fixture allow");
    let rep = run(&ws);
    assert_eq!(rep.findings.len(), 1, "{:?}", rep.findings);
    let stale = &rep.findings[0];
    assert_eq!((stale.code, stale.severity), ("L002", Severity::Warn));
    assert!(stale.message.contains("stale"));
    assert_eq!(rep.exit_code(), 1);
}

#[test]
fn l002_catches_bare_imported_seqcst() {
    let src = "use std::sync::atomic::{AtomicU64, Ordering::SeqCst};\npub fn f(a: &AtomicU64) -> u64 { a.load(SeqCst) }\n";
    let ws = ws_with(lib_file(src), 0);
    // Both the `use` path and the bare call site resolve to one
    // (file, SeqCst) pair — exactly one finding.
    assert_eq!(codes(&ws), vec!["L002"]);
}

#[test]
fn l002_ignores_cmp_ordering_and_test_code() {
    let cmp = "use std::cmp::Ordering;\npub fn f(a: i64, b: i64) -> bool { a.cmp(&b) == Ordering::Less }\n";
    assert!(codes(&ws_with(lib_file(cmp), 0)).is_empty());
    let test_only = "#[cfg(test)]\nmod tests {\n    use std::sync::atomic::{AtomicU64, Ordering};\n    #[test]\n    fn t() { AtomicU64::new(0).store(1, Ordering::SeqCst); }\n}\n";
    assert!(codes(&ws_with(lib_file(test_only), 0)).is_empty());
}

// ---------------------------------------------------------------- L003

#[test]
fn l003_ratchet_exceeded_is_an_error() {
    let src = "pub fn f(v: Option<u8>) -> u8 { v.unwrap() }\n";
    let ws = ws_with(lib_file(src), 0);
    let rep = run(&ws);
    assert_eq!(rep.findings.len(), 1);
    assert_eq!(rep.findings[0].code, "L003");
    assert_eq!(rep.findings[0].severity, Severity::Error);
    assert_eq!(rep.exit_code(), 2);
}

#[test]
fn l003_at_baseline_is_clean_and_below_baseline_warns() {
    let src = "pub fn f(v: Option<u8>) -> u8 { v.unwrap() }\n";
    assert!(codes(&ws_with(lib_file(src), 1)).is_empty());
    let rep = run(&ws_with(lib_file(src), 2));
    assert_eq!(rep.findings.len(), 1);
    assert_eq!(rep.findings[0].severity, Severity::Warn);
    assert!(rep.findings[0].message.contains("improved"));
}

#[test]
fn l003_missing_crate_is_an_error() {
    let mut ws = ws_with(lib_file("pub fn f() {}"), 0);
    ws.panics_baseline = Default::default();
    let rep = run(&ws);
    assert_eq!(rep.findings.len(), 1);
    assert!(rep.findings[0]
        .message
        .contains("missing from the baseline"));
}

#[test]
fn l003_invariant_comment_escapes_a_site() {
    let src = "pub fn f(v: Option<u8>) -> u8 {\n    // INVARIANT: caller checked is_some above.\n    v.unwrap()\n}\n";
    let ws = ws_with(lib_file(src), 0);
    assert!(codes(&ws).is_empty());
    assert_eq!(run(&ws).panic_counts["x"], 0);
}

#[test]
fn l003_skips_test_code_bins_and_test_dirs() {
    let src =
        "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Option::<u8>::None.unwrap(); }\n}\n";
    assert!(codes(&ws_with(lib_file(src), 0)).is_empty());
    for (path, role) in [
        ("crates/x/src/bin/tool.rs", Role::Bin),
        ("crates/x/tests/it.rs", Role::TestDir),
    ] {
        let f = VFile {
            path: path.into(),
            crate_name: "x".into(),
            role,
            content: "fn main() { Option::<u8>::None.unwrap(); }".into(),
        };
        assert!(codes(&ws_with(f, 0)).is_empty(), "{path}");
    }
}

#[test]
fn l003_counts_panic_macros_but_not_macro_named_idents() {
    let src = "pub fn f() { panic!(\"boom\"); }\npub fn g() { todo!() }\n";
    assert_eq!(run(&ws_with(lib_file(src), 0)).panic_counts["x"], 2);
    // `panic` / `unwrap` as plain identifiers (no `!` / `(`) don't count.
    let idents = "pub fn f(panic: u8, unwrap: u8) -> u8 { panic + unwrap }\n";
    assert_eq!(run(&ws_with(lib_file(idents), 0)).panic_counts["x"], 0);
}

// ---------------------------------------------------------------- L004

#[test]
fn l004_fires_outside_the_registry_and_not_inside() {
    let src = "pub fn f() -> Option<String> { std::env::var(\"CRACKDB_THREADS\").ok() }\n";
    assert_eq!(codes(&ws_with(lib_file(src), 0)), vec!["L004"]);
    let registry = VFile {
        path: "crates/engine/src/exec/mod.rs".into(),
        crate_name: "x".into(),
        role: Role::Lib,
        content: src.into(),
    };
    assert!(codes(&ws_with(registry, 0)).is_empty());
}

#[test]
fn l004_ignores_non_crackdb_vars() {
    let src = "pub fn f() -> Option<String> { std::env::var(\"HOME\").ok() }\n";
    assert!(codes(&ws_with(lib_file(src), 0)).is_empty());
}

#[test]
fn l004_doc_drift_flags_unregistered_names() {
    let registry = VFile {
        path: "crates/engine/src/exec/mod.rs".into(),
        crate_name: "x".into(),
        role: Role::Lib,
        content: "pub fn f() -> Option<String> { std::env::var(\"CRACKDB_THREADS\").ok() }\n"
            .into(),
    };
    let mut ws = ws_with(registry, 0);
    ws.docs.push((
        "README.md".into(),
        "Set CRACKDB_THREADS=4.\nSet CRACKDB_IMAGINARY=1 for magic.\n".into(),
    ));
    let rep = run(&ws);
    assert_eq!(rep.findings.len(), 1, "{:?}", rep.findings);
    assert_eq!(rep.findings[0].code, "L004");
    assert_eq!(rep.findings[0].line, 2);
    assert!(rep.findings[0].message.contains("CRACKDB_IMAGINARY"));
}

// ---------------------------------------------------------------- L005

#[test]
fn l005_fires_on_lock_unwrap_and_lock_expect_everywhere() {
    let src = "use std::sync::Mutex;\npub fn f(m: &Mutex<u8>) -> u8 { *m.lock().unwrap() }\n";
    // The unwrap is also an L003 panic site; baseline 1 isolates L005.
    assert_eq!(codes(&ws_with(lib_file(src), 1)), vec!["L005"]);
    let in_test = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { *std::sync::Mutex::new(0u8).lock().expect(\"lock\"); }\n}\n";
    assert_eq!(codes(&ws_with(lib_file(in_test), 0)), vec!["L005"]);
}

#[test]
fn l005_clean_on_the_recovering_idiom() {
    let src = "use std::sync::{Mutex, PoisonError};\npub fn f(m: &Mutex<u8>) -> u8 { *m.lock().unwrap_or_else(PoisonError::into_inner) }\n";
    let ws = ws_with(lib_file(src), 0);
    assert!(codes(&ws).is_empty());
}

// ------------------------------------------------- property tests

/// Trigger phrases that would fire every lint if they ever leaked out
/// of comments or strings.
const TRIGGERS: [&str; 7] = [
    "unsafe { *p }",
    ".lock().unwrap()",
    "Ordering::SeqCst",
    "std::env::var(\"CRACKDB_EVIL\")",
    "panic!(\"boom\")",
    "v.unwrap()",
    "todo!()",
];

/// Deterministically generated containers: every trigger phrase is
/// embedded only inside comments, strings, raw strings and byte
/// strings — the lexed token stream must stay trigger-free, so the
/// lints must report nothing.
#[test]
fn property_triggers_inside_comments_and_strings_never_fire() {
    let mut rng = crackdb_rng::rngs::StdRng::seed_from_u64(0x001D_0E05);
    for round in 0..200 {
        let mut src = String::from("pub fn f() -> &'static str {\n");
        for _ in 0..rng.gen_range(1usize..6) {
            let t = TRIGGERS[rng.gen_range(0usize..TRIGGERS.len())];
            match rng.gen_range(0u32..5) {
                0 => src.push_str(&format!("    // line comment with {t}\n")),
                1 => src.push_str(&format!("    /* block {t} comment */\n")),
                2 => src.push_str(&format!("    let _s = \"str with {t} inside\";\n")),
                3 => src.push_str(&format!("    let _r = r#\"raw {t} string\"#;\n")),
                _ => src.push_str(&format!("    /* nested /* {t} */ still comment */\n")),
            }
        }
        src.push_str("    \"done\"\n}\n");
        let ws = ws_with(lib_file(&src), 0);
        let rep = run(&ws);
        assert!(
            rep.findings.is_empty() && rep.panic_counts["x"] == 0,
            "round {round}: false positive on:\n{src}\n{:?}",
            rep.findings
        );
    }
}

/// The dual: the same triggers pasted as real code outside any
/// comment/string must keep firing no matter what commented/quoted
/// noise surrounds them.
#[test]
fn property_real_sites_fire_despite_surrounding_noise() {
    let mut rng = crackdb_rng::rngs::StdRng::seed_from_u64(0xCAFE);
    for round in 0..100 {
        let noise = |rng: &mut crackdb_rng::rngs::StdRng| {
            let t = TRIGGERS[rng.gen_range(0usize..TRIGGERS.len())];
            if rng.gen_bool(0.5) {
                format!("    // noise: {t}\n")
            } else {
                format!("    let _n = \"noise {t}\";\n")
            }
        };
        let mut src = String::from("pub fn f(v: Option<u8>, p: *const u8) -> u8 {\n");
        src.push_str(&noise(&mut rng));
        src.push_str("    let _x = unsafe { *p };\n"); // L001
        src.push_str(&noise(&mut rng));
        src.push_str("    v.unwrap()\n"); // one L003 site
        src.push_str("}\n");
        let ws = ws_with(lib_file(&src), 0);
        let rep = run(&ws);
        let codes: Vec<_> = rep.findings.iter().map(|f| f.code).collect();
        assert!(
            codes.contains(&"L001") && rep.panic_counts["x"] == 1,
            "round {round}: missed real sites in:\n{src}\n{codes:?}"
        );
    }
}
