#![warn(missing_docs)]
//! # crackdb-rng
//!
//! A self-contained, deterministic pseudo-random number generator with a
//! `rand`-like API surface. The build environment for this workspace is
//! fully offline, so instead of depending on the `rand` crate the
//! workloads and tests use this drop-in subset: [`rngs::StdRng`],
//! [`Rng::gen_range`], [`Rng::gen_bool`] and [`seq::SliceRandom`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast,
//! statistically solid for workload generation, and reproducible across
//! platforms. It makes no cryptographic claims.

/// Generator implementations.
pub mod rngs {
    /// The standard workspace PRNG: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Seeding interface (mirrors `rand::SeedableRng` for the one
/// constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Deterministically derive a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state is invalid for xoshiro; SplitMix64 cannot
        // produce four zeros from any seed, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        StdRng { s }
    }
}

impl StdRng {
    /// Next raw 64-bit output (xoshiro256++).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `u64` below `bound` (> 0) via Lemire's multiply-shift with
    /// rejection, so small bounds are exactly uniform.
    #[inline]
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Reject the biased low fringe: (2^64 - bound) mod bound values.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let m = (self.next_u64() as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }
}

/// A value range `gen_range` can sample from uniformly.
pub trait SampleRange<T> {
    /// Inclusive sampling bounds `(low, high)`; panics when empty.
    fn bounds(&self) -> (T, T);
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn bounds(&self) -> ($t, $t) {
                assert!(self.start < self.end, "cannot sample empty range");
                (self.start, self.end - 1)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn bounds(&self) -> ($t, $t) {
                assert!(self.start() <= self.end(), "cannot sample empty range");
                (*self.start(), *self.end())
            }
        }
    )*};
}
impl_sample_range!(i64, i32, u64, u32, usize);

/// Uniform sampling of one integer type from a low/high pair.
pub trait UniformInt: Copy {
    /// Sample uniformly from `[lo, hi]`.
    fn sample(rng: &mut StdRng, lo: Self, hi: Self) -> Self;
}

impl UniformInt for i64 {
    #[inline]
    fn sample(rng: &mut StdRng, lo: Self, hi: Self) -> Self {
        let span = (hi as i128 - lo as i128 + 1) as u128;
        if span > u64::MAX as u128 {
            // Full-width range: any u64 reinterpreted is uniform.
            return rng.next_u64() as i64;
        }
        lo.wrapping_add(rng.below(span as u64) as i64)
    }
}

impl UniformInt for u64 {
    #[inline]
    fn sample(rng: &mut StdRng, lo: Self, hi: Self) -> Self {
        let span = hi - lo;
        if span == u64::MAX {
            return rng.next_u64();
        }
        lo + rng.below(span + 1)
    }
}

impl UniformInt for i32 {
    #[inline]
    fn sample(rng: &mut StdRng, lo: Self, hi: Self) -> Self {
        lo.wrapping_add(rng.below((hi as i64 - lo as i64) as u64 + 1) as i32)
    }
}

impl UniformInt for u32 {
    #[inline]
    fn sample(rng: &mut StdRng, lo: Self, hi: Self) -> Self {
        lo + rng.below((hi - lo) as u64 + 1) as u32
    }
}

impl UniformInt for usize {
    #[inline]
    fn sample(rng: &mut StdRng, lo: Self, hi: Self) -> Self {
        lo + rng.below((hi - lo) as u64 + 1) as usize
    }
}

/// Sampling interface (mirrors the `rand::Rng` methods the workspace
/// uses).
pub trait Rng {
    /// Uniform sample from `range` (e.g. `0..n`, `1..=domain`).
    fn gen_range<T: UniformInt, R: SampleRange<T>>(&mut self, range: R) -> T;

    /// Bernoulli trial with success probability `p` in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool;

    /// Uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64;
}

impl Rng for StdRng {
    #[inline]
    fn gen_range<T: UniformInt, R: SampleRange<T>>(&mut self, range: R) -> T {
        let (lo, hi) = range.bounds();
        T::sample(self, lo, hi)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.gen_f64() < p
    }

    #[inline]
    fn gen_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Slice helpers (mirrors `rand::seq::SliceRandom`).
pub mod seq {
    use super::{Rng, StdRng};

    /// Random slice reordering and choice.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle(&mut self, rng: &mut StdRng);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle(&mut self, rng: &mut StdRng) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: i64 = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let u: usize = rng.gen_range(0usize..10);
            assert!(u < 10);
            let w: i64 = rng.gen_range(1i64..=1);
            assert_eq!(w, 1);
        }
    }

    #[test]
    fn gen_range_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!(
                (8_000..12_000).contains(&c),
                "bucket count {c} far from uniform"
            );
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!(
            (25_000..35_000).contains(&hits),
            "got {hits} hits for p=0.3"
        );
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to shuffle to identity");
    }
}
