#![warn(missing_docs)]
//! # crackdb-workloads
//!
//! Workload generators for the paper's experiments: synthetic random /
//! skewed / batched query streams (§3.6, §4.2), the TPC-H substrate
//! (§5) with a dbgen-like data generator and qgen-like parameter
//! streams, and IDEBench-style interactive exploration sessions
//! (drill-down/roll-up, binned histograms, sweeps, think-time traces).

pub mod idebench;
pub mod synthetic;
pub mod tpch;

pub use idebench::{ExploreOp, IdeBench, Session};
pub use synthetic::{random_table, random_table_shards, Pattern, QiGen, QiQuery, RangeGen};
pub use tpch::{TpchData, TpchParams};
