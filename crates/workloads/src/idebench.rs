//! IDEBench-style interactive data-exploration sessions.
//!
//! The IDEBench benchmark (Eichmann et al.) models *interactive* data
//! exploration instead of batch query streams: a user drills into a
//! panel, rolls back up, pans, requests binned histograms — with think
//! time between actions and a latency budget per action (the answer
//! must arrive before the user's next interaction). These access
//! patterns are exactly the regimes where the static crack policies
//! diverge: sequential sweeps leave one huge tail piece that standard
//! cracking re-ploughs every query, drill-downs reward exact bounds,
//! and fine binning shatters the index under dense boundaries.
//!
//! This module generates deterministic session traces of those shapes
//! for the `idebench` bench bin, which replays them once per
//! [`CrackPolicy`](crackdb_cracking::CrackPolicy) and scores the
//! per-column adaptive advisor against the static policies.
//!
//! Every generator is a pure function of `(domain, seed)`: two
//! generators built alike produce byte-identical traces, so policies
//! replay *the same* session and answer-identity checks are meaningful.

use crackdb_columnstore::types::{RangePred, Val};
use crackdb_rng::rngs::StdRng;
use crackdb_rng::{Rng, SeedableRng};

/// One exploration step: the range predicates it issues — one for plain
/// panel ops, several adjacent sub-ranges for a binned aggregation —
/// plus the simulated user think time *before* the step.
#[derive(Debug, Clone)]
pub struct ExploreOp {
    /// Predicates this step issues, in order.
    pub preds: Vec<RangePred>,
    /// Simulated pause before the step (the user looks at the previous
    /// answer). Also the *previous* step's latency budget in the
    /// time-bounded answer mode: an answer that arrives after the user's
    /// next action is useless.
    pub think_ms: u64,
}

/// One exploration session: a named sequence of steps with a common
/// intent (drill-down, sweep, binned histograms, ...).
#[derive(Debug, Clone)]
pub struct Session {
    /// Phase label (stable across runs; used in bench output).
    pub name: &'static str,
    /// The steps, in user order.
    pub ops: Vec<ExploreOp>,
}

impl Session {
    /// Total number of range predicates the session issues.
    pub fn queries(&self) -> usize {
        self.ops.iter().map(|o| o.preds.len()).sum()
    }

    /// Total simulated think time across the session.
    pub fn think_total_ms(&self) -> u64 {
        self.ops.iter().map(|o| o.think_ms).sum()
    }
}

/// Deterministic generator of IDEBench-style sessions over a uniform
/// `[1, domain]` attribute.
#[derive(Debug)]
pub struct IdeBench {
    rng: StdRng,
    domain: Val,
}

impl IdeBench {
    /// Generator over value domain `[1, domain]`.
    pub fn new(domain: Val, seed: u64) -> Self {
        IdeBench {
            rng: StdRng::seed_from_u64(seed),
            domain,
        }
    }

    /// Simulated think time: 40–400 ms, the interactive-pause range the
    /// exploration benchmarks use between user actions.
    fn think(&mut self) -> u64 {
        self.rng.gen_range(40..=400)
    }

    fn op(&mut self, pred: RangePred) -> ExploreOp {
        ExploreOp {
            preds: vec![pred],
            think_ms: self.think(),
        }
    }

    /// A random panel of `width` values starting anywhere in the domain.
    fn panel(&mut self, width: Val) -> (Val, Val) {
        let width = width.clamp(1, self.domain);
        let lo = self.rng.gen_range(0..=(self.domain - width).max(1));
        (lo, width)
    }

    /// Drill-down: a wide opening panel, then `depth - 1` zooms, each
    /// keeping about a third of the previous width around a point the
    /// user clicked inside the panel.
    pub fn drill_down(&mut self, depth: usize) -> Session {
        let mut ops = Vec::with_capacity(depth);
        let (mut lo, mut width) = self.panel(self.domain / 2);
        for _ in 0..depth {
            ops.push(self.op(RangePred::open(lo, lo + width + 1)));
            let new_width = (width / 3).max(2);
            lo += self.rng.gen_range(0..=(width - new_width).max(1));
            width = new_width;
        }
        Session {
            name: "drill_down",
            ops,
        }
    }

    /// Roll-up: the inverse trajectory — start narrow, widen back out.
    /// Revisits enclosing ranges, so it rewards retained exact bounds.
    pub fn roll_up(&mut self, depth: usize) -> Session {
        let mut s = self.drill_down(depth);
        s.name = "roll_up";
        s.ops.reverse();
        // Think times were drawn per step; reversing the predicates
        // must not reverse time, so redraw them in order.
        for op in &mut s.ops {
            op.think_ms = self.think();
        }
        s
    }

    /// Binned aggregation: `panels` histogram requests, each splitting a
    /// random panel into `bins` adjacent sub-ranges issued back to back
    /// (one user action, `bins` queries, a single think time).
    pub fn binned(&mut self, panels: usize, bins: usize) -> Session {
        let bins = bins.max(1);
        let mut ops = Vec::with_capacity(panels);
        for _ in 0..panels {
            let (lo, width) = self.panel(self.domain / 4);
            let bin_w = (width / bins as Val).max(1);
            let preds = (0..bins as Val)
                .map(|b| {
                    let blo = lo + b * bin_w;
                    let bhi = if b == bins as Val - 1 {
                        lo + width
                    } else {
                        blo + bin_w
                    };
                    RangePred::open(blo, bhi + 1)
                })
                .collect();
            ops.push(ExploreOp {
                preds,
                think_ms: self.think(),
            });
        }
        Session {
            name: "binned",
            ops,
        }
    }

    /// Sweep (pan-through): `stripes` adjacent non-overlapping ranges
    /// marching left-to-right across the whole domain — the
    /// worst-case-for-cracking pattern where every query lands in the
    /// cold tail piece.
    pub fn sweep(&mut self, stripes: usize) -> Session {
        let stripes = stripes.max(1);
        let w = (self.domain / stripes as Val).max(1);
        let mut ops = Vec::with_capacity(stripes);
        let mut cursor: Val = 0;
        for _ in 0..stripes {
            if cursor + w > self.domain {
                cursor = 0;
            }
            ops.push(self.op(RangePred::open(cursor, cursor + w + 1)));
            cursor += w;
        }
        Session {
            name: "sweep",
            ops,
        }
    }

    /// Uncorrelated random panels (the filler between focused phases).
    pub fn random_panels(&mut self, n: usize, width: Val) -> Session {
        let mut ops = Vec::with_capacity(n);
        for _ in 0..n {
            let (lo, w) = self.panel(width);
            ops.push(self.op(RangePred::open(lo, lo + w + 1)));
        }
        Session {
            name: "random",
            ops,
        }
    }

    /// Hot-zone browsing: `n` panels confined to one fifth of the domain
    /// (the user pans around the region they drilled into). Exact
    /// cracking converges inside the zone after a few queries; policies
    /// that pre-partition the whole array pay for regions this session
    /// never visits.
    pub fn hot_browse(&mut self, n: usize) -> Session {
        let zone_w = (self.domain / 5).max(1);
        let zone_lo = self.rng.gen_range(0..=(self.domain - zone_w).max(1));
        let panel_w = (zone_w / 40).max(1);
        let mut ops = Vec::with_capacity(n);
        for _ in 0..n {
            let lo = zone_lo + self.rng.gen_range(0..=(zone_w - panel_w).max(1));
            ops.push(self.op(RangePred::open(lo, lo + panel_w + 1)));
        }
        Session {
            name: "hot_browse",
            ops,
        }
    }

    /// The canonical mixed exploration trace the `idebench` bench
    /// replays, shaped like a real exploration arc: drill into a region,
    /// pan around it (hot zone), scan across the whole domain, zoom back
    /// out, request histograms, end with uncorrelated browsing. No
    /// single static policy is best across all the phases — the
    /// per-column adaptive advisor is scored on exactly this trace.
    pub fn mixed(&mut self, scale: usize) -> Vec<Session> {
        let scale = scale.max(1);
        vec![
            self.drill_down(4 * scale),
            self.hot_browse(30 * scale),
            self.sweep(40 * scale),
            self.roll_up(4 * scale),
            self.binned(4 * scale, 12),
            self.random_panels(10 * scale, self.domain / 50),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bounds(p: &RangePred) -> (Val, Val) {
        (p.lo.unwrap().value, p.hi.unwrap().value)
    }

    #[test]
    fn traces_are_deterministic() {
        let mut a = IdeBench::new(1_000_000, 7);
        let mut b = IdeBench::new(1_000_000, 7);
        for (sa, sb) in a.mixed(1).iter().zip(b.mixed(1).iter()) {
            assert_eq!(sa.name, sb.name);
            assert_eq!(sa.ops.len(), sb.ops.len());
            for (oa, ob) in sa.ops.iter().zip(&sb.ops) {
                assert_eq!(oa.think_ms, ob.think_ms);
                let pa: Vec<_> = oa.preds.iter().map(bounds).collect();
                let pb: Vec<_> = ob.preds.iter().map(bounds).collect();
                assert_eq!(pa, pb);
            }
        }
    }

    #[test]
    fn drill_down_narrows_and_stays_nested() {
        let mut g = IdeBench::new(1_000_000, 3);
        let s = g.drill_down(5);
        assert_eq!(s.ops.len(), 5);
        let mut prev: Option<(Val, Val)> = None;
        for op in &s.ops {
            let (lo, hi) = bounds(&op.preds[0]);
            if let Some((plo, phi)) = prev {
                assert!(lo >= plo && hi <= phi + 1, "zoom stays inside the panel");
                assert!(hi - lo < phi - plo, "zoom narrows");
            }
            prev = Some((lo, hi));
        }
    }

    #[test]
    fn binned_ops_tile_their_panel() {
        let mut g = IdeBench::new(1_000_000, 11);
        let s = g.binned(3, 8);
        for op in &s.ops {
            assert_eq!(op.preds.len(), 8);
            for w in op.preds.windows(2) {
                let (_, hi) = bounds(&w[0]);
                let (lo2, _) = bounds(&w[1]);
                assert_eq!(hi - 1, lo2, "bins are adjacent");
            }
        }
    }

    #[test]
    fn sweep_marches_across_the_domain() {
        let mut g = IdeBench::new(1_000, 5);
        let s = g.sweep(10);
        let mut covered = std::collections::HashSet::new();
        for op in &s.ops {
            let (lo, hi) = bounds(&op.preds[0]);
            covered.extend(lo + 1..hi);
        }
        assert_eq!(covered.len(), 1_000, "stripes tile the whole domain");
    }

    #[test]
    fn think_times_are_interactive() {
        let mut g = IdeBench::new(1_000_000, 9);
        for s in g.mixed(1) {
            assert!(s.queries() >= s.ops.len());
            for op in &s.ops {
                assert!((40..=400).contains(&op.think_ms));
            }
        }
    }
}
