//! TPC-H substrate (§5): a dbgen-like generator producing the schema
//! subset used by the paper's twelve queries (1, 3, 4, 6, 7, 8, 10, 12,
//! 14, 15, 19, 20), plus the random parameter generator mirroring qgen.
//!
//! Substitution note (see DESIGN.md): everything is integer-encoded —
//! dates as days since 1992-01-01, strings (brands, containers, ship
//! modes, segments…) as dictionary codes, prices in cents. The paper's
//! queries select on non-string attributes, so the access patterns under
//! study are preserved exactly.

use crackdb_columnstore::column::{Column, Table};
use crackdb_columnstore::types::Val;
use crackdb_rng::rngs::StdRng;
use crackdb_rng::{Rng, SeedableRng};

/// Days per month prefix sums (no leap years — consistent between data
/// and parameters, which is all that matters for range shapes).
const MONTH_PREFIX: [i64; 12] = [0, 31, 59, 90, 120, 151, 181, 212, 243, 273, 304, 334];

/// Encode a date as days since 1992-01-01.
pub fn date(y: i64, m: i64, d: i64) -> Val {
    (y - 1992) * 365 + MONTH_PREFIX[(m - 1) as usize] + (d - 1)
}

/// Dictionary sizes for the string-typed attributes.
pub mod dict {
    /// `l_returnflag` ∈ {A, N, R}.
    pub const RETURNFLAG: i64 = 3;
    /// `l_linestatus` ∈ {O, F}.
    pub const LINESTATUS: i64 = 2;
    /// `l_shipmode`: 7 modes.
    pub const SHIPMODE: i64 = 7;
    /// `l_shipinstruct`: 4 instructions ("DELIVER IN PERSON" = 0).
    pub const SHIPINSTRUCT: i64 = 4;
    /// `c_mktsegment`: 5 segments.
    pub const MKTSEGMENT: i64 = 5;
    /// `o_orderpriority`: 5 priorities ("1-URGENT" = 0, "2-HIGH" = 1).
    pub const ORDERPRIORITY: i64 = 5;
    /// `p_brand`: 25 brands.
    pub const BRAND: i64 = 25;
    /// `p_type`: 150 types; promo types are `< 30`.
    pub const PTYPE: i64 = 150;
    /// `p_container`: 40 containers.
    pub const CONTAINER: i64 = 40;
    /// 25 nations.
    pub const NATION: i64 = 25;
    /// 5 regions.
    pub const REGION: i64 = 5;
}

/// The generated TPC-H database (column-store layout).
#[derive(Debug, Clone)]
pub struct TpchData {
    /// Scale factor the data was generated with.
    pub sf: f64,
    /// LINEITEM: orderkey, partkey, suppkey, quantity, extendedprice,
    /// discount, tax, returnflag, linestatus, shipdate, commitdate,
    /// receiptdate, shipinstruct, shipmode.
    pub lineitem: Table,
    /// ORDERS: orderkey, custkey, orderdate, orderpriority, totalprice.
    pub orders: Table,
    /// CUSTOMER: custkey, nationkey, mktsegment, acctbal.
    pub customer: Table,
    /// PART: partkey, brand, ptype, size, container, retailprice.
    pub part: Table,
    /// SUPPLIER: suppkey, nationkey.
    pub supplier: Table,
    /// PARTSUPP: partkey, suppkey, availqty.
    pub partsupp: Table,
    /// NATION: nationkey, regionkey.
    pub nation: Table,
}

/// Column indexes of LINEITEM.
pub mod l {
    #![allow(missing_docs)] // column indexes named after TPC-H attributes
    pub const ORDERKEY: usize = 0;
    pub const PARTKEY: usize = 1;
    pub const SUPPKEY: usize = 2;
    pub const QUANTITY: usize = 3;
    pub const EXTENDEDPRICE: usize = 4;
    pub const DISCOUNT: usize = 5;
    pub const TAX: usize = 6;
    pub const RETURNFLAG: usize = 7;
    pub const LINESTATUS: usize = 8;
    pub const SHIPDATE: usize = 9;
    pub const COMMITDATE: usize = 10;
    pub const RECEIPTDATE: usize = 11;
    pub const SHIPINSTRUCT: usize = 12;
    pub const SHIPMODE: usize = 13;
}

/// Column indexes of ORDERS.
pub mod o {
    #![allow(missing_docs)] // column indexes named after TPC-H attributes
    pub const ORDERKEY: usize = 0;
    pub const CUSTKEY: usize = 1;
    pub const ORDERDATE: usize = 2;
    pub const ORDERPRIORITY: usize = 3;
    pub const TOTALPRICE: usize = 4;
}

/// Column indexes of CUSTOMER.
pub mod c {
    #![allow(missing_docs)] // column indexes named after TPC-H attributes
    pub const CUSTKEY: usize = 0;
    pub const NATIONKEY: usize = 1;
    pub const MKTSEGMENT: usize = 2;
    pub const ACCTBAL: usize = 3;
}

/// Column indexes of PART.
pub mod p {
    #![allow(missing_docs)] // column indexes named after TPC-H attributes
    pub const PARTKEY: usize = 0;
    pub const BRAND: usize = 1;
    pub const PTYPE: usize = 2;
    pub const SIZE: usize = 3;
    pub const CONTAINER: usize = 4;
    pub const RETAILPRICE: usize = 5;
}

/// Column indexes of SUPPLIER.
pub mod s {
    #![allow(missing_docs)] // column indexes named after TPC-H attributes
    pub const SUPPKEY: usize = 0;
    pub const NATIONKEY: usize = 1;
}

/// Column indexes of PARTSUPP.
pub mod ps {
    #![allow(missing_docs)] // column indexes named after TPC-H attributes
    pub const PARTKEY: usize = 0;
    pub const SUPPKEY: usize = 1;
    pub const AVAILQTY: usize = 2;
}

/// Column indexes of NATION.
pub mod n {
    #![allow(missing_docs)] // column indexes named after TPC-H attributes
    pub const NATIONKEY: usize = 0;
    pub const REGIONKEY: usize = 1;
}

impl TpchData {
    /// Generate the database at scale factor `sf` (SF 1 ≈ 6M lineitems).
    pub fn generate(sf: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_orders = ((1_500_000.0 * sf) as usize).max(10);
        let n_cust = ((150_000.0 * sf) as usize).max(5);
        let n_part = ((200_000.0 * sf) as usize).max(5);
        let n_supp = ((10_000.0 * sf) as usize).max(3);

        // NATION / SUPPLIER / CUSTOMER / PART / PARTSUPP.
        let mut nation = Table::new();
        nation.add_column("nationkey", Column::new((0..dict::NATION).collect()));
        nation.add_column(
            "regionkey",
            Column::new((0..dict::NATION).map(|k| k % dict::REGION).collect()),
        );

        let mut supplier = Table::new();
        supplier.add_column("suppkey", Column::new((0..n_supp as i64).collect()));
        supplier.add_column(
            "nationkey",
            Column::new(
                (0..n_supp)
                    .map(|_| rng.gen_range(0..dict::NATION))
                    .collect(),
            ),
        );

        let mut customer = Table::new();
        customer.add_column("custkey", Column::new((0..n_cust as i64).collect()));
        customer.add_column(
            "nationkey",
            Column::new(
                (0..n_cust)
                    .map(|_| rng.gen_range(0..dict::NATION))
                    .collect(),
            ),
        );
        customer.add_column(
            "mktsegment",
            Column::new(
                (0..n_cust)
                    .map(|_| rng.gen_range(0..dict::MKTSEGMENT))
                    .collect(),
            ),
        );
        customer.add_column(
            "acctbal",
            Column::new(
                (0..n_cust)
                    .map(|_| rng.gen_range(-99_999..1_000_000))
                    .collect(),
            ),
        );

        let mut part = Table::new();
        part.add_column("partkey", Column::new((0..n_part as i64).collect()));
        part.add_column(
            "brand",
            Column::new((0..n_part).map(|_| rng.gen_range(0..dict::BRAND)).collect()),
        );
        part.add_column(
            "ptype",
            Column::new((0..n_part).map(|_| rng.gen_range(0..dict::PTYPE)).collect()),
        );
        part.add_column(
            "size",
            Column::new((0..n_part).map(|_| rng.gen_range(1..=50)).collect()),
        );
        part.add_column(
            "container",
            Column::new(
                (0..n_part)
                    .map(|_| rng.gen_range(0..dict::CONTAINER))
                    .collect(),
            ),
        );
        part.add_column(
            "retailprice",
            Column::new(
                (0..n_part)
                    .map(|_| rng.gen_range(90_000..200_000))
                    .collect(),
            ),
        );

        let mut partsupp = Table::new();
        {
            let mut pk = Vec::new();
            let mut sk = Vec::new();
            let mut aq = Vec::new();
            for pkey in 0..n_part as i64 {
                for i in 0..4 {
                    pk.push(pkey);
                    sk.push((pkey * 4 + i) % n_supp as i64);
                    aq.push(rng.gen_range(1..10_000));
                }
            }
            partsupp.add_column("partkey", Column::new(pk));
            partsupp.add_column("suppkey", Column::new(sk));
            partsupp.add_column("availqty", Column::new(aq));
        }

        // ORDERS + LINEITEM (1–7 lines per order, avg ≈ 4).
        let date_lo = date(1992, 1, 1);
        let date_hi = date(1998, 8, 2);
        let mut ord = (
            Vec::with_capacity(n_orders),
            Vec::with_capacity(n_orders),
            Vec::with_capacity(n_orders),
            Vec::with_capacity(n_orders),
            Vec::with_capacity(n_orders),
        );
        let mut li: Vec<Vec<Val>> = (0..14).map(|_| Vec::with_capacity(n_orders * 4)).collect();
        for okey in 0..n_orders as i64 {
            let odate = rng.gen_range(date_lo..=date_hi - 151);
            let custkey = rng.gen_range(0..n_cust as i64);
            ord.0.push(okey);
            ord.1.push(custkey);
            ord.2.push(odate);
            ord.3.push(rng.gen_range(0..dict::ORDERPRIORITY));
            ord.4.push(rng.gen_range(100_000..50_000_000));
            let lines = rng.gen_range(1..=7);
            for _ in 0..lines {
                let quantity = rng.gen_range(1..=50);
                let price = rng.gen_range(90_000i64..105_000) * quantity;
                let shipdate = odate + rng.gen_range(1i64..=121);
                let commitdate = odate + rng.gen_range(30i64..=90);
                let receiptdate = shipdate + rng.gen_range(1i64..=30);
                li[l::ORDERKEY].push(okey);
                li[l::PARTKEY].push(rng.gen_range(0..n_part as i64));
                li[l::SUPPKEY].push(rng.gen_range(0..n_supp as i64));
                li[l::QUANTITY].push(quantity);
                li[l::EXTENDEDPRICE].push(price);
                li[l::DISCOUNT].push(rng.gen_range(0..=10));
                li[l::TAX].push(rng.gen_range(0..=8));
                li[l::RETURNFLAG].push(if shipdate <= date(1995, 6, 17) {
                    rng.gen_range(0..2) // A or R for "old" lines
                } else {
                    2 // N
                });
                li[l::LINESTATUS].push(if shipdate > date(1995, 6, 17) { 1 } else { 0 });
                li[l::SHIPDATE].push(shipdate);
                li[l::COMMITDATE].push(commitdate);
                li[l::RECEIPTDATE].push(receiptdate);
                li[l::SHIPINSTRUCT].push(rng.gen_range(0..dict::SHIPINSTRUCT));
                li[l::SHIPMODE].push(rng.gen_range(0..dict::SHIPMODE));
            }
        }
        let mut orders = Table::new();
        orders.add_column("orderkey", Column::new(ord.0));
        orders.add_column("custkey", Column::new(ord.1));
        orders.add_column("orderdate", Column::new(ord.2));
        orders.add_column("orderpriority", Column::new(ord.3));
        orders.add_column("totalprice", Column::new(ord.4));

        let names = [
            "orderkey",
            "partkey",
            "suppkey",
            "quantity",
            "extendedprice",
            "discount",
            "tax",
            "returnflag",
            "linestatus",
            "shipdate",
            "commitdate",
            "receiptdate",
            "shipinstruct",
            "shipmode",
        ];
        let mut lineitem = Table::new();
        for (name, col) in names.iter().zip(li) {
            lineitem.add_column(*name, Column::new(col));
        }

        TpchData {
            sf,
            lineitem,
            orders,
            customer,
            part,
            supplier,
            partsupp,
            nation,
        }
    }
}

/// Random query parameters, one method per paper query (mirroring qgen's
/// substitution ranges).
#[derive(Debug)]
pub struct TpchParams {
    rng: StdRng,
}

/// Parameters: each field matches a substitution parameter of the TPC-H
/// query template.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Generic date parameter.
    pub date: Val,
    /// Secondary date (intervals).
    pub date2: Val,
    /// Generic discrete parameter (segment, brand, mode...).
    pub k1: Val,
    /// Second discrete parameter.
    pub k2: Val,
    /// Quantity/size style numeric parameter.
    pub q: Val,
}

impl TpchParams {
    /// Deterministic parameter stream.
    pub fn new(seed: u64) -> Self {
        TpchParams {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn year(&mut self) -> Val {
        self.rng.gen_range(1993..=1997)
    }

    /// Q1: DELTA in [60, 120] days before 1998-12-01.
    pub fn q1(&mut self) -> Params {
        let delta = self.rng.gen_range(60..=120);
        Params {
            date: date(1998, 8, 2) - delta as i64,
            date2: 0,
            k1: 0,
            k2: 0,
            q: 0,
        }
    }

    /// Q3: segment + date in March 1995.
    pub fn q3(&mut self) -> Params {
        Params {
            date: date(1995, 3, self.rng.gen_range(1..=28)),
            date2: 0,
            k1: self.rng.gen_range(0..dict::MKTSEGMENT),
            k2: 0,
            q: 0,
        }
    }

    /// Q4: a random quarter.
    pub fn q4(&mut self) -> Params {
        let y = self.year();
        let m = 1 + 3 * self.rng.gen_range(0i64..4);
        let d = date(y, m, 1);
        Params {
            date: d,
            date2: d + 90,
            k1: 0,
            k2: 0,
            q: 0,
        }
    }

    /// Q6: a year, discount ± 1, quantity in [24, 25].
    pub fn q6(&mut self) -> Params {
        let y = self.year();
        Params {
            date: date(y, 1, 1),
            date2: date(y + 1, 1, 1),
            k1: self.rng.gen_range(2..=9), // discount center
            k2: 0,
            q: self.rng.gen_range(24..=25),
        }
    }

    /// Q7: two nations.
    pub fn q7(&mut self) -> Params {
        let n1 = self.rng.gen_range(0..dict::NATION);
        let mut n2 = self.rng.gen_range(0..dict::NATION);
        if n2 == n1 {
            n2 = (n2 + 1) % dict::NATION;
        }
        Params {
            date: date(1995, 1, 1),
            date2: date(1996, 12, 31),
            k1: n1,
            k2: n2,
            q: 0,
        }
    }

    /// Q8: nation + part type.
    pub fn q8(&mut self) -> Params {
        Params {
            date: date(1995, 1, 1),
            date2: date(1996, 12, 31),
            k1: self.rng.gen_range(0..dict::NATION),
            k2: self.rng.gen_range(0..dict::PTYPE),
            q: 0,
        }
    }

    /// Q10: a quarter in 1993–1994.
    pub fn q10(&mut self) -> Params {
        let y = self.rng.gen_range(1993..=1994);
        let m = 1 + 3 * self.rng.gen_range(0i64..4);
        let d = date(y, m, 1);
        Params {
            date: d,
            date2: d + 90,
            k1: 0,
            k2: 0,
            q: 0,
        }
    }

    /// Q12: two ship modes + a year of receipt dates.
    pub fn q12(&mut self) -> Params {
        let y = self.year();
        let m1 = self.rng.gen_range(0..dict::SHIPMODE);
        let mut m2 = self.rng.gen_range(0..dict::SHIPMODE);
        if m2 == m1 {
            m2 = (m2 + 1) % dict::SHIPMODE;
        }
        Params {
            date: date(y, 1, 1),
            date2: date(y + 1, 1, 1),
            k1: m1,
            k2: m2,
            q: 0,
        }
    }

    /// Q14: one month.
    pub fn q14(&mut self) -> Params {
        let y = self.year();
        let m = self.rng.gen_range(1..=12);
        let d = date(y, m, 1);
        Params {
            date: d,
            date2: d + 30,
            k1: 0,
            k2: 0,
            q: 0,
        }
    }

    /// Q15: one quarter.
    pub fn q15(&mut self) -> Params {
        let y = self.year();
        let m = 1 + 3 * self.rng.gen_range(0i64..4);
        let d = date(y, m, 1);
        Params {
            date: d,
            date2: d + 90,
            k1: 0,
            k2: 0,
            q: 0,
        }
    }

    /// Q19: brands and quantity thresholds.
    pub fn q19(&mut self) -> Params {
        Params {
            date: 0,
            date2: 0,
            k1: self.rng.gen_range(0..dict::BRAND),
            k2: self.rng.gen_range(0..dict::BRAND),
            q: self.rng.gen_range(1..=10),
        }
    }

    /// Q20: a year + a part-name prefix (a brand code here).
    pub fn q20(&mut self) -> Params {
        let y = self.year();
        Params {
            date: date(y, 1, 1),
            date2: date(y + 1, 1, 1),
            k1: self.rng.gen_range(0..dict::BRAND),
            k2: 0,
            q: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_shapes() {
        let d = TpchData::generate(0.002, 42);
        assert_eq!(d.orders.num_rows(), 3000);
        assert!(d.lineitem.num_rows() > 2 * d.orders.num_rows());
        assert_eq!(d.nation.num_rows(), 25);
        assert_eq!(d.partsupp.num_rows(), d.part.num_rows() * 4);
    }

    #[test]
    fn deterministic() {
        let a = TpchData::generate(0.001, 7);
        let b = TpchData::generate(0.001, 7);
        assert_eq!(
            a.lineitem.column(l::SHIPDATE).values(),
            b.lineitem.column(l::SHIPDATE).values()
        );
    }

    #[test]
    fn date_encoding_monotone() {
        assert!(date(1992, 1, 1) == 0);
        assert!(date(1995, 6, 17) > date(1995, 3, 1));
        assert!(date(1998, 8, 2) > date(1997, 12, 31));
    }

    #[test]
    fn lineitem_date_invariants() {
        let d = TpchData::generate(0.001, 9);
        let ship = d.lineitem.column(l::SHIPDATE).values();
        let receipt = d.lineitem.column(l::RECEIPTDATE).values();
        for i in 0..ship.len() {
            assert!(receipt[i] > ship[i], "receipt after ship");
        }
    }

    #[test]
    fn params_in_range() {
        let mut p = TpchParams::new(3);
        for _ in 0..30 {
            let q3 = p.q3();
            assert!((0..dict::MKTSEGMENT).contains(&q3.k1));
            let q6 = p.q6();
            assert!(q6.date2 - q6.date == 365);
            let q12 = p.q12();
            assert_ne!(q12.k1, q12.k2);
        }
    }

    #[test]
    fn returnflag_r_exists() {
        let d = TpchData::generate(0.001, 5);
        let rf = d.lineitem.column(l::RETURNFLAG).values();
        assert!(rf.contains(&2));
        assert!(rf.iter().any(|&v| v < 2));
    }
}
