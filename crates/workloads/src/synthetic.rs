//! Synthetic tables and query workloads of §3.6 and §4.2.

use crackdb_columnstore::column::{Column, Table};
use crackdb_columnstore::types::{RangePred, Val};
use crackdb_rng::rngs::StdRng;
use crackdb_rng::{Rng, SeedableRng};

/// A relational table of `attrs` integer attributes, each holding `n`
/// values uniformly distributed in `[1, domain]` (the paper's tables use
/// 10^7 random integers in `[1, 10^7]`).
pub fn random_table(attrs: usize, n: usize, domain: Val, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Table::new();
    for a in 0..attrs {
        let col: Vec<Val> = (0..n).map(|_| rng.gen_range(1..=domain)).collect();
        t.add_column(format!("A{}", a + 1), Column::new(col));
    }
    t
}

/// The rows of [`random_table`] split into `shards` near-equal
/// contiguous row-wise partitions: shard `s` holds global rows
/// `[cuts[s], cuts[s+1])` in their original order, so concatenating the
/// parts in shard order reproduces the unsharded table exactly. This is
/// the table builder for `ShardedEngine` setups — a sharded and an
/// unsharded engine built from the same `(n, domain, seed)` triple see
/// the same logical relation.
pub fn random_table_shards(
    attrs: usize,
    n: usize,
    domain: Val,
    seed: u64,
    shards: usize,
) -> Vec<Table> {
    let table = random_table(attrs, n, domain, seed);
    let cuts = crackdb_columnstore::shard::ShardCuts::even(n, shards);
    crackdb_columnstore::shard::partition_table(&table, &cuts)
}

/// The query-location patterns of the paper's experiments (§3.6 Exp5,
/// §4.2): where in the domain successive range queries land.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pattern {
    /// Uniformly random locations (the default workload).
    Random,
    /// Consecutive non-overlapping ranges marching left-to-right across
    /// the domain, wrapping at the end (worst case for adaptation: every
    /// query touches a cold region).
    Sequential,
    /// With probability `hot_prob` the range falls inside the hot zone
    /// (first `hot_frac` of the domain), otherwise in the remainder.
    Skewed {
        /// Probability of hitting the hot zone.
        hot_prob: f64,
        /// Fraction of the domain forming the hot zone.
        hot_frac: f64,
    },
}

/// Generator of random range predicates with a fixed result-size target.
#[derive(Debug)]
pub struct RangeGen {
    rng: StdRng,
    domain: Val,
    /// Width of the requested value range (0 = point queries).
    pub width: Val,
    /// Cursor of the sequential pattern.
    cursor: Val,
}

impl RangeGen {
    /// Ranges selecting a `selectivity` fraction of a uniform `[1,
    /// domain]` attribute.
    pub fn with_selectivity(domain: Val, selectivity: f64, seed: u64) -> Self {
        let width = ((domain as f64) * selectivity).round() as Val;
        Self::with_width(domain, width, seed)
    }

    /// Ranges of a fixed value width (`width = 0` gives point queries).
    pub fn with_width(domain: Val, width: Val, seed: u64) -> Self {
        RangeGen {
            rng: StdRng::seed_from_u64(seed),
            domain,
            width,
            cursor: 0,
        }
    }

    /// Next random range, uniformly located in the domain.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> RangePred {
        if self.width <= 0 {
            let v = self.rng.gen_range(1..=self.domain);
            return RangePred::point(v);
        }
        let max_lo = (self.domain - self.width).max(1);
        let lo = self.rng.gen_range(0..=max_lo);
        RangePred::open(lo, lo + self.width + 1)
    }

    /// Next random range restricted to `[zone_lo, zone_hi]` (skewed
    /// workloads).
    pub fn next_in(&mut self, zone_lo: Val, zone_hi: Val) -> RangePred {
        let span = (zone_hi - zone_lo - self.width).max(1);
        let lo = zone_lo + self.rng.gen_range(0..span);
        RangePred::open(lo, lo + self.width + 1)
    }

    /// Skewed workload of Exp5/§4.2: with probability `hot_prob` the
    /// range falls inside the hot zone (first `hot_frac` of the domain),
    /// otherwise in the remainder.
    pub fn next_skewed(&mut self, hot_prob: f64, hot_frac: f64) -> RangePred {
        let split = ((self.domain as f64) * hot_frac) as Val;
        if self.rng.gen_bool(hot_prob) {
            self.next_in(1, split.max(2))
        } else {
            self.next_in(split, self.domain)
        }
    }

    /// Sequential workload: the next non-overlapping range to the right
    /// of the previous one, wrapping at the end of the domain.
    pub fn next_sequential(&mut self) -> RangePred {
        let w = self.width.max(1);
        // open(lo, lo+w+1) covers values lo+1 ..= lo+w; wrap only once
        // the stripe would reach past the domain's top value.
        if self.cursor + w > self.domain {
            self.cursor = 0;
        }
        let lo = self.cursor;
        self.cursor += w;
        RangePred::open(lo, lo + w + 1)
    }

    /// Next range following `pattern`.
    pub fn next_pattern(&mut self, pattern: Pattern) -> RangePred {
        match pattern {
            Pattern::Random => self.next(),
            Pattern::Sequential => self.next_sequential(),
            Pattern::Skewed { hot_prob, hot_frac } => self.next_skewed(hot_prob, hot_frac),
        }
    }

    /// A batch of `n` predicates following `pattern` (the shape consumed
    /// by the batch-execution benchmarks).
    pub fn batch(&mut self, pattern: Pattern, n: usize) -> Vec<RangePred> {
        (0..n).map(|_| self.next_pattern(pattern)).collect()
    }

    /// Random value in the domain (update streams).
    pub fn value(&mut self) -> Val {
        self.rng.gen_range(1..=self.domain)
    }

    /// Random index below `n`.
    pub fn index(&mut self, n: usize) -> usize {
        self.rng.gen_range(0..n)
    }
}

/// The §4.2 multi-batch workload: queries
/// `Qi: select Ci from R where v1<A<v2 and v3<Bi<v4`, all sharing the
/// selection attribute `A` (attribute 0) but using distinct `Bi`/`Ci`
/// pairs per query type.
#[derive(Debug, Clone, Copy)]
pub struct QiQuery {
    /// Predicate on the shared attribute `A` (attribute index 0).
    pub a_pred: RangePred,
    /// `(Bi attribute, predicate)`.
    pub b: (usize, RangePred),
    /// `Ci` attribute to project.
    pub c: usize,
}

/// Generator for the batched `Qi` workload (§4.2): `types` query types
/// over a table of `1 + 2*types` attributes; type `i` uses `Bi =
/// 1 + 2*i`, `Ci = 2 + 2*i`.
#[derive(Debug)]
pub struct QiGen {
    range: RangeGen,
    domain: Val,
    /// Number of query types cycling in batches.
    pub types: usize,
}

impl QiGen {
    /// `result_size` is the paper's `S` (tuples selected by the
    /// conjunction) over a table of `n` rows: the `A` range is sized for
    /// `2S/n` selectivity and the `Bi` range for 50%, so the conjunction
    /// yields ≈ `S`.
    pub fn new(domain: Val, n: usize, result_size: usize, types: usize, seed: u64) -> Self {
        let sel_a = (2.0 * result_size as f64 / n as f64).min(1.0);
        QiGen {
            range: RangeGen::with_selectivity(domain, sel_a, seed),
            domain,
            types,
        }
    }

    /// Query of type `ty` (0-based) with fresh random ranges.
    pub fn query(&mut self, ty: usize) -> QiQuery {
        assert!(ty < self.types);
        let a_pred = self.range.next();
        // Bi predicate: ~50% selectivity, random location.
        let half = self.domain / 2;
        let lo = self.range.rng_gen(half.max(1));
        QiQuery {
            a_pred,
            b: (1 + 2 * ty, RangePred::open(lo, lo + half)),
            c: 2 + 2 * ty,
        }
    }

    /// Skewed variant: the `A` range falls in the first 20% of the domain
    /// for 9 of 10 queries (§4.2 "Adaptation").
    pub fn query_skewed(&mut self, ty: usize) -> QiQuery {
        let mut q = self.query(ty);
        q.a_pred = self.range.next_skewed(0.9, 0.2);
        q
    }
}

impl RangeGen {
    fn rng_gen(&mut self, max: Val) -> Val {
        self.rng.gen_range(0..max)
    }
}

impl QiGen {
    /// Attributes a table must have for this generator.
    pub fn attrs_needed(types: usize) -> usize {
        1 + 2 * types
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_table_shape_and_domain() {
        let t = random_table(3, 100, 50, 1);
        assert_eq!(t.num_columns(), 3);
        assert_eq!(t.num_rows(), 100);
        for c in 0..3 {
            assert!(t.column(c).values().iter().all(|&v| (1..=50).contains(&v)));
        }
    }

    #[test]
    fn random_table_deterministic() {
        let a = random_table(2, 50, 100, 9);
        let b = random_table(2, 50, 100, 9);
        assert_eq!(a.column(0).values(), b.column(0).values());
    }

    #[test]
    fn sharded_table_concatenates_to_the_unsharded_one() {
        let whole = random_table(3, 101, 500, 12);
        for shards in [1usize, 2, 7] {
            let parts = random_table_shards(3, 101, 500, 12, shards);
            assert_eq!(parts.len(), shards);
            for c in 0..3 {
                let concat: Vec<Val> = parts
                    .iter()
                    .flat_map(|p| p.column(c).values().iter().copied())
                    .collect();
                assert_eq!(concat, whole.column(c).values(), "{shards} shards, col {c}");
            }
        }
    }

    #[test]
    fn selectivity_target_roughly_met() {
        let domain = 10_000;
        let t = random_table(1, 20_000, domain, 3);
        let mut g = RangeGen::with_selectivity(domain, 0.2, 4);
        let mut total = 0usize;
        for _ in 0..20 {
            let p = g.next();
            total += crackdb_columnstore::ops::select::count(t.column(0), &p);
        }
        let avg = total as f64 / 20.0;
        assert!(
            (avg - 4000.0).abs() < 600.0,
            "expected ~20% of 20k rows, got {avg}"
        );
    }

    #[test]
    fn point_queries() {
        let mut g = RangeGen::with_width(100, 0, 5);
        let p = g.next();
        assert_eq!(p.lo.unwrap().value, p.hi.unwrap().value);
    }

    #[test]
    fn skewed_ranges_stay_in_zones() {
        let mut g = RangeGen::with_selectivity(1000, 0.01, 6);
        let mut hot = 0;
        for _ in 0..200 {
            let p = g.next_skewed(0.9, 0.2);
            let lo = p.lo.unwrap().value;
            if lo < 200 {
                hot += 1;
            }
        }
        assert!(
            hot > 150,
            "≈90% of queries should hit the hot zone, got {hot}"
        );
    }

    #[test]
    fn sequential_ranges_march_and_wrap() {
        let mut g = RangeGen::with_width(100, 10, 8);
        let mut covered = std::collections::HashSet::new();
        let mut prev_lo = -1;
        for _ in 0..10 {
            let p = g.next_pattern(Pattern::Sequential);
            let lo = p.lo.unwrap().value;
            assert!(lo > prev_lo, "ranges must march right before wrapping");
            assert_eq!(p.hi.unwrap().value - lo, 11);
            covered.extend(lo + 1..=lo + 10);
            prev_lo = lo;
        }
        // 10 stripes of width 10 cover the whole value domain [1, 100] —
        // including the top stripe — and the 11th query wraps.
        assert_eq!(covered.len(), 100);
        assert!(covered.contains(&100), "top of the domain must be queried");
        let p = g.next_pattern(Pattern::Sequential);
        assert_eq!(p.lo.unwrap().value, 0);
    }

    #[test]
    fn batch_produces_n_patterned_predicates() {
        let mut g = RangeGen::with_selectivity(1000, 0.01, 9);
        assert_eq!(g.batch(Pattern::Random, 7).len(), 7);
        let skewed = g.batch(
            Pattern::Skewed {
                hot_prob: 1.0,
                hot_frac: 0.2,
            },
            20,
        );
        assert!(skewed.iter().all(|p| p.lo.unwrap().value < 200));
    }

    #[test]
    fn qi_workload_shape() {
        let mut g = QiGen::new(1_000_000, 1_000_000, 10_000, 5, 7);
        for ty in 0..5 {
            let q = g.query(ty);
            assert_eq!(q.b.0, 1 + 2 * ty);
            assert_eq!(q.c, 2 + 2 * ty);
        }
        assert_eq!(QiGen::attrs_needed(5), 11); // the paper's 11-attribute table
    }
}
