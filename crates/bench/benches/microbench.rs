//! Micro-benchmarks of the kernels behind every figure: crack-in-two /
//! crack-in-three, AVL index operations, bit-vector filtering, the three
//! positional-reconstruction access patterns, and ripple updates.

use crackdb_bench::harness::{BatchSize, Criterion};
use crackdb_columnstore::radix::radix_cluster;
use crackdb_columnstore::types::{RangePred, RowId, Val};
use crackdb_core::BitVec;
use crackdb_cracking::crack::{crack_in_three, crack_in_two, BoundKind};
use crackdb_cracking::{CrackedArray, CrackerIndex};
use crackdb_rng::rngs::StdRng;
use crackdb_rng::seq::SliceRandom;
use crackdb_rng::{Rng, SeedableRng};
use std::hint::black_box;

const N: usize = 1 << 20;

fn data(seed: u64) -> (Vec<Val>, Vec<RowId>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let head: Vec<Val> = (0..N).map(|_| rng.gen_range(0..N as Val)).collect();
    let tail: Vec<RowId> = (0..N as RowId).collect();
    (head, tail)
}

fn bench_crack_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("crack_kernels");
    g.sample_size(10);
    let (head, tail) = data(1);
    g.bench_function("crack_in_two_1M", |b| {
        b.iter_batched(
            || (head.clone(), tail.clone()),
            |(mut h, mut t)| {
                black_box(crack_in_two(
                    &mut h,
                    &mut t,
                    0,
                    N,
                    N as Val / 2,
                    BoundKind::Lt,
                ))
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("crack_in_three_1M", |b| {
        b.iter_batched(
            || (head.clone(), tail.clone()),
            |(mut h, mut t)| {
                black_box(crack_in_three(
                    &mut h,
                    &mut t,
                    0,
                    N,
                    (N as Val / 4, BoundKind::Le),
                    (3 * N as Val / 4, BoundKind::Lt),
                ))
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("two_crack_in_twos_1M", |b| {
        b.iter_batched(
            || (head.clone(), tail.clone()),
            |(mut h, mut t)| {
                let a = crack_in_two(&mut h, &mut t, 0, N, N as Val / 4, BoundKind::Le);
                black_box(crack_in_two(
                    &mut h,
                    &mut t,
                    a,
                    N,
                    3 * N as Val / 4,
                    BoundKind::Lt,
                ))
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_index(c: &mut Criterion) {
    let mut g = c.benchmark_group("cracker_index");
    let mut idx = CrackerIndex::new();
    let mut rng = StdRng::seed_from_u64(2);
    for _ in 0..10_000 {
        idx.record(
            (rng.gen_range(0..1_000_000), BoundKind::Lt),
            rng.gen_range(0..N),
        );
    }
    g.bench_function("enclosing_piece_10k_boundaries", |b| {
        b.iter(|| {
            let k = (rng.gen_range(0..1_000_000), BoundKind::Lt);
            black_box(idx.enclosing_piece(k, N))
        })
    });
    g.bench_function("estimate_size", |b| {
        b.iter(|| {
            let lo = rng.gen_range(0..900_000);
            black_box(idx.estimate_size(&RangePred::open(lo, lo + 50_000), N, (0, 1_000_000)))
        })
    });
    g.finish();
}

fn bench_bitvec(c: &mut Criterion) {
    let mut g = c.benchmark_group("bitvec");
    let vals: Vec<Val> = {
        let mut rng = StdRng::seed_from_u64(3);
        (0..N).map(|_| rng.gen_range(0..1000)).collect()
    };
    g.bench_function("create_bv_1M", |b| {
        b.iter(|| black_box(BitVec::from_fn(N, |i| vals[i] < 500)))
    });
    let bv = BitVec::from_fn(N, |i| vals[i] < 500);
    g.bench_function("refine_bv_1M", |b| {
        b.iter_batched(
            || bv.clone(),
            |mut bv| {
                bv.refine(|i| vals[i] > 250);
                black_box(bv)
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("iter_ones_1M", |b| {
        b.iter(|| black_box(bv.iter_ones().count()))
    });
    g.finish();
}

fn bench_reconstruction_patterns(c: &mut Criterion) {
    let mut g = c.benchmark_group("reconstruction");
    g.sample_size(10);
    let (col, _) = data(4);
    let mut rng = StdRng::seed_from_u64(5);
    let mut keys: Vec<RowId> = (0..N as RowId).collect();
    keys.shuffle(&mut rng);
    keys.truncate(N / 5);
    let sorted = {
        let mut k = keys.clone();
        k.sort_unstable();
        k
    };
    let fetch = |keys: &[RowId]| -> Val {
        let mut acc = 0;
        for &k in keys {
            acc ^= col[k as usize];
        }
        acc
    };
    g.bench_function("sequential_200k_of_1M", |b| {
        b.iter(|| black_box(fetch(&sorted)))
    });
    g.bench_function("random_200k_of_1M", |b| b.iter(|| black_box(fetch(&keys))));
    g.bench_function("radix_clustered_200k_of_1M", |b| {
        b.iter(|| {
            let clustered = radix_cluster(&keys, N, 4);
            black_box(fetch(&clustered))
        })
    });
    g.finish();
}

fn bench_ripple(c: &mut Criterion) {
    let mut g = c.benchmark_group("ripple_updates");
    g.sample_size(10);
    let (head, tail) = data(6);
    let mut arr = CrackedArray::new(head, tail);
    // Crack into ~32 pieces first.
    for i in 1..32 {
        arr.crack_range(&RangePred::open(
            (i * N / 32) as Val,
            (i * N / 32 + 1) as Val,
        ));
    }
    let mut rng = StdRng::seed_from_u64(7);
    g.bench_function("ripple_insert_32_pieces", |b| {
        b.iter(|| {
            arr.ripple_insert(rng.gen_range(0..N as Val), 0);
        })
    });
    g.finish();
}

fn main() {
    let mut c = Criterion::default();
    bench_crack_kernels(&mut c);
    bench_index(&mut c);
    bench_bitvec(&mut c);
    bench_reconstruction_patterns(&mut c);
    bench_ripple(&mut c);
}
