//! Ablation benchmarks of the design decisions DESIGN.md calls out:
//!
//! * adaptive alignment vs maps without alignment (correct plans need
//!   alignment; here we measure its replay cost in isolation);
//! * map-set choice: most selective vs least selective set;
//! * partial maps: chunk-wise processing vs full-map processing for a
//!   focused workload;
//! * crack-in-three vs two crack-in-twos (see microbench) at query level.

use crackdb_bench::harness::{BatchSize, Criterion};
use crackdb_columnstore::types::{AggFunc, RangePred, Val};
use crackdb_engine::{Engine, PartialEngine, SelectQuery, SidewaysEngine};
use crackdb_rng::rngs::StdRng;
use crackdb_rng::{Rng, SeedableRng};
use crackdb_workloads::random_table;
use std::hint::black_box;

const N: usize = 200_000;
const DOMAIN: Val = 200_000;

fn queries(seed: u64, count: usize, width: Val) -> Vec<SelectQuery> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let lo = rng.gen_range(0..DOMAIN - width);
            SelectQuery::aggregate(
                vec![(0, RangePred::open(lo, lo + width))],
                vec![(1, AggFunc::Max), (2, AggFunc::Max)],
            )
        })
        .collect()
}

/// Alignment replay cost: a map set where one map lags 100 cracks behind
/// and must catch up, vs an always-on map.
fn bench_alignment_lag(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_alignment");
    g.sample_size(10);
    let table = random_table(3, N, DOMAIN, 11);
    g.bench_function("lagging_map_catches_up_100_cracks", |b| {
        b.iter_batched(
            || {
                let mut e = SidewaysEngine::new(table.clone(), (0, DOMAIN));
                // 100 queries touching only attribute 1's map.
                for q in queries(1, 100, DOMAIN / 50) {
                    let q1 = SelectQuery::aggregate(q.preds.clone(), vec![(1, AggFunc::Max)]);
                    e.select(&q1);
                }
                e
            },
            |mut e| {
                // First query touching attribute 2: creation + full replay.
                let q = SelectQuery::aggregate(
                    vec![(0, RangePred::open(100, 5000))],
                    vec![(2, AggFunc::Max)],
                );
                black_box(e.select(&q))
            },
            BatchSize::PerIteration,
        )
    });
    g.bench_function("aligned_map_no_replay", |b| {
        b.iter_batched(
            || {
                let mut e = SidewaysEngine::new(table.clone(), (0, DOMAIN));
                for q in queries(1, 100, DOMAIN / 50) {
                    e.select(&q); // touches both maps every query
                }
                e
            },
            |mut e| {
                let q = SelectQuery::aggregate(
                    vec![(0, RangePred::open(100, 5000))],
                    vec![(2, AggFunc::Max)],
                );
                black_box(e.select(&q))
            },
            BatchSize::PerIteration,
        )
    });
    g.finish();
}

/// Map-set choice: most selective (the paper's policy) vs the worst
/// possible (least selective) set for a conjunctive query.
fn bench_set_choice(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_set_choice");
    g.sample_size(10);
    let table = random_table(4, N, DOMAIN, 12);
    // Attribute 0 predicate is highly selective (0.5%), attribute 1's is
    // wide (50%).
    let narrow = RangePred::open(1000, 2000);
    let wide = RangePred::open(0, DOMAIN / 2);
    g.bench_function("choose_most_selective(paper)", |b| {
        b.iter_batched(
            || SidewaysEngine::new(table.clone(), (0, DOMAIN)),
            |mut e| {
                let q =
                    SelectQuery::aggregate(vec![(0, narrow), (1, wide)], vec![(2, AggFunc::Max)]);
                black_box(e.select(&q))
            },
            BatchSize::PerIteration,
        )
    });
    g.bench_function("choose_least_selective(worst)", |b| {
        b.iter_batched(
            || SidewaysEngine::new(table.clone(), (0, DOMAIN)),
            |mut e| {
                // Force the bad choice by making the wide predicate the
                // only cheap-looking one: swap roles via a disjunctive
                // trick is unavailable, so emulate by running with the
                // wide predicate as the head (single-pred query on the
                // wide attribute, then the narrow filter as residual).
                let q =
                    SelectQuery::aggregate(vec![(1, wide), (0, narrow)], vec![(2, AggFunc::Max)]);
                // Engine still picks the most selective — emulate the
                // worst case by querying the wide attribute alone first
                // (paying its map creation + crack) and then the real
                // query.
                let warm = SelectQuery::aggregate(vec![(1, wide)], vec![(2, AggFunc::Max)]);
                e.select(&warm);
                black_box(e.select(&q))
            },
            BatchSize::PerIteration,
        )
    });
    g.finish();
}

/// Focused workload: partial maps fetch ~1% of the column; full maps
/// materialize everything.
fn bench_partial_vs_full_focused(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_partial_focused");
    g.sample_size(10);
    let table = random_table(3, N, DOMAIN, 13);
    let qs = queries(2, 20, DOMAIN / 100);
    g.bench_function("full_maps_20_focused_queries", |b| {
        b.iter_batched(
            || SidewaysEngine::new(table.clone(), (0, DOMAIN)),
            |mut e| {
                for q in &qs {
                    black_box(e.select(q));
                }
            },
            BatchSize::PerIteration,
        )
    });
    g.bench_function("partial_maps_20_focused_queries", |b| {
        b.iter_batched(
            || PartialEngine::new(table.clone(), (0, DOMAIN), None),
            |mut e| {
                for q in &qs {
                    black_box(e.select(q));
                }
            },
            BatchSize::PerIteration,
        )
    });
    g.finish();
}

/// §3.4 extension: the partitioned cracker-join vs a flat hash join, at
/// increasing crack counts — the cracker-join gets faster as the inputs
/// self-organize, the flat join does not.
fn bench_cracker_join(c: &mut Criterion) {
    use crackdb_core::{cracker_join, flat_hash_join};
    use crackdb_cracking::CrackedArray;
    let mut g = c.benchmark_group("ablation_cracker_join");
    g.sample_size(10);
    let mut rng = StdRng::seed_from_u64(21);
    let n = 200_000;
    let mk = |rng: &mut StdRng| -> CrackedArray<u32> {
        let head: Vec<Val> = (0..n).map(|_| rng.gen_range(0..n as Val)).collect();
        CrackedArray::new(head, (0..n as u32).collect())
    };
    for cracks in [0usize, 16, 256] {
        let mut l = mk(&mut rng);
        let mut r = mk(&mut rng);
        for i in 0..cracks {
            let lo = (i * n / cracks.max(1)) as Val;
            l.crack_range(&RangePred::open(lo, lo + 7));
            r.crack_range(&RangePred::open(lo, lo + 7));
        }
        g.bench_function(format!("cracker_join_{cracks}_cracks"), |b| {
            b.iter(|| black_box(cracker_join(&l, &r).len()))
        });
        g.bench_function(format!("flat_hash_join_{cracks}_cracks"), |b| {
            b.iter(|| black_box(flat_hash_join(&l, &r).len()))
        });
    }
    g.finish();
}

/// §3.4 extension: piece-aware max/count vs full scans over a cracked
/// array.
fn bench_piece_aware_aggregates(c: &mut Criterion) {
    use crackdb_core::aggregate::{head_count, head_max};
    use crackdb_cracking::CrackedArray;
    let mut g = c.benchmark_group("ablation_piece_aggregates");
    let mut rng = StdRng::seed_from_u64(22);
    let n = 1_000_000;
    let head: Vec<Val> = (0..n).map(|_| rng.gen_range(0..n as Val)).collect();
    let mut arr = CrackedArray::new(head.clone(), vec![(); n]);
    for i in 1..64 {
        let lo = (i * n / 64) as Val;
        arr.crack_range(&RangePred::open(lo, lo + 3));
    }
    g.bench_function("head_max_piece_aware", |b| {
        b.iter(|| black_box(head_max(&arr)))
    });
    g.bench_function("head_max_full_scan", |b| {
        b.iter(|| black_box(head.iter().copied().max()))
    });
    let pred = RangePred::open(200_000, 700_000);
    g.bench_function("head_count_piece_aware", |b| {
        b.iter(|| black_box(head_count(&arr, &pred)))
    });
    g.bench_function("head_count_full_scan", |b| {
        b.iter(|| black_box(head.iter().filter(|&&v| pred.matches(v)).count()))
    });
    g.finish();
}

fn main() {
    let mut c = Criterion::default();
    bench_alignment_lag(&mut c);
    bench_set_choice(&mut c);
    bench_partial_vs_full_focused(&mut c);
    bench_cracker_join(&mut c);
    bench_piece_aware_aggregates(&mut c);
}
