//! A minimal, dependency-free stand-in for the slice of the `criterion`
//! API the kernel benchmarks use (`benchmark_group`, `bench_function`,
//! `iter`, `iter_batched`). The workspace builds offline, so the real
//! criterion crate is unavailable; this harness runs each routine a
//! configurable number of samples and prints min / median / mean wall
//! times in a table.
//!
//! Benchmarks are ordinary `[[bench]]` targets with `harness = false`
//! and a plain `main` that drives a [`Criterion`] value.
//!
//! Besides the human-readable tables, the harness provides a minimal
//! dependency-free JSON emitter ([`JsonObj`] / [`JsonList`]) so bench
//! bins can write machine-readable `BENCH_<name>.json` artifacts (e.g.
//! the robustness sweep) that CI and perf-trajectory tooling consume.

use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Machine-readable reports
// ---------------------------------------------------------------------

/// A JSON object under construction. Only the value shapes the bench
/// artifacts need (strings, integers, floats, arrays, nested objects) —
/// not a general serializer.
#[derive(Debug, Default, Clone)]
pub struct JsonObj {
    parts: Vec<String>,
}

/// A JSON array under construction.
#[derive(Debug, Default, Clone)]
pub struct JsonList {
    parts: Vec<String>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl JsonObj {
    /// Empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.parts.push(format!(
            "\"{}\":\"{}\"",
            json_escape(key),
            json_escape(value)
        ));
        self
    }

    /// Add an integer field.
    pub fn u64(mut self, key: &str, value: u64) -> Self {
        self.parts.push(format!("\"{}\":{value}", json_escape(key)));
        self
    }

    /// Add a float field (finite values only; NaN/inf become null).
    pub fn f64(mut self, key: &str, value: f64) -> Self {
        let v = if value.is_finite() {
            format!("{value}")
        } else {
            "null".to_string()
        };
        self.parts.push(format!("\"{}\":{v}", json_escape(key)));
        self
    }

    /// Add an array of integers.
    pub fn u64_array(mut self, key: &str, values: &[u64]) -> Self {
        let body: Vec<String> = values.iter().map(|v| v.to_string()).collect();
        self.parts
            .push(format!("\"{}\":[{}]", json_escape(key), body.join(",")));
        self
    }

    /// Add a nested array value.
    pub fn list(mut self, key: &str, value: JsonList) -> Self {
        self.parts
            .push(format!("\"{}\":{}", json_escape(key), value.finish()));
        self
    }

    /// Add a nested object value.
    pub fn obj(mut self, key: &str, value: JsonObj) -> Self {
        self.parts
            .push(format!("\"{}\":{}", json_escape(key), value.finish()));
        self
    }

    /// Serialize.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.parts.join(","))
    }
}

impl JsonList {
    /// Empty array.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an object element.
    pub fn push(&mut self, value: JsonObj) {
        self.parts.push(value.finish());
    }

    /// Serialize.
    pub fn finish(self) -> String {
        format!("[{}]", self.parts.join(","))
    }
}

/// Write a machine-readable bench artifact as `BENCH_<name>.json` in the
/// current directory (the convention CI's perf-trajectory step greps
/// for). Returns the path written.
pub fn write_bench_json(name: &str, root: JsonObj) -> std::io::Result<String> {
    let path = format!("BENCH_{name}.json");
    std::fs::write(&path, root.finish() + "\n")?;
    Ok(path)
}

/// Latency percentiles over a sample set (nanoseconds), nearest-rank
/// method. The query service records one sample per completed call
/// (`Service::take_latencies`); `service_bench` folds them through this
/// and emits them into `BENCH_service.json`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Percentiles {
    /// Number of samples.
    pub count: usize,
    /// Mean (ns).
    pub mean_ns: u64,
    /// Median (ns).
    pub p50_ns: u64,
    /// 95th percentile (ns).
    pub p95_ns: u64,
    /// 99th percentile (ns).
    pub p99_ns: u64,
    /// Maximum (ns).
    pub max_ns: u64,
}

impl Percentiles {
    /// Compute from raw nanosecond samples (empty input yields zeros).
    pub fn from_nanos(mut samples: Vec<u64>) -> Self {
        samples.sort_unstable();
        let count = samples.len();
        let rank = |p: usize| -> u64 {
            if count == 0 {
                return 0;
            }
            // Nearest-rank: smallest sample with at least p% of the
            // distribution at or below it.
            samples[(p * count).div_ceil(100).clamp(1, count) - 1]
        };
        Percentiles {
            count,
            mean_ns: if count == 0 {
                0
            } else {
                (samples.iter().map(|&n| n as u128).sum::<u128>() / count as u128) as u64
            },
            p50_ns: rank(50),
            p95_ns: rank(95),
            p99_ns: rank(99),
            max_ns: samples.last().copied().unwrap_or(0),
        }
    }

    /// Serialize into the bench-artifact JSON shape (microsecond floats
    /// for readability, counts as integers).
    pub fn to_json(self) -> JsonObj {
        JsonObj::new()
            .u64("samples", self.count as u64)
            .f64("mean_us", self.mean_ns as f64 / 1e3)
            .f64("p50_us", self.p50_ns as f64 / 1e3)
            .f64("p95_us", self.p95_ns as f64 / 1e3)
            .f64("p99_us", self.p99_ns as f64 / 1e3)
            .f64("max_us", self.max_ns as f64 / 1e3)
    }
}

/// How `iter_batched` amortizes setup (kept for API compatibility; this
/// harness always runs one setup per measured sample).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// Fresh state every iteration.
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep runs fast: kernels here are all ≥ microseconds, and the
        // experiment binaries (not these microbenches) produce the
        // paper's figures.
        Criterion {
            default_samples: 15,
        }
    }
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> Group {
        let name = name.into();
        println!("\n== {name}");
        println!(
            "{:<44} {:>12} {:>12} {:>12}",
            "benchmark", "min", "median", "mean"
        );
        Group {
            _name: name,
            samples: self.default_samples,
        }
    }
}

/// A benchmark group (named section of the report).
#[derive(Debug)]
pub struct Group {
    _name: String,
    samples: usize,
}

impl Group {
    /// Set the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) {
        self.samples = n.max(3);
    }

    /// Measure one routine. `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`] or [`Bencher::iter_batched`] exactly once.
    pub fn bench_function(&mut self, id: impl ToString, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            samples: self.samples,
            times: Vec::new(),
        };
        f(&mut b);
        let mut times = b.times;
        times.sort_unstable();
        let min = times.first().copied().unwrap_or_default();
        let median = times.get(times.len() / 2).copied().unwrap_or_default();
        let mean = if times.is_empty() {
            Duration::ZERO
        } else {
            times.iter().sum::<Duration>() / times.len() as u32
        };
        println!(
            "{:<44} {:>12} {:>12} {:>12}",
            id.to_string(),
            fmt(min),
            fmt(median),
            fmt(mean)
        );
    }

    /// End the group (printing is incremental; kept for API parity).
    pub fn finish(self) {}
}

fn fmt(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Per-benchmark measurement driver.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    times: Vec<Duration>,
}

impl Bencher {
    /// Measure `f` directly, one timing sample per call (plus one
    /// unmeasured warm-up call).
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        std::hint::black_box(f());
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.times.push(t0.elapsed());
        }
    }

    /// Measure `routine` on fresh state from `setup`; setup time is not
    /// measured.
    pub fn iter_batched<S, R>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> R,
        _size: BatchSize,
    ) {
        std::hint::black_box(routine(setup()));
        for _ in 0..self.samples {
            let state = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(state));
            self.times.push(t0.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        let p = Percentiles::from_nanos((1..=100).collect());
        assert_eq!(p.count, 100);
        assert_eq!(p.p50_ns, 50);
        assert_eq!(p.p95_ns, 95);
        assert_eq!(p.p99_ns, 99);
        assert_eq!(p.max_ns, 100);
        assert_eq!(p.mean_ns, 50); // 50.5 truncated
    }

    #[test]
    fn percentiles_degenerate_inputs() {
        let empty = Percentiles::from_nanos(Vec::new());
        assert_eq!(empty.count, 0);
        assert_eq!(empty.p99_ns, 0);
        assert_eq!(empty.max_ns, 0);
        let one = Percentiles::from_nanos(vec![7]);
        assert_eq!((one.p50_ns, one.p99_ns, one.max_ns), (7, 7, 7));
        // Unsorted input is sorted internally.
        let two = Percentiles::from_nanos(vec![9, 1]);
        assert_eq!(two.p50_ns, 1);
        assert_eq!(two.p99_ns, 9);
    }

    #[test]
    fn percentiles_serialize() {
        let json = Percentiles::from_nanos(vec![1000, 2000]).to_json().finish();
        assert!(json.contains("\"samples\":2"), "{json}");
        assert!(json.contains("\"p50_us\":1"), "{json}");
    }
}
