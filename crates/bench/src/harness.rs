//! A minimal, dependency-free stand-in for the slice of the `criterion`
//! API the kernel benchmarks use (`benchmark_group`, `bench_function`,
//! `iter`, `iter_batched`). The workspace builds offline, so the real
//! criterion crate is unavailable; this harness runs each routine a
//! configurable number of samples and prints min / median / mean wall
//! times in a table.
//!
//! Benchmarks are ordinary `[[bench]]` targets with `harness = false`
//! and a plain `main` that drives a [`Criterion`] value.

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup (kept for API compatibility; this
/// harness always runs one setup per measured sample).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// Fresh state every iteration.
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep runs fast: kernels here are all ≥ microseconds, and the
        // experiment binaries (not these microbenches) produce the
        // paper's figures.
        Criterion {
            default_samples: 15,
        }
    }
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> Group {
        let name = name.into();
        println!("\n== {name}");
        println!(
            "{:<44} {:>12} {:>12} {:>12}",
            "benchmark", "min", "median", "mean"
        );
        Group {
            _name: name,
            samples: self.default_samples,
        }
    }
}

/// A benchmark group (named section of the report).
#[derive(Debug)]
pub struct Group {
    _name: String,
    samples: usize,
}

impl Group {
    /// Set the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) {
        self.samples = n.max(3);
    }

    /// Measure one routine. `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`] or [`Bencher::iter_batched`] exactly once.
    pub fn bench_function(&mut self, id: impl ToString, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            samples: self.samples,
            times: Vec::new(),
        };
        f(&mut b);
        let mut times = b.times;
        times.sort_unstable();
        let min = times.first().copied().unwrap_or_default();
        let median = times.get(times.len() / 2).copied().unwrap_or_default();
        let mean = if times.is_empty() {
            Duration::ZERO
        } else {
            times.iter().sum::<Duration>() / times.len() as u32
        };
        println!(
            "{:<44} {:>12} {:>12} {:>12}",
            id.to_string(),
            fmt(min),
            fmt(median),
            fmt(mean)
        );
    }

    /// End the group (printing is incremental; kept for API parity).
    pub fn finish(self) {}
}

fn fmt(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Per-benchmark measurement driver.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    times: Vec<Duration>,
}

impl Bencher {
    /// Measure `f` directly, one timing sample per call (plus one
    /// unmeasured warm-up call).
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        std::hint::black_box(f());
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.times.push(t0.elapsed());
        }
    }

    /// Measure `routine` on fresh state from `setup`; setup time is not
    /// measured.
    pub fn iter_batched<S, R>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> R,
        _size: BatchSize,
    ) {
        std::hint::black_box(routine(setup()));
        for _ in 0..self.samples {
            let state = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(state));
            self.times.push(t0.elapsed());
        }
    }
}
