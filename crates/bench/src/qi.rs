//! Shared runner for the §4.2 `Qi` batch workloads (Figures 9–13): the
//! same query schedule driven through full-map sideways cracking and
//! partial sideways cracking, recording per-query cost and storage usage.

use crackdb_columnstore::column::Table;
use crackdb_columnstore::types::Val;
use crackdb_engine::{Engine, PartialEngine, SelectQuery, SidewaysEngine};
use crackdb_workloads::synthetic::{QiGen, QiQuery};

/// One recorded query execution.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Query index (0-based).
    pub seq: usize,
    /// Wall time in microseconds.
    pub us: f64,
    /// Auxiliary storage (tuples) after the query.
    pub storage: usize,
}

/// Build the batched schedule: `queries` queries cycling through `types`
/// query types in batches of `batch` (the paper's "100 Q1, then 100 Q2,
/// …" pattern). `skewed` selects the hot-zone variant.
pub fn schedule(gen: &mut QiGen, queries: usize, batch: usize, skewed: bool) -> Vec<QiQuery> {
    (0..queries)
        .map(|i| {
            let ty = (i / batch) % gen.types;
            if skewed {
                gen.query_skewed(ty)
            } else {
                gen.query(ty)
            }
        })
        .collect()
}

fn to_select(q: &QiQuery) -> SelectQuery {
    SelectQuery::project(vec![(0, q.a_pred), q.b], vec![q.c])
}

/// Run the schedule through an engine, returning per-query samples. Also
/// cross-checks result sizes against `expected` when provided.
pub fn run_engine(
    engine: &mut dyn Engine,
    sched: &[QiQuery],
    expected: Option<&[usize]>,
) -> Vec<Sample> {
    let mut out = Vec::with_capacity(sched.len());
    for (i, q) in sched.iter().enumerate() {
        let sq = to_select(q);
        let t0 = std::time::Instant::now();
        let res = engine.select(&sq);
        let us = t0.elapsed().as_secs_f64() * 1e6;
        if let Some(exp) = expected {
            assert_eq!(res.rows, exp[i], "query {i}: row count mismatch");
        }
        out.push(Sample {
            seq: i,
            us,
            storage: engine.aux_tuples(),
        });
    }
    out
}

/// Result sizes from a reference scan (used to validate both engines).
pub fn reference_sizes(table: &Table, sched: &[QiQuery]) -> Vec<usize> {
    sched
        .iter()
        .map(|q| {
            let a = table.column(0);
            let b = table.column(q.b.0);
            (0..table.num_rows() as u32)
                .filter(|&k| q.a_pred.matches(a.get(k)) && q.b.1.matches(b.get(k)))
                .count()
        })
        .collect()
}

/// Run one full-vs-partial comparison for a given budget; returns
/// `(full samples, partial samples)`.
pub fn compare(
    table: &Table,
    domain: Val,
    sched: &[QiQuery],
    budget: Option<usize>,
    validate: bool,
) -> (Vec<Sample>, Vec<Sample>) {
    let expected = if validate {
        Some(reference_sizes(table, sched))
    } else {
        None
    };
    let mut full = SidewaysEngine::new(table.clone(), (0, domain));
    full.set_budget(budget);
    let full_samples = run_engine(&mut full, sched, expected.as_deref());
    let mut partial = PartialEngine::new(table.clone(), (0, domain), budget);
    let partial_samples = run_engine(&mut partial, sched, expected.as_deref());
    (full_samples, partial_samples)
}

/// Total seconds across samples.
pub fn total_secs(samples: &[Sample]) -> f64 {
    samples.iter().map(|s| s.us).sum::<f64>() / 1e6
}
