//! Exp3 (§3.6, inline reordering figure): tuple-reconstruction cost for
//! 1/2/4/8 projections when the intermediate result is (a) ordered
//! (plain MonetDB), (b) unordered (selection cracking), (c) sorted
//! before reconstructing, (d) radix-clustered before reconstructing.

use crackdb_bench::{header, time_ms, Args};
use crackdb_columnstore::radix::{bits_for_cache, clustered_reconstruct, radix_cluster};
use crackdb_columnstore::types::{RowId, Val};
use crackdb_rng::rngs::StdRng;
use crackdb_rng::seq::SliceRandom;
use crackdb_rng::SeedableRng;
use crackdb_workloads::random_table;

fn main() {
    let args = Args::parse(2_000_000, 0);
    let n = args.n;
    let table = random_table(9, n, n as Val, args.seed);
    // A 20%-selectivity intermediate result, unordered (as selection
    // cracking produces after a few cracks).
    let mut rng = StdRng::seed_from_u64(args.seed);
    let mut keys: Vec<RowId> = (0..n as RowId).collect();
    keys.shuffle(&mut rng);
    keys.truncate(n / 5);
    let ordered = {
        let mut k = keys.clone();
        k.sort_unstable();
        k
    };
    // L2-sized clusters (values of 8 bytes; ~512 KiB → 64Ki values).
    let bits = bits_for_cache(n, 1 << 16);

    println!(
        "# Exp3: reordering unordered intermediates (N={n}, |result|={} keys)",
        keys.len()
    );
    println!("# Paper: §3.6 inline figure — TR cost vs number of reconstructions");
    header(&["k_reconstructions", "strategy", "ms"]);
    for &k in &[1usize, 2, 4, 8] {
        let reconstruct = |keys: &[RowId]| -> Val {
            let mut acc = 0;
            for attr in 1..=k {
                let col = table.column(attr);
                for &key in keys {
                    acc ^= col.get(key);
                }
            }
            acc
        };
        let (ms_ord, a) = time_ms(|| reconstruct(&ordered));
        println!("{k}\tordered TR (plain MonetDB)\t{ms_ord:.3}");

        let (ms_unord, b) = time_ms(|| reconstruct(&keys));
        println!("{k}\tunordered TR (sel. cracking)\t{ms_unord:.3}");

        let (ms_sort, c) = time_ms(|| {
            let mut s = keys.clone();
            s.sort_unstable();
            reconstruct(&s)
        });
        println!("{k}\tsort + ordered TR\t{ms_sort:.3}");

        let (ms_radix, d) = time_ms(|| {
            let clustered = radix_cluster(&keys, n, bits);
            reconstruct(&clustered)
        });
        println!("{k}\tradix-cluster + clustered TR\t{ms_radix:.3}");

        // The library's fused cluster-and-reconstruct path (what the
        // engines use): clusters once per attribute internally.
        let (ms_lib, e) = time_ms(|| {
            let mut acc = 0;
            for attr in 1..=k {
                for v in clustered_reconstruct(table.column(attr), &keys, bits) {
                    acc ^= v;
                }
            }
            acc
        });
        println!("{k}\tclustered_reconstruct (library)\t{ms_lib:.3}");
        assert!(
            a == b && b == c && c == d && d == e,
            "strategies must agree"
        );
    }
    println!("\n# Expected shape: unordered grows steepest with k; the sorting/clustering");
    println!("# investments amortize as k grows (clustering cheaper than sorting).");
}
