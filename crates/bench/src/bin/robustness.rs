//! Workload-robustness sweep: pattern × crack policy × engine.
//!
//! The adversarial patterns of the interactive-exploration benchmarks
//! (IDEBench-style sweeps and drill-downs) are exactly where
//! crack-at-the-predicate cracking degenerates: a sequential sweep
//! leaves one huge uncracked tail piece that every query re-partitions
//! (per-query cost stays O(n)), and a hot-region drill-down shatters
//! the hot zone into thousands of AVL nodes. This sweep pits the three
//! [`CrackPolicy`] strategies against the three workload patterns on
//! every adaptive engine and emits a machine-readable
//! `BENCH_robustness.json` (per-query ns plus cumulative totals) via
//! `bench::harness`, so the perf trajectory is tracked run over run.
//!
//! The headline acceptance number: with `Stochastic`, cumulative time
//! for 1,000 sequential-pattern queries on a 10M-row table is >= 5x
//! lower than `Standard`. Policies never change answers — the sweep
//! asserts per-(engine, pattern) row totals are identical across
//! policies.
//!
//! The sweep also runs the per-column `Adaptive` advisor alongside the
//! static policies and reports its ratio to the best static choice per
//! (engine, pattern) — the advisor's bound is staying within a small
//! factor of the best static policy on *every* pattern while winning
//! outright on mixed traces (see the `idebench` suite).
//!
//! Every (engine, pattern, policy) cell is replayed `--repeats` times
//! with the policies interleaved (order rotated per cell) and scored by
//! its **minimum** cumulative time: the min filters scheduler and
//! memory-bandwidth interference while preserving the deterministic
//! work each policy actually does.
//!
//! Usage: `cargo run --release --bin robustness [--n=10000000]
//! [--queries=1000] [--seed=…] [--repeats=3]
//! [--patterns=sequential,random,skewed]
//! [--policies=standard,stochastic,coarse,adaptive]`

use crackdb_bench::harness::{write_bench_json, JsonList, JsonObj};
use crackdb_bench::{header, Args};
use crackdb_columnstore::types::{AggFunc, Val};
use crackdb_engine::{
    CrackPolicy, Engine, PartialEngine, SelCrackEngine, SelectQuery, SidewaysEngine,
};
use crackdb_workloads::{random_table, Pattern, RangeGen};
use std::time::Instant;

/// One engine constructor per adaptive physical design.
fn build_engine(
    which: &str,
    table: &crackdb_columnstore::column::Table,
    domain: (Val, Val),
    policy: CrackPolicy,
) -> Box<dyn Engine> {
    match which {
        "selcrack" => Box::new(SelCrackEngine::with_policy(table.clone(), domain, policy)),
        "sideways" => Box::new(SidewaysEngine::with_policy(table.clone(), domain, policy)),
        "partial" => Box::new(PartialEngine::with_policy(
            table.clone(),
            domain,
            None,
            policy,
        )),
        other => panic!("unknown engine {other}"),
    }
}

fn parse_list(prefix: &str, default: &[&str]) -> Vec<String> {
    for arg in std::env::args().skip(1) {
        if let Some(v) = arg.strip_prefix(prefix) {
            return v.split(',').map(|s| s.trim().to_string()).collect();
        }
    }
    default.iter().map(|s| s.to_string()).collect()
}

fn pattern_of(name: &str) -> Pattern {
    match name {
        "sequential" => Pattern::Sequential,
        "random" => Pattern::Random,
        // Exp5 / §4.2 skew: 90% of queries in the first 20% of the domain.
        "skewed" => Pattern::Skewed {
            hot_prob: 0.9,
            hot_frac: 0.2,
        },
        other => panic!("unknown pattern {other}"),
    }
}

fn policy_of(name: &str) -> CrackPolicy {
    CrackPolicy::parse(name).unwrap_or_else(|| panic!("unknown policy {name}"))
}

fn parse_usize(prefix: &str, default: usize) -> usize {
    for arg in std::env::args().skip(1) {
        if let Some(v) = arg.strip_prefix(prefix) {
            return v.parse().unwrap_or_else(|_| panic!("{prefix} takes an integer"));
        }
    }
    default
}

/// Best-observed replay of one (engine, pattern, policy) cell.
struct Cell {
    min_ns: u64,
    per_query_ns: Vec<u64>,
    late_mean_ns: u64,
    rows: usize,
}

fn main() {
    let args = Args::parse(10_000_000, 1000);
    let domain: Val = args.n as Val;
    let patterns = parse_list("--patterns=", &["sequential", "random", "skewed"]);
    let policies = parse_list(
        "--policies=",
        &["standard", "stochastic", "coarse", "adaptive"],
    );
    let engines = ["selcrack", "sideways", "partial"];
    let repeats = parse_usize("--repeats=", 3).max(1);

    println!(
        "robustness: {} rows, {} queries/config, domain [1, {}], {} engines x {} patterns x {} policies, min of {} repeats",
        args.n,
        args.queries,
        domain,
        engines.len(),
        patterns.len(),
        policies.len(),
        repeats
    );
    let table = random_table(1, args.n, domain, args.seed);
    // Sweep stripe width: the sequential pattern covers the domain once
    // over the query budget.
    let width = (domain / args.queries as Val).max(1);

    header(&[
        "engine",
        "pattern",
        "policy",
        "total ms",
        "mean us",
        "p-late us",
        "rows",
    ]);

    let mut configs = JsonList::new();
    // (engine, pattern) -> total rows, for the answers-identical check.
    let mut row_checks: Vec<((String, String), usize)> = Vec::new();
    // cells[ei][pati][pi]: best replay observed so far.
    let mut cells: Vec<Vec<Vec<Option<Cell>>>> = engines
        .iter()
        .map(|_| {
            patterns
                .iter()
                .map(|_| policies.iter().map(|_| None).collect())
                .collect()
        })
        .collect();

    for rep in 0..repeats {
        for (ei, engine_name) in engines.iter().enumerate() {
            for (pati, pattern_name) in patterns.iter().enumerate() {
                // Policies interleave inside one (pattern, repeat) so
                // slow machine-state drift hits every policy equally,
                // and the order rotates per cell so no policy always
                // runs in the same (coldest/hottest) slot.
                for k in 0..policies.len() {
                    let pi = (k + rep + pati) % policies.len();
                    let policy_name = &policies[pi];
                    let policy = policy_of(policy_name);
                    let pattern = pattern_of(pattern_name);
                    let mut engine = build_engine(engine_name, &table, (1, domain), policy);
                    let mut gen = RangeGen::with_width(domain, width, args.seed + 1);
                    let mut per_query_ns: Vec<u64> = Vec::with_capacity(args.queries);
                    let mut total_rows = 0usize;
                    for _ in 0..args.queries {
                        let pred = gen.next_pattern(pattern);
                        let q =
                            SelectQuery::aggregate(vec![(0, pred)], vec![(0, AggFunc::Count)]);
                        let t0 = Instant::now();
                        let out = engine.select(&q);
                        per_query_ns.push(t0.elapsed().as_nanos() as u64);
                        total_rows += out.rows;
                    }
                    let cumulative_ns: u64 = per_query_ns.iter().sum();
                    let late = &per_query_ns[args.queries / 2..];
                    let late_mean_ns = late.iter().sum::<u64>() / late.len().max(1) as u64;

                    // Policies must never change answers: identical preds
                    // -> identical row totals across policies and repeats.
                    let key = (engine_name.to_string(), pattern_name.clone());
                    match row_checks.iter().find(|(k, _)| *k == key) {
                        None => row_checks.push((key, total_rows)),
                        Some((_, expected)) => assert_eq!(
                            total_rows, *expected,
                            "{engine_name}/{pattern_name}: policy {policy_name} changed answers"
                        ),
                    }

                    let cell = &mut cells[ei][pati][pi];
                    if cell.as_ref().is_none_or(|c| cumulative_ns < c.min_ns) {
                        *cell = Some(Cell {
                            min_ns: cumulative_ns,
                            per_query_ns,
                            late_mean_ns,
                            rows: total_rows,
                        });
                    }
                }
            }
        }
    }

    // (engine, pattern, policy) -> cumulative ns, for headline ratios.
    let mut totals: Vec<(String, String, String, u64)> = Vec::new();
    for (ei, engine_name) in engines.iter().enumerate() {
        for (pati, pattern_name) in patterns.iter().enumerate() {
            for (pi, policy_name) in policies.iter().enumerate() {
                let cell = cells[ei][pati][pi].as_ref().expect("cell measured");
                println!(
                    "{:<10} {:<11} {:<11} {:>9.1} {:>9.1} {:>9.1} {:>10}",
                    engine_name,
                    pattern_name,
                    policy_name,
                    cell.min_ns as f64 / 1e6,
                    cell.min_ns as f64 / 1e3 / args.queries as f64,
                    cell.late_mean_ns as f64 / 1e3,
                    cell.rows,
                );
                totals.push((
                    engine_name.to_string(),
                    pattern_name.clone(),
                    policy_name.clone(),
                    cell.min_ns,
                ));
                configs.push(
                    JsonObj::new()
                        .str("engine", engine_name)
                        .str("pattern", pattern_name)
                        .str("policy", policy_name)
                        .u64("cumulative_ns", cell.min_ns)
                        .u64("mean_ns", cell.min_ns / args.queries as u64)
                        .u64("late_half_mean_ns", cell.late_mean_ns)
                        .u64("rows", cell.rows as u64)
                        .u64_array("per_query_ns", &cell.per_query_ns),
                );
            }
        }
    }

    // Headline ratios: sequential standard / stochastic per engine, and
    // adaptive vs the best *static* policy per (engine, pattern) — the
    // advisor's robustness bound is staying within a small factor of the
    // best static choice on every pattern.
    let mut ratios = JsonList::new();
    for engine_name in engines {
        let total = |pattern: &str, policy: &str| -> Option<u64> {
            totals
                .iter()
                .find(|(e, pat, pol, _)| e == engine_name && pat == pattern && pol == policy)
                .map(|&(_, _, _, ns)| ns)
        };
        if let (Some(std_ns), Some(sto_ns)) =
            (total("sequential", "standard"), total("sequential", "stochastic"))
        {
            let ratio = std_ns as f64 / sto_ns.max(1) as f64;
            println!(
                "{engine_name}: sequential standard/stochastic = {ratio:.1}x \
                 ({:.1} ms vs {:.1} ms)",
                std_ns as f64 / 1e6,
                sto_ns as f64 / 1e6
            );
            ratios.push(
                JsonObj::new()
                    .str("engine", engine_name)
                    .f64("sequential_standard_over_stochastic", ratio),
            );
        }
        for pattern_name in &patterns {
            let statics: Vec<u64> = totals
                .iter()
                .filter(|(e, pat, pol, _)| {
                    e == engine_name && pat == pattern_name && pol != "adaptive"
                })
                .map(|&(_, _, _, ns)| ns)
                .collect();
            let (Some(ada_ns), Some(&best_ns)) = (
                total(pattern_name, "adaptive"),
                statics.iter().min(),
            ) else {
                continue;
            };
            let ratio = ada_ns as f64 / best_ns.max(1) as f64;
            println!(
                "{engine_name}/{pattern_name}: adaptive/best-static = {ratio:.2}x \
                 ({:.1} ms vs {:.1} ms)",
                ada_ns as f64 / 1e6,
                best_ns as f64 / 1e6
            );
            ratios.push(
                JsonObj::new()
                    .str("engine", engine_name)
                    .str("pattern", pattern_name)
                    .f64("adaptive_over_best_static", ratio),
            );
        }
    }

    let root = JsonObj::new()
        .str("bench", "robustness")
        .u64("rows", args.n as u64)
        .u64("queries", args.queries as u64)
        .u64("domain", domain as u64)
        .u64("seed", args.seed)
        .u64("repeats", repeats as u64)
        .u64("stripe_width", width as u64)
        .list("ratios", ratios)
        .list("configs", configs);
    let path = write_bench_json("robustness", root).expect("write BENCH_robustness.json");
    println!("wrote {path}");
}
