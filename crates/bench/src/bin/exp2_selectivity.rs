//! Exp2 (§3.6, Figure 4(b)): q1 with 2 tuple reconstructions under
//! varying selectivity (point queries up to 90%); response time of
//! sideways cracking relative to plain MonetDB along the query sequence.

use crackdb_bench::{header, log_sample, time_ms, Args};
use crackdb_columnstore::types::{AggFunc, Val};
use crackdb_engine::{Engine, PlainEngine, SelectQuery, SidewaysEngine};
use crackdb_workloads::{random_table, RangeGen};

fn main() {
    let args = Args::parse(1_000_000, 200);
    let n = args.n;
    let domain = n as Val;
    let table = random_table(3, n, domain, args.seed);
    println!(
        "# Exp2: varying selectivity (N={n}, {} queries, 2 tuple reconstructions)",
        args.queries
    );
    println!("# Paper: Figure 4(b) — response time relative to plain MonetDB (<1 = faster)");
    header(&[
        "selectivity",
        "query_seq",
        "sideways_ms",
        "monetdb_ms",
        "relative",
    ]);

    let selectivities: [(&str, f64); 6] = [
        ("point", 0.0),
        ("10%", 0.1),
        ("30%", 0.3),
        ("50%", 0.5),
        ("70%", 0.7),
        ("90%", 0.9),
    ];
    for (label, sel) in selectivities {
        let mut plain = PlainEngine::new(table.clone());
        let mut sideways = SidewaysEngine::new(table.clone(), (0, domain));
        let mut gen = if sel == 0.0 {
            RangeGen::with_width(domain, 0, args.seed)
        } else {
            RangeGen::with_selectivity(domain, sel, args.seed)
        };
        for i in 0..args.queries {
            let pred = gen.next();
            let q =
                SelectQuery::aggregate(vec![(0, pred)], vec![(1, AggFunc::Max), (2, AggFunc::Max)]);
            let (ms_p, out_p) = time_ms(|| plain.select(&q));
            let (ms_s, out_s) = time_ms(|| sideways.select(&q));
            assert_eq!(out_p.aggs, out_s.aggs, "engines disagree");
            if log_sample(i, args.queries) {
                let rel = if ms_p > 0.0 { ms_s / ms_p } else { 1.0 };
                println!("{label}\t{}\t{:.3}\t{:.3}\t{:.3}", i + 1, ms_s, ms_p, rel);
            }
        }
    }
    println!("\n# Expected shape: first query slightly above 1.0 (map creation), then");
    println!("# dropping well below 1.0; less selective queries cross below 1.0 sooner.");
}
