//! Figure 11 (§4.2): "no overhead" — total cumulative cost of the
//! 1000-query workload while varying result size S and storage
//! threshold T; partial maps must match or beat full maps everywhere.

use crackdb_bench::qi::{compare, schedule, total_secs};
use crackdb_bench::{header, Args};
use crackdb_columnstore::types::Val;
use crackdb_workloads::random_table;
use crackdb_workloads::synthetic::QiGen;

fn main() {
    let args = Args::parse(200_000, 1000);
    let n = args.n;
    let domain = n as Val;
    let table = random_table(QiGen::attrs_needed(5), n, domain, args.seed);

    println!(
        "# Fig 11: total cumulative cost of {} queries (N={n})",
        args.queries
    );
    header(&["S_result_size", "T_budget", "full_secs", "partial_secs"]);
    let s_values = [n / 1000, n / 100, n / 10, 3 * n / 10];
    let budgets: [(&str, Option<usize>); 3] = [
        ("none", None),
        ("6.5maps", Some(n * 13 / 2)),
        ("2maps", Some(n * 2)),
    ];
    for &s_size in &s_values {
        for (blabel, budget) in budgets {
            let mut gen = QiGen::new(domain, n, s_size.max(1), 5, args.seed + 1);
            let sched = schedule(&mut gen, args.queries, 100, false);
            let (full, partial) = compare(&table, domain, &sched, budget, false);
            println!(
                "{s_size}\t{blabel}\t{:.3}\t{:.3}",
                total_secs(&full),
                total_secs(&partial)
            );
        }
    }
    println!("\n# Expected shape: at low selectivity (large S) both approaches cost about");
    println!("# the same; at high selectivity (small S) partial maps win clearly, and the");
    println!("# advantage grows as the budget tightens.");
}
