//! Figure 9 (§4.2): handling storage restrictions — per-query cost of
//! full vs partial maps under (a) unlimited storage, (b) T = 6.5 maps,
//! (c) T = 2 maps, plus (d) storage usage over the query sequence.
//!
//! Workload: an 11-attribute table, five query types `Qi` in batches of
//! 100, result size S ≈ N/100 (the paper: N = 10^6, S = 10^4).

use crackdb_bench::qi::{compare, schedule};
use crackdb_bench::{header, log_sample, Args};
use crackdb_columnstore::types::Val;
use crackdb_workloads::random_table;
use crackdb_workloads::synthetic::QiGen;

fn main() {
    let args = Args::parse(200_000, 1000);
    let n = args.n;
    let domain = n as Val;
    let table = random_table(QiGen::attrs_needed(5), n, domain, args.seed);
    let s_size = n / 100;
    let mut gen = QiGen::new(domain, n, s_size, 5, args.seed + 1);
    let sched = schedule(&mut gen, args.queries, 100, false);

    println!(
        "# Fig 9: storage restrictions (N={n}, S={s_size}, {} queries, 5 types x batches of 100)",
        args.queries
    );
    let budgets: [(&str, Option<usize>); 3] = [
        ("(a) unlimited", None),
        ("(b) T=6.5 maps", Some(n * 13 / 2)),
        ("(c) T=2 maps", Some(n * 2)),
    ];
    for (label, budget) in budgets {
        println!("\n## {label}");
        header(&[
            "query_seq",
            "full_us",
            "partial_us",
            "full_storage",
            "partial_storage",
        ]);
        let (full, partial) = compare(&table, domain, &sched, budget, false);
        for i in 0..sched.len() {
            if log_sample(i, sched.len()) || i % 100 == 0 {
                println!(
                    "{}\t{:.1}\t{:.1}\t{}\t{}",
                    i + 1,
                    full[i].us,
                    partial[i].us,
                    full[i].storage,
                    partial[i].storage
                );
            }
        }
        println!(
            "# totals: full {:.3}s, partial {:.3}s; peak storage full {} / partial {}",
            crackdb_bench::qi::total_secs(&full),
            crackdb_bench::qi::total_secs(&partial),
            full.iter().map(|s| s.storage).max().unwrap_or(0),
            partial.iter().map(|s| s.storage).max().unwrap_or(0),
        );
    }
    println!("\n# Expected shape: full maps show high peaks at every batch boundary (map");
    println!("# creation + alignment, worse once budgets force recreation); partial maps");
    println!("# spread the cost smoothly and use a fraction of the storage (Fig 9(d)).");
}
