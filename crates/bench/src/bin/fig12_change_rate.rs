//! Figure 12 (§4.2): total cost versus workload change rate — full maps
//! degrade as batches shrink (more drops + recreations), partial maps
//! stay nearly flat.

use crackdb_bench::qi::{compare, schedule, total_secs};
use crackdb_bench::{header, Args};
use crackdb_columnstore::types::Val;
use crackdb_workloads::random_table;
use crackdb_workloads::synthetic::QiGen;

fn main() {
    let args = Args::parse(200_000, 1000);
    let n = args.n;
    let domain = n as Val;
    let table = random_table(QiGen::attrs_needed(5), n, domain, args.seed);
    let budget = Some(n * 6); // the paper's T = 6M for N = 1M
    let s_size = n / 100;

    println!(
        "# Fig 12: varying workload change rate (N={n}, S={s_size}, T=6 maps, {} queries)",
        args.queries
    );
    header(&["changes_per_1000", "batch_len", "full_secs", "partial_secs"]);
    for batch in [200usize, 100, 20, 10, 2, 1] {
        let changes = args.queries / batch;
        let mut gen = QiGen::new(domain, n, s_size.max(1), 5, args.seed + 1);
        let sched = schedule(&mut gen, args.queries, batch, false);
        let (full, partial) = compare(&table, domain, &sched, budget, false);
        println!(
            "{changes}\t{batch}\t{:.3}\t{:.3}",
            total_secs(&full),
            total_secs(&partial)
        );
    }
    println!("\n# Expected shape: full maps degrade sharply with more frequent changes");
    println!("# (maps dropped and recreated more often); partial maps barely move.");
}
