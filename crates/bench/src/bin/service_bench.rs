//! Concurrent-serving benchmark: N closed-loop clients against the
//! share-nothing query service, all five engines × the
//! `workloads::Pattern` families × a shard-worker sweep.
//!
//! Each configuration starts a `Service` over a `ShardedEngine` with
//! `shards` long-lived workers, spawns `clients` closed-loop sessions
//! (issue one query, await the merged answer, repeat — the
//! think-time-free inner loop of an interactive-exploration client) and
//! reports aggregate throughput plus per-query latency percentiles
//! (p50/p95/p99) from the service's own latency capture. Per (engine,
//! pattern) the total result-row count must not depend on the worker
//! count — the sweeps are answer-checked, not just timed.
//!
//! The acceptance series lives in the emitted `BENCH_service.json`: on
//! a ≥4-core host the 4-worker aggregate throughput is expected at ≥2×
//! the 1-worker figure for the adaptive engines (this container may
//! have few cores; CI uploads the artifact for exactly that check).
//!
//! A second series (`mixed95`) exercises the lock-free snapshot read
//! path: a 95/5 read-heavy mix on one selection-cracking shard, swept
//! over reader counts with the fast path on vs off. With the fast path
//! off every read serializes through the single shard worker; with it
//! on, converged reads execute on the client threads and the reader
//! sweep can scale (again only visibly on a multi-core host —
//! `host_threads` in the artifact says which kind ran).
//!
//! Usage: `cargo run --release --bin service_bench [--n=…] [--queries=…
//! per client] [--clients=…] [--shards=…] [--seed=…]`

use crackdb_bench::harness::{write_bench_json, JsonList, JsonObj, Percentiles};
use crackdb_bench::{fmt_ms, header, time_ms, Args};
use crackdb_columnstore::column::Table;
use crackdb_columnstore::types::{AggFunc, RangePred, RowId, Val};
use crackdb_engine::{
    Engine, PartialEngine, PlainEngine, PresortedEngine, SelCrackEngine, SelectQuery, Service,
    ServiceConfig, ShardedEngine, SidewaysEngine,
};
use crackdb_workloads::{random_table, Pattern, RangeGen};

const PATTERNS: [(&str, Pattern); 3] = [
    ("random", Pattern::Random),
    ("sequential", Pattern::Sequential),
    (
        "skewed",
        Pattern::Skewed {
            hot_prob: 0.9,
            hot_frac: 0.2,
        },
    ),
];

fn main() {
    let args = Args::parse(200_000, 64);
    let clients = args.clients_or_auto();
    let sweep = args.shard_sweep();
    let domain: Val = args.n as Val;
    let table = random_table(4, args.n, domain, args.seed);

    println!(
        "service_bench: {} rows x 4 attrs, {} clients x {} queries each, worker sweep {:?}",
        args.n, clients, args.queries, sweep
    );
    header(&[
        "engine", "pattern", "workers", "total_ms", "qps", "p50_us", "p95_us", "p99_us",
    ]);

    let mut report = JsonList::new();
    run_engine(
        &args,
        &table,
        clients,
        &sweep,
        "MonetDB",
        &mut report,
        PlainEngine::new,
    );
    run_engine(
        &args,
        &table,
        clients,
        &sweep,
        "Presorted MonetDB",
        &mut report,
        |p| PresortedEngine::new(p, &[0, 1]),
    );
    run_engine(
        &args,
        &table,
        clients,
        &sweep,
        "Selection Cracking",
        &mut report,
        |p| SelCrackEngine::new(p, (0, domain)),
    );
    run_engine(
        &args,
        &table,
        clients,
        &sweep,
        "Sideways Cracking",
        &mut report,
        |p| SidewaysEngine::new(p, (0, domain)),
    );
    run_engine(
        &args,
        &table,
        clients,
        &sweep,
        "Partial Sideways Cracking",
        &mut report,
        |p| PartialEngine::new(p, (0, domain), None),
    );

    let mixed = run_mixed95(&args, &table);

    // The worker-scaling ratio only means something relative to the
    // host's parallelism; record it so the artifact is self-describing
    // (a 1-core container cannot show the ≥2x 4-vs-1-worker figure, and
    // the mixed95 reader-scaling series has the same caveat).
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let root = JsonObj::new()
        .str("bench", "service")
        .u64("rows", args.n as u64)
        .u64("clients", clients as u64)
        .u64("queries_per_client", args.queries as u64)
        .u64("host_threads", host_threads as u64)
        .u64_array(
            "workers",
            &sweep.iter().map(|&s| s as u64).collect::<Vec<_>>(),
        )
        .list("series", report)
        .list("mixed95", mixed);
    let path = write_bench_json("service", root).expect("write BENCH_service.json");
    println!("wrote {path}");
}

/// The per-client query stream: the §3.6 shape (selective range on the
/// cracked attribute, residual range, two aggregate attributes) with
/// the selective range's location following `pattern`. Every client
/// gets its own generator seed, so concurrent sessions explore
/// different regions — the serving-side stress the paper's single-query
/// experiments never produce.
fn client_queries(pattern: Pattern, domain: Val, queries: usize, seed: u64) -> Vec<SelectQuery> {
    let mut sel = RangeGen::with_selectivity(domain, 0.02, seed);
    let mut res = RangeGen::with_selectivity(domain, 0.5, seed + 1);
    (0..queries)
        .map(|_| {
            SelectQuery::aggregate(
                vec![(0, sel.next_pattern(pattern)), (1, res.next())],
                vec![(2, AggFunc::Max), (3, AggFunc::Sum), (3, AggFunc::Count)],
            )
        })
        .collect()
}

/// Sweep (pattern × workers) for one engine: start a service, run the
/// closed-loop clients, print one row and append one JSON entry per
/// configuration.
fn run_engine<E: Engine + Send + 'static>(
    args: &Args,
    table: &Table,
    clients: usize,
    sweep: &[usize],
    name: &str,
    report: &mut JsonList,
    make: impl Fn(Table) -> E + Sync,
) {
    for (pattern_name, pattern) in PATTERNS {
        let mut reference_rows: Option<usize> = None;
        for &workers in sweep {
            let sharded = ShardedEngine::build(table.clone(), workers, |_, part| make(part));
            let svc = Service::start(sharded).expect("service starts");
            let (ms, total_rows) = time_ms(|| {
                std::thread::scope(|s| {
                    let handles: Vec<_> = (0..clients)
                        .map(|c| {
                            let client = svc.client();
                            let queries = client_queries(
                                pattern,
                                args.n as Val,
                                args.queries,
                                args.seed + 100 * c as u64,
                            );
                            s.spawn(move || {
                                queries
                                    .iter()
                                    .map(|q| client.select(q).expect("query served").output.rows)
                                    .sum::<usize>()
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("client session"))
                        .sum::<usize>()
                })
            });
            match reference_rows {
                None => reference_rows = Some(total_rows),
                Some(r) => assert_eq!(
                    r, total_rows,
                    "{name}/{pattern_name}: answers must not depend on the worker count"
                ),
            }
            let lat = Percentiles::from_nanos(svc.take_latencies());
            svc.shutdown();
            let total_queries = clients * args.queries;
            let qps = total_queries as f64 / (ms / 1e3);
            println!(
                "{name}\t{pattern_name}\t{workers}\t{}\t{qps:.1}\t{:.1}\t{:.1}\t{:.1}",
                fmt_ms(ms),
                lat.p50_ns as f64 / 1e3,
                lat.p95_ns as f64 / 1e3,
                lat.p99_ns as f64 / 1e3,
            );
            report.push(
                JsonObj::new()
                    .str("engine", name)
                    .str("pattern", pattern_name)
                    .u64("workers", workers as u64)
                    .u64("queries", total_queries as u64)
                    .u64("rows", total_rows as u64)
                    .f64("total_ms", ms)
                    .f64("qps", qps)
                    .obj("latency", lat.to_json()),
            );
        }
    }
}

/// The snapshot-read acceptance series: a 95/5 read-heavy mix on one
/// selection-cracking shard, readers ∈ {1, 2, 4} × the fast path on
/// ("fast") vs off ("queue"). One shard makes the contrast sharp: with
/// the fast path off every read serializes through the shard's owner
/// worker; with it on, converged reads run on the client threads and
/// only writes take the worker hop.
///
/// Answer checking across all six configurations needs read answers
/// that do not depend on write timing, so the 5% write mix stays
/// invisible to the reads: inserts carry values above the queried
/// domain and deletes only remove a client's own earlier inserts.
/// Every configuration executes the same read pool (strided across
/// the readers), so total result rows must be identical — the sweep
/// is answer-checked, not just timed.
fn run_mixed95(args: &Args, table: &Table) -> JsonList {
    let domain: Val = args.n as Val;
    let reads_total = (args.queries * 8).max(160);
    let pool = client_queries(Pattern::Random, domain, reads_total, args.seed + 777);
    println!("mixed95: 95/5 read-heavy mix, 1 selection-cracking shard, {reads_total} reads, mode x readers sweep");
    header(&[
        "mode",
        "readers",
        "total_ms",
        "qps",
        "p50_us",
        "p95_us",
        "p99_us",
        "snap_hits",
    ]);

    let mut out = JsonList::new();
    let mut reference_rows: Option<usize> = None;
    for (mode, snapshot_reads) in [("fast", true), ("queue", false)] {
        for readers in [1usize, 2, 4] {
            let sharded = ShardedEngine::build(table.clone(), 1, |_, part| {
                SelCrackEngine::new(part, (0, domain))
            });
            let config = ServiceConfig {
                snapshot_reads,
                ..ServiceConfig::default()
            };
            let svc = Service::with_config(sharded, config).expect("service starts");

            // Warm-up on one client: a uniform boundary sweep (converges
            // every piece well under the publication cap) plus one pass
            // over the read pool, so the timed phase only re-visits
            // cracked bounds. Not timed, not counted.
            {
                let warm = svc.client();
                let step = (domain / 256).max(1);
                let mut lo = 0;
                while lo < domain {
                    let q = SelectQuery::aggregate(
                        vec![(0, RangePred::open(lo, (lo + step).min(domain)))],
                        vec![(0, AggFunc::Count)],
                    );
                    warm.select(&q).expect("warm-up sweep");
                    lo += step;
                }
                for q in &pool {
                    warm.select(q).expect("warm-up pool pass");
                }
            }
            svc.take_latencies();
            let warm_hits = svc.snapshot_hits();

            let (ms, total_rows) = time_ms(|| {
                std::thread::scope(|s| {
                    let handles: Vec<_> = (0..readers)
                        .map(|r| {
                            let client = svc.client();
                            let pool = &pool;
                            s.spawn(move || {
                                let mut rows = 0usize;
                                let mut own: Vec<RowId> = Vec::new();
                                let mut minted: Val = 0;
                                for (i, q) in pool.iter().skip(r).step_by(readers).enumerate() {
                                    if i % 19 == 18 {
                                        if own.len() >= 2 {
                                            let key = own.remove(0);
                                            client.delete(key).expect("delete own insert");
                                        } else {
                                            let v = domain + 1 + (minted % domain);
                                            minted += 1;
                                            let w =
                                                client.insert(&[v, v, v, v]).expect("insert row");
                                            own.push(w.key.expect("insert returns a key"));
                                        }
                                    }
                                    rows += client.select(q).expect("read served").output.rows;
                                }
                                rows
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("reader session"))
                        .sum::<usize>()
                })
            });
            match reference_rows {
                None => reference_rows = Some(total_rows),
                Some(rr) => assert_eq!(
                    rr, total_rows,
                    "mixed95: answers must not depend on mode or reader count"
                ),
            }
            let hits = svc.snapshot_hits() - warm_hits;
            if snapshot_reads {
                assert!(
                    hits > 0,
                    "mixed95/fast: converged reads must hit the snapshot path"
                );
            } else {
                assert_eq!(hits, 0, "mixed95/queue: the fast path is off");
            }
            let lat = Percentiles::from_nanos(svc.take_latencies());
            svc.shutdown();
            let qps = reads_total as f64 / (ms / 1e3);
            println!(
                "{mode}\t{readers}\t{}\t{qps:.1}\t{:.1}\t{:.1}\t{:.1}\t{hits}",
                fmt_ms(ms),
                lat.p50_ns as f64 / 1e3,
                lat.p95_ns as f64 / 1e3,
                lat.p99_ns as f64 / 1e3,
            );
            out.push(
                JsonObj::new()
                    .str("mode", mode)
                    .u64("readers", readers as u64)
                    .u64("reads", reads_total as u64)
                    .u64("rows", total_rows as u64)
                    .u64("snapshot_hits", hits)
                    .f64("total_ms", ms)
                    .f64("qps", qps)
                    .obj("latency", lat.to_json()),
            );
        }
    }
    out
}
