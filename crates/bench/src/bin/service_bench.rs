//! Concurrent-serving benchmark: N closed-loop clients against the
//! share-nothing query service, all five engines × the
//! `workloads::Pattern` families × a shard-worker sweep.
//!
//! Each configuration starts a `Service` over a `ShardedEngine` with
//! `shards` long-lived workers, spawns `clients` closed-loop sessions
//! (issue one query, await the merged answer, repeat — the
//! think-time-free inner loop of an interactive-exploration client) and
//! reports aggregate throughput plus per-query latency percentiles
//! (p50/p95/p99) from the service's own latency capture. Per (engine,
//! pattern) the total result-row count must not depend on the worker
//! count — the sweeps are answer-checked, not just timed.
//!
//! The acceptance series lives in the emitted `BENCH_service.json`: on
//! a ≥4-core host the 4-worker aggregate throughput is expected at ≥2×
//! the 1-worker figure for the adaptive engines (this container may
//! have few cores; CI uploads the artifact for exactly that check).
//!
//! Usage: `cargo run --release --bin service_bench [--n=…] [--queries=…
//! per client] [--clients=…] [--shards=…] [--seed=…]`

use crackdb_bench::harness::{write_bench_json, JsonList, JsonObj, Percentiles};
use crackdb_bench::{fmt_ms, header, time_ms, Args};
use crackdb_columnstore::column::Table;
use crackdb_columnstore::types::{AggFunc, Val};
use crackdb_engine::{
    Engine, PartialEngine, PlainEngine, PresortedEngine, SelCrackEngine, SelectQuery, Service,
    ShardedEngine, SidewaysEngine,
};
use crackdb_workloads::{random_table, Pattern, RangeGen};

const PATTERNS: [(&str, Pattern); 3] = [
    ("random", Pattern::Random),
    ("sequential", Pattern::Sequential),
    (
        "skewed",
        Pattern::Skewed {
            hot_prob: 0.9,
            hot_frac: 0.2,
        },
    ),
];

fn main() {
    let args = Args::parse(200_000, 64);
    let clients = args.clients_or_auto();
    let sweep = args.shard_sweep();
    let domain: Val = args.n as Val;
    let table = random_table(4, args.n, domain, args.seed);

    println!(
        "service_bench: {} rows x 4 attrs, {} clients x {} queries each, worker sweep {:?}",
        args.n, clients, args.queries, sweep
    );
    header(&[
        "engine", "pattern", "workers", "total_ms", "qps", "p50_us", "p95_us", "p99_us",
    ]);

    let mut report = JsonList::new();
    run_engine(
        &args,
        &table,
        clients,
        &sweep,
        "MonetDB",
        &mut report,
        PlainEngine::new,
    );
    run_engine(
        &args,
        &table,
        clients,
        &sweep,
        "Presorted MonetDB",
        &mut report,
        |p| PresortedEngine::new(p, &[0, 1]),
    );
    run_engine(
        &args,
        &table,
        clients,
        &sweep,
        "Selection Cracking",
        &mut report,
        |p| SelCrackEngine::new(p, (0, domain)),
    );
    run_engine(
        &args,
        &table,
        clients,
        &sweep,
        "Sideways Cracking",
        &mut report,
        |p| SidewaysEngine::new(p, (0, domain)),
    );
    run_engine(
        &args,
        &table,
        clients,
        &sweep,
        "Partial Sideways Cracking",
        &mut report,
        |p| PartialEngine::new(p, (0, domain), None),
    );

    // The worker-scaling ratio only means something relative to the
    // host's parallelism; record it so the artifact is self-describing
    // (a 1-core container cannot show the ≥2x 4-vs-1-worker figure).
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let root = JsonObj::new()
        .str("bench", "service")
        .u64("rows", args.n as u64)
        .u64("clients", clients as u64)
        .u64("queries_per_client", args.queries as u64)
        .u64("host_threads", host_threads as u64)
        .u64_array(
            "workers",
            &sweep.iter().map(|&s| s as u64).collect::<Vec<_>>(),
        )
        .list("series", report);
    let path = write_bench_json("service", root).expect("write BENCH_service.json");
    println!("wrote {path}");
}

/// The per-client query stream: the §3.6 shape (selective range on the
/// cracked attribute, residual range, two aggregate attributes) with
/// the selective range's location following `pattern`. Every client
/// gets its own generator seed, so concurrent sessions explore
/// different regions — the serving-side stress the paper's single-query
/// experiments never produce.
fn client_queries(pattern: Pattern, domain: Val, queries: usize, seed: u64) -> Vec<SelectQuery> {
    let mut sel = RangeGen::with_selectivity(domain, 0.02, seed);
    let mut res = RangeGen::with_selectivity(domain, 0.5, seed + 1);
    (0..queries)
        .map(|_| {
            SelectQuery::aggregate(
                vec![(0, sel.next_pattern(pattern)), (1, res.next())],
                vec![(2, AggFunc::Max), (3, AggFunc::Sum), (3, AggFunc::Count)],
            )
        })
        .collect()
}

/// Sweep (pattern × workers) for one engine: start a service, run the
/// closed-loop clients, print one row and append one JSON entry per
/// configuration.
fn run_engine<E: Engine + Send + 'static>(
    args: &Args,
    table: &Table,
    clients: usize,
    sweep: &[usize],
    name: &str,
    report: &mut JsonList,
    make: impl Fn(Table) -> E + Sync,
) {
    for (pattern_name, pattern) in PATTERNS {
        let mut reference_rows: Option<usize> = None;
        for &workers in sweep {
            let sharded = ShardedEngine::build(table.clone(), workers, |_, part| make(part));
            let svc = Service::start(sharded).expect("service starts");
            let (ms, total_rows) = time_ms(|| {
                std::thread::scope(|s| {
                    let handles: Vec<_> = (0..clients)
                        .map(|c| {
                            let client = svc.client();
                            let queries = client_queries(
                                pattern,
                                args.n as Val,
                                args.queries,
                                args.seed + 100 * c as u64,
                            );
                            s.spawn(move || {
                                queries
                                    .iter()
                                    .map(|q| client.select(q).expect("query served").output.rows)
                                    .sum::<usize>()
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("client session"))
                        .sum::<usize>()
                })
            });
            match reference_rows {
                None => reference_rows = Some(total_rows),
                Some(r) => assert_eq!(
                    r, total_rows,
                    "{name}/{pattern_name}: answers must not depend on the worker count"
                ),
            }
            let lat = Percentiles::from_nanos(svc.take_latencies());
            svc.shutdown();
            let total_queries = clients * args.queries;
            let qps = total_queries as f64 / (ms / 1e3);
            println!(
                "{name}\t{pattern_name}\t{workers}\t{}\t{qps:.1}\t{:.1}\t{:.1}\t{:.1}",
                fmt_ms(ms),
                lat.p50_ns as f64 / 1e3,
                lat.p95_ns as f64 / 1e3,
                lat.p99_ns as f64 / 1e3,
            );
            report.push(
                JsonObj::new()
                    .str("engine", name)
                    .str("pattern", pattern_name)
                    .u64("workers", workers as u64)
                    .u64("queries", total_queries as u64)
                    .u64("rows", total_rows as u64)
                    .f64("total_ms", ms)
                    .f64("qps", qps)
                    .obj("latency", lat.to_json()),
            );
        }
    }
}
