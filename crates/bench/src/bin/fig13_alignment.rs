//! Figure 13 (§4.2): alignment cost — two query types alternating every
//! 10/100/200 queries with no storage limit; full maps pay alignment
//! peaks at every switch (the new batch's maps replay the previous
//! batch's cracks), partial maps align chunks partially and only on
//! demand.
//!
//! Output per batch: the first query's cost (the switch peak) and the
//! mean of the remaining queries, for full and partial maps.

use crackdb_bench::qi::{compare, schedule, Sample};
use crackdb_bench::{header, Args};
use crackdb_columnstore::types::Val;
use crackdb_workloads::random_table;
use crackdb_workloads::synthetic::QiGen;

fn batch_stats(samples: &[Sample], batch: usize) -> Vec<(usize, f64, f64)> {
    samples
        .chunks(batch)
        .enumerate()
        .map(|(b, w)| {
            let first = w[0].us;
            let rest = if w.len() > 1 {
                w[1..].iter().map(|s| s.us).sum::<f64>() / (w.len() - 1) as f64
            } else {
                first
            };
            (b + 1, first, rest)
        })
        .collect()
}

fn main() {
    let args = Args::parse(200_000, 1000);
    let n = args.n;
    let domain = n as Val;
    let table = random_table(QiGen::attrs_needed(2), n, domain, args.seed);
    let s_size = n / 100;

    println!("# Fig 13: improving alignment with partial maps (N={n}, S={s_size}, no limit)");
    for batch in [10usize, 100, 200] {
        println!("\n## workload changes every {batch} queries");
        header(&[
            "batch",
            "full_first_us",
            "full_rest_us",
            "partial_first_us",
            "partial_rest_us",
        ]);
        let mut gen = QiGen::new(domain, n, s_size.max(1), 2, args.seed + 1);
        let sched = schedule(&mut gen, args.queries, batch, false);
        let (full, partial) = compare(&table, domain, &sched, None, false);
        let fb = batch_stats(&full, batch);
        let pb = batch_stats(&partial, batch);
        let step = (fb.len() / 10).max(1);
        for i in (0..fb.len()).step_by(step) {
            println!(
                "{}\t{:.1}\t{:.1}\t{:.1}\t{:.1}",
                fb[i].0, fb[i].1, fb[i].2, pb[i].1, pb[i].2
            );
        }
        let peak_full: f64 = fb.iter().skip(1).map(|b| b.1).fold(0.0, f64::max);
        let peak_partial: f64 = pb.iter().skip(1).map(|b| b.1).fold(0.0, f64::max);
        println!(
            "# switch peaks (max first-query cost after batch 1): full {peak_full:.1} us, partial {peak_partial:.1} us"
        );
        println!(
            "# totals: full {:.3}s, partial {:.3}s",
            crackdb_bench::qi::total_secs(&full),
            crackdb_bench::qi::total_secs(&partial)
        );
    }
    println!("\n# Expected shape: longer batches → rarer but higher full-map alignment");
    println!("# peaks at the switches (more cracks to replay); partial maps smooth the");
    println!("# peaks via chunk-wise partial alignment.");
}
