//! Batch-execution microbenchmark: serial vs data-parallel read phases.
//!
//! Runs the same scan-dominated query batch through a [`BatchRunner`]
//! with 1 worker (serial) and with N workers (one per hardware thread by
//! default), and reports the wall-clock speedup. The plans are plain
//! column-store scans + aggregates — entirely read-only, so the parallel
//! and serial runs produce identical answers (asserted).
//!
//! Usage: `cargo run --release --bin batch_parallel [--n=…] [--queries=…]
//! [--threads=…]`

use crackdb_bench::{fmt_ms, time_ms, Args};
use crackdb_columnstore::types::{AggFunc, Val};
use crackdb_engine::{BatchRunner, PlainEngine, SelectQuery};
use crackdb_workloads::{random_table, Pattern, RangeGen};

fn main() {
    let args = Args::parse(2_000_000, 24);
    let threads = args.threads_or_auto();
    let domain: Val = args.n as Val;
    let table = random_table(4, args.n, domain, args.seed);

    // Scan-heavy batch: 30%-selectivity ranges, three aggregates each.
    let mut gen = RangeGen::with_selectivity(domain, 0.3, args.seed + 1);
    let queries: Vec<SelectQuery> = gen
        .batch(Pattern::Random, args.queries)
        .into_iter()
        .map(|p| {
            SelectQuery::aggregate(
                vec![(0, p)],
                vec![(1, AggFunc::Sum), (2, AggFunc::Max), (3, AggFunc::Count)],
            )
        })
        .collect();

    println!(
        "batch_parallel: {} rows x 4 attrs, {} queries, {} threads",
        args.n, args.queries, threads
    );

    let mut serial = BatchRunner::new(PlainEngine::new(table.clone()), 1);
    let (serial_ms, serial_out) = time_ms(|| serial.run(&queries));

    let mut parallel = BatchRunner::new(PlainEngine::new(table), threads);
    let (parallel_ms, parallel_out) = time_ms(|| parallel.run(&queries));

    for (s, p) in serial_out.iter().zip(&parallel_out) {
        assert_eq!(s.rows, p.rows, "parallel run must be bit-identical");
        assert_eq!(s.aggs, p.aggs, "parallel run must be bit-identical");
    }

    println!("serial_ms\tparallel_ms\tspeedup");
    println!(
        "{}\t{}\t{:.2}x",
        fmt_ms(serial_ms),
        fmt_ms(parallel_ms),
        serial_ms / parallel_ms
    );
}
