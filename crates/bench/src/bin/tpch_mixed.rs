//! The final §5 experiment: a mixed workload of 5 sequential batches of
//! the 12 TPC-H queries with varying parameters; sideways cracking's
//! response time relative to plain MonetDB. Map reuse across different
//! queries over the same attributes makes sideways cracking win already
//! within the first batch.

use crackdb_bench::{header, time_ms, Args};
use crackdb_engine::tpch::queries::{run, QUERIES};
use crackdb_engine::tpch::{Mode, TpchExecutor};
use crackdb_workloads::tpch::{Params, TpchData, TpchParams};

fn params_for(p: &mut TpchParams, q: u32) -> Params {
    match q {
        1 => p.q1(),
        3 => p.q3(),
        4 => p.q4(),
        6 => p.q6(),
        7 => p.q7(),
        8 => p.q8(),
        10 => p.q10(),
        12 => p.q12(),
        14 => p.q14(),
        15 => p.q15(),
        19 => p.q19(),
        20 => p.q20(),
        _ => unreachable!(),
    }
}

fn main() {
    let args = Args::parse(0, 5);
    let sf = args.sf;
    let batches = args.queries; // number of batches (paper: 5)
    println!("# Mixed TPC-H workload (SF={sf}, {batches} batches of 12 queries)");
    let data = TpchData::generate(sf, args.seed);

    let mut pgen = TpchParams::new(args.seed + 3);
    let workload: Vec<(u32, Params)> = (0..batches)
        .flat_map(|_| {
            QUERIES
                .iter()
                .map(|&q| (q, params_for(&mut pgen, q)))
                .collect::<Vec<_>>()
        })
        .collect();

    let mut plain = TpchExecutor::new(data.clone(), Mode::Plain);
    let mut sideways = TpchExecutor::new(data, Mode::Sideways);

    header(&["seq", "query", "monetdb_ms", "sideways_ms", "relative"]);
    for (i, &(q, prm)) in workload.iter().enumerate() {
        let (ms_p, dp) = time_ms(|| run(&mut plain, q, prm));
        let (ms_s, ds) = time_ms(|| run(&mut sideways, q, prm));
        assert_eq!(dp, ds, "digest mismatch on Q{q}");
        println!(
            "{}\tQ{q}\t{ms_p:.3}\t{ms_s:.3}\t{:.3}",
            i + 1,
            ms_s / ms_p.max(1e-9)
        );
    }
    println!("\n# Expected shape: relative time < 1 for most queries already in batch 1");
    println!("# (maps reused across queries sharing attributes), improving further after.");
}
