//! The final §5 experiment: a mixed workload of 5 sequential batches of
//! the 12 TPC-H queries with varying parameters; sideways and partial
//! sideways cracking's response times relative to plain MonetDB. Map
//! reuse across different queries over the same attributes makes
//! sideways cracking win already within the first batch; partial maps
//! materialize only the touched chunks of those maps.

use crackdb_bench::{header, time_ms, Args};
use crackdb_engine::tpch::queries::{run, QUERIES};
use crackdb_engine::tpch::{Mode, TpchExecutor};
use crackdb_workloads::tpch::{Params, TpchData, TpchParams};

fn params_for(p: &mut TpchParams, q: u32) -> Params {
    match q {
        1 => p.q1(),
        3 => p.q3(),
        4 => p.q4(),
        6 => p.q6(),
        7 => p.q7(),
        8 => p.q8(),
        10 => p.q10(),
        12 => p.q12(),
        14 => p.q14(),
        15 => p.q15(),
        19 => p.q19(),
        20 => p.q20(),
        _ => unreachable!(),
    }
}

fn main() {
    let args = Args::parse(0, 5);
    let sf = args.sf;
    let batches = args.queries; // number of batches (paper: 5)
    println!("# Mixed TPC-H workload (SF={sf}, {batches} batches of 12 queries)");
    let data = TpchData::generate(sf, args.seed);

    let mut pgen = TpchParams::new(args.seed + 3);
    let workload: Vec<(u32, Params)> = (0..batches)
        .flat_map(|_| {
            QUERIES
                .iter()
                .map(|&q| (q, params_for(&mut pgen, q)))
                .collect::<Vec<_>>()
        })
        .collect();

    let mut plain = TpchExecutor::new(data.clone(), Mode::Plain);
    let mut sideways = TpchExecutor::new(data.clone(), Mode::Sideways);
    let mut partial = TpchExecutor::new(data, Mode::Partial);

    header(&[
        "seq",
        "query",
        "monetdb_ms",
        "sideways_ms",
        "partial_ms",
        "rel_sideways",
        "rel_partial",
    ]);
    for (i, &(q, prm)) in workload.iter().enumerate() {
        let (ms_p, dp) = time_ms(|| run(&mut plain, q, prm));
        let (ms_s, ds) = time_ms(|| run(&mut sideways, q, prm));
        let (ms_c, dc) = time_ms(|| run(&mut partial, q, prm));
        assert_eq!(dp, ds, "sideways digest mismatch on Q{q}");
        assert_eq!(dp, dc, "partial digest mismatch on Q{q}");
        println!(
            "{}\tQ{q}\t{ms_p:.3}\t{ms_s:.3}\t{ms_c:.3}\t{:.3}\t{:.3}",
            i + 1,
            ms_s / ms_p.max(1e-9),
            ms_c / ms_p.max(1e-9)
        );
    }
    println!("\n# Expected shape: relative time < 1 for most queries already in batch 1");
    println!("# (maps reused across queries sharing attributes), improving further after;");
    println!("# partial maps track sideways while touching only the queried chunks.");
}
