//! Exp4 (§3.6, Figure 5(a,b,c)): q2 join queries with three selections
//! per table and four post-join aggregates; total cost, select+TR before
//! the join, and TR after the join, per system over 100 queries.

use crackdb_bench::{header, log_sample, time_ms, Args};
use crackdb_columnstore::types::{AggFunc, Val};
use crackdb_engine::{
    Engine, JoinQuery, JoinSide, PlainEngine, PresortedEngine, SelCrackEngine, SidewaysEngine,
};
use crackdb_workloads::{random_table, RangeGen};

fn main() {
    let args = Args::parse(2_000_000, 100);
    let n = args.n;
    let domain = n as Val;
    // Two 7-attribute tables; attribute 6 is the join attribute.
    let r = random_table(7, n, domain, args.seed);
    let s = random_table(7, n, domain, args.seed + 1);

    println!(
        "# Exp4: join queries q2 (N={n} per table, {} queries)",
        args.queries
    );
    println!("# Paper: Figure 5 — (a) total, (b) select+TR before join, (c) TR after join");
    header(&[
        "query_seq",
        "system",
        "total_ms",
        "before_join_ms",
        "join_ms",
        "after_join_ms",
    ]);

    type Build = Box<dyn Fn() -> Box<dyn Engine>>;
    let builders: Vec<(&str, Build)> = vec![
        ("Presorted MonetDB", {
            let (r, s) = (r.clone(), s.clone());
            Box::new(move || {
                let e = PresortedEngine::with_second(r.clone(), &[4], s.clone(), &[4]);
                eprintln!(
                    "# presorting cost: {:.1} ms",
                    e.presort_cost.as_secs_f64() * 1e3
                );
                Box::new(e) as Box<dyn Engine>
            })
        }),
        ("Sideways Cracking", {
            let (r, s) = (r.clone(), s.clone());
            Box::new(move || {
                Box::new(SidewaysEngine::with_second(
                    r.clone(),
                    s.clone(),
                    (0, domain),
                ))
            })
        }),
        ("Selection Cracking", {
            let (r, s) = (r.clone(), s.clone());
            Box::new(move || {
                Box::new(SelCrackEngine::with_second(
                    r.clone(),
                    s.clone(),
                    (0, domain),
                ))
            })
        }),
        ("MonetDB", {
            let (r, s) = (r.clone(), s.clone());
            Box::new(move || Box::new(PlainEngine::with_second(r.clone(), s.clone())))
        }),
    ];

    for (name, build) in builders {
        let mut sys = build();
        // Selectivity factors 50%, 30%, 20% per conjunct (the paper's);
        // all systems evaluate starting from the most selective predicate.
        let mut g50 = RangeGen::with_selectivity(domain, 0.5, args.seed + 2);
        let mut g30 = RangeGen::with_selectivity(domain, 0.3, args.seed + 3);
        let mut g20 = RangeGen::with_selectivity(domain, 0.2, args.seed + 4);
        for i in 0..args.queries {
            let q = JoinQuery {
                left: JoinSide {
                    preds: vec![(4, g20.next()), (3, g30.next()), (2, g50.next())],
                    join_attr: 6,
                    aggs: vec![(0, AggFunc::Max), (1, AggFunc::Max)],
                },
                right: JoinSide {
                    preds: vec![(4, g20.next()), (3, g30.next()), (2, g50.next())],
                    join_attr: 6,
                    aggs: vec![(0, AggFunc::Max), (1, AggFunc::Max)],
                },
            };
            let (ms, out) = time_ms(|| sys.join(&q));
            if log_sample(i, args.queries) {
                let t = out.timings;
                println!(
                    "{}\t{name}\t{:.3}\t{:.3}\t{:.3}\t{:.3}",
                    i + 1,
                    ms,
                    (t.select + t.reconstruct).as_secs_f64() * 1e3,
                    t.join.as_secs_f64() * 1e3,
                    t.post_join.as_secs_f64() * 1e3
                );
            }
        }
    }
    println!("\n# Expected shape: Sideways ≈ Presorted ≪ Selection Cracking / MonetDB in");
    println!("# both pre-join (b) and post-join (c) costs; presorted pays its build upfront.");
}
