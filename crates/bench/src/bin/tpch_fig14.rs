//! Figure 14 + the §5 benefits table: the twelve TPC-H queries, thirty
//! random parameter variations each, under all five systems; per-query
//! sequences plus the summary of sideways-cracking and presorted
//! improvements over plain MonetDB.

use crackdb_bench::{header, time_ms, Args};
use crackdb_engine::tpch::queries::{run, QUERIES};
use crackdb_engine::tpch::{Mode, TpchExecutor};
use crackdb_workloads::tpch::{Params, TpchData, TpchParams};

fn params_for(p: &mut TpchParams, q: u32) -> Params {
    match q {
        1 => p.q1(),
        3 => p.q3(),
        4 => p.q4(),
        6 => p.q6(),
        7 => p.q7(),
        8 => p.q8(),
        10 => p.q10(),
        12 => p.q12(),
        14 => p.q14(),
        15 => p.q15(),
        19 => p.q19(),
        20 => p.q20(),
        _ => unreachable!(),
    }
}

fn main() {
    let args = Args::parse(0, 30);
    let sf = args.sf;
    println!(
        "# Fig 14: TPC-H query sequences (SF={sf}, {} variations per query)",
        args.queries
    );
    let data = TpchData::generate(sf, args.seed);
    println!(
        "# lineitem rows: {}, orders rows: {}",
        data.lineitem.num_rows(),
        data.orders.num_rows()
    );

    let modes = [
        (Mode::Presorted, "MonetDB presorted"),
        (Mode::SelCrack, "Selection Cracking"),
        (Mode::Sideways, "Sideways Cracking"),
        (Mode::RowStore, "MySQL presorted"),
        (Mode::Plain, "MonetDB"),
    ];

    // Pre-generate identical parameter sequences per query.
    let mut pgen = TpchParams::new(args.seed + 7);
    let sequences: Vec<(u32, Vec<Params>)> = QUERIES
        .iter()
        .map(|&q| {
            (
                q,
                (0..args.queries)
                    .map(|_| params_for(&mut pgen, q))
                    .collect(),
            )
        })
        .collect();

    header(&["query", "run", "system", "ms"]);
    let mut totals: Vec<(u32, Vec<f64>)> = Vec::new();
    for (q, seq) in &sequences {
        let mut mode_totals = Vec::new();
        for (mode, label) in modes {
            let mut exec = TpchExecutor::new(data.clone(), mode);
            if mode == Mode::Presorted || mode == Mode::RowStore {
                eprintln!(
                    "# Q{q} {label}: preparation cost {:.1} ms",
                    exec.prep_cost.as_secs_f64() * 1e3
                );
            }
            let mut total = 0.0;
            for (i, &prm) in seq.iter().enumerate() {
                let (ms, _digest) = time_ms(|| run(&mut exec, *q, prm));
                total += ms;
                println!("Q{q}\t{}\t{label}\t{ms:.3}", i + 1);
            }
            mode_totals.push(total);
        }
        totals.push((*q, mode_totals));
    }

    // The paper's benefits table: improvement over plain MonetDB.
    println!("\n# Benefits over plain MonetDB (positive = faster), paper's §5 table:");
    header(&["query", "SiCr_%", "PrMo_%"]);
    for (q, t) in &totals {
        let plain = t[4];
        let sicr = 100.0 * (plain - t[2]) / plain.max(1e-9);
        let prmo = 100.0 * (plain - t[0]) / plain.max(1e-9);
        println!("Q{q}\t{sicr:.0}%\t{prmo:.0}%");
    }
    println!("\n# Expected shape: sideways cracking ≈ presorted (without its preparation");
    println!("# cost) and clearly faster than plain MonetDB for the TR-heavy queries");
    println!("# (1, 6, 7, 15, 19, 20); first run per sequence is the most expensive.");
}
