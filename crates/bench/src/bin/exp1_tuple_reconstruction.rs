//! Exp1 (§3.6, Figure 4(a) + cost-breakdown table): q1 with one
//! selection and 2/4/8 tuple reconstructions, 100 random 20% ranges;
//! report the 100th query's response time per system and the Sel/TR
//! breakdown for the 8-reconstruction case.

use crackdb_bench::{header, time_ms, Args};
use crackdb_columnstore::types::{AggFunc, Val};
use crackdb_engine::{
    Engine, PlainEngine, PresortedEngine, SelCrackEngine, SelectQuery, SidewaysEngine,
};
use crackdb_workloads::{random_table, RangeGen};

fn q1(gen: &mut RangeGen, k: usize) -> SelectQuery {
    let pred = gen.next();
    SelectQuery::aggregate(
        vec![(0, pred)],
        (1..=k).map(|a| (a, AggFunc::Max)).collect(),
    )
}

fn main() {
    let args = Args::parse(1_000_000, 100);
    let n = args.n;
    let domain = n as Val;
    let table = random_table(9, n, domain, args.seed);
    println!(
        "# Exp1: varying tuple reconstructions (N={n}, {} queries, 20% selectivity)",
        args.queries
    );
    println!("# Paper: Figure 4(a) — response time of the 100th query");
    header(&[
        "k_reconstructions",
        "system",
        "ms_last_query",
        "ms_sel",
        "ms_tr",
    ]);

    let mut breakdown: Vec<(String, f64, f64, f64)> = Vec::new();
    for &k in &[2usize, 4, 8] {
        let systems: Vec<Box<dyn Engine>> = vec![
            Box::new(PresortedEngine::new(table.clone(), &[0])),
            Box::new(SidewaysEngine::new(table.clone(), (0, domain))),
            Box::new(SelCrackEngine::new(table.clone(), (0, domain))),
            Box::new(PlainEngine::new(table.clone())),
        ];
        for mut sys in systems {
            let mut gen = RangeGen::with_selectivity(domain, 0.2, args.seed + k as u64);
            let mut last = (0.0, 0.0, 0.0);
            for _ in 0..args.queries {
                let q = q1(&mut gen, k);
                let (ms, out) = time_ms(|| sys.select(&q));
                last = (
                    ms,
                    out.timings.select.as_secs_f64() * 1e3,
                    out.timings.reconstruct.as_secs_f64() * 1e3,
                );
            }
            println!(
                "{k}\t{}\t{:.3}\t{:.3}\t{:.3}",
                sys.name(),
                last.0,
                last.1,
                last.2
            );
            if k == 8 {
                breakdown.push((sys.name().to_string(), last.0, last.1, last.2));
            }
        }
    }

    println!("\n# Cost breakdown at 8 tuple reconstructions (paper's inline table):");
    header(&["system", "Tot_ms", "TR_ms", "Sel_ms"]);
    for (name, tot, sel, tr) in &breakdown {
        println!("{name}\t{tot:.3}\t{tr:.3}\t{sel:.3}");
    }
    println!("\n# Expected shape: Presorted ≈ Sideways ≪ Selection Cracking, MonetDB;");
    println!("# Selection Cracking dominated by TR, MonetDB split between Sel and TR.");
}
