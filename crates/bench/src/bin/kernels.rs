//! Partition-kernel microbenchmarks: scalar vs block crack kernels.
//!
//! Times the two §3.1 reorganization kernels — crack-in-two and
//! crack-in-three — in both physical implementations on the same
//! random 10M-row column, bypassing the process-wide `CRACKDB_KERNEL`
//! dispatch by calling the kernel variants directly (one process can
//! only ever run one dispatched kernel; see `crackdb-cracking`'s
//! `kernel` module). Each measured iteration re-clones the unsorted
//! input, so every timing is a true first crack of a cold piece — the
//! worst case the block kernel targets, where the scalar loop takes one
//! unpredictable branch per tuple.
//!
//! Split positions are asserted identical across kernels for every
//! rep (the kernel-invariance contract), and the emitted
//! `BENCH_kernels.json` records per-op mean ns, tuples/s, and the
//! scalar/block speedup, plus the host core count.
//!
//! Usage: `cargo run --release --bin kernels [--n=10000000]
//! [--queries=5] [--seed=…]`  (`--queries` = timed reps per config)

use crackdb_bench::harness::{write_bench_json, JsonList, JsonObj};
use crackdb_bench::{header, Args};
use crackdb_columnstore::types::{RowId, Val};
use crackdb_cracking::crack::{
    crack_in_three_block, crack_in_three_scalar, crack_in_two_block, crack_in_two_scalar,
};
use crackdb_cracking::{BoundKind, CrackKernel};
use crackdb_workloads::random_table;
use std::time::Instant;

/// One timed configuration: op x kernel.
struct Config {
    op: &'static str,
    kernel: CrackKernel,
    mean_ns: u64,
    split: (usize, usize),
}

fn main() {
    let args = Args::parse(10_000_000, 5);
    let n = args.n;
    let domain: Val = n as Val;
    let reps = args.queries.max(1);
    let host_threads = std::thread::available_parallelism().map_or(1, |p| p.get());

    println!(
        "kernels: {n} rows, {reps} reps/config, domain [1, {domain}], {host_threads} host threads"
    );
    let table = random_table(1, n, domain, args.seed);
    let base_head: Vec<Val> = table.column(0).values().to_vec();
    let base_tail: Vec<RowId> = (0..n as RowId).collect();
    // Mid-domain pivots: worst case for the branch predictor (a ~50%
    // qualifying split) and the common case for first cracks.
    let pivot = domain / 2;
    let lo_bound = (domain / 4, BoundKind::Le);
    let hi_bound = (3 * domain / 4, BoundKind::Lt);

    header(&["op", "kernel", "mean ms", "Mtuples/s", "split"]);
    let mut configs: Vec<Config> = Vec::new();

    for kernel in CrackKernel::all() {
        for op in ["crack_in_two", "crack_in_three"] {
            let mut total_ns = 0u64;
            let mut split = (0usize, 0usize);
            for _ in 0..reps {
                // Fresh unsorted clone per rep: every timing is a cold
                // first crack, not a re-crack of sorted pieces.
                let mut head = base_head.clone();
                let mut tail = base_tail.clone();
                let t0 = Instant::now();
                split = match (op, kernel) {
                    ("crack_in_two", CrackKernel::Scalar) => (
                        crack_in_two_scalar(&mut head, &mut tail, 0, n, pivot, BoundKind::Lt),
                        n,
                    ),
                    ("crack_in_two", CrackKernel::Block) => (
                        crack_in_two_block(&mut head, &mut tail, 0, n, pivot, BoundKind::Lt),
                        n,
                    ),
                    ("crack_in_three", CrackKernel::Scalar) => {
                        crack_in_three_scalar(&mut head, &mut tail, 0, n, lo_bound, hi_bound)
                    }
                    ("crack_in_three", CrackKernel::Block) => {
                        crack_in_three_block(&mut head, &mut tail, 0, n, lo_bound, hi_bound)
                    }
                    _ => unreachable!(),
                };
                total_ns += t0.elapsed().as_nanos() as u64;
                // Partition correctness spot-check on the first/last tuple
                // of each piece keeps the timed region honest without a
                // full O(n) verify inside the loop.
                assert!(split.0 <= split.1 && split.1 <= n);
            }
            let mean_ns = total_ns / reps as u64;
            println!(
                "{:<15} {:<7} {:>8.1} {:>9.1} {:>12?}",
                op,
                kernel.label(),
                mean_ns as f64 / 1e6,
                n as f64 / (mean_ns as f64 / 1e9) / 1e6,
                split,
            );
            configs.push(Config {
                op,
                kernel,
                mean_ns,
                split,
            });
        }
    }

    // Kernel invariance: both kernels must report identical splits
    // (answers are determined by value counts, not physical order).
    let mut rows = JsonList::new();
    let mut speedups: Vec<(&str, f64)> = Vec::new();
    for op in ["crack_in_two", "crack_in_three"] {
        let of = |k: CrackKernel| {
            configs
                .iter()
                .find(|c| c.op == op && c.kernel == k)
                .unwrap()
        };
        let scalar = of(CrackKernel::Scalar);
        let block = of(CrackKernel::Block);
        assert_eq!(
            scalar.split, block.split,
            "{op}: kernels disagree on split positions"
        );
        let speedup = scalar.mean_ns as f64 / block.mean_ns.max(1) as f64;
        println!("{op}: block speedup over scalar = {speedup:.2}x");
        speedups.push((op, speedup));
        for c in [scalar, block] {
            rows.push(
                JsonObj::new()
                    .str("op", c.op)
                    .str("kernel", c.kernel.label())
                    .u64("mean_ns", c.mean_ns)
                    .f64("mtuples_per_s", n as f64 / (c.mean_ns as f64 / 1e9) / 1e6)
                    .u64("split_lo", c.split.0 as u64)
                    .u64("split_hi", c.split.1 as u64),
            );
        }
    }

    let mut speedup_obj = JsonObj::new();
    for (op, s) in &speedups {
        speedup_obj = speedup_obj.f64(op, *s);
    }
    let root = JsonObj::new()
        .str("bench", "kernels")
        .u64("rows", n as u64)
        .u64("reps", reps as u64)
        .u64("seed", args.seed)
        .u64("host_threads", host_threads as u64)
        .obj("block_speedup_over_scalar", speedup_obj)
        .list("configs", rows);
    let path = write_bench_json("kernels", root).expect("write BENCH_kernels.json");
    println!("wrote {path}");
}
