//! exp_oom: out-of-core partial cracking under a RAM budget a fraction
//! of the working set (the PR 8 spill tier).
//!
//! Three partial engines run the same seeded query/update stream over a
//! wide table (1 head + 8 tail attributes, so base + full maps are far
//! larger than the budget):
//!
//! * **spill** — tiny budget, evicted chunks serialize to disk and
//!   reload on re-access (`PartialEngine::with_spill`, honoring
//!   `CRACKDB_SPILL_DIR`);
//! * **drop**  — same tiny budget, no spill tier: evicted chunks are
//!   discarded and re-accessed areas recrack from the base (the PR 7
//!   baseline spilling is meant to beat);
//! * **ram**   — unbudgeted in-RAM reference; its answers are the
//!   ground truth and its peak `usage()` measures the working set the
//!   budgeted runs were denied.
//!
//! The binary asserts the acceptance criteria — working set >= 10x
//! budget, bit-identical answers, `usage() <= budget` after every
//! query, reloads measurably cheaper than recracks, bounded peak RSS
//! (VmHWM) — and emits `BENCH_oom.json`.

use crackdb_bench::harness::{write_bench_json, JsonList, JsonObj};
use crackdb_columnstore::types::{AggFunc, RangePred, RowId, Val};
use crackdb_core::PartialStats;
use crackdb_engine::{Engine, PartialEngine, SelectQuery};
use crackdb_workloads::random_table;
use std::time::Instant;

const TAILS: usize = 8;

/// Peak resident set (VmHWM) in kB from `/proc/self/status`; 0 when the
/// proc filesystem is unavailable (non-Linux), which downgrades the RSS
/// checks to report-only.
fn vm_hwm_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().trim_end_matches("kB").trim().parse().ok())
        .unwrap_or(0)
}

struct Lcg(u64);
impl Lcg {
    fn next(&mut self, m: i64) -> i64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((self.0 >> 33) as i64).rem_euclid(m)
    }
}

enum Op {
    Query(SelectQuery),
    Update { row: Vec<Val>, del: RowId },
}

/// Seeded stream: range restrictions on the head attribute (17-50%
/// selectivity) with aggregates + a raw projection over random tails,
/// and a §3.5 insert+delete pair every 8th step so updates stage while
/// chunks sit on disk.
fn make_ops(rows: usize, queries: usize, domain: Val, seed: u64) -> Vec<Op> {
    let mut rng = Lcg(seed);
    let mut ops = Vec::new();
    let mut next_fresh = domain;
    for i in 0..queries {
        if i % 8 == 7 {
            let mut row = vec![rng.next(domain) + 1];
            for _ in 0..TAILS {
                row.push(next_fresh + 1);
                next_fresh += 1;
            }
            ops.push(Op::Update {
                row,
                del: rng.next(rows as i64) as RowId,
            });
        }
        let lo = rng.next(domain * 5 / 6);
        let hi = lo + domain / 6 + rng.next(domain / 3);
        let agg_attr = 1 + rng.next(TAILS as i64) as usize;
        let mut q = SelectQuery::aggregate(
            vec![(0, RangePred::open(lo, hi))],
            vec![
                (agg_attr, AggFunc::Count),
                (agg_attr, AggFunc::Sum),
                (agg_attr, AggFunc::Min),
                (agg_attr, AggFunc::Max),
            ],
        );
        q.projs = vec![1 + rng.next(TAILS as i64) as usize];
        ops.push(Op::Query(q));
    }
    ops
}

/// Order-insensitive answer fingerprint: row count, every aggregate,
/// and a multiset hash of the projected values — bit-identical answers
/// without buffering whole projections across runs (which would inflate
/// the budgeted run's RSS with reference data).
#[derive(PartialEq, Eq, Debug)]
struct Fingerprint {
    rows: usize,
    aggs: Vec<Option<Val>>,
    proj_hash: (u64, u64),
}

fn fingerprint(out: &crackdb_engine::QueryOutput) -> Fingerprint {
    let (mut sum, mut sq) = (0u64, 0u64);
    for col in &out.proj_values {
        for &v in col {
            let h = (v as u64).wrapping_mul(0x9E3779B97F4A7C15);
            sum = sum.wrapping_add(h);
            sq = sq.wrapping_add(h.wrapping_mul(h | 1));
        }
    }
    Fingerprint {
        rows: out.rows,
        aggs: out.aggs.clone(),
        proj_hash: (sum, sq),
    }
}

struct RunResult {
    fingerprints: Vec<Fingerprint>,
    total_ns: u64,
    peak_usage: usize,
    stats: PartialStats,
    hwm_delta_kb: u64,
}

/// Drive the op stream, asserting `usage() <= budget` after every
/// query when a budget is set (the tentpole invariant, checked exactly:
/// spilled tuples are disk-resident and must not count).
fn run(e: &mut PartialEngine, ops: &[Op], budget: Option<usize>) -> RunResult {
    let hwm0 = vm_hwm_kb();
    let mut fps = Vec::new();
    let mut peak = 0usize;
    let t0 = Instant::now();
    for op in ops {
        match op {
            Op::Query(q) => {
                let out = e.try_select(q).expect("healthy spill tier never errors");
                fps.push(fingerprint(&out));
                let usage = e.store().usage();
                peak = peak.max(usage);
                if let Some(b) = budget {
                    assert!(usage <= b, "usage {usage} exceeds budget {b} after a query");
                }
            }
            Op::Update { row, del } => {
                e.insert(row);
                e.delete(*del);
            }
        }
    }
    RunResult {
        fingerprints: fps,
        total_ns: t0.elapsed().as_nanos() as u64,
        peak_usage: peak,
        stats: e.store().stats_sum(),
        hwm_delta_kb: vm_hwm_kb().saturating_sub(hwm0),
    }
}

fn run_json(name: &str, r: &RunResult, budget: Option<usize>) -> JsonObj {
    JsonObj::new()
        .str("run", name)
        .u64("budget_tuples", budget.unwrap_or(0) as u64)
        .f64("total_ms", r.total_ns as f64 / 1e6)
        .u64("peak_usage_tuples", r.peak_usage as u64)
        .u64("hwm_delta_kb", r.hwm_delta_kb)
        .u64("chunks_created", r.stats.chunks_created)
        .u64("chunks_dropped", r.stats.chunks_dropped)
        .u64("chunks_spilled", r.stats.chunks_spilled)
        .u64("chunks_reloaded", r.stats.chunks_reloaded)
        .u64("tuples_reloaded", r.stats.tuples_reloaded)
        .u64("tuples_fetched", r.stats.tuples_fetched)
        .f64("spill_write_ms", r.stats.spill_write_ns as f64 / 1e6)
        .f64("spill_read_ms", r.stats.spill_read_ns as f64 / 1e6)
        .f64("fetch_ms", r.stats.fetch_ns as f64 / 1e6)
}

fn main() {
    let mut n = 2_000_000usize;
    let mut queries = 80usize;
    let mut seed = 42u64;
    let mut budget = 0usize; // 0 = default n/8
    for arg in std::env::args().skip(1) {
        if let Some(v) = arg.strip_prefix("--n=") {
            n = v.parse().expect("--n takes an integer");
        } else if let Some(v) = arg.strip_prefix("--queries=") {
            queries = v.parse().expect("--queries takes an integer");
        } else if let Some(v) = arg.strip_prefix("--seed=") {
            seed = v.parse().expect("--seed takes an integer");
        } else if let Some(v) = arg.strip_prefix("--budget=") {
            budget = v.parse().expect("--budget takes an integer (tuples)");
        } else {
            eprintln!("ignoring unknown argument {arg}");
        }
    }
    if budget == 0 {
        budget = (n / 8).max(64);
    }
    let domain = n as Val;
    let base_values = n * (TAILS + 1);
    println!(
        "# exp_oom: out-of-core partial cracking (N={n}, {TAILS} tails, \
         {queries} queries, budget {budget} tuples, base {base_values} values)"
    );

    let table = random_table(TAILS + 1, n, domain, seed);
    let ops = make_ops(n, queries, domain, seed + 1);

    // Budgeted runs go first: VmHWM is monotonic per process, so the
    // spill run's high-water mark must be recorded before the
    // unbudgeted reference materializes its O(working set) maps.
    let mut spill_engine = PartialEngine::with_spill(table.clone(), (0, domain + 1), Some(budget));
    assert!(spill_engine.store().spill_enabled());
    let spill = run(&mut spill_engine, &ops, Some(budget));
    drop(spill_engine);

    let mut drop_engine = PartialEngine::new(table.clone(), (0, domain + 1), Some(budget));
    let dropped = run(&mut drop_engine, &ops, Some(budget));
    drop(drop_engine);

    let mut ram_engine = PartialEngine::new(table, (0, domain + 1), None);
    let ram = run(&mut ram_engine, &ops, None);
    drop(ram_engine);

    // --- Acceptance checks -------------------------------------------
    assert_eq!(
        spill.fingerprints, ram.fingerprints,
        "spill-tier answers must be bit-identical to the in-RAM run"
    );
    assert_eq!(
        dropped.fingerprints, ram.fingerprints,
        "drop-tier answers must be bit-identical to the in-RAM run"
    );
    let working_set = base_values + ram.peak_usage;
    let over_budget_x = working_set as f64 / budget as f64;
    assert!(
        working_set >= 10 * budget,
        "workload (base {base_values} + peak maps {}) must be >= 10x the \
         budget {budget}; got {over_budget_x:.1}x",
        ram.peak_usage
    );
    assert!(
        spill.stats.chunks_spilled > 0 && spill.stats.chunks_reloaded > 0,
        "the budget must force actual spill round-trips"
    );

    // Reload vs recrack, per tuple: a reload is one sequential read +
    // word-wise decode; the drop tier pays a random gather from the base
    // column for every tuple of the recreated chunk (and then loses the
    // chunk's cracks on top). Per-tuple normalization keeps the
    // comparison fair when the two runs see different chunk sizes.
    //
    // The assertion gates on paper-scale tables: below ~10^6 rows the
    // base columns are cache-resident and a "random" gather is nearly
    // free, which is exactly the regime the spill tier is not for.
    let reload_ns_tuple = spill.stats.spill_read_ns as f64 / spill.stats.tuples_reloaded as f64;
    let recrack_ns_tuple = dropped.stats.fetch_ns as f64 / dropped.stats.tuples_fetched as f64;
    let reload_speedup = recrack_ns_tuple / reload_ns_tuple;
    if n >= 1_000_000 && spill.stats.chunks_reloaded >= 20 {
        assert!(
            reload_ns_tuple < recrack_ns_tuple,
            "reloading a spilled tuple ({reload_ns_tuple:.2} ns avg) must be \
             cheaper than regathering it from the base ({recrack_ns_tuple:.2} ns avg)"
        );
    }

    // Bounded RSS: the spill run's HWM growth must stay far below the
    // working set the in-RAM run materializes (16 B per resident map
    // tuple: head + tail value). Allocator reuse makes later runs'
    // deltas conservative, which only strengthens this check.
    let ram_maps_kb = (ram.peak_usage * 16) as u64 / 1024;
    let rss_measured = vm_hwm_kb() > 0;
    if rss_measured && n >= 100_000 {
        assert!(
            spill.hwm_delta_kb < ram_maps_kb,
            "spill-run RSS growth {} kB must stay below the in-RAM map \
             working set {} kB",
            spill.hwm_delta_kb,
            ram_maps_kb
        );
    }

    println!("# all acceptance checks passed");
    println!(
        "# working set {working_set} values = {over_budget_x:.1}x budget; \
         spill peak usage {} <= {budget}",
        spill.peak_usage
    );
    println!(
        "# reload {reload_ns_tuple:.2} ns/tuple vs recrack {recrack_ns_tuple:.2} \
         ns/tuple ({reload_speedup:.1}x); spill {:.0} ms vs drop {:.0} ms vs \
         ram {:.0} ms total",
        spill.total_ns as f64 / 1e6,
        dropped.total_ns as f64 / 1e6,
        ram.total_ns as f64 / 1e6,
    );
    println!(
        "# RSS deltas (VmHWM): spill {} kB, drop {} kB, ram {} kB (ram maps ~{} kB)",
        spill.hwm_delta_kb, dropped.hwm_delta_kb, ram.hwm_delta_kb, ram_maps_kb
    );

    let mut runs = JsonList::new();
    runs.push(run_json("spill", &spill, Some(budget)));
    runs.push(run_json("drop", &dropped, Some(budget)));
    runs.push(run_json("ram", &ram, None));
    let root = JsonObj::new()
        .str("bench", "oom")
        .u64("rows", n as u64)
        .u64("tail_attrs", TAILS as u64)
        .u64("queries", queries as u64)
        .u64("seed", seed)
        .u64("budget_tuples", budget as u64)
        .u64("base_values", base_values as u64)
        .u64("working_set_values", working_set as u64)
        .f64("working_set_over_budget_x", over_budget_x)
        .str("answers_identical", "true")
        .str("rss_measured", if rss_measured { "true" } else { "false" })
        .obj(
            "reload_vs_recrack",
            JsonObj::new()
                .f64("reload_ns_per_tuple", reload_ns_tuple)
                .f64("recrack_ns_per_tuple", recrack_ns_tuple)
                .u64("tuples_reloaded", spill.stats.tuples_reloaded)
                .u64("tuples_regathered", dropped.stats.tuples_fetched)
                .f64("reload_speedup_x", reload_speedup),
        )
        .list("runs", runs);
    match write_bench_json("oom", root) {
        Ok(path) => println!("# wrote {path}"),
        Err(e) => eprintln!("# failed to write BENCH_oom.json: {e}"),
    }
}
