//! Exp6 (§3.6, Figure 7(a,b)): updates under the LFHV (low frequency,
//! high volume) and HFLV (high frequency, low volume) scenarios; q3
//! queries with random ranges.
//!
//! By default the update-capable trio of the paper's figure runs
//! (sideways, selection cracking, plain). `--engines=all` adds the
//! presorted baseline (paying the O(n)-per-insert sorted-copy
//! maintenance the paper dismisses it for) and partial sideways
//! cracking — unbudgeted and under a storage budget — whose §3.5
//! chunk-wise merge-on-access is the headline update path.

use crackdb_bench::{header, log_sample, time_ms, Args};
use crackdb_columnstore::types::{AggFunc, Val};
use crackdb_engine::{
    Engine, PartialEngine, PlainEngine, PresortedEngine, SelCrackEngine, SelectQuery,
    SidewaysEngine,
};
use crackdb_workloads::{random_table, RangeGen};

/// The engine roster as `(label, engine)` pairs — the label travels with
/// the engine it describes (the two partial variants share a
/// `Engine::name`, so position must never be what distinguishes them).
fn systems(
    table: &crackdb_columnstore::Table,
    domain: Val,
    all: bool,
) -> Vec<(String, Box<dyn Engine>)> {
    let named = |e: &dyn Engine| e.name().to_string();
    let mut systems: Vec<(String, Box<dyn Engine>)> = Vec::new();
    let e = SidewaysEngine::new(table.clone(), (0, domain));
    systems.push((named(&e), Box::new(e)));
    let e = SelCrackEngine::new(table.clone(), (0, domain));
    systems.push((named(&e), Box::new(e)));
    let e = PlainEngine::new(table.clone());
    systems.push((named(&e), Box::new(e)));
    if all {
        let e = PresortedEngine::new(table.clone(), &[0, 1, 2]);
        systems.push((named(&e), Box::new(e)));
        let e = PartialEngine::new(table.clone(), (0, domain), None);
        systems.push((named(&e), Box::new(e)));
        let e = PartialEngine::new(table.clone(), (0, domain), Some(table.num_rows()));
        systems.push((format!("{} (budget N)", named(&e)), Box::new(e)));
    }
    systems
}

fn run_scenario(
    name: &str,
    table: &crackdb_columnstore::Table,
    domain: Val,
    queries: usize,
    // `(update_every, update_volume)`: a batch of `volume` updates lands
    // every `every` queries.
    cadence: (usize, usize),
    seed: u64,
    all: bool,
) {
    let (update_every, update_volume) = cadence;
    println!("# Scenario {name}: {update_volume} updates every {update_every} queries");
    header(&["query_seq", "system", "us"]);
    for (label, mut sys) in systems(table, domain, all) {
        let mut gen = RangeGen::with_selectivity(domain, 0.2, seed);
        let mut live: Vec<u32> = (0..table.num_rows() as u32).collect();
        let mut next_key = table.num_rows() as u32;
        for i in 0..queries {
            if i > 0 && i % update_every == 0 {
                // A batch of random updates: each is one insert + one delete.
                for _ in 0..update_volume {
                    sys.insert(&[gen.value(), gen.value(), gen.value()]);
                    live.push(next_key);
                    next_key += 1;
                    let victim = live.swap_remove(gen.index(live.len()));
                    sys.delete(victim);
                }
            }
            let pred = gen.next();
            let q =
                SelectQuery::aggregate(vec![(0, pred)], vec![(1, AggFunc::Max), (2, AggFunc::Max)]);
            let (ms, _) = time_ms(|| sys.select(&q));
            if log_sample(i, queries) {
                println!("{}\t{}\t{:.1}", i + 1, label, ms * 1e3);
            }
        }
    }
}

fn main() {
    let args = Args::parse(500_000, 1000);
    let n = args.n;
    let domain = n as Val;
    let all = args.engines == "all";
    let table = random_table(3, n, domain, args.seed);
    println!(
        "# Exp6: effect of updates (N={n}, {} queries, engines={})",
        args.queries, args.engines
    );
    println!("# Paper: Figure 7 — (a) LFHV and (b) HFLV scenarios");

    // LFHV: a large batch once per ~queries/2; HFLV: small frequent batches.
    let big = (args.queries / 2).max(1);
    run_scenario(
        "LFHV",
        &table,
        domain,
        args.queries,
        (big, big),
        args.seed + 1,
        all,
    );
    run_scenario(
        "HFLV",
        &table,
        domain,
        args.queries,
        (10, 10),
        args.seed + 2,
        all,
    );

    println!("\n# Expected shape: the cracking engines keep their self-organized");
    println!("# performance across update batches (short-lived spikes as pending updates");
    println!("# merge on demand), staying well below plain MonetDB; with --engines=all,");
    println!("# the presorted baseline pays O(n) sorted-copy maintenance per insert and");
    println!("# partial maps merge §3.5 updates chunk-wise, budgeted or not.");
}
