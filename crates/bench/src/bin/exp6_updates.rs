//! Exp6 (§3.6, Figure 7(a,b)): updates under the LFHV (low frequency,
//! high volume) and HFLV (high frequency, low volume) scenarios; q3
//! queries with random ranges. Presorted data is excluded, as in the
//! paper (no efficient way to maintain sorted copies under updates).

use crackdb_bench::{header, log_sample, time_ms, Args};
use crackdb_columnstore::types::{AggFunc, Val};
use crackdb_engine::{Engine, PlainEngine, SelCrackEngine, SelectQuery, SidewaysEngine};
use crackdb_workloads::{random_table, RangeGen};

fn run_scenario(
    name: &str,
    table: &crackdb_columnstore::Table,
    domain: Val,
    queries: usize,
    update_every: usize,
    update_volume: usize,
    seed: u64,
) {
    println!("# Scenario {name}: {update_volume} updates every {update_every} queries");
    header(&["query_seq", "system", "us"]);
    let systems: Vec<Box<dyn Engine>> = vec![
        Box::new(SidewaysEngine::new(table.clone(), (0, domain))),
        Box::new(SelCrackEngine::new(table.clone(), (0, domain))),
        Box::new(PlainEngine::new(table.clone())),
    ];
    for mut sys in systems {
        let mut gen = RangeGen::with_selectivity(domain, 0.2, seed);
        let mut live: Vec<u32> = (0..table.num_rows() as u32).collect();
        let mut next_key = table.num_rows() as u32;
        for i in 0..queries {
            if i > 0 && i % update_every == 0 {
                // A batch of random updates: each is one insert + one delete.
                for _ in 0..update_volume {
                    sys.insert(&[gen.value(), gen.value(), gen.value()]);
                    live.push(next_key);
                    next_key += 1;
                    let victim = live.swap_remove(gen.index(live.len()));
                    sys.delete(victim);
                }
            }
            let pred = gen.next();
            let q =
                SelectQuery::aggregate(vec![(0, pred)], vec![(1, AggFunc::Max), (2, AggFunc::Max)]);
            let (ms, _) = time_ms(|| sys.select(&q));
            if log_sample(i, queries) {
                println!("{}\t{}\t{:.1}", i + 1, sys.name(), ms * 1e3);
            }
        }
    }
}

fn main() {
    let args = Args::parse(500_000, 1000);
    let n = args.n;
    let domain = n as Val;
    let table = random_table(3, n, domain, args.seed);
    println!(
        "# Exp6: effect of updates (N={n}, {} queries)",
        args.queries
    );
    println!("# Paper: Figure 7 — (a) LFHV and (b) HFLV scenarios");

    // LFHV: a large batch once per ~queries/2; HFLV: small frequent batches.
    let big = (args.queries / 2).max(1);
    run_scenario(
        "LFHV",
        &table,
        domain,
        args.queries,
        big,
        big,
        args.seed + 1,
    );
    run_scenario("HFLV", &table, domain, args.queries, 10, 10, args.seed + 2);

    println!("\n# Expected shape: sideways cracking keeps its self-organized performance");
    println!("# across update batches (short-lived spikes as pending updates merge on");
    println!("# demand), staying well below plain MonetDB.");
}
