//! Exp5 (§3.6, Figure 6): skewed workload — 9/10 q3 queries hit the
//! first half of the value domain; sideways cracking reaches presorted
//! performance quickly on the hot set, with periodic peaks for cold
//! queries.

use crackdb_bench::{header, log_sample, time_ms, Args};
use crackdb_columnstore::types::{AggFunc, Val};
use crackdb_engine::{
    Engine, PlainEngine, PresortedEngine, SelCrackEngine, SelectQuery, SidewaysEngine,
};
use crackdb_workloads::{random_table, RangeGen};

fn main() {
    let args = Args::parse(1_000_000, 1000);
    let n = args.n;
    let domain = n as Val;
    let table = random_table(3, n, domain, args.seed);

    println!(
        "# Exp5: skewed workload (N={n}, {} queries, 20% ranges, 90% in hot half)",
        args.queries
    );
    println!("# Paper: Figure 6 — response time (micro secs) along the query sequence");
    header(&["query_seq", "system", "us"]);

    let systems: Vec<Box<dyn Engine>> = vec![
        Box::new(PresortedEngine::new(table.clone(), &[0])),
        Box::new(SidewaysEngine::new(table.clone(), (0, domain))),
        Box::new(SelCrackEngine::new(table.clone(), (0, domain))),
        Box::new(PlainEngine::new(table.clone())),
    ];
    for mut sys in systems {
        let mut gen = RangeGen::with_selectivity(domain, 0.2, args.seed + 9);
        for i in 0..args.queries {
            let pred = gen.next_skewed(0.9, 0.5);
            let q =
                SelectQuery::aggregate(vec![(0, pred)], vec![(1, AggFunc::Max), (2, AggFunc::Max)]);
            let (ms, _) = time_ms(|| sys.select(&q));
            if log_sample(i, args.queries) {
                println!("{}\t{}\t{:.1}", i + 1, sys.name(), ms * 1e3);
            }
        }
    }
    println!("\n# Expected shape: sideways converges to presorted-level times on the hot");
    println!("# set within a few queries; ~every 10th query (cold zone) peaks, shrinking");
    println!("# over time as the cold zone gets cracked too.");
}
