//! IDEBench-style interactive exploration suite: session × policy ×
//! engine, scoring the per-column adaptive advisor against the static
//! crack policies on mixed exploration traces.
//!
//! The trace (from `crackdb_workloads::idebench`) interleaves random
//! browsing, a full sequential sweep, a drill-down with its roll-up,
//! and binned histogram requests — phases with *different* best static
//! policies. Each session replays on a **fresh engine**: exploratory
//! sessions are independent visits to the data, so the advisor earns
//! nothing from state carried across sessions — it must re-learn each
//! trace from query one. Every (engine, policy, session) cell is
//! replayed `--repeats` times with the policies interleaved (order
//! rotated per cell), and scored by its **minimum warm time** — the
//! session total minus its first op, because the cold first op is the
//! lazy materialization of the cracker/map/chunk state and is the same
//! work under every policy; keeping it would only dilute the policy
//! signal ~3x under multiplicative machine drift. Cold totals are
//! still reported beside the warm ones, and the min filters
//! scheduler/bandwidth interference while preserving the deterministic
//! work each policy actually does.
//!
//! The suite reports per-session and total cumulative time, the
//! time-bounded answer rate (an answer must land before the user's next
//! action, i.e. within the following op's think time), and the
//! advisor's switch count. Emits `BENCH_idebench.json`.
//!
//! Acceptance: `CRACKDB_POLICY` is one system-wide knob, so the
//! headline verdict sums the mixed trace across all access paths:
//! `adaptive` must beat every static policy on whole-suite warm
//! time (each static has a phase × engine where it genuinely loses —
//! stochastic on binned aggregation, exact cracking on marching
//! sweeps, coarse leaves on map-pair sweeps — and the advisor must
//! dodge all of them at once). Per-engine comparisons are reported
//! alongside, and answers stay bit-for-bit identical across policies
//! and repeats (asserted per session).
//!
//! Usage: `cargo run --release --bin idebench [--n=10000000] [--seed=…]
//! [--scale=4] [--repeats=3]
//! [--policies=standard,stochastic,coarse,adaptive]
//! [--engines=selcrack,sideways,partial]`

use crackdb_bench::harness::{write_bench_json, JsonList, JsonObj};
use crackdb_bench::{header, Args};
use crackdb_columnstore::types::{AggFunc, Val};
use crackdb_engine::{
    CrackPolicy, Engine, PartialEngine, SelCrackEngine, SelectQuery, SidewaysEngine,
};
use crackdb_workloads::{random_table, IdeBench, Session};
use std::time::Instant;

fn build_engine(
    which: &str,
    table: &crackdb_columnstore::column::Table,
    domain: (Val, Val),
    policy: CrackPolicy,
) -> Box<dyn Engine> {
    match which {
        "selcrack" => Box::new(SelCrackEngine::with_policy(table.clone(), domain, policy)),
        "sideways" => Box::new(SidewaysEngine::with_policy(table.clone(), domain, policy)),
        "partial" => Box::new(PartialEngine::with_policy(
            table.clone(),
            domain,
            None,
            policy,
        )),
        other => panic!("unknown engine {other}"),
    }
}

fn parse_list(prefix: &str, default: &[&str]) -> Vec<String> {
    for arg in std::env::args().skip(1) {
        if let Some(v) = arg.strip_prefix(prefix) {
            return v.split(',').map(|s| s.trim().to_string()).collect();
        }
    }
    default.iter().map(|s| s.to_string()).collect()
}

fn parse_usize(prefix: &str, default: usize) -> usize {
    for arg in std::env::args().skip(1) {
        if let Some(v) = arg.strip_prefix(prefix) {
            return v.parse().unwrap_or_else(|_| panic!("{prefix} takes an integer"));
        }
    }
    default
}

/// Latency budget per op in the time-bounded answer mode: the think
/// time before the *next* op (the user's next action makes a late
/// answer useless). The final op gets the maximum interactive pause.
fn budgets_ns(session: &Session) -> Vec<u64> {
    let mut b: Vec<u64> = session
        .ops
        .iter()
        .skip(1)
        .map(|op| op.think_ms * 1_000_000)
        .collect();
    b.push(400 * 1_000_000);
    b
}

/// One replay of `session` on a fresh `engine`. Returns (per-op
/// latencies, ops answered within budget, total result rows).
fn replay(engine: &mut dyn Engine, session: &Session) -> (Vec<u64>, usize, usize) {
    let budgets = budgets_ns(session);
    let mut per_op_ns: Vec<u64> = Vec::with_capacity(session.ops.len());
    let mut in_time = 0usize;
    let mut total_rows = 0usize;
    for (op, budget) in session.ops.iter().zip(&budgets) {
        let t0 = Instant::now();
        for pred in &op.preds {
            let q = SelectQuery::aggregate(vec![(0, *pred)], vec![(0, AggFunc::Count)]);
            total_rows += engine.select(&q).rows;
        }
        let ns = t0.elapsed().as_nanos() as u64;
        per_op_ns.push(ns);
        if ns <= *budget {
            in_time += 1;
        }
    }
    (per_op_ns, in_time, total_rows)
}

/// Best-observed replay of one (engine, policy, session) cell.
struct Cell {
    min_ns: u64,
    /// `min_ns` minus the session's first op: the cold start pays the
    /// lazy materialization of the cracker/map/chunk state — identical
    /// work under every policy (answers are asserted identical and the
    /// advisor still reads Standard on query one) — so the warm tail is
    /// where policy decisions actually differ.
    work_ns: u64,
    per_op_ns: Vec<u64>,
    in_time: usize,
    rows: usize,
    switches: u64,
}

fn main() {
    let args = Args::parse(10_000_000, 0);
    let domain: Val = args.n as Val;
    let scale = parse_usize("--scale=", 4);
    let repeats = parse_usize("--repeats=", 3).max(1);
    let policies = parse_list(
        "--policies=",
        &["standard", "stochastic", "coarse", "adaptive"],
    );
    let engines = parse_list("--engines=", &["selcrack", "sideways", "partial"]);

    // One generator per replay would also work (traces are pure in
    // (domain, seed)), but generating once makes the sharing explicit.
    let sessions = IdeBench::new(domain, args.seed + 1).mixed(scale);
    let total_queries: usize = sessions.iter().map(Session::queries).sum();
    println!(
        "idebench: {} rows, domain [1, {}], scale {}: {} sessions / {} queries per config, min of {} repeats",
        args.n,
        domain,
        scale,
        sessions.len(),
        total_queries,
        repeats
    );
    let table = random_table(1, args.n, domain, args.seed);

    // (engine, session index) -> total rows, for answer-identity checks.
    let mut row_checks: Vec<((String, usize), usize)> = Vec::new();
    // cells[ei][pi][si]: best replay observed so far.
    let mut cells: Vec<Vec<Vec<Option<Cell>>>> = engines
        .iter()
        .map(|_| {
            policies
                .iter()
                .map(|_| sessions.iter().map(|_| None).collect())
                .collect()
        })
        .collect();

    for rep in 0..repeats {
        for (ei, engine_name) in engines.iter().enumerate() {
            for (si, session) in sessions.iter().enumerate() {
                // Policies interleave inside one (session, repeat) so
                // slow machine-state drift hits every policy equally,
                // and the order rotates per cell so no policy always
                // runs in the same (coldest/hottest) slot.
                for k in 0..policies.len() {
                    let pi = (k + rep + si) % policies.len();
                    let policy_name = &policies[pi];
                    let policy = CrackPolicy::parse(policy_name)
                        .unwrap_or_else(|| panic!("unknown policy {policy_name}"));
                    let mut engine = build_engine(engine_name, &table, (1, domain), policy);
                    let (per_op_ns, in_time, rows) = replay(engine.as_mut(), session);
                    let cumulative_ns: u64 = per_op_ns.iter().sum();
                    let switches = engine.policy_switches();

                    // Policies must never change answers: identical
                    // traces -> identical row totals across policies
                    // and repeats.
                    let key = (engine_name.clone(), si);
                    match row_checks.iter().find(|(k, _)| *k == key) {
                        None => row_checks.push((key, rows)),
                        Some((_, expected)) => assert_eq!(
                            rows, *expected,
                            "{engine_name}/session {si} ({}): policy {policy_name} changed answers",
                            session.name
                        ),
                    }

                    let work_ns = cumulative_ns - per_op_ns.first().copied().unwrap_or(0);
                    let cell = &mut cells[ei][pi][si];
                    let better = cell.as_ref().is_none_or(|c| work_ns < c.work_ns);
                    if better {
                        *cell = Some(Cell {
                            min_ns: cumulative_ns,
                            work_ns,
                            per_op_ns,
                            in_time,
                            rows,
                            switches,
                        });
                    }
                }
            }
        }
    }

    header(&[
        "engine", "policy", "session", "total ms", "warm ms", "mean us", "in-time", "rows",
    ]);

    let mut configs = JsonList::new();
    // engine -> (policy, warm work ns) for the adaptive-vs-static
    // verdict: the cold first op of every session is the same lazy
    // materialization under every policy, so it only dilutes the
    // comparison (and triples its noise floor) — cold totals are still
    // reported per cell.
    let mut totals: Vec<(String, String, u64)> = Vec::new();

    for (ei, engine_name) in engines.iter().enumerate() {
        for (pi, policy_name) in policies.iter().enumerate() {
            let mut session_rows = JsonList::new();
            let mut grand_ns: u64 = 0;
            let mut grand_work_ns: u64 = 0;
            let mut grand_in_time = 0usize;
            let mut grand_ops = 0usize;
            let mut grand_switches: u64 = 0;
            for (si, session) in sessions.iter().enumerate() {
                let cell = cells[ei][pi][si].as_ref().expect("cell measured");
                grand_ns += cell.min_ns;
                grand_work_ns += cell.work_ns;
                grand_in_time += cell.in_time;
                grand_ops += session.ops.len();
                grand_switches += cell.switches;
                println!(
                    "{:<10} {:<11} {:<11} {:>9.1} {:>9.1} {:>9.1} {:>8} {:>10}",
                    engine_name,
                    policy_name,
                    session.name,
                    cell.min_ns as f64 / 1e6,
                    cell.work_ns as f64 / 1e6,
                    cell.min_ns as f64 / 1e3 / session.ops.len() as f64,
                    format!("{}/{}", cell.in_time, session.ops.len()),
                    cell.rows,
                );
                session_rows.push(
                    JsonObj::new()
                        .str("session", session.name)
                        .u64("index", si as u64)
                        .u64("ops", session.ops.len() as u64)
                        .u64("queries", session.queries() as u64)
                        .u64("think_total_ms", session.think_total_ms())
                        .u64("cumulative_ns", cell.min_ns)
                        .u64("warm_ns", cell.work_ns)
                        .u64("within_budget", cell.in_time as u64)
                        .u64("rows", cell.rows as u64)
                        .u64("policy_switches", cell.switches)
                        .u64_array("per_op_ns", &cell.per_op_ns),
                );
            }
            println!(
                "{:<10} {:<11} {:<11} {:>9.1} {:>9.1} {:>9} {:>8} switches={}",
                engine_name,
                policy_name,
                "TOTAL",
                grand_ns as f64 / 1e6,
                grand_work_ns as f64 / 1e6,
                "",
                format!("{grand_in_time}/{grand_ops}"),
                grand_switches,
            );
            totals.push((engine_name.clone(), policy_name.clone(), grand_work_ns));
            configs.push(
                JsonObj::new()
                    .str("engine", engine_name)
                    .str("policy", policy_name)
                    .u64("total_ns", grand_ns)
                    .u64("warm_ns", grand_work_ns)
                    .u64("within_budget", grand_in_time as u64)
                    .u64("ops", grand_ops as u64)
                    .f64(
                        "within_budget_frac",
                        grand_in_time as f64 / grand_ops.max(1) as f64,
                    )
                    .u64("policy_switches", grand_switches)
                    .list("sessions", session_rows),
            );
        }
    }

    // Per-engine comparison (informational): adaptive vs the best
    // static on each access path.
    let mut verdicts = JsonList::new();
    for engine_name in &engines {
        let statics: Vec<(&str, u64)> = totals
            .iter()
            .filter(|(e, p, _)| e == engine_name && p != "adaptive")
            .map(|(_, p, ns)| (p.as_str(), *ns))
            .collect();
        let adaptive = totals
            .iter()
            .find(|(e, p, _)| e == engine_name && p == "adaptive")
            .map(|&(_, _, ns)| ns);
        let (Some(adaptive_ns), false) = (adaptive, statics.is_empty()) else {
            continue;
        };
        let (best_name, best_ns) = statics.iter().min_by_key(|&&(_, ns)| ns).copied().unwrap();
        let beats_all = statics.iter().all(|&(_, ns)| adaptive_ns < ns);
        println!(
            "{engine_name}: adaptive warm {:.1} ms vs best static {best_name} {:.1} ms ({})",
            adaptive_ns as f64 / 1e6,
            best_ns as f64 / 1e6,
            if beats_all {
                "beats every static policy"
            } else {
                "not strictly best on this path"
            }
        );
        verdicts.push(
            JsonObj::new()
                .str("engine", engine_name)
                .str("best_static", best_name)
                .u64("adaptive_ns", adaptive_ns)
                .u64("best_static_ns", best_ns)
                .f64(
                    "adaptive_over_best_static",
                    adaptive_ns as f64 / best_ns.max(1) as f64,
                )
                .u64("beats_all_statics", beats_all as u64),
        );
    }

    // The headline verdict scores the whole suite: `CRACKDB_POLICY` is
    // one system-wide knob, and each static policy has a phase × access
    // path where it genuinely loses (stochastic on binned aggregation,
    // exact cracking on marching sweeps, coarse leaves on map-pair
    // sweeps). The advisor's job is to dodge all of them at once — so
    // adaptive must beat every static on the summed suite time.
    let mut suite: Vec<(String, u64)> = Vec::new();
    for policy_name in &policies {
        let total: u64 = totals
            .iter()
            .filter(|(_, p, _)| p == policy_name)
            .map(|&(_, _, ns)| ns)
            .sum();
        suite.push((policy_name.clone(), total));
    }
    let mut suite_verdict = JsonObj::new();
    let adaptive_suite = suite
        .iter()
        .find(|(p, _)| p == "adaptive")
        .map(|&(_, ns)| ns);
    let mut suite_rows = JsonList::new();
    for (p, ns) in &suite {
        println!("suite warm total {:<11} {:>9.1} ms", p, *ns as f64 / 1e6);
        suite_rows.push(JsonObj::new().str("policy", p).u64("total_ns", *ns));
    }
    suite_verdict = suite_verdict.list("totals", suite_rows);
    if let Some(adaptive_ns) = adaptive_suite {
        let statics: Vec<(&str, u64)> = suite
            .iter()
            .filter(|(p, _)| p != "adaptive")
            .map(|(p, ns)| (p.as_str(), *ns))
            .collect();
        if let Some(&(best_name, best_ns)) = statics.iter().min_by_key(|&&(_, ns)| ns) {
            let beats_all = statics.iter().all(|&(_, ns)| adaptive_ns < ns);
            println!(
                "suite: adaptive warm {:.1} ms vs best static {best_name} {:.1} ms ({})",
                adaptive_ns as f64 / 1e6,
                best_ns as f64 / 1e6,
                if beats_all {
                    "adaptive beats every static policy"
                } else {
                    "NOT strictly best"
                }
            );
            suite_verdict = suite_verdict
                .str("best_static", best_name)
                .u64("adaptive_ns", adaptive_ns)
                .u64("best_static_ns", best_ns)
                .f64(
                    "adaptive_over_best_static",
                    adaptive_ns as f64 / best_ns.max(1) as f64,
                )
                .u64("beats_all_statics", beats_all as u64);
        }
    }

    let mut session_index = JsonList::new();
    for s in &sessions {
        session_index.push(
            JsonObj::new()
                .str("session", s.name)
                .u64("ops", s.ops.len() as u64)
                .u64("queries", s.queries() as u64)
                .u64("think_total_ms", s.think_total_ms()),
        );
    }

    let root = JsonObj::new()
        .str("bench", "idebench")
        .u64("rows", args.n as u64)
        .u64("domain", domain as u64)
        .u64("seed", args.seed)
        .u64("scale", scale as u64)
        .u64("repeats", repeats as u64)
        .u64("total_queries", total_queries as u64)
        .list("sessions", session_index)
        .list("verdicts", verdicts)
        .obj("suite", suite_verdict)
        .list("configs", configs);
    let path = write_bench_json("idebench", root).expect("write BENCH_idebench.json");
    println!("wrote {path}");
}
