//! Shard-scaling benchmark: queries/sec vs shard count for all five
//! engines behind the `ShardedEngine` router.
//!
//! Unlike `batch_parallel` (which parallelizes only the read-only
//! kernels), sharding parallelizes *adaptation itself*: every shard
//! cracks its own fraction of the table concurrently. The sweep runs
//! the same conjunctive aggregate workload at each shard count (1 =
//! effectively unsharded) and reports throughput; expect the adaptive
//! engines to scale on multi-core hardware until per-shard work gets
//! too small (this container may have few cores — run with ≥4 for
//! meaningful scaling numbers). Every sweep's total result rows are
//! asserted identical across shard counts.
//!
//! Usage: `cargo run --release --bin shard_scaling [--n=…] [--queries=…]
//! [--shards=…] [--seed=…]`

use crackdb_bench::{fmt_ms, header, time_ms, Args};
use crackdb_columnstore::column::Table;
use crackdb_columnstore::types::{AggFunc, Val};
use crackdb_engine::{
    Engine, PartialEngine, PlainEngine, PresortedEngine, SelCrackEngine, SelectQuery,
    ShardedEngine, SidewaysEngine,
};
use crackdb_workloads::{random_table, RangeGen};

fn main() {
    let args = Args::parse(500_000, 128);
    let threads = args.threads_or_auto();
    let domain: Val = args.n as Val;
    let table = random_table(4, args.n, domain, args.seed);
    let sweep = args.shard_sweep();

    // The §3.6 query shape: a selective range on the cracked attribute,
    // a residual range on a second one, aggregates over two more — so
    // every query cracks, aligns and reconstructs.
    let mut sel = RangeGen::with_selectivity(domain, 0.02, args.seed + 1);
    let mut res = RangeGen::with_selectivity(domain, 0.5, args.seed + 2);
    let queries: Vec<SelectQuery> = (0..args.queries)
        .map(|_| {
            SelectQuery::aggregate(
                vec![(0, sel.next()), (1, res.next())],
                vec![(2, AggFunc::Max), (3, AggFunc::Sum), (3, AggFunc::Count)],
            )
        })
        .collect();

    println!(
        "shard_scaling: {} rows x 4 attrs, {} queries, {} fan-out threads, shard sweep {:?}",
        args.n, args.queries, threads, sweep
    );
    header(&["engine", "shards", "total_ms", "queries_per_sec"]);

    run_series(
        &table,
        &queries,
        &sweep,
        threads,
        "MonetDB",
        PlainEngine::new,
    );
    run_series(
        &table,
        &queries,
        &sweep,
        threads,
        "Presorted MonetDB",
        |p| PresortedEngine::new(p, &[0, 1]),
    );
    run_series(
        &table,
        &queries,
        &sweep,
        threads,
        "Selection Cracking",
        |p| SelCrackEngine::new(p, (0, domain)),
    );
    run_series(
        &table,
        &queries,
        &sweep,
        threads,
        "Sideways Cracking",
        |p| SidewaysEngine::new(p, (0, domain)),
    );
    run_series(
        &table,
        &queries,
        &sweep,
        threads,
        "Partial Sideways Cracking",
        |p| PartialEngine::new(p, (0, domain), None),
    );
}

/// Run the workload at every shard count and print one throughput row
/// per count. Result cardinalities must not depend on the shard count.
fn run_series<E: Engine + Send>(
    table: &Table,
    queries: &[SelectQuery],
    sweep: &[usize],
    threads: usize,
    name: &str,
    mut make: impl FnMut(Table) -> E,
) {
    let mut reference_rows: Option<usize> = None;
    for &shards in sweep {
        let mut engine = ShardedEngine::build(table.clone(), shards, |_, part| make(part));
        engine.set_threads(threads);
        let (ms, total_rows) =
            time_ms(|| queries.iter().map(|q| engine.select(q).rows).sum::<usize>());
        match reference_rows {
            None => reference_rows = Some(total_rows),
            Some(r) => assert_eq!(r, total_rows, "{name}: rows must not depend on shards"),
        }
        let qps = queries.len() as f64 / (ms / 1e3);
        println!("{name}\t{shards}\t{}\t{qps:.1}", fmt_ms(ms));
    }
}
