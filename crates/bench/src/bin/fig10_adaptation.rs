//! Figure 10 (§4.2): workload adaptation under a fixed budget
//! (T = 6.5 maps) — (a) highly selective uniform queries (S = N/1000),
//! (b) skewed queries (S = N/100, 9/10 in 20% of the domain), and (c)
//! the storage used by full vs partial maps.

use crackdb_bench::qi::{compare, schedule};
use crackdb_bench::{header, log_sample, Args};
use crackdb_columnstore::types::Val;
use crackdb_workloads::random_table;
use crackdb_workloads::synthetic::QiGen;

fn main() {
    let args = Args::parse(200_000, 1000);
    let n = args.n;
    let domain = n as Val;
    let table = random_table(QiGen::attrs_needed(5), n, domain, args.seed);
    let budget = Some(n * 13 / 2);

    let variants: [(&str, usize, bool); 2] = [
        ("(a) random, S=N/1000", n / 1000, false),
        ("(b) skewed, S=N/100", n / 100, true),
    ];
    println!("# Fig 10: adaptation to the workload with partial maps (N={n}, T=6.5 maps)");
    for (label, s_size, skewed) in variants {
        println!("\n## {label}");
        header(&[
            "query_seq",
            "full_us",
            "partial_us",
            "full_storage",
            "partial_storage",
        ]);
        let mut gen = QiGen::new(domain, n, s_size.max(1), 5, args.seed + 1);
        let sched = schedule(&mut gen, args.queries, 100, skewed);
        let (full, partial) = compare(&table, domain, &sched, budget, false);
        for i in 0..sched.len() {
            if log_sample(i, sched.len()) || i % 100 == 0 {
                println!(
                    "{}\t{:.1}\t{:.1}\t{}\t{}",
                    i + 1,
                    full[i].us,
                    partial[i].us,
                    full[i].storage,
                    partial[i].storage
                );
            }
        }
        println!(
            "# totals: full {:.3}s, partial {:.3}s; peak storage full {} / partial {}",
            crackdb_bench::qi::total_secs(&full),
            crackdb_bench::qi::total_secs(&partial),
            full.iter().map(|s| s.storage).max().unwrap_or(0),
            partial.iter().map(|s| s.storage).max().unwrap_or(0),
        );
    }
    println!("\n# Expected shape: focused workloads let partial maps materialize only the");
    println!("# touched chunks — smooth per-query cost and storage well under the budget,");
    println!("# while full maps keep paying recreation peaks at every batch switch.");
}
