#![warn(missing_docs)]
//! # crackdb-bench
//!
//! The experiment harness: one binary per table/figure of the paper (see
//! DESIGN.md's experiment index) plus Criterion micro-benchmarks of the
//! underlying kernels.
//!
//! Every binary prints the series the corresponding figure plots. Scales
//! default to laptop-friendly sizes; pass `--n=`, `--queries=`, `--sf=`
//! to approach paper scale (10^7 rows, 10^3 queries, SF 1).

pub mod harness;
pub mod qi;

use std::time::Instant;

/// Simple `--key=value` argument parsing with defaults.
#[derive(Debug, Clone)]
pub struct Args {
    /// Table cardinality.
    pub n: usize,
    /// Number of queries per sequence.
    pub queries: usize,
    /// TPC-H scale factor.
    pub sf: f64,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for the batch-execution benchmarks (0 = one per
    /// hardware thread).
    pub threads: usize,
    /// Maximum shard count for the sharding benchmarks (0 = sweep up to
    /// twice the hardware threads).
    pub shards: usize,
    /// Concurrent closed-loop client sessions for the service
    /// benchmarks (0 = one per hardware thread, at least 2).
    pub clients: usize,
    /// Engine-set selector for benchmarks that support it (exp6:
    /// "default" = the paper's update-capable trio, "all" = all five
    /// engines including presorted and budgeted partial maps).
    pub engines: String,
}

impl Args {
    /// Parse from `std::env::args` with the given defaults.
    pub fn parse(default_n: usize, default_queries: usize) -> Self {
        let mut a = Args {
            n: default_n,
            queries: default_queries,
            sf: 0.01,
            seed: 42,
            threads: 0,
            shards: 0,
            clients: 0,
            engines: "default".to_string(),
        };
        for arg in std::env::args().skip(1) {
            if let Some(v) = arg.strip_prefix("--n=") {
                a.n = v.parse().expect("--n takes an integer");
            } else if let Some(v) = arg.strip_prefix("--queries=") {
                a.queries = v.parse().expect("--queries takes an integer");
            } else if let Some(v) = arg.strip_prefix("--sf=") {
                a.sf = v.parse().expect("--sf takes a float");
            } else if let Some(v) = arg.strip_prefix("--seed=") {
                a.seed = v.parse().expect("--seed takes an integer");
            } else if let Some(v) = arg.strip_prefix("--threads=") {
                a.threads = v.parse().expect("--threads takes an integer");
            } else if let Some(v) = arg.strip_prefix("--shards=") {
                a.shards = v.parse().expect("--shards takes an integer");
            } else if let Some(v) = arg.strip_prefix("--clients=") {
                a.clients = v.parse().expect("--clients takes an integer");
            } else if let Some(v) = arg.strip_prefix("--engines=") {
                assert!(
                    matches!(v, "default" | "all"),
                    "--engines takes 'default' or 'all', got {v:?}"
                );
                a.engines = v.to_string();
            } else {
                eprintln!("ignoring unknown argument {arg}");
            }
        }
        a
    }

    /// Resolved concurrent client-session count: `--clients=` or one
    /// per hardware thread, at least 2 (a service benchmark with one
    /// client cannot show concurrency at all).
    pub fn clients_or_auto(&self) -> usize {
        if self.clients > 0 {
            self.clients
        } else {
            std::thread::available_parallelism()
                .map_or(2, |n| n.get())
                .max(2)
        }
    }

    /// Resolved worker count: `--threads=` or one per hardware thread.
    pub fn threads_or_auto(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }

    /// Shard counts to sweep: doubling steps up to (and always
    /// including) the resolved maximum — `--shards=` when given, else
    /// twice the hardware threads (oversharding shows where the fan-out
    /// overhead starts to dominate).
    pub fn shard_sweep(&self) -> Vec<usize> {
        let max = if self.shards > 0 {
            self.shards
        } else {
            2 * std::thread::available_parallelism().map_or(1, |n| n.get())
        };
        let mut sweep = Vec::new();
        let mut s = 1;
        while s < max {
            sweep.push(s);
            s *= 2;
        }
        sweep.push(max);
        sweep
    }
}

/// Milliseconds elapsed while running `f`; returns `(ms, result)`.
pub fn time_ms<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let t0 = Instant::now();
    let r = f();
    (t0.elapsed().as_secs_f64() * 1e3, r)
}

/// Microseconds elapsed while running `f`; returns `(us, result)`.
pub fn time_us<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let t0 = Instant::now();
    let r = f();
    (t0.elapsed().as_secs_f64() * 1e6, r)
}

/// Should this query index be printed in a log-style sampled series?
/// (Mirrors the paper's log-scale query-sequence plots.)
pub fn log_sample(i: usize, total: usize) -> bool {
    if i + 1 == total || i == 0 {
        return true;
    }
    let i = i + 1;
    let mag = 10usize.pow((i as f64).log10().floor() as u32);
    i.is_multiple_of(mag)
}

/// Print a header line for a series table.
pub fn header(cols: &[&str]) {
    println!("{}", cols.join("\t"));
}

/// Format ms with 3 decimals.
pub fn fmt_ms(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_sampling_hits_decades() {
        let picks: Vec<usize> = (0..1000)
            .filter(|&i| log_sample(i, 1000))
            .map(|i| i + 1)
            .collect();
        assert!(picks.contains(&1));
        assert!(picks.contains(&10));
        assert!(picks.contains(&100));
        assert!(picks.contains(&1000));
        assert!(picks.len() < 300);
    }

    #[test]
    fn shard_sweep_doubles_up_to_max() {
        let mut a = Args::parse(10, 10);
        a.shards = 6;
        assert_eq!(a.shard_sweep(), vec![1, 2, 4, 6]);
        a.shards = 8;
        assert_eq!(a.shard_sweep(), vec![1, 2, 4, 8]);
        a.shards = 1;
        assert_eq!(a.shard_sweep(), vec![1]);
    }

    #[test]
    fn timing_measures_something() {
        let (ms, x) = time_ms(|| (0..100_000).sum::<u64>());
        assert!(ms >= 0.0);
        assert_eq!(x, 4999950000);
    }
}
