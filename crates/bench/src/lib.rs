#![warn(missing_docs)]
//! # crackdb-bench
//!
//! The experiment harness: one binary per table/figure of the paper (see
//! DESIGN.md's experiment index) plus Criterion micro-benchmarks of the
//! underlying kernels.
//!
//! Every binary prints the series the corresponding figure plots. Scales
//! default to laptop-friendly sizes; pass `--n=`, `--queries=`, `--sf=`
//! to approach paper scale (10^7 rows, 10^3 queries, SF 1).

pub mod harness;
pub mod qi;

use std::time::Instant;

/// Simple `--key=value` argument parsing with defaults.
#[derive(Debug, Clone)]
pub struct Args {
    /// Table cardinality.
    pub n: usize,
    /// Number of queries per sequence.
    pub queries: usize,
    /// TPC-H scale factor.
    pub sf: f64,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for the batch-execution benchmarks (0 = one per
    /// hardware thread).
    pub threads: usize,
}

impl Args {
    /// Parse from `std::env::args` with the given defaults.
    pub fn parse(default_n: usize, default_queries: usize) -> Self {
        let mut a = Args {
            n: default_n,
            queries: default_queries,
            sf: 0.01,
            seed: 42,
            threads: 0,
        };
        for arg in std::env::args().skip(1) {
            if let Some(v) = arg.strip_prefix("--n=") {
                a.n = v.parse().expect("--n takes an integer");
            } else if let Some(v) = arg.strip_prefix("--queries=") {
                a.queries = v.parse().expect("--queries takes an integer");
            } else if let Some(v) = arg.strip_prefix("--sf=") {
                a.sf = v.parse().expect("--sf takes a float");
            } else if let Some(v) = arg.strip_prefix("--seed=") {
                a.seed = v.parse().expect("--seed takes an integer");
            } else if let Some(v) = arg.strip_prefix("--threads=") {
                a.threads = v.parse().expect("--threads takes an integer");
            } else {
                eprintln!("ignoring unknown argument {arg}");
            }
        }
        a
    }

    /// Resolved worker count: `--threads=` or one per hardware thread.
    pub fn threads_or_auto(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }
}

/// Milliseconds elapsed while running `f`; returns `(ms, result)`.
pub fn time_ms<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let t0 = Instant::now();
    let r = f();
    (t0.elapsed().as_secs_f64() * 1e3, r)
}

/// Microseconds elapsed while running `f`; returns `(us, result)`.
pub fn time_us<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let t0 = Instant::now();
    let r = f();
    (t0.elapsed().as_secs_f64() * 1e6, r)
}

/// Should this query index be printed in a log-style sampled series?
/// (Mirrors the paper's log-scale query-sequence plots.)
pub fn log_sample(i: usize, total: usize) -> bool {
    if i + 1 == total || i == 0 {
        return true;
    }
    let i = i + 1;
    let mag = 10usize.pow((i as f64).log10().floor() as u32);
    i.is_multiple_of(mag)
}

/// Print a header line for a series table.
pub fn header(cols: &[&str]) {
    println!("{}", cols.join("\t"));
}

/// Format ms with 3 decimals.
pub fn fmt_ms(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_sampling_hits_decades() {
        let picks: Vec<usize> = (0..1000)
            .filter(|&i| log_sample(i, 1000))
            .map(|i| i + 1)
            .collect();
        assert!(picks.contains(&1));
        assert!(picks.contains(&10));
        assert!(picks.contains(&100));
        assert!(picks.contains(&1000));
        assert!(picks.len() < 300);
    }

    #[test]
    fn timing_measures_something() {
        let (ms, x) = time_ms(|| (0..100_000).sum::<u64>());
        assert!(ms >= 0.0);
        assert_eq!(x, 4999950000);
    }
}
