//! The paper's system: sideways cracking with full maps.

use crate::exec::{self, AccessPath, RestrictCtx, RowSet};
use crate::query::{Engine, JoinQuery, QueryError, QueryOutput, SelectQuery, Timings};
use crackdb_columnstore::column::Table;
use crackdb_columnstore::ops::join::hash_join;
use crackdb_columnstore::types::{RangePred, RowId, Val};
use crackdb_core::SidewaysStore;
use crackdb_cracking::CrackPolicy;
use std::collections::HashSet;
use std::time::Instant;

/// Sideways-cracking executor (full maps).
pub struct SidewaysEngine {
    base: Table,
    second: Option<Table>,
    store: SidewaysStore,
    second_store: SidewaysStore,
    tombstones: HashSet<RowId>,
}

impl SidewaysEngine {
    /// Single-table engine; `domain` is the attribute value domain used
    /// for zero-knowledge selectivity estimates. The crack policy
    /// defaults to the `CRACKDB_POLICY` environment selection (standard
    /// when unset), so CI can drive the whole differential surface once
    /// per policy.
    pub fn new(base: Table, domain: (Val, Val)) -> Self {
        Self::with_policy(base, domain, exec::policy_from_env())
    }

    /// Single-table engine with an explicit [`CrackPolicy`] for every
    /// map set (both tables of a join workload share it).
    pub fn with_policy(base: Table, domain: (Val, Val), policy: CrackPolicy) -> Self {
        let mut store = SidewaysStore::new(domain);
        store.set_policy(policy);
        let mut second_store = SidewaysStore::new(domain);
        second_store.set_policy(policy);
        SidewaysEngine {
            base,
            second: None,
            store,
            second_store,
            tombstones: HashSet::new(),
        }
    }

    /// Two-table engine.
    pub fn with_second(base: Table, second: Table, domain: (Val, Val)) -> Self {
        SidewaysEngine {
            second: Some(second),
            ..SidewaysEngine::new(base, domain)
        }
    }

    /// Storage budget in tuples for maps (full-map storage management).
    pub fn set_budget(&mut self, budget: Option<usize>) {
        self.store.budget = budget;
    }

    /// Override the crack policy of one head attribute's map set in the
    /// primary store (mixed-policy engines). Must run before the set's
    /// first use.
    pub fn set_policy_for(&mut self, head_attr: usize, policy: CrackPolicy) {
        self.store.set_policy_for(head_attr, policy);
    }

    /// Cumulative adaptive-advisor switches across both stores' map sets.
    pub fn policy_switches(&self) -> u64 {
        self.store.policy_switches() + self.second_store.policy_switches()
    }

    /// Access to the underlying store (instrumentation).
    pub fn store(&self) -> &SidewaysStore {
        &self.store
    }

    /// Every map the query will touch under set `head_attr`: residual
    /// selection attributes plus the attributes to fetch.
    fn needed_attrs(head_attr: usize, ctx: &RestrictCtx) -> Vec<usize> {
        let mut needed: Vec<usize> = ctx
            .preds
            .iter()
            .map(|&(a, _)| a)
            .filter(|&a| a != head_attr)
            .collect();
        for &a in ctx.fetch_attrs {
            if !needed.contains(&a) {
                needed.push(a);
            }
        }
        needed
    }
}

impl AccessPath for SidewaysEngine {
    fn name(&self) -> &'static str {
        "Sideways Cracking"
    }

    fn estimate(&self, attr: usize, pred: &RangePred) -> Option<f64> {
        // §3.3 self-organizing histogram of the attribute's map set
        // (uniform assumption before any knowledge exists).
        Some(self.store.estimate(&self.base, attr, pred))
    }

    fn restrict(&mut self, attr: usize, pred: &RangePred, ctx: &RestrictCtx) -> RowSet {
        let needed = Self::needed_attrs(attr, ctx);
        self.store.reserve_for(&self.base, attr, &needed);
        let s = self
            .store
            .set_mut_ensured(&self.base, attr, &self.tombstones);
        // One advisor observation per logical query: restrict runs once
        // (refine/extend/fetch continue the same query).
        s.note_query(pred);

        if ctx.disjunctive {
            // Disjunctive plans keep a bit vector over the *whole* map:
            // the head predicate's cracked area is marked wholesale, and
            // each further predicate scans the areas outside it (§3.3).
            let first = needed.first().copied().unwrap_or(attr);
            let (_, bv) = s.disj_create_bv(&self.base, first, pred);
            let n = bv.len();
            return RowSet::Area {
                head: (attr, *pred),
                range: (0, n),
                bv: Some(bv),
            };
        }

        if needed.is_empty() {
            // Pure single-selection with nothing to reconstruct: answer
            // from the key map.
            return RowSet::keys(s.select_keys(&self.base, pred), false);
        }

        // One sideways.select per map the plan will touch (§3.2): crack
        // the fetch maps now so reconstructions find them aligned; the
        // residual selection maps crack during their own refine step. A
        // coarse-granular inexact area arrives with its head filter
        // attached so downstream refines/fetches see only qualifying
        // tuples — computed once, on the last aligned map, since all
        // maps of the set share the area.
        for &fa in ctx.fetch_attrs.iter().rev().skip(1) {
            s.sideways_select(&self.base, fa, pred);
        }
        let (range, bv) = match ctx.fetch_attrs.last() {
            Some(&fa) => s.sideways_select_filtered(&self.base, fa, pred),
            // No fetch attributes: derive the area from the first
            // residual map (its refine re-uses the aligned map).
            None => s.sideways_select_filtered(&self.base, needed[0], pred),
        };
        RowSet::Area {
            head: (attr, *pred),
            range,
            bv,
        }
    }

    fn refine(&mut self, rows: &mut RowSet, attr: usize, pred: &RangePred, _ctx: &RestrictCtx) {
        let RowSet::Area { head, range, bv } = rows else {
            unreachable!("multi-predicate sideways plans operate on areas")
        };
        let s = self
            .store
            .set_mut_ensured(&self.base, head.0, &self.tombstones);
        match bv {
            None => {
                let (r, b) = s.select_create_bv(&self.base, attr, &head.1, pred);
                *range = r;
                *bv = Some(b);
            }
            Some(bv) => s.select_refine_bv(&self.base, attr, &head.1, pred, bv),
        }
    }

    fn extend(&mut self, rows: &mut RowSet, attr: usize, pred: &RangePred, _ctx: &RestrictCtx) {
        let RowSet::Area {
            head, bv: Some(bv), ..
        } = rows
        else {
            unreachable!("disjunctive sideways plans carry a whole-map bit vector")
        };
        let s = self
            .store
            .set_mut_ensured(&self.base, head.0, &self.tombstones);
        s.disj_refine_bv(&self.base, attr, &head.1, pred, bv);
    }

    fn unrestricted(&mut self, ctx: &RestrictCtx) -> RowSet {
        // No predicates: treat as an all-values restriction on the first
        // fetched attribute's set (or the key map when nothing is
        // fetched).
        let all = RangePred::all();
        match ctx.fetch_attrs.first() {
            Some(&fa) => {
                let s = self.store.set_mut_ensured(&self.base, fa, &self.tombstones);
                let range = s.sideways_select(&self.base, fa, &all);
                RowSet::Area {
                    head: (fa, all),
                    range,
                    bv: None,
                }
            }
            None => {
                let s = self.store.set_mut_ensured(&self.base, 0, &self.tombstones);
                RowSet::keys(s.select_keys(&self.base, &all), false)
            }
        }
    }

    fn fetch(
        &mut self,
        rows: &RowSet,
        attrs: &[usize],
        consume: &mut dyn FnMut(usize, Val),
    ) -> Result<(), QueryError> {
        let RowSet::Area { head, range, bv } = rows else {
            unreachable!("sideways reconstruction operates on areas")
        };
        let s = self
            .store
            .set_mut_ensured(&self.base, head.0, &self.tombstones);
        for &attr in attrs {
            // Align (and crack, first time) this attribute's map, then
            // read the area — conjunctions use the head predicate's
            // cracked area, disjunctions the whole map.
            s.sideways_select(&self.base, attr, &head.1);
            let tails = s.view_tail(attr, *range);
            match bv {
                Some(bv) => {
                    assert_eq!(tails.len(), bv.len(), "aligned maps agree on the area");
                    for i in bv.iter_ones() {
                        consume(attr, tails[i]);
                    }
                }
                None => {
                    for &v in tails {
                        consume(attr, v);
                    }
                }
            }
        }
        Ok(())
    }

    fn is_adaptive(&self) -> bool {
        true
    }
}

impl Engine for SidewaysEngine {
    fn name(&self) -> &'static str {
        AccessPath::name(self)
    }

    fn select(&mut self, q: &SelectQuery) -> QueryOutput {
        exec::run_select(self, q)
    }

    fn join(&mut self, q: &JoinQuery) -> QueryOutput {
        let second = self.second.as_ref().expect("join needs a second table");
        let mut out = QueryOutput::default();
        let mut timings = Timings::default();
        let none = HashSet::new();

        // Selections: conjunctive bit vectors on both sides.
        let t0 = Instant::now();
        let lextra: Vec<usize> = q
            .left
            .aggs
            .iter()
            .map(|&(a, _)| a)
            .chain([q.left.join_attr])
            .collect();
        let rextra: Vec<usize> = q
            .right
            .aggs
            .iter()
            .map(|&(a, _)| a)
            .chain([q.right.join_attr])
            .collect();
        let lh = self
            .store
            .conjunctive_bv(&self.base, &q.left.preds, &lextra, &self.tombstones);
        let rh = self
            .second_store
            .conjunctive_bv(second, &q.right.preds, &rextra, &none);
        timings.select = t0.elapsed();

        // Pre-join reconstruction: join-attribute values from the aligned
        // maps; tuple identity = position within the cracked area.
        let t1 = Instant::now();
        let lpairs: Vec<(RowId, Val)> = {
            let tails = self.store.tail_slice(&self.base, &lh, q.left.join_attr);
            match &lh.bv {
                Some(bv) => bv.iter_ones().map(|i| (i as RowId, tails[i])).collect(),
                None => tails
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| (i as RowId, v))
                    .collect(),
            }
        };
        let rpairs: Vec<(RowId, Val)> = {
            let tails = self.second_store.tail_slice(second, &rh, q.right.join_attr);
            match &rh.bv {
                Some(bv) => bv.iter_ones().map(|i| (i as RowId, tails[i])).collect(),
                None => tails
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| (i as RowId, v))
                    .collect(),
            }
        };
        timings.reconstruct = t1.elapsed();

        let t2 = Instant::now();
        let matched = hash_join(&lpairs, &rpairs);
        timings.join = t2.elapsed();
        out.rows = matched.len();

        // Post-join reconstruction: random access *within the small
        // cracked areas* of the aligned maps — the sideways advantage.
        let t3 = Instant::now();
        for &(attr, func) in &q.left.aggs {
            let tails = self.store.tail_slice(&self.base, &lh, attr);
            let mut acc = crate::query::AggAcc::new(func);
            for &(lp, _) in &matched {
                acc.push(tails[lp as usize]);
            }
            out.aggs.push(acc.finish());
        }
        for &(attr, func) in &q.right.aggs {
            let tails = self.second_store.tail_slice(second, &rh, attr);
            let mut acc = crate::query::AggAcc::new(func);
            for &(_, rp) in &matched {
                acc.push(tails[rp as usize]);
            }
            out.aggs.push(acc.finish());
        }
        timings.post_join = t3.elapsed();
        out.timings = timings;
        out
    }

    fn insert(&mut self, row: &[Val]) {
        let key = self.base.append_row(row);
        self.store.stage_insert(key);
    }

    fn delete(&mut self, key: RowId) {
        self.store.stage_delete(&self.base, key);
        self.tombstones.insert(key);
    }

    fn aux_tuples(&self) -> usize {
        self.store.tuples() + self.second_store.tuples()
    }

    fn policy_switches(&self) -> u64 {
        SidewaysEngine::policy_switches(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::JoinSide;
    use crackdb_columnstore::column::Column;
    use crackdb_columnstore::types::AggFunc;

    fn table() -> Table {
        let mut t = Table::new();
        t.add_column("a", Column::new(vec![5, 1, 9, 3, 7]));
        t.add_column("b", Column::new(vec![50, 10, 90, 30, 70]));
        t.add_column("c", Column::new(vec![55, 11, 99, 33, 77]));
        t
    }

    #[test]
    fn select_aggregate_matches_plain() {
        let mut e = SidewaysEngine::new(table(), (0, 10));
        let q = SelectQuery::aggregate(
            vec![(0, RangePred::open(2, 8))],
            vec![(1, AggFunc::Max), (2, AggFunc::Min)],
        );
        let out = e.select(&q);
        assert_eq!(out.rows, 3);
        assert_eq!(out.aggs, vec![Some(70), Some(33)]);
        // Repeat — cracked maps, same answer.
        assert_eq!(e.select(&q).aggs, out.aggs);
    }

    #[test]
    fn conjunctive_with_bitvec() {
        let mut e = SidewaysEngine::new(table(), (0, 100));
        let q = SelectQuery::aggregate(
            vec![(0, RangePred::open(0, 10)), (1, RangePred::open(25, 75))],
            vec![(2, AggFunc::Count), (2, AggFunc::Max)],
        );
        let out = e.select(&q);
        assert_eq!(out.rows, 3);
        assert_eq!(out.aggs, vec![Some(3), Some(77)]);
    }

    #[test]
    fn updates_visible() {
        let mut e = SidewaysEngine::new(table(), (0, 100));
        let q = SelectQuery::aggregate(
            vec![(0, RangePred::all())],
            vec![(1, AggFunc::Count), (1, AggFunc::Max)],
        );
        assert_eq!(e.select(&q).aggs, vec![Some(5), Some(90)]);
        e.insert(&[6, 95, 66]);
        e.delete(2); // removes b=90
        assert_eq!(e.select(&q).aggs, vec![Some(5), Some(95)]);
    }

    #[test]
    fn join_matches_plain() {
        let mut r = Table::new();
        r.add_column("r1", Column::new(vec![100, 200, 300, 400]));
        r.add_column("rsel", Column::new(vec![1, 2, 3, 4]));
        r.add_column("rj", Column::new(vec![7, 8, 9, 7]));
        let mut s = Table::new();
        s.add_column("s1", Column::new(vec![11, 22, 33]));
        s.add_column("ssel", Column::new(vec![5, 6, 7]));
        s.add_column("sj", Column::new(vec![7, 9, 7]));
        let mut e = SidewaysEngine::with_second(r, s, (0, 100));
        let q = JoinQuery {
            left: JoinSide {
                preds: vec![(1, RangePred::closed(2, 4))],
                join_attr: 2,
                aggs: vec![(0, AggFunc::Max)],
            },
            right: JoinSide {
                preds: vec![(1, RangePred::closed(5, 7))],
                join_attr: 2,
                aggs: vec![(0, AggFunc::Sum)],
            },
        };
        let out = e.join(&q);
        // Left keys 1..=3 (rsel 2,3,4; j = 8,9,7); right all (sj 7,9,7).
        // Matches: j=9 ↔ s(9)=22 ; j=7 ↔ s rows {0,2} (11,33).
        // Pairs: (200/8: none), (300/9: 22), (400/7: 11,33) → 3 rows.
        assert_eq!(out.rows, 3);
        assert_eq!(out.aggs, vec![Some(400), Some(66)]);
    }
}
