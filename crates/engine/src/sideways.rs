//! The paper's system: sideways cracking with full maps.

use crate::query::{AggAcc, Engine, JoinQuery, QueryOutput, SelectQuery, Timings};
use crackdb_columnstore::column::Table;
use crackdb_columnstore::ops::join::hash_join;
use crackdb_columnstore::types::{RowId, Val};
use crackdb_core::SidewaysStore;
use std::collections::HashSet;
use std::time::Instant;

/// Sideways-cracking executor (full maps).
pub struct SidewaysEngine {
    base: Table,
    second: Option<Table>,
    store: SidewaysStore,
    second_store: SidewaysStore,
    tombstones: HashSet<RowId>,
}

impl SidewaysEngine {
    /// Single-table engine; `domain` is the attribute value domain used
    /// for zero-knowledge selectivity estimates.
    pub fn new(base: Table, domain: (Val, Val)) -> Self {
        SidewaysEngine {
            base,
            second: None,
            store: SidewaysStore::new(domain),
            second_store: SidewaysStore::new(domain),
            tombstones: HashSet::new(),
        }
    }

    /// Two-table engine.
    pub fn with_second(base: Table, second: Table, domain: (Val, Val)) -> Self {
        SidewaysEngine { second: Some(second), ..SidewaysEngine::new(base, domain) }
    }

    /// Storage budget in tuples for maps (full-map storage management).
    pub fn set_budget(&mut self, budget: Option<usize>) {
        self.store.budget = budget;
    }

    /// Access to the underlying store (instrumentation).
    pub fn store(&self) -> &SidewaysStore {
        &self.store
    }
}

impl Engine for SidewaysEngine {
    fn name(&self) -> &'static str {
        "Sideways Cracking"
    }

    fn select(&mut self, q: &SelectQuery) -> QueryOutput {
        let mut out = QueryOutput::default();
        let mut agg_attrs: Vec<usize> = Vec::new();
        for &(a, _) in &q.aggs {
            if !agg_attrs.contains(&a) {
                agg_attrs.push(a);
            }
        }

        if q.disjunctive {
            let t0 = Instant::now();
            let mut accs: Vec<AggAcc> =
                q.aggs.iter().map(|&(_, f)| AggAcc::new(f)).collect();
            let mut projs: Vec<Vec<Val>> = q.projs.iter().map(|_| Vec::new()).collect();
            let proj_attrs = q.projs.clone();
            let aggs = q.aggs.clone();
            self.store.disjunctive_project_with(
                &self.base,
                &q.preds,
                &{
                    let mut attrs = agg_attrs.clone();
                    for &p in &proj_attrs {
                        if !attrs.contains(&p) {
                            attrs.push(p);
                        }
                    }
                    attrs
                },
                &self.tombstones,
                |attr, v| {
                    for (i, &(a, _)) in aggs.iter().enumerate() {
                        if a == attr {
                            accs[i].push(v);
                        }
                    }
                    for (i, &p) in proj_attrs.iter().enumerate() {
                        if p == attr {
                            projs[i].push(v);
                        }
                    }
                },
            );
            // Every projected attribute receives exactly one value per
            // qualifying tuple.
            out.rows = accs
                .first()
                .map(|a| a.count())
                .or_else(|| projs.first().map(|p| p.len()))
                .unwrap_or(0);
            out.aggs = accs.iter().map(|a| a.finish()).collect();
            out.proj_values = projs;
            out.timings.select = t0.elapsed();
            return out;
        }

        // Conjunctive: build the qualifying handle on the chosen set...
        let t0 = Instant::now();
        let mut extra: Vec<usize> = agg_attrs.clone();
        for &p in &q.projs {
            if !extra.contains(&p) {
                extra.push(p);
            }
        }
        let handle = self.store.conjunctive_bv(&self.base, &q.preds, &extra, &self.tombstones);
        out.timings.select = t0.elapsed();
        out.rows = handle.result_size();

        // ...then reconstruct each projected attribute from its aligned map.
        let t1 = Instant::now();
        for &(attr, func) in &q.aggs {
            let mut acc = AggAcc::new(func);
            self.store.reconstruct_with(&self.base, &handle, attr, |v| acc.push(v));
            out.aggs.push(acc.finish());
        }
        for &attr in &q.projs {
            let mut vals = Vec::new();
            self.store.reconstruct_with(&self.base, &handle, attr, |v| vals.push(v));
            out.proj_values.push(vals);
        }
        out.timings.reconstruct = t1.elapsed();
        out
    }

    fn join(&mut self, q: &JoinQuery) -> QueryOutput {
        let second = self.second.as_ref().expect("join needs a second table");
        let mut out = QueryOutput::default();
        let mut timings = Timings::default();
        let none = HashSet::new();

        // Selections: conjunctive bit vectors on both sides.
        let t0 = Instant::now();
        let lextra: Vec<usize> = q
            .left
            .aggs
            .iter()
            .map(|&(a, _)| a)
            .chain([q.left.join_attr])
            .collect();
        let rextra: Vec<usize> = q
            .right
            .aggs
            .iter()
            .map(|&(a, _)| a)
            .chain([q.right.join_attr])
            .collect();
        let lh = self.store.conjunctive_bv(&self.base, &q.left.preds, &lextra, &self.tombstones);
        let rh = self.second_store.conjunctive_bv(second, &q.right.preds, &rextra, &none);
        timings.select = t0.elapsed();

        // Pre-join reconstruction: join-attribute values from the aligned
        // maps; tuple identity = position within the cracked area.
        let t1 = Instant::now();
        let lpairs: Vec<(RowId, Val)> = {
            let tails = self.store.tail_slice(&self.base, &lh, q.left.join_attr);
            match &lh.bv {
                Some(bv) => bv.iter_ones().map(|i| (i as RowId, tails[i])).collect(),
                None => tails.iter().enumerate().map(|(i, &v)| (i as RowId, v)).collect(),
            }
        };
        let rpairs: Vec<(RowId, Val)> = {
            let tails = self.second_store.tail_slice(second, &rh, q.right.join_attr);
            match &rh.bv {
                Some(bv) => bv.iter_ones().map(|i| (i as RowId, tails[i])).collect(),
                None => tails.iter().enumerate().map(|(i, &v)| (i as RowId, v)).collect(),
            }
        };
        timings.reconstruct = t1.elapsed();

        let t2 = Instant::now();
        let matched = hash_join(&lpairs, &rpairs);
        timings.join = t2.elapsed();
        out.rows = matched.len();

        // Post-join reconstruction: random access *within the small
        // cracked areas* of the aligned maps — the sideways advantage.
        let t3 = Instant::now();
        for &(attr, func) in &q.left.aggs {
            let tails = self.store.tail_slice(&self.base, &lh, attr);
            let mut acc = AggAcc::new(func);
            for &(lp, _) in &matched {
                acc.push(tails[lp as usize]);
            }
            out.aggs.push(acc.finish());
        }
        for &(attr, func) in &q.right.aggs {
            let tails = self.second_store.tail_slice(second, &rh, attr);
            let mut acc = AggAcc::new(func);
            for &(_, rp) in &matched {
                acc.push(tails[rp as usize]);
            }
            out.aggs.push(acc.finish());
        }
        timings.post_join = t3.elapsed();
        out.timings = timings;
        out
    }

    fn insert(&mut self, row: &[Val]) {
        let key = self.base.append_row(row);
        self.store.stage_insert(key);
    }

    fn delete(&mut self, key: RowId) {
        self.store.stage_delete(&self.base, key);
        self.tombstones.insert(key);
    }

    fn aux_tuples(&self) -> usize {
        self.store.tuples() + self.second_store.tuples()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::JoinSide;
    use crackdb_columnstore::column::Column;
    use crackdb_columnstore::types::{AggFunc, RangePred};

    fn table() -> Table {
        let mut t = Table::new();
        t.add_column("a", Column::new(vec![5, 1, 9, 3, 7]));
        t.add_column("b", Column::new(vec![50, 10, 90, 30, 70]));
        t.add_column("c", Column::new(vec![55, 11, 99, 33, 77]));
        t
    }

    #[test]
    fn select_aggregate_matches_plain() {
        let mut e = SidewaysEngine::new(table(), (0, 10));
        let q = SelectQuery::aggregate(
            vec![(0, RangePred::open(2, 8))],
            vec![(1, AggFunc::Max), (2, AggFunc::Min)],
        );
        let out = e.select(&q);
        assert_eq!(out.rows, 3);
        assert_eq!(out.aggs, vec![Some(70), Some(33)]);
        // Repeat — cracked maps, same answer.
        assert_eq!(e.select(&q).aggs, out.aggs);
    }

    #[test]
    fn conjunctive_with_bitvec() {
        let mut e = SidewaysEngine::new(table(), (0, 100));
        let q = SelectQuery::aggregate(
            vec![(0, RangePred::open(0, 10)), (1, RangePred::open(25, 75))],
            vec![(2, AggFunc::Count), (2, AggFunc::Max)],
        );
        let out = e.select(&q);
        assert_eq!(out.rows, 3);
        assert_eq!(out.aggs, vec![Some(3), Some(77)]);
    }

    #[test]
    fn updates_visible() {
        let mut e = SidewaysEngine::new(table(), (0, 100));
        let q = SelectQuery::aggregate(
            vec![(0, RangePred::all())],
            vec![(1, AggFunc::Count), (1, AggFunc::Max)],
        );
        assert_eq!(e.select(&q).aggs, vec![Some(5), Some(90)]);
        e.insert(&[6, 95, 66]);
        e.delete(2); // removes b=90
        assert_eq!(e.select(&q).aggs, vec![Some(5), Some(95)]);
    }

    #[test]
    fn join_matches_plain() {
        let mut r = Table::new();
        r.add_column("r1", Column::new(vec![100, 200, 300, 400]));
        r.add_column("rsel", Column::new(vec![1, 2, 3, 4]));
        r.add_column("rj", Column::new(vec![7, 8, 9, 7]));
        let mut s = Table::new();
        s.add_column("s1", Column::new(vec![11, 22, 33]));
        s.add_column("ssel", Column::new(vec![5, 6, 7]));
        s.add_column("sj", Column::new(vec![7, 9, 7]));
        let mut e = SidewaysEngine::with_second(r, s, (0, 100));
        let q = JoinQuery {
            left: JoinSide {
                preds: vec![(1, RangePred::closed(2, 4))],
                join_attr: 2,
                aggs: vec![(0, AggFunc::Max)],
            },
            right: JoinSide {
                preds: vec![(1, RangePred::closed(5, 7))],
                join_attr: 2,
                aggs: vec![(0, AggFunc::Sum)],
            },
        };
        let out = e.join(&q);
        // Left keys 1..=3 (rsel 2,3,4; j = 8,9,7); right all (sj 7,9,7).
        // Matches: j=9 ↔ s(9)=22 ; j=7 ↔ s rows {0,2} (11,33).
        // Pairs: (200/8: none), (300/9: 22), (400/7: 11,33) → 3 rows.
        assert_eq!(out.rows, 3);
        assert_eq!(out.aggs, vec![Some(400), Some(66)]);
    }
}
