//! TPC-H execution (§5): the twelve paper queries runnable under every
//! physical design through a mode-parametric *access layer*.
//!
//! Joins, group-bys and aggregations above the access layer are shared
//! verbatim across modes — exactly the paper's setting, where the systems
//! differ in selection and tuple-reconstruction behaviour while the rest
//! of the plan uses the regular column-store operators.

pub mod queries;

use crate::exec::combine;
use crackdb_columnstore::column::Table;
use crackdb_columnstore::presorted::PresortedTable;
use crackdb_columnstore::rowstore::PresortedRowTable;
use crackdb_columnstore::types::{RangePred, Val};
use crackdb_core::{BitVec, PartialStore, SidewaysStore};
use crackdb_cracking::CrackerColumn;
use crackdb_workloads::tpch::{l, o, TpchData};
use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

/// Physical design a TPC-H run executes under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Plain column-store scans.
    Plain,
    /// Presorted copies per selection attribute.
    Presorted,
    /// Selection cracking.
    SelCrack,
    /// Sideways cracking (full maps).
    Sideways,
    /// Partial sideways cracking (§4 chunk-wise maps).
    Partial,
    /// Presorted row-store ("MySQL presorted").
    RowStore,
}

/// Table identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tbl {
    /// LINEITEM
    Lineitem,
    /// ORDERS
    Orders,
    /// CUSTOMER
    Customer,
    /// PART
    Part,
    /// SUPPLIER
    Supplier,
    /// PARTSUPP
    PartSupp,
    /// NATION
    Nation,
}

/// The mode-parametric TPC-H executor.
pub struct TpchExecutor {
    /// Generated database.
    pub data: TpchData,
    mode: Mode,
    presorted: HashMap<(Tbl, usize), PresortedTable>,
    rowstores: HashMap<(Tbl, usize), PresortedRowTable>,
    crackers: HashMap<(Tbl, usize), CrackerColumn>,
    stores: HashMap<Tbl, SidewaysStore>,
    partial_stores: HashMap<Tbl, PartialStore>,
    /// Preparation cost (presorted copies / row tables); the paper
    /// reports it separately from per-query times.
    pub prep_cost: Duration,
}

/// The presorted copies the twelve queries need: each query's primary
/// (non-string) selection column.
const SORT_ATTRS: &[(Tbl, usize)] = &[
    (Tbl::Lineitem, l::SHIPDATE),
    (Tbl::Lineitem, l::RECEIPTDATE),
    (Tbl::Lineitem, l::QUANTITY),
    (Tbl::Orders, o::ORDERDATE),
];

impl TpchExecutor {
    /// Build an executor; for the presorted modes the copies are built
    /// here (measured in [`Self::prep_cost`]).
    pub fn new(data: TpchData, mode: Mode) -> Self {
        let mut e = TpchExecutor {
            data,
            mode,
            presorted: HashMap::new(),
            rowstores: HashMap::new(),
            crackers: HashMap::new(),
            stores: HashMap::new(),
            partial_stores: HashMap::new(),
            prep_cost: Duration::ZERO,
        };
        let t0 = Instant::now();
        match mode {
            Mode::Presorted => {
                for &(tbl, attr) in SORT_ATTRS {
                    let copy = PresortedTable::build(e.table(tbl), attr);
                    e.presorted.insert((tbl, attr), copy);
                }
            }
            Mode::RowStore => {
                for &(tbl, attr) in SORT_ATTRS {
                    let rt = PresortedRowTable::build(e.table(tbl), attr);
                    e.rowstores.insert((tbl, attr), rt);
                }
            }
            Mode::Sideways => {
                // Register per-attribute domains (column statistics) for
                // the histogram-based set choice.
                for tbl in [
                    Tbl::Lineitem,
                    Tbl::Orders,
                    Tbl::Customer,
                    Tbl::Part,
                    Tbl::Supplier,
                    Tbl::PartSupp,
                    Tbl::Nation,
                ] {
                    let mut store = SidewaysStore::new((0, 1));
                    let t = match tbl {
                        Tbl::Lineitem => &e.data.lineitem,
                        Tbl::Orders => &e.data.orders,
                        Tbl::Customer => &e.data.customer,
                        Tbl::Part => &e.data.part,
                        Tbl::Supplier => &e.data.supplier,
                        Tbl::PartSupp => &e.data.partsupp,
                        Tbl::Nation => &e.data.nation,
                    };
                    for c in 0..t.num_columns() {
                        let vals = t.column(c).values();
                        let lo = vals.iter().copied().min().unwrap_or(0);
                        let hi = vals.iter().copied().max().unwrap_or(1);
                        store.set_domain(c, (lo, hi));
                    }
                    e.stores.insert(tbl, store);
                }
            }
            Mode::Partial => {
                // Same per-attribute domain statistics: partial maps use
                // the uniform assumption for their §4 set choice.
                for tbl in [
                    Tbl::Lineitem,
                    Tbl::Orders,
                    Tbl::Customer,
                    Tbl::Part,
                    Tbl::Supplier,
                    Tbl::PartSupp,
                    Tbl::Nation,
                ] {
                    let mut store = PartialStore::new((0, 1));
                    let t = match tbl {
                        Tbl::Lineitem => &e.data.lineitem,
                        Tbl::Orders => &e.data.orders,
                        Tbl::Customer => &e.data.customer,
                        Tbl::Part => &e.data.part,
                        Tbl::Supplier => &e.data.supplier,
                        Tbl::PartSupp => &e.data.partsupp,
                        Tbl::Nation => &e.data.nation,
                    };
                    for c in 0..t.num_columns() {
                        let vals = t.column(c).values();
                        let lo = vals.iter().copied().min().unwrap_or(0);
                        let hi = vals.iter().copied().max().unwrap_or(1);
                        store.set_domain(c, (lo, hi));
                    }
                    e.partial_stores.insert(tbl, store);
                }
            }
            _ => {}
        }
        e.prep_cost = t0.elapsed();
        e
    }

    /// The mode this executor runs under.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Base table by id.
    pub fn table(&self, tbl: Tbl) -> &Table {
        match tbl {
            Tbl::Lineitem => &self.data.lineitem,
            Tbl::Orders => &self.data.orders,
            Tbl::Customer => &self.data.customer,
            Tbl::Part => &self.data.part,
            Tbl::Supplier => &self.data.supplier,
            Tbl::PartSupp => &self.data.partsupp,
            Tbl::Nation => &self.data.nation,
        }
    }

    /// The access layer: select rows of `tbl` satisfying `sel` and all
    /// `residual` predicates; return the values of `projs`, column-wise
    /// (one `Vec` per projection, positionally consistent across
    /// projections). Row order is mode-dependent and unspecified.
    pub fn select_project(
        &mut self,
        tbl: Tbl,
        sel: (usize, RangePred),
        residual: &[(usize, RangePred)],
        projs: &[usize],
    ) -> Vec<Vec<Val>> {
        match self.mode {
            Mode::Plain => self.sp_plain(tbl, sel, residual, projs),
            Mode::Presorted => self.sp_presorted(tbl, sel, residual, projs),
            Mode::SelCrack => self.sp_selcrack(tbl, sel, residual, projs),
            Mode::Sideways => self.sp_sideways(tbl, sel, residual, projs),
            Mode::Partial => self.sp_partial(tbl, sel, residual, projs),
            Mode::RowStore => self.sp_rowstore(tbl, sel, residual, projs),
        }
    }

    fn sp_plain(
        &mut self,
        tbl: Tbl,
        sel: (usize, RangePred),
        residual: &[(usize, RangePred)],
        projs: &[usize],
    ) -> Vec<Vec<Val>> {
        let t = self.table(tbl);
        // Shared intersection strategy over scan keys (parallel scan
        // kernel under a batch session).
        let mut keys = crackdb_columnstore::ops::parallel::par_select(t.column(sel.0), &sel.1);
        for (attr, pred) in residual {
            let col = t.column(*attr);
            combine::refine_keys(&mut keys, pred, |k| col.get(k));
        }
        projs
            .iter()
            .map(|&a| {
                let col = t.column(a);
                combine::project_keys(&keys, |k| col.get(k))
            })
            .collect()
    }

    fn sp_presorted(
        &mut self,
        tbl: Tbl,
        sel: (usize, RangePred),
        residual: &[(usize, RangePred)],
        projs: &[usize],
    ) -> Vec<Vec<Val>> {
        let Some(copy) = self.presorted.get(&(tbl, sel.0)) else {
            // No copy for this selection attribute (string selections):
            // same plan as the plain column-store.
            return self.sp_plain(tbl, sel, residual, projs);
        };
        let range = copy.select_range(&sel.1);
        // Shared bit-vector strategy over the aligned copy slices.
        let mut bv: Option<BitVec> = None;
        for (attr, pred) in residual {
            combine::fold_bv(&mut bv, copy.project(*attr, range), pred);
        }
        projs
            .iter()
            .map(|&a| combine::project_area(copy.project(a, range), &bv))
            .collect()
    }

    fn sp_selcrack(
        &mut self,
        tbl: Tbl,
        sel: (usize, RangePred),
        residual: &[(usize, RangePred)],
        projs: &[usize],
    ) -> Vec<Vec<Val>> {
        let cracker = match self.crackers.entry((tbl, sel.0)) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(v) => {
                let col = match tbl {
                    Tbl::Lineitem => self.data.lineitem.column(sel.0),
                    Tbl::Orders => self.data.orders.column(sel.0),
                    Tbl::Customer => self.data.customer.column(sel.0),
                    Tbl::Part => self.data.part.column(sel.0),
                    Tbl::Supplier => self.data.supplier.column(sel.0),
                    Tbl::PartSupp => self.data.partsupp.column(sel.0),
                    Tbl::Nation => self.data.nation.column(sel.0),
                };
                v.insert(CrackerColumn::from_column(col))
            }
        };
        let mut keys = cracker.select_keys(&sel.1);
        let t = self.table(tbl);
        for (attr, pred) in residual {
            let col = t.column(*attr);
            combine::refine_keys(&mut keys, pred, |k| col.get(k));
        }
        projs
            .iter()
            .map(|&a| {
                let col = t.column(a);
                combine::project_keys(&keys, |k| col.get(k))
            })
            .collect()
    }

    fn sp_sideways(
        &mut self,
        tbl: Tbl,
        sel: (usize, RangePred),
        residual: &[(usize, RangePred)],
        projs: &[usize],
    ) -> Vec<Vec<Val>> {
        let table: &Table = match tbl {
            Tbl::Lineitem => &self.data.lineitem,
            Tbl::Orders => &self.data.orders,
            Tbl::Customer => &self.data.customer,
            Tbl::Part => &self.data.part,
            Tbl::Supplier => &self.data.supplier,
            Tbl::PartSupp => &self.data.partsupp,
            Tbl::Nation => &self.data.nation,
        };
        let store = self
            .stores
            .get_mut(&tbl)
            .expect("stores built for sideways mode");
        let none = HashSet::new();
        let mut preds = vec![sel];
        preds.extend_from_slice(residual);
        let handle = store.conjunctive_bv(table, &preds, projs, &none);
        projs
            .iter()
            .map(|&a| {
                let mut vals = Vec::new();
                store.reconstruct_with(table, &handle, a, |v| vals.push(v));
                vals
            })
            .collect()
    }

    fn sp_partial(
        &mut self,
        tbl: Tbl,
        sel: (usize, RangePred),
        residual: &[(usize, RangePred)],
        projs: &[usize],
    ) -> Vec<Vec<Val>> {
        let table: &Table = match tbl {
            Tbl::Lineitem => &self.data.lineitem,
            Tbl::Orders => &self.data.orders,
            Tbl::Customer => &self.data.customer,
            Tbl::Part => &self.data.part,
            Tbl::Supplier => &self.data.supplier,
            Tbl::PartSupp => &self.data.partsupp,
            Tbl::Nation => &self.data.nation,
        };
        let store = self
            .partial_stores
            .get_mut(&tbl)
            .expect("stores built for partial mode");
        let mut preds = vec![sel];
        preds.extend_from_slice(residual);
        // The fused chunk-wise pass streams each projection attribute's
        // qualifying values in a positionally consistent order.
        let mut cols: Vec<Vec<Val>> = projs.iter().map(|_| Vec::new()).collect();
        store
            .conjunctive_project_with(table, &preds, projs, |attr, v| {
                for (i, &p) in projs.iter().enumerate() {
                    if p == attr {
                        cols[i].push(v);
                    }
                }
            })
            .expect("tpch partial stores are resident and unspilled");
        cols
    }

    fn sp_rowstore(
        &mut self,
        tbl: Tbl,
        sel: (usize, RangePred),
        residual: &[(usize, RangePred)],
        projs: &[usize],
    ) -> Vec<Vec<Val>> {
        let Some(rt) = self.rowstores.get(&(tbl, sel.0)) else {
            // Unsorted selection column: tuple-at-a-time full scan.
            let t = self.table(tbl);
            let mut preds = vec![sel];
            preds.extend_from_slice(residual);
            let rt = crackdb_columnstore::rowstore::RowTable::from_table(t);
            let rows = rt.scan_project(&preds, projs);
            return transpose(rows, projs.len());
        };
        let range = rt.select_range(&sel.1);
        let rows = rt.project_range(range, residual, projs);
        transpose(rows, projs.len())
    }
}

/// Row-major → column-major.
fn transpose(rows: Vec<Vec<Val>>, width: usize) -> Vec<Vec<Val>> {
    let mut cols: Vec<Vec<Val>> = (0..width).map(|_| Vec::with_capacity(rows.len())).collect();
    for row in rows {
        for (c, v) in row.into_iter().enumerate() {
            cols[c].push(v);
        }
    }
    cols
}

#[cfg(test)]
mod tests {
    use super::*;
    use crackdb_workloads::tpch::{c as cc, dict};

    fn exec(mode: Mode) -> TpchExecutor {
        TpchExecutor::new(TpchData::generate(0.002, 21), mode)
    }

    #[test]
    fn access_layer_agrees_across_modes() {
        let sel = (l::SHIPDATE, RangePred::open(400, 700));
        let residual = [(l::DISCOUNT, RangePred::closed(2, 6))];
        let projs = [l::ORDERKEY, l::EXTENDEDPRICE];
        let mut reference: Option<Vec<Vec<Val>>> = None;
        for mode in [
            Mode::Plain,
            Mode::Presorted,
            Mode::SelCrack,
            Mode::Sideways,
            Mode::Partial,
            Mode::RowStore,
        ] {
            let mut e = exec(mode);
            let mut cols = e.select_project(Tbl::Lineitem, sel, &residual, &projs);
            // Sort rows for comparison (row order is mode-dependent).
            let mut rows: Vec<(Val, Val)> = cols[0]
                .iter()
                .zip(&cols[1])
                .map(|(&a, &b)| (a, b))
                .collect();
            rows.sort_unstable();
            cols[0] = rows.iter().map(|r| r.0).collect();
            cols[1] = rows.iter().map(|r| r.1).collect();
            match &reference {
                None => reference = Some(cols),
                Some(r) => assert_eq!(&cols, r, "mode {mode:?} disagrees"),
            }
        }
    }

    #[test]
    fn dict_selection_fallbacks() {
        for mode in [Mode::Presorted, Mode::RowStore, Mode::Sideways] {
            let mut e = exec(mode);
            let cols = e.select_project(
                Tbl::Customer,
                (cc::MKTSEGMENT, RangePred::point(1)),
                &[],
                &[cc::CUSTKEY],
            );
            assert!(!cols[0].is_empty());
            assert!(cols[0].len() < e.table(Tbl::Customer).num_rows());
            let _ = dict::MKTSEGMENT;
        }
    }
}
