//! The twelve TPC-H queries of §5, written once against the
//! mode-parametric access layer. Each returns a digest value (a checksum
//! over the aggregates) so that the modes can be differentially tested.
//!
//! The plans are structurally faithful simplifications: the selection and
//! tuple-reconstruction work — the paper's object of study — follows each
//! query's template; joins, group-bys and aggregations use the shared
//! operators above the access layer. Q12's mode IN-list and Q19's
//! disjunction are executed as unioned conjunctive branches (the standard
//! column-store rewriting). Prices are cents and percentages integers, so
//! revenue aggregates use integer arithmetic: `price * (100 - disc)`.

#![allow(clippy::needless_range_loop)] // positional access across parallel columns

use super::{Tbl, TpchExecutor};
use crackdb_columnstore::types::{Bound, RangePred, Val};
use crackdb_workloads::tpch::{c, l, n, o, p, ps, s, Params};
use std::collections::{HashMap, HashSet};

/// Query identifiers in paper order.
pub const QUERIES: [u32; 12] = [1, 3, 4, 6, 7, 8, 10, 12, 14, 15, 19, 20];

/// Run query `id` with `params`; returns the digest.
pub fn run(exec: &mut TpchExecutor, id: u32, params: Params) -> Val {
    match id {
        1 => q1(exec, params),
        3 => q3(exec, params),
        4 => q4(exec, params),
        6 => q6(exec, params),
        7 => q7(exec, params),
        8 => q8(exec, params),
        10 => q10(exec, params),
        12 => q12(exec, params),
        14 => q14(exec, params),
        15 => q15(exec, params),
        19 => q19(exec, params),
        20 => q20(exec, params),
        other => panic!("query {other} is not part of the paper's subset"),
    }
}

fn revenue(price: Val, disc: Val) -> Val {
    price * (100 - disc)
}

/// Q1: pricing summary report — 1 selection on `l_shipdate`, 6 tuple
/// reconstructions, group by (returnflag, linestatus).
pub fn q1(exec: &mut TpchExecutor, prm: Params) -> Val {
    let cols = exec.select_project(
        Tbl::Lineitem,
        (l::SHIPDATE, RangePred::less(Bound::inclusive(prm.date))),
        &[],
        &[
            l::RETURNFLAG,
            l::LINESTATUS,
            l::QUANTITY,
            l::EXTENDEDPRICE,
            l::DISCOUNT,
            l::TAX,
        ],
    );
    /// Accumulator per (returnflag, linestatus) group: sum_qty,
    /// sum_base_price, sum_disc_price, sum_charge, count.
    type Q1Group = (Val, Val, Val, Val, Val);
    let mut groups: HashMap<(Val, Val), Q1Group> = HashMap::new();
    for i in 0..cols[0].len() {
        let g = groups.entry((cols[0][i], cols[1][i])).or_default();
        let (qty, price, disc, tax) = (cols[2][i], cols[3][i], cols[4][i], cols[5][i]);
        g.0 += qty;
        g.1 += price;
        g.2 += revenue(price, disc);
        g.3 += revenue(price, disc) * (100 + tax);
        g.4 += 1;
    }
    let mut digest = 0;
    for ((rf, ls), (sq, sp, sd, sc, cnt)) in groups {
        digest ^= rf + 3 * ls + sq + sp + sd % 1_000_003 + sc % 1_000_003 + cnt;
    }
    digest
}

/// Q3: shipping priority — customer ⋈ orders ⋈ lineitem, group by order.
pub fn q3(exec: &mut TpchExecutor, prm: Params) -> Val {
    let cust = exec.select_project(
        Tbl::Customer,
        (c::MKTSEGMENT, RangePred::point(prm.k1)),
        &[],
        &[c::CUSTKEY],
    );
    let custs: HashSet<Val> = cust[0].iter().copied().collect();
    let ord = exec.select_project(
        Tbl::Orders,
        (o::ORDERDATE, RangePred::less(Bound::exclusive(prm.date))),
        &[],
        &[o::ORDERKEY, o::CUSTKEY],
    );
    let okeys: HashSet<Val> = ord[0]
        .iter()
        .zip(&ord[1])
        .filter(|(_, ck)| custs.contains(ck))
        .map(|(&ok, _)| ok)
        .collect();
    let li = exec.select_project(
        Tbl::Lineitem,
        (l::SHIPDATE, RangePred::greater(Bound::exclusive(prm.date))),
        &[],
        &[l::ORDERKEY, l::EXTENDEDPRICE, l::DISCOUNT],
    );
    let mut rev: HashMap<Val, Val> = HashMap::new();
    for i in 0..li[0].len() {
        if okeys.contains(&li[0][i]) {
            *rev.entry(li[0][i]).or_default() += revenue(li[1][i], li[2][i]);
        }
    }
    rev.values().copied().max().unwrap_or(0) + rev.len() as Val
}

/// Q4: order priority checking — orders with a late lineitem, per
/// priority.
pub fn q4(exec: &mut TpchExecutor, prm: Params) -> Val {
    let ord = exec.select_project(
        Tbl::Orders,
        (o::ORDERDATE, RangePred::half_open(prm.date, prm.date2)),
        &[],
        &[o::ORDERKEY, o::ORDERPRIORITY],
    );
    let wanted: HashSet<Val> = ord[0].iter().copied().collect();
    // EXISTS (lineitem with commitdate < receiptdate): scan lineitem's
    // two date columns (no selection attribute — same for all modes).
    let li = exec.table(Tbl::Lineitem);
    let okc = li.column(l::ORDERKEY);
    let cd = li.column(l::COMMITDATE);
    let rd = li.column(l::RECEIPTDATE);
    let mut late: HashSet<Val> = HashSet::new();
    for i in 0..li.num_rows() {
        let i = i as u32;
        let ok = okc.get(i);
        if cd.get(i) < rd.get(i) && wanted.contains(&ok) {
            late.insert(ok);
        }
    }
    let mut counts = [0 as Val; 8];
    for (ok, prio) in ord[0].iter().zip(&ord[1]) {
        if late.contains(ok) {
            counts[*prio as usize] += 1;
        }
    }
    counts
        .iter()
        .enumerate()
        .map(|(i, &v)| (i as Val + 1) * v)
        .sum()
}

/// Q6: forecasting revenue change — pure multi-selection on lineitem.
pub fn q6(exec: &mut TpchExecutor, prm: Params) -> Val {
    let cols = exec.select_project(
        Tbl::Lineitem,
        (l::SHIPDATE, RangePred::half_open(prm.date, prm.date2)),
        &[
            (l::DISCOUNT, RangePred::closed(prm.k1 - 1, prm.k1 + 1)),
            (l::QUANTITY, RangePred::less(Bound::exclusive(prm.q))),
        ],
        &[l::EXTENDEDPRICE, l::DISCOUNT],
    );
    cols[0].iter().zip(&cols[1]).map(|(&p, &d)| p * d).sum()
}

/// Q7: volume shipping — lineitem ⋈ supplier ⋈ orders ⋈ customer with a
/// nation pair filter, grouped by year.
pub fn q7(exec: &mut TpchExecutor, prm: Params) -> Val {
    let li = exec.select_project(
        Tbl::Lineitem,
        (l::SHIPDATE, RangePred::closed(prm.date, prm.date2)),
        &[],
        &[
            l::ORDERKEY,
            l::SUPPKEY,
            l::EXTENDEDPRICE,
            l::DISCOUNT,
            l::SHIPDATE,
        ],
    );
    // Dimension maps (small scans, identical across modes).
    let sup = exec.table(Tbl::Supplier);
    let supp_nation: Vec<Val> = sup.column(s::NATIONKEY).values().to_vec();
    let ord = exec.table(Tbl::Orders);
    let order_cust: Vec<Val> = ord.column(o::CUSTKEY).values().to_vec();
    let cust = exec.table(Tbl::Customer);
    let cust_nation: Vec<Val> = cust.column(c::NATIONKEY).values().to_vec();

    let mut volumes: HashMap<(Val, Val, Val), Val> = HashMap::new();
    for i in 0..li[0].len() {
        let sn = supp_nation[li[1][i] as usize];
        let cn = cust_nation[order_cust[li[0][i] as usize] as usize];
        let pair_ok = (sn == prm.k1 && cn == prm.k2) || (sn == prm.k2 && cn == prm.k1);
        if pair_ok {
            let year = li[4][i] / 365;
            *volumes.entry((sn, cn, year)).or_default() += revenue(li[2][i], li[3][i]);
        }
    }
    volumes
        .iter()
        .map(|((sn, cn, y), v)| (sn + cn + y) ^ (v % 1_000_003))
        .sum()
}

/// Q8: national market share — orders in 1995–96, part type filter,
/// share of one nation's suppliers per year.
pub fn q8(exec: &mut TpchExecutor, prm: Params) -> Val {
    let ord = exec.select_project(
        Tbl::Orders,
        (o::ORDERDATE, RangePred::closed(prm.date, prm.date2)),
        &[],
        &[o::ORDERKEY, o::ORDERDATE],
    );
    let order_year: HashMap<Val, Val> = ord[0]
        .iter()
        .zip(&ord[1])
        .map(|(&k, &d)| (k, d / 365))
        .collect();
    let part = exec.select_project(
        Tbl::Part,
        (p::PTYPE, RangePred::point(prm.k2)),
        &[],
        &[p::PARTKEY],
    );
    let parts: HashSet<Val> = part[0].iter().copied().collect();
    let sup = exec.table(Tbl::Supplier);
    let supp_nation: Vec<Val> = sup.column(s::NATIONKEY).values().to_vec();

    // Lineitem side: no selective attribute — full scan join.
    let li = exec.table(Tbl::Lineitem);
    let (okc, pkc, skc) = (
        li.column(l::ORDERKEY),
        li.column(l::PARTKEY),
        li.column(l::SUPPKEY),
    );
    let (epc, dcc) = (li.column(l::EXTENDEDPRICE), li.column(l::DISCOUNT));
    let mut num: HashMap<Val, Val> = HashMap::new();
    let mut den: HashMap<Val, Val> = HashMap::new();
    for i in 0..li.num_rows() {
        let i = i as u32;
        if !parts.contains(&pkc.get(i)) {
            continue;
        }
        let Some(&year) = order_year.get(&okc.get(i)) else {
            continue;
        };
        let vol = revenue(epc.get(i), dcc.get(i));
        *den.entry(year).or_default() += vol;
        if supp_nation[skc.get(i) as usize] == prm.k1 {
            *num.entry(year).or_default() += vol;
        }
    }
    den.iter()
        .map(|(y, d)| {
            let nv = num.get(y).copied().unwrap_or(0);
            y + if *d > 0 { nv * 1000 / d } else { 0 }
        })
        .sum()
}

/// Q10: returned item reporting — revenue per customer from returned
/// lines in a quarter's orders.
pub fn q10(exec: &mut TpchExecutor, prm: Params) -> Val {
    let ord = exec.select_project(
        Tbl::Orders,
        (o::ORDERDATE, RangePred::half_open(prm.date, prm.date2)),
        &[],
        &[o::ORDERKEY, o::CUSTKEY],
    );
    let order_cust: HashMap<Val, Val> = ord[0]
        .iter()
        .zip(&ord[1])
        .map(|(&k, &cu)| (k, cu))
        .collect();
    let li = exec.select_project(
        Tbl::Lineitem,
        (l::RETURNFLAG, RangePred::point(2)), // 'R'
        &[],
        &[l::ORDERKEY, l::EXTENDEDPRICE, l::DISCOUNT],
    );
    let mut rev: HashMap<Val, Val> = HashMap::new();
    for i in 0..li[0].len() {
        if let Some(&cust) = order_cust.get(&li[0][i]) {
            *rev.entry(cust).or_default() += revenue(li[1][i], li[2][i]);
        }
    }
    rev.values().copied().max().unwrap_or(0) + rev.len() as Val
}

/// Q12: shipping modes and order priority — lineitem receipt dates in a
/// year, two ship modes, late-commit filters, joined to order priority.
pub fn q12(exec: &mut TpchExecutor, prm: Params) -> Val {
    let ord = exec.table(Tbl::Orders);
    let prio: Vec<Val> = ord.column(o::ORDERPRIORITY).values().to_vec();
    let mut high = 0 as Val;
    let mut low = 0 as Val;
    for mode in [prm.k1, prm.k2] {
        let cols = exec.select_project(
            Tbl::Lineitem,
            (l::RECEIPTDATE, RangePred::half_open(prm.date, prm.date2)),
            &[(l::SHIPMODE, RangePred::point(mode))],
            &[l::ORDERKEY, l::SHIPDATE, l::COMMITDATE, l::RECEIPTDATE],
        );
        for i in 0..cols[0].len() {
            // Column-to-column comparisons applied above the access layer.
            if cols[2][i] < cols[3][i] && cols[1][i] < cols[2][i] {
                let pr = prio[cols[0][i] as usize];
                if pr <= 1 {
                    high += 1;
                } else {
                    low += 1;
                }
            }
        }
    }
    high * 1000 + low
}

/// Q14: promotion effect — promo revenue share in one month.
pub fn q14(exec: &mut TpchExecutor, prm: Params) -> Val {
    let cols = exec.select_project(
        Tbl::Lineitem,
        (l::SHIPDATE, RangePred::half_open(prm.date, prm.date2)),
        &[],
        &[l::PARTKEY, l::EXTENDEDPRICE, l::DISCOUNT],
    );
    let part = exec.table(Tbl::Part);
    let ptype: Vec<Val> = part.column(p::PTYPE).values().to_vec();
    let mut promo = 0 as Val;
    let mut total = 0 as Val;
    for i in 0..cols[0].len() {
        let r = revenue(cols[1][i], cols[2][i]);
        total += r;
        if ptype[cols[0][i] as usize] < 30 {
            promo += r;
        }
    }
    if total > 0 {
        promo * 100_000 / total
    } else {
        0
    }
}

/// Q15: top supplier — revenue per supplier over one quarter.
pub fn q15(exec: &mut TpchExecutor, prm: Params) -> Val {
    let cols = exec.select_project(
        Tbl::Lineitem,
        (l::SHIPDATE, RangePred::half_open(prm.date, prm.date2)),
        &[],
        &[l::SUPPKEY, l::EXTENDEDPRICE, l::DISCOUNT],
    );
    let mut rev: HashMap<Val, Val> = HashMap::new();
    for i in 0..cols[0].len() {
        *rev.entry(cols[0][i]).or_default() += revenue(cols[1][i], cols[2][i]);
    }
    rev.values().copied().max().unwrap_or(0)
}

/// Q19: discounted revenue — a three-branch disjunction of brand /
/// container / quantity / size conjunctions (branches made disjoint on
/// quantity, see module docs).
pub fn q19(exec: &mut TpchExecutor, prm: Params) -> Val {
    let brands = [prm.k1, prm.k2, (prm.k1 + 7) % 25];
    let containers = [
        RangePred::closed(0, 9),
        RangePred::closed(10, 19),
        RangePred::closed(20, 29),
    ];
    let sizes = [
        RangePred::closed(1, 5),
        RangePred::closed(1, 10),
        RangePred::closed(1, 15),
    ];
    let mut total = 0 as Val;
    for b in 0..3 {
        let parts = exec.select_project(
            Tbl::Part,
            (p::BRAND, RangePred::point(brands[b])),
            &[(p::CONTAINER, containers[b]), (p::SIZE, sizes[b])],
            &[p::PARTKEY],
        );
        let pset: HashSet<Val> = parts[0].iter().copied().collect();
        let qlo = prm.q + 10 * b as Val;
        let li = exec.select_project(
            Tbl::Lineitem,
            (l::QUANTITY, RangePred::half_open(qlo, qlo + 10)),
            &[
                (l::SHIPMODE, RangePred::closed(0, 1)), // AIR, AIR REG
                (l::SHIPINSTRUCT, RangePred::point(0)), // DELIVER IN PERSON
            ],
            &[l::PARTKEY, l::EXTENDEDPRICE, l::DISCOUNT],
        );
        for i in 0..li[0].len() {
            if pset.contains(&li[0][i]) {
                total += revenue(li[1][i], li[2][i]);
            }
        }
    }
    total
}

/// Q20: potential part promotion — suppliers with excess stock of a
/// brand's parts relative to a year's shipments.
pub fn q20(exec: &mut TpchExecutor, prm: Params) -> Val {
    let parts = exec.select_project(
        Tbl::Part,
        (p::BRAND, RangePred::point(prm.k1)),
        &[],
        &[p::PARTKEY],
    );
    let pset: HashSet<Val> = parts[0].iter().copied().collect();
    let li = exec.select_project(
        Tbl::Lineitem,
        (l::SHIPDATE, RangePred::half_open(prm.date, prm.date2)),
        &[],
        &[l::PARTKEY, l::SUPPKEY, l::QUANTITY],
    );
    let mut shipped: HashMap<(Val, Val), Val> = HashMap::new();
    for i in 0..li[0].len() {
        if pset.contains(&li[0][i]) {
            *shipped.entry((li[0][i], li[1][i])).or_default() += li[2][i];
        }
    }
    let pstab = exec.table(Tbl::PartSupp);
    let (pkc, skc, aqc) = (
        pstab.column(ps::PARTKEY),
        pstab.column(ps::SUPPKEY),
        pstab.column(ps::AVAILQTY),
    );
    let mut suppliers: HashSet<Val> = HashSet::new();
    for i in 0..pstab.num_rows() {
        let i = i as u32;
        let key = (pkc.get(i), skc.get(i));
        if !pset.contains(&key.0) {
            continue;
        }
        let half_shipped = shipped.get(&key).copied().unwrap_or(0) / 2;
        if aqc.get(i) > half_shipped {
            suppliers.insert(key.1);
        }
    }
    // Nation filter: count suppliers from one nation (the template's
    // nation restriction).
    let sup = exec.table(Tbl::Supplier);
    let nat = sup.column(s::NATIONKEY);
    let _ = n::NATIONKEY;
    suppliers
        .iter()
        .filter(|&&sk| nat.get(sk as u32) == prm.k1 % 25)
        .count() as Val
        + suppliers.len() as Val
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpch::Mode;
    use crackdb_workloads::tpch::{TpchData, TpchParams};

    #[test]
    fn all_queries_agree_across_modes() {
        let data = TpchData::generate(0.002, 33);
        let mut params = TpchParams::new(44);
        let pset: Vec<(u32, Params)> = QUERIES
            .iter()
            .map(|&q| {
                let prm = match q {
                    1 => params.q1(),
                    3 => params.q3(),
                    4 => params.q4(),
                    6 => params.q6(),
                    7 => params.q7(),
                    8 => params.q8(),
                    10 => params.q10(),
                    12 => params.q12(),
                    14 => params.q14(),
                    15 => params.q15(),
                    19 => params.q19(),
                    20 => params.q20(),
                    _ => unreachable!(),
                };
                (q, prm)
            })
            .collect();
        let mut reference: Option<Vec<Val>> = None;
        for mode in [
            Mode::Plain,
            Mode::Presorted,
            Mode::SelCrack,
            Mode::Sideways,
            Mode::RowStore,
        ] {
            let mut e = TpchExecutor::new(data.clone(), mode);
            // Run twice: the second pass exercises cracked structures.
            let mut digests: Vec<Val> = Vec::new();
            for _ in 0..2 {
                for &(q, prm) in &pset {
                    digests.push(run(&mut e, q, prm));
                }
            }
            match &reference {
                None => reference = Some(digests),
                Some(r) => assert_eq!(&digests, r, "mode {mode:?} disagrees"),
            }
        }
    }
}
