//! The selection-cracking baseline (CIDR'07): fast, self-organizing
//! selections via cracker columns — but unordered selection results, so
//! tuple reconstruction random-accesses the full base columns.

use crate::exec::snapshot::EngineSnapshot;
use crate::exec::{self, combine, AccessPath, RestrictCtx, RowSet};
use crate::query::{Engine, JoinQuery, QueryError, QueryOutput, SelectQuery, Timings};
use crackdb_columnstore::column::Table;
use crackdb_columnstore::ops::join::hash_join;
use crackdb_columnstore::ops::parallel::{self, PartialAgg};
use crackdb_columnstore::types::{RangePred, RowId, Val};
use crackdb_cracking::{ColumnSnapshot, CrackPolicy, CrackerColumn, SnapshotBuilder};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Per-column change fingerprint: `(attr, CrackerColumn::fingerprint)`
/// pairs in attribute order. Equal fingerprints (plus an unchanged base
/// row count) mean the previously built snapshot is still current.
type EngineFingerprint = Vec<(usize, (usize, usize, usize, usize, u64))>;

/// Snapshot-publication state: the incremental builders, the frozen
/// base, the appended-row overlay, and the cached current snapshot
/// with the fingerprint it was built at.
struct SnapState {
    builders: HashMap<usize, SnapshotBuilder<RowId>>,
    /// The base table cloned at the first [`Engine::snapshot`] call.
    /// Sound because this engine never mutates base rows in place —
    /// inserts append, deletes ripple through the cracker columns.
    frozen: Arc<Table>,
    frozen_rows: usize,
    /// Rows appended since the freeze, in key order.
    appended: Vec<Vec<Val>>,
    /// Shared copy of `appended` handed to snapshots; re-made only
    /// when the overlay actually grew.
    appended_arc: Arc<Vec<Vec<Val>>>,
    fingerprint: EngineFingerprint,
    rows_seen: usize,
    current: Arc<EngineSnapshot>,
}

/// Selection-cracking executor.
pub struct SelCrackEngine {
    base: Table,
    second: Option<Table>,
    /// Cracker columns per (table, attribute), created on first use.
    crackers: HashMap<(bool, usize), CrackerColumn>,
    /// Default pivot-choice policy for every cracker column.
    policy: CrackPolicy,
    /// Per-column policy overrides (mixed-policy engines): consulted when
    /// a cracker column is created, keyed like `crackers`.
    overrides: HashMap<(bool, usize), CrackPolicy>,
    /// Value domain for ordering predicates by estimated selectivity
    /// ("all systems evaluate queries starting from the most selective
    /// predicate", §3.6 Exp4).
    domain: (Val, Val),
    /// Lazily initialized snapshot-publication state.
    snap: Option<SnapState>,
}

impl SelCrackEngine {
    /// Single-table engine. The crack policy defaults to the
    /// `CRACKDB_POLICY` environment selection (standard when unset), so
    /// CI can drive the whole differential surface once per policy.
    pub fn new(base: Table, domain: (Val, Val)) -> Self {
        Self::with_policy(base, domain, exec::policy_from_env())
    }

    /// Single-table engine with an explicit [`CrackPolicy`].
    pub fn with_policy(base: Table, domain: (Val, Val), policy: CrackPolicy) -> Self {
        SelCrackEngine {
            base,
            second: None,
            crackers: HashMap::new(),
            policy,
            overrides: HashMap::new(),
            domain,
            snap: None,
        }
    }

    /// Two-table engine.
    pub fn with_second(base: Table, second: Table, domain: (Val, Val)) -> Self {
        SelCrackEngine {
            second: Some(second),
            ..SelCrackEngine::new(base, domain)
        }
    }

    /// Two-table engine with an explicit [`CrackPolicy`].
    pub fn with_second_policy(
        base: Table,
        second: Table,
        domain: (Val, Val),
        policy: CrackPolicy,
    ) -> Self {
        SelCrackEngine {
            second: Some(second),
            ..SelCrackEngine::with_policy(base, domain, policy)
        }
    }

    /// The engine's default pivot-choice policy.
    pub fn policy(&self) -> CrackPolicy {
        self.policy
    }

    /// The policy one (table, attribute) cracker column will be created
    /// with: the per-column override when set, the default otherwise.
    pub fn policy_for(&self, second: bool, attr: usize) -> CrackPolicy {
        policy_for(self.policy, &self.overrides, second, attr)
    }

    /// Override the crack policy of one (table, attribute) cracker
    /// column. Must run before the column's first use — mixed-policy
    /// engines (say, an adaptive hot attribute beside static siblings)
    /// are configured up front, never rewired mid-workload.
    pub fn set_policy_for(&mut self, second: bool, attr: usize, policy: CrackPolicy) {
        assert!(
            !self.crackers.contains_key(&(second, attr)),
            "column ({second}, {attr}) already cracked; set per-column policies before first use"
        );
        self.overrides.insert((second, attr), policy);
    }

    /// Cumulative adaptive-advisor switches across all cracker columns.
    pub fn policy_switches(&self) -> u64 {
        self.crackers.values().map(|c| c.policy_switches()).sum()
    }

    fn order_preds(&self, preds: &[(usize, RangePred)], n: usize) -> Vec<(usize, RangePred)> {
        let mut ordered = preds.to_vec();
        ordered.sort_by(|a, b| {
            let ea = crackdb_core::set::uniform_estimate(&a.1, n, self.domain);
            let eb = crackdb_core::set::uniform_estimate(&b.1, n, self.domain);
            // total_cmp, like the shared planner: a NaN estimate from
            // degenerate domain statistics must never panic predicate
            // ordering — it just sorts last and the plan stays valid.
            ea.total_cmp(&eb)
        });
        ordered
    }

    /// `crackers.select` over one attribute's cracker column (created on
    /// first use). Returns unordered keys.
    fn cracker_select(
        crackers: &mut HashMap<(bool, usize), CrackerColumn>,
        table: &Table,
        second: bool,
        attr: usize,
        pred: &RangePred,
        policy: CrackPolicy,
    ) -> Vec<RowId> {
        crackers
            .entry((second, attr))
            .or_insert_with(|| CrackerColumn::with_policy(table.column(attr), policy))
            .select_keys(pred)
    }

    /// Conjunctive selection used by the join path: `crackers.select` for
    /// the first predicate, `rel_select` (positional filtering against
    /// base columns) for the rest.
    fn select_keys(
        crackers: &mut HashMap<(bool, usize), CrackerColumn>,
        table: &Table,
        second: bool,
        preds: &[(usize, RangePred)],
        default: CrackPolicy,
        overrides: &HashMap<(bool, usize), CrackPolicy>,
    ) -> Vec<RowId> {
        if preds.is_empty() {
            // No predicate: still answer through a cracker column so that
            // queued (ripple) insertions and deletions are respected.
            let policy = policy_for(default, overrides, second, 0);
            return Self::cracker_select(crackers, table, second, 0, &RangePred::all(), policy);
        }
        let policy = policy_for(default, overrides, second, preds[0].0);
        let mut keys =
            Self::cracker_select(crackers, table, second, preds[0].0, &preds[0].1, policy);
        for (attr, pred) in &preds[1..] {
            let col = table.column(*attr);
            combine::refine_keys(&mut keys, pred, |k| col.get(k));
        }
        keys
    }
}

/// Per-column policy resolution (free function: the static helpers split
/// borrows across `SelCrackEngine` fields).
fn policy_for(
    default: CrackPolicy,
    overrides: &HashMap<(bool, usize), CrackPolicy>,
    second: bool,
    attr: usize,
) -> CrackPolicy {
    overrides.get(&(second, attr)).copied().unwrap_or(default)
}

impl AccessPath for SelCrackEngine {
    fn name(&self) -> &'static str {
        "Selection Cracking"
    }

    fn estimate(&self, _attr: usize, pred: &RangePred) -> Option<f64> {
        Some(crackdb_core::set::uniform_estimate(
            pred,
            self.base.num_rows(),
            self.domain,
        ))
    }

    fn restrict(&mut self, attr: usize, pred: &RangePred, _ctx: &RestrictCtx) -> RowSet {
        let policy = policy_for(self.policy, &self.overrides, false, attr);
        RowSet::keys(
            Self::cracker_select(&mut self.crackers, &self.base, false, attr, pred, policy),
            false,
        )
    }

    fn refine(&mut self, rows: &mut RowSet, attr: usize, pred: &RangePred, _ctx: &RestrictCtx) {
        // rel_select: positional lookups into the base columns (random
        // access — keys are unordered).
        let RowSet::Keys { keys, .. } = rows else {
            unreachable!("cracker selects produce key lists")
        };
        let col = self.base.column(attr);
        combine::refine_keys(keys, pred, |k| col.get(k));
    }

    fn extend(&mut self, rows: &mut RowSet, attr: usize, pred: &RangePred, _ctx: &RestrictCtx) {
        // Disjunctions fall back to per-predicate cracker selects and
        // key-set union (no aligned bit vectors available here).
        let RowSet::Keys { keys, .. } = rows else {
            unreachable!("cracker selects produce key lists")
        };
        let policy = policy_for(self.policy, &self.overrides, false, attr);
        let more = Self::cracker_select(&mut self.crackers, &self.base, false, attr, pred, policy);
        combine::union_keys_unordered(keys, more);
    }

    fn unrestricted(&mut self, _ctx: &RestrictCtx) -> RowSet {
        RowSet::keys(
            Self::select_keys(
                &mut self.crackers,
                &self.base,
                false,
                &[],
                self.policy,
                &self.overrides,
            ),
            false,
        )
    }

    fn fetch(
        &mut self,
        rows: &RowSet,
        attrs: &[usize],
        consume: &mut dyn FnMut(usize, Val),
    ) -> Result<(), QueryError> {
        let RowSet::Keys { keys, .. } = rows else {
            unreachable!("cracker selects produce key lists")
        };
        // Tuple reconstruction: random-order positional lookups into the
        // full base columns — the cost the paper attacks.
        for &attr in attrs {
            let col = self.base.column(attr);
            for &k in keys {
                consume(attr, col.get(k));
            }
        }
        Ok(())
    }

    fn partial_agg(&mut self, rows: &RowSet, attr: usize) -> Option<PartialAgg> {
        let RowSet::Keys { keys, .. } = rows else {
            return None;
        };
        Some(parallel::par_agg_gather(self.base.column(attr), keys))
    }

    fn is_adaptive(&self) -> bool {
        true
    }
}

impl Engine for SelCrackEngine {
    fn name(&self) -> &'static str {
        AccessPath::name(self)
    }

    fn select(&mut self, q: &SelectQuery) -> QueryOutput {
        exec::run_select(self, q)
    }

    fn join(&mut self, q: &JoinQuery) -> QueryOutput {
        let mut out = QueryOutput::default();
        let mut timings = Timings::default();
        let n = self.base.num_rows();
        let n2 = self
            .second
            .as_ref()
            .expect("join needs a second table")
            .num_rows();

        let t0 = Instant::now();
        let lpreds = self.order_preds(&q.left.preds, n);
        let rpreds = self.order_preds(&q.right.preds, n2);
        let lkeys = Self::select_keys(
            &mut self.crackers,
            &self.base,
            false,
            &lpreds,
            self.policy,
            &self.overrides,
        );
        let second = self.second.as_ref().expect("checked above");
        let rkeys = Self::select_keys(
            &mut self.crackers,
            second,
            true,
            &rpreds,
            self.policy,
            &self.overrides,
        );
        timings.select = t0.elapsed();

        let t1 = Instant::now();
        let lcol = self.base.column(q.left.join_attr);
        let rcol = second.column(q.right.join_attr);
        let lpairs: Vec<(RowId, Val)> = lkeys.iter().map(|&k| (k, lcol.get(k))).collect();
        let rpairs: Vec<(RowId, Val)> = rkeys.iter().map(|&k| (k, rcol.get(k))).collect();
        timings.reconstruct = t1.elapsed();

        let t2 = Instant::now();
        let matched = hash_join(&lpairs, &rpairs);
        timings.join = t2.elapsed();
        out.rows = matched.len();

        let t3 = Instant::now();
        out.aggs = exec::agg_matched(&matched, &q.left, true, |attr, k| {
            self.base.column(attr).get(k)
        });
        out.aggs
            .extend(exec::agg_matched(&matched, &q.right, false, |attr, k| {
                second.column(attr).get(k)
            }));
        timings.post_join = t3.elapsed();
        out.timings = timings;
        out
    }

    fn insert(&mut self, row: &[Val]) {
        let key = self.base.append_row(row);
        for ((second, attr), cracker) in self.crackers.iter_mut() {
            if !*second {
                cracker.queue_insert(self.base.column(*attr).get(key), key);
            }
        }
    }

    fn delete(&mut self, key: RowId) {
        // Cracking keeps base columns untouched; a deletion must reach the
        // cracker column of every attribute, so crackers are created on
        // demand here (from the current base, which still holds the row)
        // and the deletion queued for the Ripple algorithm.
        for attr in 0..self.base.num_columns() {
            let policy = policy_for(self.policy, &self.overrides, false, attr);
            self.crackers
                .entry((false, attr))
                .or_insert_with(|| CrackerColumn::with_policy(self.base.column(attr), policy))
                .queue_delete(self.base.column(attr).get(key), key);
        }
    }

    fn aux_tuples(&self) -> usize {
        self.crackers.values().map(|c| c.len()).sum()
    }

    fn policy_switches(&self) -> u64 {
        SelCrackEngine::policy_switches(self)
    }

    /// Publish the converged-piece snapshot: per-attribute catalogs
    /// built incrementally (untouched pieces share their previous
    /// `Arc`s), gated by a fingerprint so an unchanged engine hands
    /// back the cached snapshot without allocating.
    fn snapshot(&mut self) -> Option<Arc<EngineSnapshot>> {
        let mut fp: EngineFingerprint = self
            .crackers
            .iter()
            .filter(|((second, _), _)| !second)
            .map(|(&(_, attr), c)| (attr, c.fingerprint()))
            .collect();
        fp.sort_unstable_by_key(|&(attr, _)| attr);
        let rows = self.base.num_rows();
        if let Some(state) = &self.snap {
            if state.fingerprint == fp && state.rows_seen == rows {
                return Some(state.current.clone());
            }
        }
        let (frozen, frozen_rows, mut appended, mut appended_arc, mut builders) =
            match self.snap.take() {
                Some(s) => (
                    s.frozen,
                    s.frozen_rows,
                    s.appended,
                    s.appended_arc,
                    s.builders,
                ),
                None => (
                    Arc::new(self.base.clone()),
                    rows,
                    Vec::new(),
                    Arc::new(Vec::new()),
                    HashMap::new(),
                ),
            };
        // Sync the overlay with base rows appended since the freeze.
        if frozen_rows + appended.len() < rows {
            for k in (frozen_rows + appended.len())..rows {
                appended.push(
                    (0..self.base.num_columns())
                        .map(|c| self.base.column(c).get(k as RowId))
                        .collect(),
                );
            }
            appended_arc = Arc::new(appended.clone());
        }
        let mut cols: Vec<Option<Arc<ColumnSnapshot<RowId>>>> =
            (0..self.base.num_columns()).map(|_| None).collect();
        for (&(second, attr), cracker) in &self.crackers {
            if second || attr >= cols.len() {
                continue;
            }
            cols[attr] = Some(cracker.snapshot(builders.entry(attr).or_default()));
        }
        let current = Arc::new(EngineSnapshot::new(
            cols,
            frozen.clone(),
            frozen_rows,
            appended_arc.clone(),
        ));
        self.snap = Some(SnapState {
            builders,
            frozen,
            frozen_rows,
            appended,
            appended_arc,
            fingerprint: fp,
            rows_seen: rows,
            current: current.clone(),
        });
        Some(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crackdb_columnstore::column::Column;
    use crackdb_columnstore::types::AggFunc;

    fn table() -> Table {
        let mut t = Table::new();
        t.add_column("a", Column::new(vec![5, 1, 9, 3, 7]));
        t.add_column("b", Column::new(vec![50, 10, 90, 30, 70]));
        t
    }

    #[test]
    fn select_matches_plain() {
        let mut e = SelCrackEngine::new(table(), (0, 10));
        let q = SelectQuery::aggregate(
            vec![(0, RangePred::open(2, 8))],
            vec![(1, AggFunc::Max), (1, AggFunc::Min)],
        );
        let out = e.select(&q);
        assert_eq!(out.rows, 3);
        assert_eq!(out.aggs, vec![Some(70), Some(30)]);
        // Second run hits the cracked column.
        let out2 = e.select(&q);
        assert_eq!(out2.aggs, out.aggs);
    }

    #[test]
    fn conjunctive_rel_select() {
        let mut e = SelCrackEngine::new(table(), (0, 100));
        let q = SelectQuery::aggregate(
            vec![(0, RangePred::open(0, 10)), (1, RangePred::open(25, 75))],
            vec![(0, AggFunc::Count)],
        );
        assert_eq!(e.select(&q).rows, 3);
    }

    #[test]
    fn updates_respected() {
        let mut e = SelCrackEngine::new(table(), (0, 100));
        let q = SelectQuery::aggregate(vec![(0, RangePred::all())], vec![(0, AggFunc::Count)]);
        assert_eq!(e.select(&q).rows, 5);
        e.insert(&[6, 60]);
        e.delete(0);
        assert_eq!(e.select(&q).rows, 5);
    }

    #[test]
    fn no_predicate_query_respects_updates() {
        let mut e = SelCrackEngine::new(table(), (0, 100));
        e.insert(&[6, 60]);
        e.delete(0); // removes a=5 / b=50
        let q = SelectQuery::aggregate(vec![], vec![(0, AggFunc::Count), (1, AggFunc::Sum)]);
        let out = e.select(&q);
        assert_eq!(out.rows, 5, "empty-predicate scans must see queued updates");
        assert_eq!(out.aggs, vec![Some(5), Some(10 + 90 + 30 + 70 + 60)]);
    }

    #[test]
    fn disjunctive_union() {
        let mut e = SelCrackEngine::new(table(), (0, 100));
        let q = SelectQuery {
            preds: vec![(0, RangePred::open(0, 4)), (1, RangePred::open(60, 100))],
            disjunctive: true,
            aggs: vec![(0, AggFunc::Count)],
            projs: vec![],
        };
        // a in {1,3} plus b in {70,90} → keys {1,3} ∪ {4,2} = 4.
        assert_eq!(e.select(&q).rows, 4);
    }
}
