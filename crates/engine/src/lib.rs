#![warn(missing_docs)]
//! # crackdb-engine
//!
//! One query executor per physical design evaluated in the paper:
//!
//! | Engine | Paper system |
//! |--------|--------------|
//! | [`PlainEngine`] | plain MonetDB (full scans, ordered reconstruction) |
//! | [`PresortedEngine`] | MonetDB on presorted copies |
//! | [`SelCrackEngine`] | selection cracking (CIDR'07) |
//! | [`SidewaysEngine`] | **sideways cracking** (full maps, §3) |
//! | [`PartialEngine`] | **partial sideways cracking** (§4) |
//!
//! All implement the [`query::Engine`] trait over the same query shapes,
//! so every experiment drives them identically and compares phase
//! timings.

pub mod plain;
pub mod partial_engine;
pub mod presorted;
pub mod query;
pub mod selcrack;
pub mod sideways;
pub mod tpch;

pub use partial_engine::PartialEngine;
pub use plain::PlainEngine;
pub use presorted::PresortedEngine;
pub use query::{AggAcc, Engine, JoinQuery, JoinSide, QueryOutput, SelectQuery, Timings};
pub use selcrack::SelCrackEngine;
pub use sideways::SidewaysEngine;
