#![warn(missing_docs)]
//! # crackdb-engine
//!
//! One query executor per physical design evaluated in the paper:
//!
//! | Engine | Paper system |
//! |--------|--------------|
//! | [`PlainEngine`] | plain MonetDB (full scans, ordered reconstruction) |
//! | [`PresortedEngine`] | MonetDB on presorted copies |
//! | [`SelCrackEngine`] | selection cracking (CIDR'07) |
//! | [`SidewaysEngine`] | **sideways cracking** (full maps, §3) |
//! | [`PartialEngine`] | **partial sideways cracking** (§4) |
//!
//! All implement the [`query::Engine`] trait over the same query shapes,
//! so every experiment drives them identically and compares phase
//! timings.
//!
//! Since the access-path refactor, each engine only implements the
//! [`exec::AccessPath`] abstraction — producing the qualifying row set /
//! contiguous area for a single `(attr, RangePred)` restriction and
//! reading values back for it. Predicate ordering, conjunctive and
//! disjunctive combining (the §3.3 bit-vector and intersection
//! strategies), aggregation, projection materialization and phase timing
//! live once in the shared executor [`exec::run_select`]. The
//! [`exec::BatchRunner`] session layer executes query batches with the
//! read-only scan/aggregate kernels data-parallel while cracking stays
//! sequential.
//!
//! On top of both sits the horizontal sharding layer
//! [`exec::ShardedEngine`]: the base table is partitioned row-wise into
//! `N` contiguous shards, each owning a complete, independent inner
//! engine (its own columns, cracker indexes, cracker maps and chunk
//! sets). Queries fan out to every shard on scoped threads — so the
//! *cracking itself* runs in parallel, not just the read-only kernels —
//! and results merge deterministically: aggregates fold through the
//! shared [`query::AggAcc`]/`PartialAgg` semantics (averages from merged
//! sums and counts, never from per-shard averages), projections
//! concatenate in shard order, row counts sum, and per-phase
//! [`query::Timings`] take the max across shards. Round-robin insert and
//! cut-based delete routing keep the sharded engine answer-identical to
//! an unsharded one under the §5 update workloads; the differential
//! suite (`tests/shard_differential.rs`) enforces exactly that for all
//! five engines at several shard counts. Because the router only needs
//! the [`query::Engine`] trait, every scenario composes: 5 engines ×
//! sharded/unsharded × serial/batch execution × crack policy.
//!
//! The adaptive engines additionally take a [`CrackPolicy`]
//! (standard / stochastic / coarse-granular pivot choice, from
//! `crackdb-cracking`) hardening cracking against adversarial
//! workloads; `SelCrackEngine::with_policy`,
//! `SidewaysEngine::with_policy` and `PartialEngine::with_policy`
//! select it explicitly, the plain `new` constructors read the
//! `CRACKDB_POLICY` environment hook (standard when unset; invalid
//! values fall back to standard with one warning — the strict check
//! lives in [`exec::env_policy`] and fails service startup and CI
//! loudly instead of panicking library constructors) so CI drives
//! the differential suites once per policy. A `ShardedEngine` composes
//! per shard: pass the policy through the `make` closure of
//! [`exec::ShardedEngine::build`] and every shard cracks under it —
//! shards never share cracker state, so no cross-shard coordination is
//! needed.
//!
//! Finally, [`exec::Service`] makes the whole stack *servable*: it
//! moves every shard of a `ShardedEngine` onto its own long-lived
//! worker thread (share-nothing — cracking still needs no locks) and
//! hands out cheap, cloneable [`exec::Client`] handles whose
//! `select`/`insert`/`delete`/`join` calls enqueue requests over mpsc
//! channels and await merged results. Requests get a global sequence
//! number under one short router critical section, so execution is
//! linearizable (every client observes its own writes, and a
//! concurrent run replays bit-identically on a serial engine — the
//! concurrent differential suite asserts this); admission control
//! bounds the total queue depth, shutdown drains in-flight queries and
//! returns the `ShardedEngine`, and per-query latencies are recorded
//! for p50/p95/p99 reporting (`service_bench`).

pub mod exec;
pub mod partial_engine;
pub mod plain;
pub mod presorted;
pub mod query;
pub mod selcrack;
pub mod sideways;
pub mod tpch;

pub use crackdb_cracking::CrackPolicy;
pub use exec::service::{Client, Reply, Service, ServiceConfig, ServiceError, WriteReply};
pub use exec::{AccessPath, BatchRunner, RestrictCtx, RowSet, ShardedEngine};
pub use partial_engine::PartialEngine;
pub use plain::PlainEngine;
pub use presorted::PresortedEngine;
pub use query::{
    AggAcc, Engine, JoinQuery, JoinSide, QueryError, QueryOutput, SelectQuery, Timings,
};
pub use selcrack::SelCrackEngine;
pub use sideways::SidewaysEngine;
