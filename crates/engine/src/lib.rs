#![warn(missing_docs)]
//! # crackdb-engine
//!
//! One query executor per physical design evaluated in the paper:
//!
//! | Engine | Paper system |
//! |--------|--------------|
//! | [`PlainEngine`] | plain MonetDB (full scans, ordered reconstruction) |
//! | [`PresortedEngine`] | MonetDB on presorted copies |
//! | [`SelCrackEngine`] | selection cracking (CIDR'07) |
//! | [`SidewaysEngine`] | **sideways cracking** (full maps, §3) |
//! | [`PartialEngine`] | **partial sideways cracking** (§4) |
//!
//! All implement the [`query::Engine`] trait over the same query shapes,
//! so every experiment drives them identically and compares phase
//! timings.
//!
//! Since the access-path refactor, each engine only implements the
//! [`exec::AccessPath`] abstraction — producing the qualifying row set /
//! contiguous area for a single `(attr, RangePred)` restriction and
//! reading values back for it. Predicate ordering, conjunctive and
//! disjunctive combining (the §3.3 bit-vector and intersection
//! strategies), aggregation, projection materialization and phase timing
//! live once in the shared executor [`exec::run_select`]. The
//! [`exec::BatchRunner`] session layer executes query batches with the
//! read-only scan/aggregate kernels data-parallel while cracking stays
//! sequential.

pub mod exec;
pub mod partial_engine;
pub mod plain;
pub mod presorted;
pub mod query;
pub mod selcrack;
pub mod sideways;
pub mod tpch;

pub use exec::{AccessPath, BatchRunner, RestrictCtx, RowSet};
pub use partial_engine::PartialEngine;
pub use plain::PlainEngine;
pub use presorted::PresortedEngine;
pub use query::{AggAcc, Engine, JoinQuery, JoinSide, QueryOutput, SelectQuery, Timings};
pub use selcrack::SelCrackEngine;
pub use sideways::SidewaysEngine;
