//! The plain-MonetDB baseline: full-column scans for selections,
//! order-preserving results, positional in-order tuple reconstruction.

use crate::exec::{self, combine, AccessPath, RestrictCtx, RowSet};
use crate::query::{Engine, JoinQuery, QueryError, QueryOutput, SelectQuery, Timings};
use crackdb_columnstore::column::Table;
use crackdb_columnstore::ops::join::hash_join;
use crackdb_columnstore::ops::parallel::{self, PartialAgg};
use crackdb_columnstore::types::{RangePred, RowId, Val};
use std::collections::HashSet;
use std::time::Instant;

/// Plain column-store executor over one or two base tables.
pub struct PlainEngine {
    base: Table,
    second: Option<Table>,
    tombstones: HashSet<RowId>,
    second_tombstones: HashSet<RowId>,
}

impl PlainEngine {
    /// Single-table engine.
    pub fn new(base: Table) -> Self {
        PlainEngine {
            base,
            second: None,
            tombstones: HashSet::new(),
            second_tombstones: HashSet::new(),
        }
    }

    /// Two-table engine (join experiments). The left/outer table is
    /// `base`.
    pub fn with_second(base: Table, second: Table) -> Self {
        PlainEngine {
            second: Some(second),
            ..PlainEngine::new(base)
        }
    }

    /// Read access to the primary table.
    pub fn base(&self) -> &Table {
        &self.base
    }

    /// Tombstone-aware full scan (parallel kernel when a batch session
    /// enabled workers; key order is preserved either way).
    fn scan(table: &Table, tomb: &HashSet<RowId>, attr: usize, pred: &RangePred) -> Vec<RowId> {
        let mut keys = parallel::par_select(table.column(attr), pred);
        if !tomb.is_empty() {
            keys.retain(|k| !tomb.contains(k));
        }
        keys
    }

    /// Conjunctive selection used by the join path: scan the first
    /// predicate, positionally refine with the rest (order-preserving
    /// throughout).
    fn select_keys(
        table: &Table,
        tomb: &HashSet<RowId>,
        preds: &[(usize, RangePred)],
    ) -> Vec<RowId> {
        if preds.is_empty() {
            return (0..table.num_rows() as RowId)
                .filter(|k| tomb.is_empty() || !tomb.contains(k))
                .collect();
        }
        let mut keys = Self::scan(table, tomb, preds[0].0, &preds[0].1);
        for (attr, pred) in &preds[1..] {
            let col = table.column(*attr);
            combine::refine_keys(&mut keys, pred, |k| col.get(k));
        }
        keys
    }
}

impl AccessPath for PlainEngine {
    fn name(&self) -> &'static str {
        "MonetDB"
    }

    fn restrict(&mut self, attr: usize, pred: &RangePred, _ctx: &RestrictCtx) -> RowSet {
        RowSet::keys(Self::scan(&self.base, &self.tombstones, attr, pred), true)
    }

    fn refine(&mut self, rows: &mut RowSet, attr: usize, pred: &RangePred, _ctx: &RestrictCtx) {
        let RowSet::Keys { keys, .. } = rows else {
            unreachable!("plain scans produce key lists")
        };
        let col = self.base.column(attr);
        combine::refine_keys(keys, pred, |k| col.get(k));
    }

    fn extend(&mut self, rows: &mut RowSet, attr: usize, pred: &RangePred, _ctx: &RestrictCtx) {
        let RowSet::Keys { keys, .. } = rows else {
            unreachable!("plain scans produce key lists")
        };
        let col = self.base.column(attr);
        let mut merged = crackdb_columnstore::ops::select::union_scan(col, keys, pred);
        if !self.tombstones.is_empty() {
            merged.retain(|k| !self.tombstones.contains(k));
        }
        *keys = merged;
    }

    fn unrestricted(&mut self, _ctx: &RestrictCtx) -> RowSet {
        RowSet::keys(
            (0..self.base.num_rows() as RowId)
                .filter(|k| self.tombstones.is_empty() || !self.tombstones.contains(k))
                .collect(),
            true,
        )
    }

    fn fetch(
        &mut self,
        rows: &RowSet,
        attrs: &[usize],
        consume: &mut dyn FnMut(usize, Val),
    ) -> Result<(), QueryError> {
        let RowSet::Keys { keys, .. } = rows else {
            unreachable!("plain scans produce key lists")
        };
        // In-order positional lookups per projected attribute (cache
        // friendly — the ordered-reconstruction pattern of the baseline).
        for &attr in attrs {
            let col = self.base.column(attr);
            for &k in keys {
                consume(attr, col.get(k));
            }
        }
        Ok(())
    }

    fn partial_agg(&mut self, rows: &RowSet, attr: usize) -> Option<PartialAgg> {
        let RowSet::Keys { keys, .. } = rows else {
            return None;
        };
        Some(parallel::par_agg_gather(self.base.column(attr), keys))
    }
}

impl Engine for PlainEngine {
    fn name(&self) -> &'static str {
        AccessPath::name(self)
    }

    fn select(&mut self, q: &SelectQuery) -> QueryOutput {
        exec::run_select(self, q)
    }

    fn join(&mut self, q: &JoinQuery) -> QueryOutput {
        let second = self.second.as_ref().expect("join needs a second table");
        let mut out = QueryOutput::default();
        let mut timings = Timings::default();

        // Selections on both tables.
        let t0 = Instant::now();
        let lkeys = Self::select_keys(&self.base, &self.tombstones, &q.left.preds);
        let rkeys = Self::select_keys(second, &self.second_tombstones, &q.right.preds);
        timings.select = t0.elapsed();

        // Pre-join tuple reconstruction: fetch join attributes (ordered
        // keys → sequential pattern).
        let t1 = Instant::now();
        let lcol = self.base.column(q.left.join_attr);
        let rcol = second.column(q.right.join_attr);
        let lpairs: Vec<(RowId, Val)> = lkeys.iter().map(|&k| (k, lcol.get(k))).collect();
        let rpairs: Vec<(RowId, Val)> = rkeys.iter().map(|&k| (k, rcol.get(k))).collect();
        timings.reconstruct = t1.elapsed();

        let t2 = Instant::now();
        let matched = hash_join(&lpairs, &rpairs);
        timings.join = t2.elapsed();
        out.rows = matched.len();

        // Post-join reconstruction: inner-side keys are in hash order →
        // random access into full base columns.
        let t3 = Instant::now();
        out.aggs = exec::agg_matched(&matched, &q.left, true, |attr, k| {
            self.base.column(attr).get(k)
        });
        out.aggs
            .extend(exec::agg_matched(&matched, &q.right, false, |attr, k| {
                second.column(attr).get(k)
            }));
        timings.post_join = t3.elapsed();
        out.timings = timings;
        out
    }

    fn insert(&mut self, row: &[Val]) {
        self.base.append_row(row);
    }

    fn delete(&mut self, key: RowId) {
        self.tombstones.insert(key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crackdb_columnstore::column::Column;
    use crackdb_columnstore::types::AggFunc;

    fn table() -> Table {
        let mut t = Table::new();
        t.add_column("a", Column::new(vec![5, 1, 9, 3, 7]));
        t.add_column("b", Column::new(vec![50, 10, 90, 30, 70]));
        t
    }

    #[test]
    fn select_aggregate() {
        let mut e = PlainEngine::new(table());
        let q = SelectQuery::aggregate(
            vec![(0, RangePred::open(2, 8))],
            vec![(1, AggFunc::Max), (1, AggFunc::Min)],
        );
        let out = e.select(&q);
        assert_eq!(out.rows, 3);
        assert_eq!(out.aggs, vec![Some(70), Some(30)]);
    }

    #[test]
    fn insert_and_delete_visible() {
        let mut e = PlainEngine::new(table());
        e.insert(&[4, 40]);
        e.delete(1); // removes a=1
        let q = SelectQuery::aggregate(
            vec![(0, RangePred::all())],
            vec![(0, AggFunc::Count), (0, AggFunc::Min)],
        );
        let out = e.select(&q);
        assert_eq!(out.aggs, vec![Some(5), Some(3)]);
    }

    #[test]
    fn join_query() {
        let mut r = Table::new();
        r.add_column("r1", Column::new(vec![100, 200, 300]));
        r.add_column("j", Column::new(vec![1, 2, 3]));
        let mut s = Table::new();
        s.add_column("s1", Column::new(vec![11, 22]));
        s.add_column("j", Column::new(vec![2, 3]));
        let mut e = PlainEngine::with_second(r, s);
        let q = JoinQuery {
            left: JoinSide {
                preds: vec![(
                    0,
                    RangePred::greater(crackdb_columnstore::types::Bound::inclusive(150)),
                )],
                join_attr: 1,
                aggs: vec![(0, AggFunc::Max)],
            },
            right: JoinSide {
                preds: vec![],
                join_attr: 1,
                aggs: vec![(0, AggFunc::Sum)],
            },
        };
        let out = e.join(&q);
        assert_eq!(out.rows, 2);
        assert_eq!(out.aggs, vec![Some(300), Some(33)]);
    }

    #[test]
    fn deleted_rows_stay_out_of_disjunctions() {
        let mut e = PlainEngine::new(table());
        e.delete(2); // removes a=9 / b=90
        let q = SelectQuery {
            preds: vec![(0, RangePred::open(0, 4)), (1, RangePred::open(60, 100))],
            disjunctive: true,
            aggs: vec![(0, AggFunc::Count)],
            projs: vec![],
        };
        // a in {1,3} plus b=70 (b=90 is deleted) → 3 rows.
        assert_eq!(e.select(&q).rows, 3);
    }

    use crate::query::JoinSide;
}
