//! The engine-wide snapshot the lock-free read path executes against.
//!
//! A [`ColumnSnapshot`](crackdb_cracking::ColumnSnapshot) freezes one
//! cracker column's converged pieces; an [`EngineSnapshot`] bundles one
//! per cracked attribute together with the value source the owner path
//! uses for everything that is *not* the head predicate: positional
//! lookups into the base columns. The base table of a cracking engine
//! is append-only (deletes ripple through the cracker columns, never
//! the base), so a frozen clone of the base plus the rows appended
//! since covers every key a published piece can mention.
//!
//! Planning ([`EngineSnapshot::plan`]) mirrors the owner path's plan
//! shape exactly: one predicate restricts through its column's piece
//! catalog (the head), every other predicate refines by positional
//! lookup, aggregates fold through [`AggAcc`] — the same accumulator
//! the serial engines use, so answers merge bit-identically with
//! worker-path partials. A query plans successfully only when its head
//! predicate resolves against published (converged, update-free)
//! pieces; otherwise the caller falls back to the sequenced worker
//! hop. Execution ([`EngineSnapshot::execute`]) is pure reads over
//! immutable data — no locks, no `&mut`.

use crate::query::{AggAcc, QueryOutput, SelectQuery};
use crackdb_columnstore::column::Table;
use crackdb_columnstore::types::{RangePred, RowId, Val};
use crackdb_core::BitVec;
use crackdb_cracking::{ColumnSnapshot, SnapSpan};
use std::sync::Arc;
use std::time::Instant;

/// Immutable picture of one engine's converged state: per-attribute
/// piece catalogs plus the positional value source for refinement,
/// aggregation and projection.
#[derive(Debug)]
pub struct EngineSnapshot {
    /// Piece catalog per attribute (`None` = attribute never cracked).
    cols: Vec<Option<Arc<ColumnSnapshot<RowId>>>>,
    /// The base table as of the first snapshot (cracking engines never
    /// mutate base rows in place, so this clone stays valid).
    frozen: Arc<Table>,
    /// Rows in `frozen` — keys below this resolve there.
    frozen_rows: usize,
    /// Rows appended after the freeze, in key order (key
    /// `frozen_rows + i` is `appended[i]`).
    appended: Arc<Vec<Vec<Val>>>,
}

/// A resolved fast-path plan: scan `span` of `col`'s piece catalog,
/// filtering edge pieces with predicate `head_pred` (an index into the
/// query's predicate list; `None` for unrestricted scans).
#[derive(Debug, Clone, Copy)]
pub struct SnapPlan {
    col: usize,
    span: SnapSpan,
    head_pred: Option<usize>,
}

impl EngineSnapshot {
    /// Assemble a snapshot from its parts (called by the engines).
    pub fn new(
        cols: Vec<Option<Arc<ColumnSnapshot<RowId>>>>,
        frozen: Arc<Table>,
        frozen_rows: usize,
        appended: Arc<Vec<Vec<Val>>>,
    ) -> Self {
        EngineSnapshot {
            cols,
            frozen,
            frozen_rows,
            appended,
        }
    }

    /// The value of `attr` for row `key`: frozen rows positionally,
    /// appended rows from the overlay.
    #[inline]
    fn value_of(&self, attr: usize, key: RowId) -> Val {
        let k = key as usize;
        if k < self.frozen_rows {
            self.frozen.column(attr).get(key)
        } else {
            self.appended[k - self.frozen_rows][attr]
        }
    }

    /// Resolve `q` to a fast-path plan, or `None` when any part of the
    /// query needs the owner thread (disjunctions over key-set unions,
    /// an unpublished piece in every candidate head's span, or no
    /// cracked attribute at all).
    pub fn plan(&self, q: &SelectQuery) -> Option<SnapPlan> {
        if q.disjunctive && !q.preds.is_empty() {
            return None;
        }
        if q.preds.is_empty() {
            // Unrestricted scan: any fully covered catalog enumerates
            // exactly the live rows (full coverage implies the column
            // has no staged updates hidden anywhere).
            let col = self
                .cols
                .iter()
                .position(|c| c.as_ref().is_some_and(|s| s.fully_covered()))?;
            let snap = self.cols[col].as_ref().expect("position() found Some");
            return Some(SnapPlan {
                col,
                span: SnapSpan {
                    first: 0,
                    last: snap.piece_count(),
                },
                head_pred: None,
            });
        }
        // The first predicate whose catalog resolves becomes the head;
        // the rest refine positionally, exactly like the owner path's
        // restrict-then-refine plans.
        for (i, (attr, pred)) in q.preds.iter().enumerate() {
            let Some(snap) = self.cols.get(*attr).and_then(Option::as_ref) else {
                continue;
            };
            if let Some(span) = snap.resolve(pred) {
                return Some(SnapPlan {
                    col: *attr,
                    span,
                    head_pred: Some(i),
                });
            }
        }
        None
    }

    /// Execute a resolved plan for `q` (the statistics-block shard
    /// query). Pure reads; the output merges with worker partials via
    /// the shared statistics-block fold.
    pub fn execute(&self, plan: &SnapPlan, q: &SelectQuery) -> QueryOutput {
        let t0 = Instant::now();
        let snap = self.cols[plan.col]
            .as_ref()
            .expect("plan resolved against this catalog");
        let head_pred: Option<&RangePred> = plan.head_pred.map(|i| &q.preds[i].1);
        let rest: Vec<(usize, &RangePred)> = q
            .preds
            .iter()
            .enumerate()
            .filter(|&(i, _)| Some(i) != plan.head_pred)
            .map(|(_, (attr, pred))| (*attr, pred))
            .collect();
        let mut accs: Vec<AggAcc> = q.aggs.iter().map(|&(_, f)| AggAcc::new(f)).collect();
        let mut out = QueryOutput {
            proj_values: q.projs.iter().map(|_| Vec::new()).collect(),
            ..QueryOutput::default()
        };
        for i in plan.span.first..plan.span.last {
            let piece = snap.piece(i).expect("plan resolved: span is published");
            // Interior pieces qualify wholesale; only the span's edge
            // pieces must test the head predicate per value.
            let edgeish = i == plan.span.first || i + 1 == plan.span.last;
            let n = piece.tail.len();

            // Wholesale fast path: every tuple of an interior piece of a
            // single-predicate plan qualifies — fold without building a
            // bit vector.
            if (!edgeish || head_pred.is_none()) && rest.is_empty() {
                out.rows += n;
                for (acc, &(attr, _)) in accs.iter_mut().zip(&q.aggs) {
                    for &k in &piece.tail {
                        acc.push(self.value_of(attr, k));
                    }
                }
                for (vals, &attr) in out.proj_values.iter_mut().zip(&q.projs) {
                    vals.extend(piece.tail.iter().map(|&k| self.value_of(attr, k)));
                }
                continue;
            }

            // Vectorized filtering: a word-level qualifying bit vector
            // per piece — head predicate over the clustered head values,
            // then one `refine` sweep per residual predicate (each sweep
            // only probes tuples still set, §3.3's bit-vector operators).
            let mut bv = match (edgeish, head_pred) {
                (true, Some(p)) => BitVec::from_fn(n, |j| p.matches(piece.head[j])),
                _ => BitVec::ones(n),
            };
            for &(attr, pred) in &rest {
                bv.refine(|j| pred.matches(self.value_of(attr, piece.tail[j])));
            }
            out.rows += bv.count_ones();
            for j in bv.iter_ones() {
                let k = piece.tail[j];
                for (acc, &(attr, _)) in accs.iter_mut().zip(&q.aggs) {
                    acc.push(self.value_of(attr, k));
                }
                for (vals, &attr) in out.proj_values.iter_mut().zip(&q.projs) {
                    vals.push(self.value_of(attr, k));
                }
            }
        }
        out.aggs = accs.iter().map(AggAcc::finish).collect();
        out.timings.select = t0.elapsed();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Engine;
    use crate::selcrack::SelCrackEngine;
    use crackdb_columnstore::column::Column;
    use crackdb_columnstore::types::AggFunc;

    fn engine(n: i64) -> SelCrackEngine {
        let mut t = Table::new();
        t.add_column(
            "a",
            Column::new((0..n).map(|i| (i * 7919) % 1000).collect()),
        );
        t.add_column("b", Column::new((0..n).collect()));
        SelCrackEngine::new(t, (0, 1000))
    }

    fn range_q(lo: Val, hi: Val) -> SelectQuery {
        SelectQuery::aggregate(
            vec![(0, RangePred::open(lo, hi))],
            vec![
                (1, AggFunc::Count),
                (1, AggFunc::Sum),
                (1, AggFunc::Min),
                (1, AggFunc::Max),
            ],
        )
    }

    /// Warm an engine until attribute 0's catalog converges, then
    /// compare snapshot answers against the owner path on fresh,
    /// unaligned predicates.
    #[test]
    fn snapshot_answers_match_the_owner_path() {
        let mut e = engine(4000);
        for lo in (0..1000).step_by(50) {
            e.select(&range_q(lo, lo + 37));
        }
        let snap = e.snapshot().expect("selcrack publishes snapshots");
        for (lo, hi) in [(3, 510), (111, 112), (0, 1000), (700, 701)] {
            let q = range_q(lo, hi);
            let plan = snap
                .plan(&q)
                .unwrap_or_else(|| panic!("({lo},{hi}) resolves"));
            let fast = snap.execute(&plan, &q);
            let owner = e.select(&q);
            assert_eq!(fast.rows, owner.rows, "({lo},{hi})");
            assert_eq!(fast.aggs, owner.aggs, "({lo},{hi})");
        }
    }

    #[test]
    fn refinement_and_projection_use_base_values() {
        let mut e = engine(4000);
        for lo in (0..1000).step_by(25) {
            e.select(&range_q(lo, lo + 60));
        }
        let snap = e.snapshot().expect("snapshot");
        let q = SelectQuery {
            preds: vec![
                (0, RangePred::open(100, 400)),
                (1, RangePred::open(0, 2000)),
            ],
            disjunctive: false,
            aggs: vec![(1, AggFunc::Count)],
            projs: vec![1],
        };
        let plan = snap.plan(&q).expect("head resolves");
        let fast = snap.execute(&plan, &q);
        let owner = e.select(&q);
        assert_eq!(fast.rows, owner.rows);
        assert_eq!(fast.aggs, owner.aggs);
        let (mut a, mut b) = (fast.proj_values[0].clone(), owner.proj_values[0].clone());
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "projections agree as multisets");
    }

    #[test]
    fn disjunctive_queries_do_not_plan() {
        let mut e = engine(2000);
        for lo in (0..1000).step_by(50) {
            e.select(&range_q(lo, lo + 37));
        }
        let snap = e.snapshot().expect("snapshot");
        let q = SelectQuery {
            preds: vec![(0, RangePred::open(0, 10)), (0, RangePred::open(50, 60))],
            disjunctive: true,
            aggs: vec![(1, AggFunc::Count)],
            projs: vec![],
        };
        assert!(snap.plan(&q).is_none());
    }

    #[test]
    fn staged_updates_block_overlapping_plans_only() {
        let mut e = engine(4000);
        for lo in (0..1000).step_by(25) {
            e.select(&range_q(lo, lo + 60));
        }
        // Queue an insert with value 150: pieces covering 150 hide.
        e.insert(&[150, 99999]);
        let snap = e.snapshot().expect("snapshot");
        assert!(
            snap.plan(&range_q(140, 160)).is_none(),
            "a read overlapping the staged insert must take the owner path"
        );
        let q = range_q(600, 640);
        let plan = snap.plan(&q).expect("non-overlapping reads still resolve");
        let fast = snap.execute(&plan, &q);
        let owner = e.select(&q);
        assert_eq!(fast.aggs, owner.aggs);
    }

    /// After an insert is merged, the appended overlay must serve the
    /// new row's values for refinement and aggregation.
    #[test]
    fn appended_rows_resolve_through_the_overlay() {
        let mut e = engine(4000);
        for lo in (0..1000).step_by(25) {
            e.select(&range_q(lo, lo + 60));
        }
        e.snapshot().expect("freeze the base before the insert");
        e.insert(&[150, 77777]);
        // Merge the staged insert by querying over it.
        let q = range_q(100, 200);
        let owner = e.select(&q);
        let snap = e.snapshot().expect("snapshot after merge");
        let plan = snap.plan(&q).expect("merged range resolves again");
        let fast = snap.execute(&plan, &q);
        assert_eq!(fast.aggs, owner.aggs);
        assert_eq!(
            fast.aggs[3],
            Some(77777),
            "the appended row's b-value flows through aggregation"
        );
    }

    #[test]
    fn unrestricted_scan_requires_full_coverage() {
        let mut e = engine(4000);
        for lo in (0..1000).step_by(25) {
            e.select(&range_q(lo, lo + 60));
        }
        let q = SelectQuery::aggregate(vec![], vec![(1, AggFunc::Count), (1, AggFunc::Sum)]);
        let snap = e.snapshot().expect("snapshot");
        if let Some(plan) = snap.plan(&q) {
            let fast = snap.execute(&plan, &q);
            let owner = e.select(&q);
            assert_eq!(fast.aggs, owner.aggs);
        }
        // A staged delete anywhere kills full coverage on every column.
        e.delete(0);
        let snap = e.snapshot().expect("snapshot");
        assert!(
            snap.plan(&q).is_none(),
            "unrestricted scans must observe staged deletes via fallback"
        );
    }
}
