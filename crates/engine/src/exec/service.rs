//! The concurrent query service: share-nothing serving over the
//! sharded engines.
//!
//! Every engine exposes `&mut self` select paths — adaptive indexing
//! *reorganizes* the physical layout during query processing, so a
//! query is inherently a write. One engine value can therefore serve
//! only one query at a time, and nothing in the library so far lets
//! many clients query concurrently. [`Service`] closes that gap without
//! adding a single lock to the cracking hot paths, by making the
//! sharing disappear instead (the same move [`ShardedEngine`] made for
//! intra-query parallelism):
//!
//! * **Share-nothing workers.** [`Service::start`] takes ownership of a
//!   [`ShardedEngine`], decomposes it, and moves each shard's complete
//!   inner engine — columns, cracker indexes, maps, chunk sets — onto
//!   its own long-lived worker thread (actor style). A worker is the
//!   *only* thread that ever touches its shard, so cracking remains
//!   plain single-threaded code; concurrency lives entirely in the
//!   channels between clients and workers.
//! * **Cheap, cloneable clients.** [`Service::client`] hands out
//!   [`Client`] handles (an `Arc` plus a shard count). A client call
//!   sequences the request in the router, enqueues it on the relevant
//!   worker queues over mpsc channels, then blocks on a private reply
//!   channel and merges the per-shard partial results — with exactly
//!   the [`ShardedEngine`] merge semantics (statistics-block
//!   aggregates, shard-order projection concatenation, summed rows,
//!   max-across-shards timings), so a served answer is bit-identical
//!   to the in-process router's.
//!
//! ## Sequencing: a total order, observed by everyone
//!
//! The router assigns every request a global sequence number and
//! enqueues it — *inside the same critical section* — on the queue of
//! every worker that participates (all workers for reads, exactly one
//! for writes). Each worker drains its queue in FIFO order, so each
//! worker executes its subsequence of requests in global sequence
//! order, and the service as a whole is linearizable: answers are
//! identical to replaying the committed sequence serially on one
//! unsharded engine (the concurrent differential suite asserts exactly
//! that, bit for bit). Two useful corollaries:
//!
//! * **Read-your-writes.** A client's next call is sequenced after its
//!   previous one returned, hence after its own writes everywhere.
//! * **Deterministic replay.** Every reply carries its sequence
//!   number, so a concurrent run can be audited offline against a
//!   serial engine.
//!
//! ## Admission control, shutdown, hygiene
//!
//! The service bounds its total queue depth: at most
//! [`ServiceConfig::queue_depth`] requests may be in flight (queued or
//! executing) at once, and calls beyond the bound fail fast with
//! [`ServiceError::Overloaded`] instead of growing queues without
//! bound under open-loop overload. [`Service::shutdown`] is graceful:
//! it closes admission, enqueues a stop marker *behind* all accepted
//! work (FIFO queues drain in-flight queries first), joins the
//! workers, and reassembles — and returns — the [`ShardedEngine`], so
//! serving is a phase in an engine's life, not a one-way door.
//!
//! A panicking worker must not take the service down with it: clients
//! with requests on a dead shard get [`ServiceError::WorkerLost`] (the
//! reply channel disconnects), later calls fail the same way at
//! enqueue time, and every internal mutex is recovered from poisoning
//! — one crashed query never cascades into unrelated failures. The
//! worker's original panic payload is preserved and re-raised on the
//! thread that calls [`Service::shutdown`].
//!
//! ## Lock-free snapshot reads
//!
//! The sequenced worker hop is the *fallback* read path. Each worker
//! publishes its engine's converged-piece snapshot
//! ([`EngineSnapshot`], built from
//! [`ColumnSnapshot`](crackdb_cracking::ColumnSnapshot) catalogs) in
//! a [`Published`] cell after every work item, stamped with the count
//! of writes it has applied. A select whose every predicate resolves
//! against every shard's published pieces executes right on the
//! client's thread — no channel send, no worker queue, no `&mut`
//! anywhere — while cracking, staged-update merges and snapshot
//! (re)builds stay on the shard's single owner thread.
//!
//! The fast path is still sequenced: under one router-lock
//! acquisition the client validates that every shard's view has
//! applied exactly the writes sequenced for it
//! (`Router::writes_sequenced`) and that the query plans, **then**
//! commits a sequence number. Validation before commit keeps the
//! committed order gapless (a committed-then-abandoned read would
//! break serial replay), and the lock ensures no write sequences
//! between validation and commit — so the snapshot answer equals the
//! serial replay at that position, bit for bit, and the differential
//! suite asserts it with the fast path forced on and off
//! (`CRACKDB_SNAPSHOT_READS`). Memory safety of the concurrently
//! republished views is hand-rolled epoch-based reclamation
//! ([`crackdb_core::epoch`]): readers pin, workers retire old views
//! into a limbo list freed only once no pin can still reference them.
//!
//! Per-call wall-clock latency (enqueue to merged result) is recorded
//! in a per-client bounded ring (most recent
//! [`ServiceConfig::latency_capacity`] samples each, so memory never
//! grows per query) — completions never contend on a service-wide
//! lock; [`Service::take_latencies`] drains all rings plus the
//! flushed samples of dropped clients for p50/p95/p99 reporting
//! (`bench::harness::Percentiles`, used by the `service_bench` bin to
//! emit `BENCH_service.json`).

use super::shard::{
    distinct_attrs, locate_key, merge_join_outputs, merge_select_outputs, shard_join_query,
    shard_select_query, ShardedEngine,
};
use super::snapshot::EngineSnapshot;
use crate::query::{Engine, JoinQuery, QueryOutput, SelectQuery};
use crackdb_columnstore::shard::ShardCuts;
use crackdb_columnstore::types::{RowId, Val};
use crackdb_core::{lock_unpoisoned, EpochDomain, EpochReader, Published};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, MutexGuard, Weak};
use std::thread::JoinHandle;
use std::time::Instant;

/// Global sequence number of a request: the position of the request in
/// the service's total execution order.
pub type Seq = u64;

/// Tuning knobs for [`Service::with_config`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Admission bound: the maximum number of requests in flight
    /// (queued on worker channels or executing) across the whole
    /// service. Calls beyond the bound fail fast with
    /// [`ServiceError::Overloaded`]. Closed-loop clients occupy at most
    /// one slot each, so the default comfortably serves hundreds of
    /// concurrent sessions while still bounding queue growth under
    /// open-loop overload.
    pub queue_depth: usize,
    /// Capacity of the latency ring: the service keeps the most recent
    /// `latency_capacity` per-call latencies for
    /// [`Service::take_latencies`] (older samples are overwritten, so a
    /// long-lived service's memory stays bounded even if nobody
    /// polls). `0` disables latency capture entirely — completions
    /// then touch no shared state at all.
    pub latency_capacity: usize,
    /// Enable the lock-free snapshot read path: selects whose every
    /// predicate resolves against the shards' published converged
    /// pieces execute on the client's own thread, skipping the worker
    /// queues entirely (they still take a sequence number, so the
    /// total order and its replay guarantees are unchanged). Defaults
    /// to the `CRACKDB_SNAPSHOT_READS` environment selection (on when
    /// unset).
    pub snapshot_reads: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_depth: 1024,
            latency_capacity: 1 << 16,
            snapshot_reads: super::snapshot_reads_from_env(),
        }
    }
}

/// Why a service call did not produce a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The admission bound ([`ServiceConfig::queue_depth`]) was reached;
    /// retry later or shed load.
    Overloaded {
        /// Requests in flight when the call was rejected.
        in_flight: usize,
    },
    /// [`Service::shutdown`] has begun; no new work is admitted.
    ShuttingDown,
    /// A shard worker is gone (it panicked), so the request cannot be
    /// answered completely. The panic payload is re-raised by
    /// [`Service::shutdown`].
    WorkerLost,
    /// A delete named a key that no row ever had.
    UnknownKey(RowId),
    /// Invalid service-startup configuration (e.g. an unparseable
    /// `CRACKDB_POLICY` environment selection).
    Config(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Overloaded { in_flight } => {
                write!(f, "service overloaded: {in_flight} requests in flight")
            }
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::WorkerLost => write!(f, "a shard worker is gone (it panicked)"),
            ServiceError::UnknownKey(k) => write!(f, "key {k} does not name a row"),
            ServiceError::Config(msg) => write!(f, "invalid service configuration: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// A query answer from the service: the merged [`QueryOutput`] plus the
/// global sequence number at which the query executed.
#[derive(Debug, Clone)]
pub struct Reply {
    /// Position in the service's total execution order.
    pub seq: Seq,
    /// The merged result, bit-identical to [`ShardedEngine`]'s.
    pub output: QueryOutput,
}

/// Acknowledgement of a write: its sequence number and, for inserts,
/// the global key the new row got (the same `n₀ + j` key an unsharded
/// engine would assign to the `j`-th insert).
#[derive(Debug, Clone, Copy)]
pub struct WriteReply {
    /// Position in the service's total execution order.
    pub seq: Seq,
    /// Global key of the inserted row (`None` for deletes).
    pub key: Option<RowId>,
}

/// One unit of work on a shard worker's queue.
enum Work {
    Select {
        q: Arc<SelectQuery>,
        reply: Sender<(usize, QueryOutput)>,
    },
    Join {
        q: Arc<JoinQuery>,
        reply: Sender<(usize, QueryOutput)>,
    },
    Insert {
        row: Vec<Val>,
        reply: Sender<()>,
    },
    Delete {
        key: RowId,
        reply: Sender<()>,
    },
    /// Graceful-shutdown marker: FIFO ordering guarantees everything
    /// enqueued before it has been executed when it is reached.
    Stop,
}

/// The sequencing state every request passes through. Held only while
/// assigning a sequence number and enqueueing — never during query
/// execution — so the critical section is a few channel sends.
struct Router {
    /// One queue sender per shard worker, in shard order.
    queues: Vec<Sender<Work>>,
    /// Partition cuts for delete-key routing.
    cuts: ShardCuts,
    /// Round-robin insert cursor (count of inserts so far).
    inserted: usize,
    /// Next global sequence number.
    next_seq: Seq,
    /// Writes sequenced per shard so far. A snapshot read may commit
    /// only when every shard's published view has applied exactly this
    /// many writes — then the view reflects every write sequenced
    /// before the read, which is what the total order promises.
    writes_sequenced: Vec<u64>,
    /// Set by [`Service::shutdown`]: reject new work.
    closed: bool,
}

/// What a shard worker publishes for the lock-free read path: its
/// engine's converged-piece snapshot, stamped with how many writes the
/// worker had applied when it was taken. Readers access it through
/// [`Published`] under an epoch pin; the `Arc`s inside keep the
/// snapshot data alive after the view itself is retired.
struct ShardView {
    writes_applied: u64,
    snap: Arc<EngineSnapshot>,
}

/// State shared by the service handle and every client.
struct Shared {
    router: Mutex<Router>,
    /// Requests currently in flight (admission control).
    in_flight: AtomicUsize,
    queue_depth: usize,
    /// Set once a worker is known dead: later calls fail fast in
    /// [`Client::admit`] instead of enqueueing doomed work on the
    /// surviving shards.
    failed: AtomicBool,
    /// Copy of [`ServiceConfig::latency_capacity`], checked before
    /// taking the latency lock so disabled capture costs nothing.
    latency_capacity: usize,
    /// Latency-sample registry: weak handles to every live client's
    /// private ring plus the flushed samples of dropped clients.
    /// Locked only when clients are created/dropped and when
    /// [`Service::take_latencies`] drains — never per completion.
    latencies: Mutex<LatencyHub>,
    /// Epoch domain protecting the published shard views.
    epoch: Arc<EpochDomain>,
    /// One published view cell per shard worker, in shard order.
    views: Vec<Arc<Published<ShardView>>>,
    /// Copy of [`ServiceConfig::snapshot_reads`].
    snapshot_reads: bool,
    /// Selects served by the snapshot path (observability; the
    /// differential suite asserts the path actually fired / stayed
    /// cold).
    snapshot_hits: AtomicU64,
    /// Adaptive-advisor policy switches across all shard engines,
    /// accumulated per work item by the shard workers (observability:
    /// 0 forever under a static policy configuration).
    policy_switches: Arc<AtomicU64>,
}

/// Bounded ring of the most recent per-call latencies: a long-lived
/// service must not grow memory per query, whether or not anyone polls
/// [`Service::take_latencies`].
struct LatencyRing {
    samples: Vec<u64>,
    /// Overwrite position once `samples` reached capacity.
    next: usize,
    capacity: usize,
}

impl LatencyRing {
    fn new(capacity: usize) -> Self {
        LatencyRing {
            samples: Vec::with_capacity(capacity.min(1 << 16)),
            next: 0,
            capacity,
        }
    }

    fn push(&mut self, nanos: u64) {
        if self.samples.len() < self.capacity {
            self.samples.push(nanos);
        } else {
            self.samples[self.next] = nanos;
            self.next = (self.next + 1) % self.capacity;
        }
    }

    fn take(&mut self) -> Vec<u64> {
        self.next = 0;
        std::mem::take(&mut self.samples)
    }
}

/// The latency-sample registry behind [`Service::take_latencies`].
/// Completions touch only their client's private ring (uncontended in
/// the steady state); this hub is locked on the cold paths — client
/// creation, client drop (flushing the private samples into
/// `orphans`), and draining.
struct LatencyHub {
    /// Live clients' rings; dead entries are pruned on registration
    /// and drain.
    rings: Vec<Weak<Mutex<LatencyRing>>>,
    /// Samples of clients that were dropped before a drain.
    orphans: LatencyRing,
}

impl LatencyHub {
    /// Register a fresh per-client ring (`None` when capture is
    /// disabled, so completions never allocate or lock).
    fn register(shared: &Shared) -> Option<Arc<Mutex<LatencyRing>>> {
        if shared.latency_capacity == 0 {
            return None;
        }
        let ring = Arc::new(Mutex::new(LatencyRing::new(shared.latency_capacity)));
        let mut hub = lock_unpoisoned(&shared.latencies);
        hub.rings.retain(|w| w.strong_count() > 0);
        hub.rings.push(Arc::downgrade(&ring));
        Some(ring)
    }

    /// Drain everything: orphaned samples first, then every live
    /// client's ring.
    fn drain(&mut self) -> Vec<u64> {
        let mut samples = self.orphans.take();
        self.rings.retain(|w| w.strong_count() > 0);
        for weak in &self.rings {
            if let Some(ring) = weak.upgrade() {
                samples.extend(lock_unpoisoned(&ring).take());
            }
        }
        samples
    }
}

/// RAII in-flight slot: released on completion *and* on every error
/// path, so failed calls can never leak admission capacity.
struct Slot<'a>(&'a AtomicUsize);

impl Drop for Slot<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// The shard-worker loop: exclusively owns one shard's inner engine,
/// drains its queue in FIFO order, posts partial results, and returns
/// the engine when stopped (for [`Service::shutdown`] to reassemble).
/// Reply sends ignore errors — a client that gave up on a reply is not
/// the worker's problem.
///
/// After each work item the worker re-publishes its [`ShardView`] when
/// anything changed: engines fingerprint their state, so the common
/// repeat-query case costs one `Arc` comparison. All residual work —
/// cracking, merging staged updates, snapshot building — happens here,
/// on the shard's single owner thread; readers only ever see the
/// immutable published result.
fn worker<E: Engine>(
    shard: usize,
    mut engine: E,
    queue: Receiver<Work>,
    view: Arc<Published<ShardView>>,
    publish: bool,
    switches: Arc<AtomicU64>,
) -> E {
    let mut writes_applied: u64 = 0;
    let mut last: Option<Arc<EngineSnapshot>> = None;
    let mut last_writes = u64::MAX;
    let mut last_switches: u64 = 0;
    while let Ok(work) = queue.recv() {
        match work {
            Work::Select { q, reply } => {
                let _ = reply.send((shard, engine.select(&q)));
            }
            Work::Join { q, reply } => {
                let _ = reply.send((shard, engine.join(&q)));
            }
            Work::Insert { row, reply } => {
                engine.insert(&row);
                writes_applied += 1;
                let _ = reply.send(());
            }
            Work::Delete { key, reply } => {
                engine.delete(key);
                writes_applied += 1;
                let _ = reply.send(());
            }
            Work::Stop => break,
        }
        // Publish this shard's advisor switches as a delta: the shared
        // counter is only ever added to, so per-shard accumulation
        // stays exact without a subtraction race.
        let now_switches = engine.policy_switches();
        if now_switches > last_switches {
            switches.fetch_add(now_switches - last_switches, Ordering::Relaxed);
            last_switches = now_switches;
        }
        if !publish {
            continue;
        }
        if let Some(snap) = engine.snapshot() {
            let unchanged = last_writes == writes_applied
                && last.as_ref().is_some_and(|l| Arc::ptr_eq(l, &snap));
            if !unchanged {
                view.publish(ShardView {
                    writes_applied,
                    snap: snap.clone(),
                });
                last = Some(snap);
                last_writes = writes_applied;
            }
        }
    }
    engine
}

/// A share-nothing query service over a [`ShardedEngine`]: long-lived
/// per-shard worker threads serving many concurrent [`Client`] handles.
/// See the module docs for the full design.
pub struct Service<E> {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<E>>,
}

impl<E: Engine + Send + 'static> Service<E> {
    /// Start serving `engine` with the default [`ServiceConfig`].
    ///
    /// # Errors
    /// [`ServiceError::Config`] if the `CRACKDB_POLICY` environment
    /// selection is set but invalid — the one clear startup error that
    /// replaces a panic inside every engine constructor (constructors
    /// themselves fall back to the standard policy with a warning).
    pub fn start(engine: ShardedEngine<E>) -> Result<Self, ServiceError> {
        Self::with_config(engine, ServiceConfig::default())
    }

    /// Start serving `engine` with an explicit [`ServiceConfig`].
    ///
    /// # Errors
    /// See [`Service::start`].
    pub fn with_config(
        engine: ShardedEngine<E>,
        config: ServiceConfig,
    ) -> Result<Self, ServiceError> {
        super::env_policy().map_err(ServiceError::Config)?;
        super::env_kernel().map_err(ServiceError::Config)?;
        super::env_snapshot_reads().map_err(ServiceError::Config)?;
        super::env_spill_dir().map_err(ServiceError::Config)?;
        let (cuts, shards, inserted) = engine.into_parts();
        let nshards = shards.len();
        let epoch = Arc::new(EpochDomain::new());
        let policy_switches = Arc::new(AtomicU64::new(0));
        let mut queues = Vec::with_capacity(nshards);
        let mut handles = Vec::with_capacity(nshards);
        let mut views = Vec::with_capacity(nshards);
        for (i, shard) in shards.into_iter().enumerate() {
            let (tx, rx) = channel();
            queues.push(tx);
            let view = Arc::new(Published::<ShardView>::new(epoch.clone()));
            views.push(view.clone());
            let publish = config.snapshot_reads;
            let switches = policy_switches.clone();
            let handle = std::thread::Builder::new()
                .name(format!("crackdb-shard-{i}"))
                .spawn(move || worker(i, shard, rx, view, publish, switches))
                .expect("spawn shard worker thread");
            handles.push(handle);
        }
        Ok(Service {
            shared: Arc::new(Shared {
                router: Mutex::new(Router {
                    queues,
                    cuts,
                    inserted,
                    next_seq: 0,
                    writes_sequenced: vec![0; nshards],
                    closed: false,
                }),
                in_flight: AtomicUsize::new(0),
                queue_depth: config.queue_depth.max(1),
                failed: AtomicBool::new(false),
                latency_capacity: config.latency_capacity,
                latencies: Mutex::new(LatencyHub {
                    rings: Vec::new(),
                    orphans: LatencyRing::new(config.latency_capacity),
                }),
                epoch,
                views,
                snapshot_reads: config.snapshot_reads,
                snapshot_hits: AtomicU64::new(0),
                policy_switches,
            }),
            handles,
        })
    }

    /// A new client handle. Handles are cheap (an `Arc` clone plus an
    /// epoch-reader registration), cloneable, and independently usable
    /// from any thread.
    pub fn client(&self) -> Client {
        Client::new(self.shared.clone(), self.handles.len())
    }

    /// Selects served by the lock-free snapshot path so far.
    pub fn snapshot_hits(&self) -> u64 {
        self.shared.snapshot_hits.load(Ordering::Relaxed)
    }

    /// Adaptive-advisor policy switches across all shard engines so far
    /// (0 forever under a static policy configuration). Updated by each
    /// shard worker after every work item it processes.
    pub fn policy_switches(&self) -> u64 {
        self.shared.policy_switches.load(Ordering::Relaxed)
    }

    /// Number of shard workers.
    pub fn shard_count(&self) -> usize {
        self.handles.len()
    }

    /// Requests currently in flight (queued or executing).
    pub fn in_flight(&self) -> usize {
        self.shared.in_flight.load(Ordering::Acquire)
    }

    /// Drain the recorded per-call latencies (up to
    /// [`ServiceConfig::latency_capacity`] recent samples per client,
    /// in nanoseconds): orphaned samples of dropped clients first,
    /// then every live client's private ring. Feed them to
    /// `bench::harness::Percentiles` for p50/p95/p99 reporting.
    pub fn take_latencies(&self) -> Vec<u64> {
        lock_unpoisoned(&self.shared.latencies).drain()
    }

    /// Graceful shutdown: stop admitting work, let every accepted
    /// request drain (the stop marker is FIFO-ordered behind them),
    /// join the workers and hand back the reassembled
    /// [`ShardedEngine`] — including all reorganization the served
    /// queries performed.
    ///
    /// # Panics
    /// Re-raises the original panic payload of a worker that died
    /// mid-query, after all surviving workers have been joined. When
    /// several workers died, the *first* shard's payload (most likely
    /// the root cause) is re-raised and the others are reported on
    /// stderr rather than silently dropped.
    pub fn shutdown(self) -> ShardedEngine<E> {
        let (cuts, inserted) = {
            let mut router = lock_unpoisoned(&self.shared.router);
            router.closed = true;
            for q in &router.queues {
                // A dead worker's queue is disconnected; its join below
                // reports the real failure.
                let _ = q.send(Work::Stop);
            }
            (router.cuts.clone(), router.inserted)
        };
        let mut shards = Vec::with_capacity(self.handles.len());
        let mut panic_payload = None;
        let mut later_panics = 0usize;
        for handle in self.handles {
            match handle.join() {
                Ok(engine) => shards.push(engine),
                Err(payload) if panic_payload.is_none() => panic_payload = Some(payload),
                Err(_) => later_panics += 1,
            }
        }
        if let Some(payload) = panic_payload {
            if later_panics > 0 {
                eprintln!(
                    "warning: {later_panics} further shard worker(s) also panicked; \
                     re-raising the first shard's payload"
                );
            }
            std::panic::resume_unwind(payload);
        }
        ShardedEngine::reassemble(cuts, shards, inserted)
    }
}

/// A handle for one client session of a [`Service`]: clone freely, one
/// per concurrent session. All calls block until the merged result is
/// available (closed-loop semantics); errors are [`ServiceError`]s, not
/// panics.
pub struct Client {
    shared: Arc<Shared>,
    nshards: usize,
    /// This session's epoch reader. Behind a mutex only because
    /// `select` takes `&self`: a handle shared across threads (instead
    /// of cloned per thread) must not pin one slot twice, so the fast
    /// path `try_lock`s and falls back to the worker hop on contention.
    reader: Mutex<EpochReader>,
    /// This session's private latency ring (`None` = capture
    /// disabled). Flushed into the service-wide hub on drop.
    ring: Option<Arc<Mutex<LatencyRing>>>,
}

impl Clone for Client {
    fn clone(&self) -> Self {
        Client::new(self.shared.clone(), self.nshards)
    }
}

impl Drop for Client {
    fn drop(&mut self) {
        if let Some(ring) = &self.ring {
            let samples = lock_unpoisoned(ring).take();
            if !samples.is_empty() {
                let orphans = &mut lock_unpoisoned(&self.shared.latencies).orphans;
                for s in samples {
                    orphans.push(s);
                }
            }
        }
    }
}

impl Client {
    fn new(shared: Arc<Shared>, nshards: usize) -> Self {
        Client {
            reader: Mutex::new(shared.epoch.register()),
            ring: LatencyHub::register(&shared),
            shared,
            nshards,
        }
    }
    /// Execute a single-table query. Broadcast to every shard worker;
    /// partial results merge exactly as in [`ShardedEngine::select`].
    ///
    /// # Errors
    /// [`ServiceError::Overloaded`], [`ServiceError::ShuttingDown`] or
    /// [`ServiceError::WorkerLost`].
    pub fn select(&self, q: &SelectQuery) -> Result<Reply, ServiceError> {
        let t0 = Instant::now();
        let slot = self.admit()?;
        let attrs = distinct_attrs(&q.aggs);
        let shard_q = Arc::new(shard_select_query(q, &attrs));
        if let Some(reply) = self.snapshot_select(q, &attrs, &shard_q) {
            drop(slot);
            self.record(t0);
            return Ok(reply);
        }
        let (reply_tx, reply_rx) = channel();
        let seq = self.broadcast(|| Work::Select {
            q: shard_q.clone(),
            reply: reply_tx.clone(),
        })?;
        drop(reply_tx);
        let outs = self.collect(reply_rx)?;
        let output = merge_select_outputs(q, &attrs, outs);
        drop(slot);
        self.record(t0);
        Ok(Reply { seq, output })
    }

    /// Execute a two-table join query (the engines must have been built
    /// with a second table, e.g. [`ShardedEngine::build_with_second`]).
    ///
    /// # Errors
    /// [`ServiceError::Overloaded`], [`ServiceError::ShuttingDown`] or
    /// [`ServiceError::WorkerLost`].
    pub fn join(&self, q: &JoinQuery) -> Result<Reply, ServiceError> {
        let t0 = Instant::now();
        let slot = self.admit()?;
        let lattrs = distinct_attrs(&q.left.aggs);
        let rattrs = distinct_attrs(&q.right.aggs);
        let shard_q = Arc::new(shard_join_query(q, &lattrs, &rattrs));
        let (reply_tx, reply_rx) = channel();
        let seq = self.broadcast(|| Work::Join {
            q: shard_q.clone(),
            reply: reply_tx.clone(),
        })?;
        drop(reply_tx);
        let outs = self.collect(reply_rx)?;
        let output = merge_join_outputs(q, &lattrs, &rattrs, &outs);
        drop(slot);
        self.record(t0);
        Ok(Reply { seq, output })
    }

    /// Append a tuple (values in column order). Routed round-robin like
    /// [`ShardedEngine::insert`]; the reply carries the assigned global
    /// key, so a session can delete its own rows later.
    ///
    /// # Errors
    /// [`ServiceError::Overloaded`], [`ServiceError::ShuttingDown`] or
    /// [`ServiceError::WorkerLost`].
    pub fn insert(&self, row: &[Val]) -> Result<WriteReply, ServiceError> {
        let t0 = Instant::now();
        let slot = self.admit()?;
        let (reply_tx, reply_rx) = channel();
        let (seq, key) = {
            let mut router = self.lock_router()?;
            let shard = router.inserted % router.queues.len();
            let key = (router.cuts.total_rows() + router.inserted) as RowId;
            let work = Work::Insert {
                row: row.to_vec(),
                reply: reply_tx,
            };
            router.queues[shard].send(work).map_err(|_| self.fail())?;
            router.inserted += 1;
            router.writes_sequenced[shard] += 1;
            (router.commit(), key)
        };
        reply_rx.recv().map_err(|_| self.fail())?;
        drop(slot);
        self.record(t0);
        Ok(WriteReply {
            seq,
            key: Some(key),
        })
    }

    /// Delete the tuple with global key `key` (original rows by cut
    /// ranges, inserted rows by their [`WriteReply::key`]).
    ///
    /// # Errors
    /// [`ServiceError::UnknownKey`] for a key no row ever had — a bad
    /// client key must not panic a shard worker — plus the usual
    /// [`ServiceError::Overloaded`] / [`ServiceError::ShuttingDown`] /
    /// [`ServiceError::WorkerLost`].
    pub fn delete(&self, key: RowId) -> Result<WriteReply, ServiceError> {
        let t0 = Instant::now();
        let slot = self.admit()?;
        let (reply_tx, reply_rx) = channel();
        let seq = {
            let mut router = self.lock_router()?;
            let (shard, local) =
                locate_key(&router.cuts, router.queues.len(), router.inserted, key)
                    .ok_or(ServiceError::UnknownKey(key))?;
            let work = Work::Delete {
                key: local,
                reply: reply_tx,
            };
            router.queues[shard].send(work).map_err(|_| self.fail())?;
            router.writes_sequenced[shard] += 1;
            router.commit()
        };
        reply_rx.recv().map_err(|_| self.fail())?;
        drop(slot);
        self.record(t0);
        Ok(WriteReply { seq, key: None })
    }

    /// Number of shard workers behind this client.
    pub fn shard_count(&self) -> usize {
        self.nshards
    }

    /// The lock-free read fast path: execute `q` against the shards'
    /// published snapshots on this thread, skipping the worker queues.
    /// Returns `None` — and commits **nothing** — whenever any shard
    /// cannot prove the read would be linearizable, and the caller
    /// falls through to the sequenced worker hop (the committed order
    /// must stay gapless, so validation happens strictly before
    /// `Router::commit`).
    ///
    /// Under one router lock acquisition, for every shard: the
    /// published view exists, it has applied exactly the writes
    /// sequenced for that shard so far, and the query plans against
    /// it. The lock orders the read against all writes: no write can
    /// be sequenced between validation and commit, so the snapshots
    /// reflect precisely the writes before this read's sequence
    /// number — reads in between only reorganize physically, which
    /// answers never observe. Execution happens after the lock drops;
    /// the cloned `Arc`s keep the snapshot data alive without the
    /// epoch pin.
    fn snapshot_select(
        &self,
        q: &SelectQuery,
        attrs: &[usize],
        shard_q: &SelectQuery,
    ) -> Option<Reply> {
        if !self.shared.snapshot_reads || (q.disjunctive && !q.preds.is_empty()) {
            return None;
        }
        let reader = self.reader.try_lock().ok()?;
        let (seq, plans) = {
            let pin = self.shared.epoch.pin(&reader);
            let mut router = lock_unpoisoned(&self.shared.router);
            if router.closed {
                return None;
            }
            let mut plans = Vec::with_capacity(self.nshards);
            for (s, cell) in self.shared.views.iter().enumerate() {
                let view = cell.read(&pin)?;
                if view.writes_applied != router.writes_sequenced[s] {
                    return None;
                }
                let plan = view.snap.plan(shard_q)?;
                plans.push((view.snap.clone(), plan));
            }
            (router.commit(), plans)
        };
        let outs: Vec<QueryOutput> = plans
            .iter()
            .map(|(snap, plan)| snap.execute(plan, shard_q))
            .collect();
        let output = merge_select_outputs(q, attrs, outs);
        self.shared.snapshot_hits.fetch_add(1, Ordering::Relaxed);
        Some(Reply { seq, output })
    }

    /// Mark the service failed (a worker is gone) and return the error:
    /// later calls reject in O(1) at admission instead of enqueueing
    /// doomed work on the surviving shards.
    fn fail(&self) -> ServiceError {
        self.shared.failed.store(true, Ordering::Release);
        ServiceError::WorkerLost
    }

    /// Take an admission slot or fail fast.
    fn admit(&self) -> Result<Slot<'_>, ServiceError> {
        if self.shared.failed.load(Ordering::Acquire) {
            return Err(ServiceError::WorkerLost);
        }
        let in_flight = self.shared.in_flight.fetch_add(1, Ordering::AcqRel);
        if in_flight >= self.shared.queue_depth {
            self.shared.in_flight.fetch_sub(1, Ordering::AcqRel);
            return Err(ServiceError::Overloaded { in_flight });
        }
        Ok(Slot(&self.shared.in_flight))
    }

    /// Lock the router for sequencing, rejecting new work after
    /// shutdown began.
    fn lock_router(&self) -> Result<MutexGuard<'_, Router>, ServiceError> {
        let router = lock_unpoisoned(&self.shared.router);
        if router.closed {
            return Err(ServiceError::ShuttingDown);
        }
        Ok(router)
    }

    /// Sequence one read on every worker queue: the per-queue sends all
    /// happen inside the router critical section, which is what makes
    /// every worker see the same relative order of requests.
    fn broadcast(&self, mut work: impl FnMut() -> Work) -> Result<Seq, ServiceError> {
        let mut router = self.lock_router()?;
        for q in &router.queues {
            q.send(work()).map_err(|_| self.fail())?;
        }
        Ok(router.commit())
    }

    /// Collect one partial result per shard, in shard order. A
    /// disconnect before all replies arrive means a worker died.
    fn collect(
        &self,
        rx: Receiver<(usize, QueryOutput)>,
    ) -> Result<Vec<QueryOutput>, ServiceError> {
        let mut outs: Vec<Option<QueryOutput>> = (0..self.nshards).map(|_| None).collect();
        for _ in 0..self.nshards {
            let (shard, out) = rx.recv().map_err(|_| self.fail())?;
            outs[shard] = Some(out);
        }
        Ok(outs
            .into_iter()
            .map(|o| o.expect("each shard replies exactly once"))
            .collect())
    }

    /// Record one completed call's wall-clock latency in this client's
    /// private ring: no service-wide lock on the completion path (the
    /// ring's mutex is contended only by a concurrent drain). No-op
    /// when capture is disabled.
    fn record(&self, t0: Instant) {
        let Some(ring) = &self.ring else { return };
        let nanos = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        lock_unpoisoned(ring).push(nanos);
    }
}

impl Router {
    /// Assign the next global sequence number (call after all of the
    /// request's queue sends succeeded).
    fn commit(&mut self) -> Seq {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plain::PlainEngine;
    use crackdb_columnstore::column::{Column, Table};
    use crackdb_columnstore::types::{AggFunc, RangePred};

    fn table(n: usize) -> Table {
        let mut t = Table::new();
        t.add_column(
            "a",
            Column::new((0..n as i64).map(|i| (i * 37) % 100).collect()),
        );
        t.add_column("b", Column::new((0..n as i64).collect()));
        t
    }

    fn service(n: usize, shards: usize) -> Service<PlainEngine> {
        let engine = ShardedEngine::build(table(n), shards, |_, t| PlainEngine::new(t));
        Service::start(engine).expect("service starts")
    }

    fn count_query() -> SelectQuery {
        SelectQuery::aggregate(vec![(0, RangePred::all())], vec![(1, AggFunc::Count)])
    }

    #[test]
    fn served_answers_match_the_sharded_engine() {
        let q = SelectQuery::aggregate(
            vec![(0, RangePred::open(10, 60))],
            vec![
                (1, AggFunc::Count),
                (1, AggFunc::Sum),
                (1, AggFunc::Min),
                (1, AggFunc::Max),
                (1, AggFunc::Avg),
            ],
        );
        let mut direct = ShardedEngine::build(table(101), 3, |_, t| PlainEngine::new(t));
        let expected = direct.select(&q);
        let svc = service(101, 3);
        let client = svc.client();
        let reply = client.select(&q).expect("select succeeds");
        assert_eq!(reply.output.rows, expected.rows);
        assert_eq!(reply.output.aggs, expected.aggs);
        let restored = svc.shutdown();
        assert_eq!(restored.shard_count(), 3);
    }

    #[test]
    fn sequence_numbers_are_a_total_order_and_writes_are_observed() {
        let svc = service(10, 3);
        let client = svc.client();
        let w1 = client.insert(&[500, 1000]).expect("insert");
        assert_eq!(w1.key, Some(10));
        let w2 = client.insert(&[501, 1001]).expect("insert");
        assert_eq!(w2.key, Some(11));
        assert!(w2.seq > w1.seq, "sequence numbers increase");
        // Read-your-writes: the next select is sequenced after both.
        let r = client.select(&count_query()).expect("select");
        assert!(r.seq > w2.seq);
        assert_eq!(r.output.aggs, vec![Some(12)]);
        // Delete an inserted row by its reported global key and an
        // original row by its base key.
        client.delete(w1.key.unwrap()).expect("delete inserted");
        client.delete(0).expect("delete original");
        let r = client.select(&count_query()).expect("select");
        assert_eq!(r.output.aggs, vec![Some(10)]);
        let restored = svc.shutdown();
        assert_eq!(restored.cuts().total_rows(), 10);
    }

    #[test]
    fn unknown_delete_key_is_an_error_not_a_worker_panic() {
        let svc = service(10, 2);
        let client = svc.client();
        assert_eq!(
            client.delete(10).unwrap_err(),
            ServiceError::UnknownKey(10),
            "key 10 was never inserted"
        );
        // The service still works: no worker saw the bad key.
        assert_eq!(
            client.select(&count_query()).unwrap().output.aggs,
            vec![Some(10)]
        );
        svc.shutdown();
    }

    /// An engine whose select parks until released, for tests that need
    /// a request pinned in flight.
    struct Parked {
        entered: Sender<()>,
        release: Receiver<()>,
    }

    impl Engine for Parked {
        fn name(&self) -> &'static str {
            "parked"
        }
        fn select(&mut self, _q: &SelectQuery) -> QueryOutput {
            self.entered.send(()).expect("test observer alive");
            self.release.recv().expect("test releases the query");
            QueryOutput::default()
        }
        fn join(&mut self, _q: &JoinQuery) -> QueryOutput {
            unreachable!()
        }
        fn insert(&mut self, _row: &[Val]) {}
        fn delete(&mut self, _key: RowId) {}
    }

    #[test]
    fn admission_control_rejects_beyond_queue_depth() {
        let (entered_tx, entered_rx) = channel();
        let (release_tx, release_rx) = channel();
        let engine = ShardedEngine::reassemble(
            ShardCuts::even(0, 1),
            vec![Parked {
                entered: entered_tx,
                release: release_rx,
            }],
            0,
        );
        let config = ServiceConfig {
            queue_depth: 1,
            ..ServiceConfig::default()
        };
        let svc = Service::with_config(engine, config).unwrap();
        let client = svc.client();
        let parked = {
            let client = client.clone();
            std::thread::spawn(move || client.select(&SelectQuery::aggregate(vec![], vec![])))
        };
        entered_rx.recv().expect("first query reaches the worker");
        // One request in flight, depth 1: the next call is rejected.
        match client.select(&SelectQuery::aggregate(vec![], vec![])) {
            Err(ServiceError::Overloaded { in_flight }) => assert_eq!(in_flight, 1),
            other => panic!("expected Overloaded, got {other:?}"),
        }
        release_tx.send(()).unwrap();
        parked.join().unwrap().expect("parked query completes");
        // The slot was released: the service admits again (worker must
        // be released again for the call to finish).
        let second = {
            let client = client.clone();
            std::thread::spawn(move || client.select(&SelectQuery::aggregate(vec![], vec![])))
        };
        entered_rx.recv().expect("second query admitted");
        release_tx.send(()).unwrap();
        second.join().unwrap().expect("second query completes");
        assert_eq!(svc.in_flight(), 0);
        svc.shutdown();
    }

    #[test]
    fn shutdown_drains_in_flight_queries_then_rejects_new_work() {
        let (entered_tx, entered_rx) = channel();
        let (release_tx, release_rx) = channel();
        let engine = ShardedEngine::reassemble(
            ShardCuts::even(0, 1),
            vec![Parked {
                entered: entered_tx,
                release: release_rx,
            }],
            0,
        );
        let svc = Service::start(engine).unwrap();
        let client = svc.client();
        let in_flight = {
            let client = client.clone();
            std::thread::spawn(move || client.select(&SelectQuery::aggregate(vec![], vec![])))
        };
        entered_rx.recv().expect("query is executing");
        let shutdown = std::thread::spawn(move || svc.shutdown());
        // Shutdown is waiting on the worker, which is waiting on us: the
        // in-flight query must complete, not be dropped.
        release_tx.send(()).unwrap();
        in_flight
            .join()
            .unwrap()
            .expect("in-flight query drains through shutdown");
        shutdown.join().expect("shutdown completes");
        assert_eq!(
            client
                .select(&SelectQuery::aggregate(vec![], vec![]))
                .unwrap_err(),
            ServiceError::ShuttingDown,
            "post-shutdown work is rejected"
        );
    }

    /// An engine that panics on query `boom` and works otherwise.
    struct Fused {
        calls: usize,
        boom: usize,
    }

    impl Engine for Fused {
        fn name(&self) -> &'static str {
            "fused"
        }
        fn select(&mut self, _q: &SelectQuery) -> QueryOutput {
            self.calls += 1;
            if self.calls == self.boom {
                panic!("worker exploded on query {}", self.boom);
            }
            QueryOutput::default()
        }
        fn join(&mut self, _q: &JoinQuery) -> QueryOutput {
            unreachable!()
        }
        fn insert(&mut self, _row: &[Val]) {}
        fn delete(&mut self, _key: RowId) {}
    }

    #[test]
    fn worker_panic_is_an_error_for_clients_and_resurfaces_at_shutdown() {
        let engine =
            ShardedEngine::reassemble(ShardCuts::even(0, 1), vec![Fused { calls: 0, boom: 2 }], 0);
        let svc = Service::start(engine).unwrap();
        let client = svc.client();
        let q = SelectQuery::aggregate(vec![], vec![]);
        client.select(&q).expect("first query works");
        // The worker dies on the second query: the client gets an
        // error, not a propagated panic or a poisoned mutex.
        assert_eq!(client.select(&q).unwrap_err(), ServiceError::WorkerLost);
        assert_eq!(client.select(&q).unwrap_err(), ServiceError::WorkerLost);
        assert_eq!(svc.in_flight(), 0, "failed calls release their slots");
        // The original payload resurfaces exactly once, at shutdown.
        let caught =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| drop(svc.shutdown())))
                .expect_err("shutdown re-raises the worker panic");
        assert_eq!(
            caught.downcast_ref::<String>().map(String::as_str),
            Some("worker exploded on query 2"),
            "the worker's own payload must reach the shutdown caller"
        );
    }

    #[test]
    fn latency_capture_is_bounded_and_optional() {
        let engine = ShardedEngine::build(table(10), 2, |_, t| PlainEngine::new(t));
        let config = ServiceConfig {
            queue_depth: 16,
            latency_capacity: 4,
            ..ServiceConfig::default()
        };
        let svc = Service::with_config(engine, config).unwrap();
        let client = svc.client();
        for _ in 0..7 {
            client.select(&count_query()).unwrap();
        }
        assert_eq!(
            svc.take_latencies().len(),
            4,
            "only the most recent samples are kept"
        );
        // Draining resets the ring; capture resumes.
        client.select(&count_query()).unwrap();
        assert_eq!(svc.take_latencies().len(), 1);
        svc.shutdown();

        let engine = ShardedEngine::build(table(10), 1, |_, t| PlainEngine::new(t));
        let config = ServiceConfig {
            queue_depth: 16,
            latency_capacity: 0,
            ..ServiceConfig::default()
        };
        let svc = Service::with_config(engine, config).unwrap();
        let client = svc.client();
        client.select(&count_query()).unwrap();
        assert!(svc.take_latencies().is_empty(), "capture disabled");
        svc.shutdown();
    }

    /// One worker of two: a healthy counting shard and a bomb shard.
    enum Duo {
        Counting(Arc<AtomicUsize>),
        Bomb,
    }

    impl Engine for Duo {
        fn name(&self) -> &'static str {
            "duo"
        }
        fn select(&mut self, _q: &SelectQuery) -> QueryOutput {
            match self {
                Duo::Counting(calls) => {
                    calls.fetch_add(1, Ordering::SeqCst);
                    QueryOutput::default()
                }
                Duo::Bomb => panic!("bomb shard"),
            }
        }
        fn join(&mut self, _q: &JoinQuery) -> QueryOutput {
            unreachable!()
        }
        fn insert(&mut self, _row: &[Val]) {}
        fn delete(&mut self, _key: RowId) {}
    }

    #[test]
    fn after_worker_death_no_work_reaches_surviving_shards() {
        let calls = Arc::new(AtomicUsize::new(0));
        let engine = ShardedEngine::reassemble(
            ShardCuts::even(0, 2),
            vec![Duo::Counting(calls.clone()), Duo::Bomb],
            0,
        );
        let svc = Service::start(engine).unwrap();
        let client = svc.client();
        let q = SelectQuery::aggregate(vec![], vec![]);
        assert_eq!(client.select(&q).unwrap_err(), ServiceError::WorkerLost);
        // Retries reject in O(1) at admission — no further work may be
        // enqueued on the healthy shard for a service that can never
        // answer a broadcast again.
        for _ in 0..5 {
            assert_eq!(client.select(&q).unwrap_err(), ServiceError::WorkerLost);
        }
        // Shutdown joins the healthy worker after its queue drained, so
        // the count is final and race-free here.
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| drop(svc.shutdown())))
            .expect_err("shutdown re-raises the bomb payload");
        assert!(
            calls.load(Ordering::SeqCst) <= 1,
            "only the first (pre-failure) broadcast may have reached the healthy shard"
        );
    }

    /// The snapshot fast path must return answers bit-identical to the
    /// queue path on the same operation sequence, actually fire once
    /// the catalogs converge, and stay cold when disabled.
    #[test]
    fn snapshot_fast_path_matches_queue_path_and_counts_hits() {
        use crate::selcrack::SelCrackEngine;
        fn crack_table(n: i64) -> Table {
            let mut t = Table::new();
            t.add_column(
                "a",
                Column::new((0..n).map(|i| (i * 7919) % 1000).collect()),
            );
            t.add_column("b", Column::new((0..n).collect()));
            t
        }
        let run = |snapshot_reads: bool| {
            let engine = ShardedEngine::build(crack_table(4096), 2, |_, t| {
                SelCrackEngine::new(t, (0, 1000))
            });
            let config = ServiceConfig {
                snapshot_reads,
                ..ServiceConfig::default()
            };
            let svc = Service::with_config(engine, config).unwrap();
            let client = svc.client();
            let range_q = |lo: i64, hi: i64| {
                SelectQuery::aggregate(
                    vec![(0, RangePred::open(lo, hi))],
                    vec![
                        (1, AggFunc::Count),
                        (1, AggFunc::Sum),
                        (1, AggFunc::Min),
                        (1, AggFunc::Max),
                    ],
                )
            };
            let mut outputs = Vec::new();
            // Warm-up cracks both shards into converged catalogs; the
            // second sweep repeats with unaligned bounds so warm reads
            // can resolve without cracking anything new.
            for sweep in 0..2 {
                for lo in (0..1000).step_by(20) {
                    let q = range_q(lo + sweep * 3, lo + 15);
                    outputs.push(client.select(&q).unwrap().output);
                }
            }
            // A staged write hides its pieces until a query merges it;
            // answers must observe it either way.
            let w = client.insert(&[123, 999_999]).unwrap();
            outputs.push(client.select(&range_q(100, 150)).unwrap().output);
            client.delete(w.key.unwrap()).unwrap();
            for lo in [3, 77, 411, 903] {
                outputs.push(client.select(&range_q(lo, lo + 42)).unwrap().output);
            }
            let hits = svc.snapshot_hits();
            svc.shutdown();
            (outputs, hits)
        };
        let (fast, fast_hits) = run(true);
        let (queue, queue_hits) = run(false);
        assert_eq!(queue_hits, 0, "disabled fast path must stay cold");
        assert!(fast_hits > 0, "warm reads must hit the snapshot path");
        assert_eq!(fast.len(), queue.len());
        for (i, (f, q)) in fast.iter().zip(&queue).enumerate() {
            assert_eq!(f.rows, q.rows, "query {i}");
            assert_eq!(f.aggs, q.aggs, "query {i}");
        }
    }

    #[test]
    fn concurrent_clients_each_read_their_own_writes() {
        let svc = service(40, 4);
        let nclients = 8;
        let handles: Vec<_> = (0..nclients)
            .map(|c| {
                let client = svc.client();
                std::thread::spawn(move || {
                    for i in 0..10 {
                        let w = client.insert(&[c as i64, i]).expect("insert");
                        let got = client
                            .select(&SelectQuery::aggregate(
                                vec![(0, RangePred::all())],
                                vec![(1, AggFunc::Count)],
                            ))
                            .expect("select");
                        assert!(got.seq > w.seq, "reads sequence after own writes");
                        // At least this client's i+1 inserts are visible.
                        assert!(got.output.aggs[0].unwrap() > 40 + i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread");
        }
        let client = svc.client();
        let total = client.select(&count_query()).unwrap();
        assert_eq!(total.output.aggs, vec![Some(40 + 8 * 10)]);
        assert_eq!(svc.take_latencies().len(), 8 * 10 * 2 + 1);
        let restored = svc.shutdown();
        assert_eq!(restored.shard_count(), 4);
    }
}
