//! The batch-execution session layer.
//!
//! Interactive data exploration (the paper's target workload) arrives in
//! bursts: a client ships a batch of range queries and wants the whole
//! batch answered fast. [`BatchRunner`] accepts such batches and executes
//! them with the *read-only* phases data-parallel: while queries run
//! sequentially (cracking physically reorganizes columns, and its
//! correctness depends on in-order reorganization), every scan and
//! aggregate kernel underneath fans out over worker threads via
//! `columnstore::ops::parallel`.
//!
//! This gives the first multi-core speedup of the reproduction on
//! scan-dominated plans (plain and presorted baselines, cold cracking
//! queries) without perturbing the adaptive behaviour under study: the
//! physical reorganization sequence of a batch is identical to serial
//! execution, so cracked layouts — and therefore per-query costs — stay
//! reproducible.

use crate::query::{Engine, QueryOutput, SelectQuery};
use crackdb_columnstore::ops::parallel;

/// A session executing query batches over one engine with data-parallel
/// read phases.
#[derive(Debug)]
pub struct BatchRunner<E> {
    engine: E,
    threads: usize,
}

impl<E: Engine> BatchRunner<E> {
    /// Wrap `engine`, using `threads` workers for the read-only kernels
    /// (1 = fully serial; values are clamped to ≥ 1). The budget is also
    /// propagated into the engine via [`Engine::set_workers`], so a
    /// serial runner over a sharded engine really runs serially — note
    /// the budget applies to each layer, not their product: a sharded
    /// engine may fan out `threads` shard workers each of which uses up
    /// to `threads` kernel workers.
    pub fn new(mut engine: E, threads: usize) -> Self {
        let threads = threads.max(1);
        engine.set_workers(threads);
        BatchRunner { engine, threads }
    }

    /// Wrap `engine` with the session default worker count: the
    /// `CRACKDB_THREADS` environment override when set, else one worker
    /// per available hardware thread (see [`super::auto_threads`]).
    pub fn auto(engine: E) -> Self {
        Self::new(engine, super::auto_threads())
    }

    /// Worker count used for the read-only kernels.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Read access to the wrapped engine.
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// Mutable access to the wrapped engine (updates between batches).
    pub fn engine_mut(&mut self) -> &mut E {
        &mut self.engine
    }

    /// Unwrap the engine.
    pub fn into_engine(self) -> E {
        self.engine
    }

    /// Execute a batch. Queries run in batch order (adaptive engines
    /// reorganize identically to serial execution); the scan and
    /// aggregate kernels inside each query fan out over the session's
    /// workers.
    pub fn run(&mut self, batch: &[SelectQuery]) -> Vec<QueryOutput> {
        let _guard = ThreadsGuard::set(self.threads);
        batch.iter().map(|q| self.engine.select(q)).collect()
    }

    /// Execute one query under the session's parallel configuration.
    pub fn run_one(&mut self, q: &SelectQuery) -> QueryOutput {
        let _guard = ThreadsGuard::set(self.threads);
        self.engine.select(q)
    }
}

/// RAII guard around the process-wide kernel worker count: restores the
/// previous value when dropped, including on panic, so a failing query
/// can never leave parallelism switched on for unrelated code. The
/// setting itself is still process-global — two runners executing
/// concurrently in one process share it, so drive one batch at a time.
struct ThreadsGuard {
    prev: usize,
}

impl ThreadsGuard {
    fn set(threads: usize) -> Self {
        let prev = parallel::threads();
        parallel::set_threads(threads);
        ThreadsGuard { prev }
    }
}

impl Drop for ThreadsGuard {
    fn drop(&mut self) {
        parallel::set_threads(self.prev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plain::PlainEngine;
    use crackdb_columnstore::column::{Column, Table};
    use crackdb_columnstore::types::{AggFunc, RangePred};

    /// The worker count is process-global; tests that set or observe it
    /// must not interleave.
    static GLOBAL_THREADS: std::sync::Mutex<()> = std::sync::Mutex::new(());

    /// Serialize on [`GLOBAL_THREADS`], recovering the guard if a
    /// previous holder panicked: a deliberately panicking test (several
    /// here catch panics; an assertion failure anywhere else in the
    /// file does the same) must fail alone, not poison the lock and
    /// drag every subsequent test down in a wall of unrelated
    /// `PoisonError` failures.
    fn global_threads_lock() -> std::sync::MutexGuard<'static, ()> {
        crackdb_core::lock_unpoisoned(&GLOBAL_THREADS)
    }

    fn table(n: usize) -> Table {
        let mut t = Table::new();
        t.add_column(
            "a",
            Column::new((0..n as i64).map(|i| (i * 7919) % 1000).collect()),
        );
        t.add_column("b", Column::new((0..n as i64).collect()));
        t
    }

    #[test]
    fn batch_matches_serial_execution() {
        let _lock = global_threads_lock();
        // Large enough that the parallel kernels actually engage.
        let t = table(40_000);
        let queries: Vec<SelectQuery> = (0..8)
            .map(|i| {
                SelectQuery::aggregate(
                    vec![(0, RangePred::open(i * 100, i * 100 + 250))],
                    vec![(1, AggFunc::Count), (1, AggFunc::Max), (1, AggFunc::Sum)],
                )
            })
            .collect();
        let mut serial = PlainEngine::new(t.clone());
        let expected: Vec<_> = queries.iter().map(|q| serial.select(q)).collect();
        let mut runner = BatchRunner::new(PlainEngine::new(t), 4);
        let outs = runner.run(&queries);
        for (o, e) in outs.iter().zip(&expected) {
            assert_eq!(o.rows, e.rows);
            assert_eq!(o.aggs, e.aggs);
        }
    }

    /// Regression test for the poisoning cascade: a test that panics
    /// while holding [`GLOBAL_THREADS`] (every caught-panic test in
    /// this file holds it around `catch_unwind`) used to poison the
    /// mutex and turn each later `lock().unwrap()` into an unrelated
    /// `PoisonError` failure. The recovering lock must shrug it off.
    #[test]
    fn caught_panic_does_not_poison_subsequent_runs() {
        let caught = std::panic::catch_unwind(|| {
            let _lock = global_threads_lock();
            panic!("assertion failure while holding the test lock");
        });
        assert!(caught.is_err(), "the panic was caught, lock now poisoned");
        // The raw lock here is the point: probing for poison itself.
        #[allow(clippy::disallowed_methods)]
        let poisoned = GLOBAL_THREADS.lock().is_err();
        assert!(poisoned, "precondition: the raw mutex really is poisoned");
        // Later tests (simulated here) still serialize and proceed.
        let _lock = global_threads_lock();
        let runner = BatchRunner::new(PlainEngine::new(table(4)), 2);
        assert_eq!(runner.threads(), 2);
    }

    #[test]
    fn guard_restores_previous_worker_count_on_panic() {
        let _lock = global_threads_lock();
        // Run in its own thread: the drop must fire during unwinding.
        let handle = std::thread::spawn(|| {
            let _guard = ThreadsGuard::set(7);
            panic!("query panicked mid-batch");
        });
        assert!(handle.join().is_err());
        assert_eq!(
            parallel::threads(),
            1,
            "panic must not leave parallelism on"
        );
    }

    /// A query that panics mid-batch must surface its *own* payload to
    /// the caller — nothing in the batch layer or the parallel kernels
    /// may swallow it and re-raise a generic message.
    #[test]
    fn panic_payload_survives_the_batch_layer() {
        let _lock = global_threads_lock();
        struct Bomb;
        impl Engine for Bomb {
            fn name(&self) -> &'static str {
                "bomb"
            }
            fn select(&mut self, _q: &SelectQuery) -> QueryOutput {
                panic!("query 3 failed: predicate on dropped column");
            }
            fn join(&mut self, _q: &crate::query::JoinQuery) -> QueryOutput {
                unreachable!()
            }
            fn insert(&mut self, _row: &[crackdb_columnstore::types::Val]) {}
            fn delete(&mut self, _key: crackdb_columnstore::types::RowId) {}
        }
        let mut runner = BatchRunner::new(Bomb, 4);
        let batch = vec![SelectQuery::aggregate(vec![], vec![])];
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| runner.run(&batch)))
            .expect_err("the query panicked");
        assert_eq!(
            caught.downcast_ref::<&'static str>(),
            Some(&"query 3 failed: predicate on dropped column"),
            "original payload must survive"
        );
        assert_eq!(parallel::threads(), 1, "guard must restore worker count");
    }

    /// `auto` resolves through [`super::super::auto_threads`]; the
    /// `CRACKDB_THREADS` parsing itself is unit-tested in `exec` without
    /// mutating the process environment (unsynchronized `set_var` races
    /// concurrent `env::var` readers on other test threads).
    #[test]
    fn auto_yields_a_positive_worker_count() {
        let _lock = global_threads_lock();
        let runner = BatchRunner::auto(PlainEngine::new(table(5)));
        assert!(runner.threads() >= 1);
    }

    #[test]
    fn runner_exposes_engine() {
        let _lock = global_threads_lock();
        let mut runner = BatchRunner::new(PlainEngine::new(table(10)), 2);
        assert_eq!(runner.threads(), 2);
        runner.engine_mut().insert(&[1, 2]);
        assert_eq!(runner.engine().base().num_rows(), 11);
        let q = SelectQuery::aggregate(vec![], vec![(0, AggFunc::Count)]);
        assert_eq!(runner.run_one(&q).aggs, vec![Some(11)]);
        let _engine = runner.into_engine();
    }
}
