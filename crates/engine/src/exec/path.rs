//! The access-path abstraction: the one interface every physical design
//! implements, reducing each engine to what actually differs between the
//! paper's systems — how the qualifying row set / contiguous area for a
//! single `(attr, RangePred)` restriction is produced and how values are
//! read back for it. Everything else (predicate ordering, conjunctive /
//! disjunctive combining, aggregation, projection materialization, phase
//! timing) lives once in [`super::run_select`].

use crate::query::QueryError;
use crackdb_columnstore::ops::parallel::PartialAgg;
use crackdb_columnstore::types::{RangePred, Val};
use crackdb_core::BitVec;

/// The qualifying-set representation an access path produces.
///
/// The three variants are exactly the three result shapes in the paper:
/// key lists from scans / cracker selects, contiguous areas (with an
/// optional qualifying-bit vector) from sorted copies and aligned cracker
/// maps, and deferred chunk-wise plans for partial sideways cracking,
/// where selection and reconstruction interleave per chunk and a
/// materialized row set never exists.
#[derive(Debug, Clone)]
pub enum RowSet {
    /// Base-table keys. `sorted` records whether they are in ascending
    /// (insertion) order — the property that makes downstream positional
    /// reconstruction sequential rather than random.
    Keys {
        /// Qualifying base-table keys.
        keys: Vec<crackdb_columnstore::types::RowId>,
        /// Ascending order flag.
        sorted: bool,
    },
    /// A contiguous qualifying area in an engine-private positional view
    /// (sorted copy or aligned cracker map), plus an optional bit vector
    /// over that area marking the tuples satisfying *all* predicates.
    Area {
        /// The restriction that defined the area (the engine re-derives
        /// its internal view — sorted copy or map set — from it).
        head: (usize, RangePred),
        /// `[start, end)` within the view.
        range: (usize, usize),
        /// Qualifying bits over `range` (all qualify when absent).
        bv: Option<BitVec>,
    },
    /// A deferred plan for chunk-wise engines: the restrictions are
    /// recorded and executed fused with reconstruction during
    /// [`AccessPath::fetch`].
    Deferred {
        /// The head restriction (most selective predicate).
        head: (usize, RangePred),
        /// The remaining conjunctive restrictions.
        residual: Vec<(usize, RangePred)>,
    },
    /// The union form of a deferred plan: OR-combined restrictions for
    /// chunk-wise engines, executed fused during [`AccessPath::fetch`]
    /// (a disjunction examines every tuple, so the pass covers all
    /// chunks).
    DeferredUnion {
        /// All OR-combined restrictions, in executor order (least
        /// selective first).
        preds: Vec<(usize, RangePred)>,
    },
}

impl RowSet {
    /// Keys constructor.
    pub fn keys(keys: Vec<crackdb_columnstore::types::RowId>, sorted: bool) -> Self {
        RowSet::Keys { keys, sorted }
    }

    /// Number of qualifying tuples, when known before reconstruction
    /// (deferred plans only learn it while streaming).
    pub fn len(&self) -> Option<usize> {
        match self {
            RowSet::Keys { keys, .. } => Some(keys.len()),
            RowSet::Area { range, bv, .. } => Some(match bv {
                Some(bv) => bv.count_ones(),
                None => range.1 - range.0,
            }),
            RowSet::Deferred { .. } | RowSet::DeferredUnion { .. } => None,
        }
    }

    /// `true` when the set is known to be empty.
    pub fn is_empty(&self) -> bool {
        self.len() == Some(0)
    }
}

/// Query-wide context handed to [`AccessPath`] calls, letting adaptive
/// engines prepare internal structures (choose map sets, pre-align maps)
/// for everything the query will touch.
#[derive(Debug, Clone, Copy)]
pub struct RestrictCtx<'a> {
    /// All predicates of the query, in executor-chosen evaluation order.
    pub preds: &'a [(usize, RangePred)],
    /// Attributes the query will fetch afterwards (aggregations and
    /// projections, deduplicated, in request order).
    pub fetch_attrs: &'a [usize],
    /// `true` for OR-combined predicates.
    pub disjunctive: bool,
}

/// The per-physical-design interface. One implementation per engine; the
/// shared executor composes these calls into full query plans.
pub trait AccessPath {
    /// Human-readable system name (benchmark output).
    fn name(&self) -> &'static str;

    /// Estimated qualifying tuples for one restriction, driving the
    /// shared selectivity ordering (§3.3 / §3.6: start from the most
    /// selective predicate; disjunctions pick the least selective head).
    /// `None` means the engine has no statistics — the executor then
    /// preserves the query's plan order (the presorted baseline relies
    /// on this: its first predicate must name a presorted attribute).
    fn estimate(&self, attr: usize, pred: &RangePred) -> Option<f64> {
        let _ = (attr, pred);
        None
    }

    /// Produce the row set qualifying under a single restriction.
    fn restrict(&mut self, attr: usize, pred: &RangePred, ctx: &RestrictCtx) -> RowSet;

    /// AND-combine one more restriction into `rows`.
    fn refine(&mut self, rows: &mut RowSet, attr: usize, pred: &RangePred, ctx: &RestrictCtx);

    /// OR-combine one more restriction into `rows`.
    fn extend(&mut self, rows: &mut RowSet, attr: usize, pred: &RangePred, ctx: &RestrictCtx);

    /// Row set for a query with no predicates at all.
    fn unrestricted(&mut self, ctx: &RestrictCtx) -> RowSet;

    /// Stream the values of each attribute in `attrs` for the qualifying
    /// rows, as `consume(attr, value)`. Values of one attribute arrive in
    /// row-set order; chunk-wise engines may interleave attributes.
    /// Engines with a storage tier surface disk failures as
    /// [`QueryError::Storage`]; in-RAM engines are infallible.
    fn fetch(
        &mut self,
        rows: &RowSet,
        attrs: &[usize],
        consume: &mut dyn FnMut(usize, Val),
    ) -> Result<(), QueryError>;

    /// Complete partial aggregate for one attribute over the row set,
    /// when the engine can hand the work to the data-parallel kernels
    /// (`columnstore::ops::parallel`). `None` falls back to streaming
    /// [`Self::fetch`].
    fn partial_agg(&mut self, rows: &RowSet, attr: usize) -> Option<PartialAgg> {
        let _ = (rows, attr);
        None
    }

    /// `true` when executing queries physically reorganizes data
    /// (cracking); such engines must process a batch sequentially, while
    /// non-adaptive ones are safe under any interleaving.
    fn is_adaptive(&self) -> bool {
        false
    }
}
