//! The horizontal sharding layer: partition-parallel adaptive indexing.
//!
//! [`BatchRunner`](super::BatchRunner) parallelizes only the *read-only*
//! scan/aggregate kernels — cracking itself stays strictly sequential,
//! because reorganizing one shared cracker map is order-dependent.
//! [`ShardedEngine`] removes that limit by removing the sharing: the base
//! table is split row-wise into `N` contiguous shards and every shard
//! gets its own complete inner engine — own columns, own cracker
//! columns, own cracker maps and chunk sets. Queries fan out to all
//! shards on scoped threads, so *adaptation itself* (the cracking) runs
//! in parallel, while each shard's physical reorganization sequence
//! remains exactly the serial one for its fraction of the data —
//! per-shard layouts stay reproducible.
//!
//! ## Merge semantics
//!
//! * **Aggregates** — each shard computes a complete
//!   [`PartialAgg`]-shaped statistics block (count / wrapping sum / min
//!   / max) per aggregated attribute; the router folds the blocks with
//!   [`PartialAgg::merge`] and finishes each requested function through
//!   [`AggAcc`], the same fold the serial and data-parallel paths use —
//!   so sharded answers are bit-identical (averages included, computed
//!   from the merged sum and count, never from per-shard averages).
//! * **Projections** — per-shard value lists concatenated in shard
//!   order (projection values are unordered by contract).
//! * **Row counts** — summed.
//! * **Timings** — per-phase maximum across shards: shards run
//!   concurrently, so the slowest shard approximates the phase's wall
//!   time.
//!
//! ## Update routing (§5 sharded)
//!
//! Inserts go round-robin (insert `j` to shard `j mod N`); deletes
//! resolve the *global* key through [`ShardCuts`] for original rows and
//! through the round-robin arithmetic for inserted ones. The sharded
//! engine therefore accepts exactly the key stream an unsharded engine
//! would: global key `k < n₀` is original row `k`, key `n₀ + j` is the
//! `j`-th insert — which is what lets the differential suite drive both
//! with identical update sequences.
//!
//! Joins shard the primary (left) table and replicate the second table
//! into every shard: each left row meets every right row exactly once,
//! so concatenating per-shard match sets yields the full join.
//!
//! ## Crack policies
//!
//! Shards never share cracker state, so a
//! [`crackdb_cracking::CrackPolicy`] composes per shard with no
//! cross-shard coordination: pass it through the `make` closure
//! (`ShardedEngine::build(base, n, |_, t| SidewaysEngine::with_policy(t,
//! domain, policy))`) and every shard cracks its fraction of the data
//! under that policy. Stochastic seeds may be shared across shards —
//! each shard's pivot choice depends only on its own array state.

use crate::query::{AggAcc, Engine, JoinQuery, JoinSide, QueryOutput, SelectQuery, Timings};
use crackdb_columnstore::column::Table;
use crackdb_columnstore::ops::parallel::PartialAgg;
use crackdb_columnstore::shard::{partition_table, ShardCuts};
use crackdb_columnstore::types::{AggFunc, RowId, Val};
use std::sync::Mutex;

/// Router executing one independent inner engine per row-wise shard.
pub struct ShardedEngine<E> {
    shards: Vec<E>,
    /// The partition-time cuts: shard sizes for insert routing and the
    /// global-key ↔ shard-local-key mapping for deletes (global keys at
    /// or above `cuts.total_rows()` are inserts).
    cuts: ShardCuts,
    /// Round-robin insert cursor (also the count of inserts so far).
    inserted: usize,
    threads: usize,
    name: &'static str,
}

impl<E: Engine> ShardedEngine<E> {
    /// Partition `base` row-wise into `shards` near-equal contiguous
    /// shards and build one inner engine per shard with `make(shard_idx,
    /// shard_table)`.
    ///
    /// # Panics
    /// If `shards == 0`.
    pub fn build(base: Table, shards: usize, mut make: impl FnMut(usize, Table) -> E) -> Self {
        let cuts = ShardCuts::even(base.num_rows(), shards);
        let parts = partition_table(&base, &cuts);
        Self::from_parts(cuts, parts.into_iter().enumerate().map(|(i, t)| make(i, t)))
    }

    /// Two-table variant for join workloads: the primary table is
    /// sharded, the second table is replicated into every shard (each
    /// left row meets every right row exactly once, so per-shard joins
    /// union to the full join).
    pub fn build_with_second(
        base: Table,
        second: Table,
        shards: usize,
        mut make: impl FnMut(usize, Table, Table) -> E,
    ) -> Self {
        let cuts = ShardCuts::even(base.num_rows(), shards);
        let parts = partition_table(&base, &cuts);
        Self::from_parts(
            cuts,
            parts
                .into_iter()
                .enumerate()
                .map(|(i, t)| make(i, t, second.clone())),
        )
    }

    /// Build from already-partitioned shard tables (data that arrives
    /// pre-sharded — e.g. per-node partitions, or
    /// `workloads::random_table_shards`). The cuts are derived from the
    /// part sizes, so key routing and merge semantics are identical to
    /// handing the concatenated table to [`Self::build`].
    ///
    /// # Panics
    /// If `parts` is empty.
    pub fn from_shards(parts: Vec<Table>, mut make: impl FnMut(usize, Table) -> E) -> Self {
        let cuts = ShardCuts::from_sizes(parts.iter().map(Table::num_rows));
        Self::from_parts(cuts, parts.into_iter().enumerate().map(|(i, t)| make(i, t)))
    }

    fn from_parts(cuts: ShardCuts, engines: impl Iterator<Item = E>) -> Self {
        let shards: Vec<E> = engines.collect();
        assert!(!shards.is_empty(), "need at least one shard");
        let name = interned_name(format!("Sharded {} x{}", shards[0].name(), shards.len()));
        ShardedEngine {
            cuts,
            threads: super::auto_threads(),
            name,
            inserted: 0,
            shards,
        }
    }

    /// Decompose the router into its cuts, inner engines (in shard
    /// order) and insert count, so another owner — the
    /// [`service::Service`](super::service::Service) worker threads —
    /// can take exclusive ownership of each shard. Inverse of
    /// [`Self::reassemble`].
    pub fn into_parts(self) -> (ShardCuts, Vec<E>, usize) {
        (self.cuts, self.shards, self.inserted)
    }

    /// Rebuild a router from parts produced by [`Self::into_parts`]
    /// (plus any inserts routed in between, reflected in `inserted`).
    /// The parts must keep the round-robin insert discipline for key
    /// routing to stay exact.
    pub fn reassemble(cuts: ShardCuts, shards: Vec<E>, inserted: usize) -> Self {
        let mut e = Self::from_parts(cuts, shards.into_iter());
        e.inserted = inserted;
        e
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard cut positions (global-key ↔ shard-local-key mapping).
    pub fn cuts(&self) -> &ShardCuts {
        &self.cuts
    }

    /// Read access to the inner engines, in shard order.
    pub fn shards(&self) -> &[E] {
        &self.shards
    }

    /// Set the fan-out worker budget (1 = run shards sequentially).
    /// Defaults to [`super::auto_threads`], which honors the
    /// `CRACKDB_THREADS` environment override.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Current fan-out worker budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Resolve a global key to `(shard, shard-local key)`: original rows
    /// by cut ranges, inserted rows by the round-robin arithmetic (the
    /// `j`-th insert went to shard `j mod N` at local position
    /// `partition_size + j / N`).
    fn locate(&self, key: RowId) -> (usize, RowId) {
        locate_key(&self.cuts, self.shards.len(), self.inserted, key)
            .unwrap_or_else(|| panic!("key {key} was never inserted"))
    }

    /// Run `work` over every shard and collect results in shard order.
    /// At most `threads` scoped worker threads run concurrently: shards
    /// are dealt to workers in contiguous groups, each group processed
    /// sequentially (with 1 worker everything runs on the caller's
    /// thread). A panicking shard re-raises its original payload on the
    /// caller's thread.
    fn fan_out<R: Send>(&mut self, work: impl Fn(&mut E) -> R + Sync) -> Vec<R>
    where
        E: Send,
    {
        let nshards = self.shards.len();
        if self.threads <= 1 || nshards <= 1 {
            return self.shards.iter_mut().map(&work).collect();
        }
        // Deal shards to exactly `workers` near-equal contiguous groups
        // (sizes differ by at most one), so the whole thread budget is
        // used even when the shard count is not a multiple of it. The
        // split arithmetic is ShardCuts::even itself — one tested owner.
        let workers = self.threads.min(nshards);
        let groups = ShardCuts::even(nshards, workers);
        std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(workers);
            let mut rest = self.shards.as_mut_slice();
            for g in 0..workers {
                let (group, tail) = rest.split_at_mut(groups.len_of(g));
                rest = tail;
                handles.push(s.spawn(|| group.iter_mut().map(&work).collect::<Vec<R>>()));
            }
            handles
                .into_iter()
                .flat_map(|h| match h.join() {
                    Ok(r) => r,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        })
    }
}

/// The round-robin key arithmetic shared by the in-process router and
/// the service-layer router: a global key below the partitioned range is
/// an original row located by the cuts; key `total_rows + j` is the
/// `j`-th insert, which went to shard `j mod N` at local position
/// `partition_size + j / N`. Returns `None` for keys never inserted —
/// callers decide between panicking ([`ShardedEngine::delete`]) and a
/// recoverable error (the query service, which must not bring down a
/// worker over one bad client key).
pub(crate) fn locate_key(
    cuts: &ShardCuts,
    nshards: usize,
    inserted: usize,
    key: RowId,
) -> Option<(usize, RowId)> {
    let k = key as usize;
    if k < cuts.total_rows() {
        return Some(cuts.locate(key));
    }
    let j = k - cuts.total_rows();
    if j >= inserted {
        return None;
    }
    let s = j % nshards;
    Some((s, (cuts.len_of(s) + j / nshards) as RowId))
}

/// The statistics block requested from each shard per aggregated
/// attribute, in this order. Every function any merge needs is derivable
/// from the four, so a shard is asked each attribute exactly once no
/// matter which functions the caller requested.
pub(crate) const STAT_FUNCS: [AggFunc; 4] =
    [AggFunc::Count, AggFunc::Sum, AggFunc::Min, AggFunc::Max];

/// Distinct attributes of an aggregate list, in first-appearance order.
pub(crate) fn distinct_attrs(aggs: &[(usize, AggFunc)]) -> Vec<usize> {
    let mut attrs = Vec::new();
    for &(a, _) in aggs {
        if !attrs.contains(&a) {
            attrs.push(a);
        }
    }
    attrs
}

/// Expand an aggregate list into the per-shard statistics block: all of
/// [`STAT_FUNCS`] for each distinct attribute.
pub(crate) fn stat_block(attrs: &[usize]) -> Vec<(usize, AggFunc)> {
    attrs
        .iter()
        .flat_map(|&a| STAT_FUNCS.iter().map(move |&f| (a, f)))
        .collect()
}

/// Rebuild the [`PartialAgg`] a shard's statistics block describes.
/// `slot` indexes the distinct attribute within the block.
fn block_partial(aggs: &[Option<Val>], slot: usize) -> PartialAgg {
    let base = slot * STAT_FUNCS.len();
    PartialAgg {
        count: aggs[base].expect("count aggregates are total"),
        sum: aggs[base + 1].expect("sum aggregates are total"),
        min: aggs[base + 2],
        max: aggs[base + 3],
    }
}

/// Fold the shards' statistics blocks into one merged [`PartialAgg`] per
/// distinct attribute.
pub(crate) fn merge_blocks<'a>(
    shard_aggs: impl Iterator<Item = &'a [Option<Val>]>,
    nattrs: usize,
) -> Vec<PartialAgg> {
    let mut merged = vec![PartialAgg::default(); nattrs];
    for aggs in shard_aggs {
        for (slot, m) in merged.iter_mut().enumerate() {
            m.merge(&block_partial(aggs, slot));
        }
    }
    merged
}

/// Finish the originally requested aggregates from the merged partials.
pub(crate) fn finish_aggs(
    requested: &[(usize, AggFunc)],
    attrs: &[usize],
    merged: &[PartialAgg],
) -> Vec<Option<Val>> {
    requested
        .iter()
        .map(|&(a, func)| {
            let slot = attrs.iter().position(|&x| x == a).expect("attr in block");
            let mut acc = AggAcc::new(func);
            acc.absorb(&merged[slot]);
            acc.finish()
        })
        .collect()
}

/// Per-phase maximum across shards: shards run concurrently, so the
/// slowest shard approximates each phase's wall time.
fn merge_timings(outs: &[QueryOutput]) -> Timings {
    let mut t = Timings::default();
    for o in outs {
        t.select = t.select.max(o.timings.select);
        t.reconstruct = t.reconstruct.max(o.timings.reconstruct);
        t.join = t.join.max(o.timings.join);
        t.post_join = t.post_join.max(o.timings.post_join);
    }
    t
}

/// The statistics-block variant of a select query the shards answer:
/// same predicates and projections (so selection — and therefore
/// cracking — is exactly the query's own), aggregates expanded to the
/// mergeable block over `attrs` (= `distinct_attrs(&q.aggs)`).
pub(crate) fn shard_select_query(q: &SelectQuery, attrs: &[usize]) -> SelectQuery {
    SelectQuery {
        preds: q.preds.clone(),
        disjunctive: q.disjunctive,
        aggs: stat_block(attrs),
        projs: q.projs.clone(),
    }
}

/// Merge per-shard statistics-block answers (in shard order) into the
/// final [`QueryOutput`] of the original query: aggregates fold through
/// [`PartialAgg::merge`], projections concatenate in shard order, rows
/// sum, timings take the per-phase maximum. The one merge
/// implementation behind both the in-process [`ShardedEngine`] and the
/// query service's `Client` — they must stay bit-identical.
pub(crate) fn merge_select_outputs(
    q: &SelectQuery,
    attrs: &[usize],
    outs: Vec<QueryOutput>,
) -> QueryOutput {
    let merged = merge_blocks(outs.iter().map(|o| o.aggs.as_slice()), attrs.len());
    let mut out = QueryOutput {
        aggs: finish_aggs(&q.aggs, attrs, &merged),
        proj_values: q.projs.iter().map(|_| Vec::new()).collect(),
        rows: outs.iter().map(|o| o.rows).sum(),
        timings: merge_timings(&outs),
    };
    for o in outs {
        for (dst, src) in out.proj_values.iter_mut().zip(o.proj_values) {
            dst.extend(src);
        }
    }
    out
}

/// The statistics-block variant of a join query (both sides expanded;
/// `lattrs`/`rattrs` are the sides' distinct aggregate attributes).
pub(crate) fn shard_join_query(q: &JoinQuery, lattrs: &[usize], rattrs: &[usize]) -> JoinQuery {
    JoinQuery {
        left: JoinSide {
            preds: q.left.preds.clone(),
            join_attr: q.left.join_attr,
            aggs: stat_block(lattrs),
        },
        right: JoinSide {
            preds: q.right.preds.clone(),
            join_attr: q.right.join_attr,
            aggs: stat_block(rattrs),
        },
    }
}

/// Merge per-shard join answers: a shard's agg list is the left block
/// followed by the right block; split, merge, and finish each side in
/// request order. Shared with the query service like
/// [`merge_select_outputs`].
pub(crate) fn merge_join_outputs(
    q: &JoinQuery,
    lattrs: &[usize],
    rattrs: &[usize],
    outs: &[QueryOutput],
) -> QueryOutput {
    let lblock = lattrs.len() * STAT_FUNCS.len();
    let lmerged = merge_blocks(outs.iter().map(|o| &o.aggs[..lblock]), lattrs.len());
    let rmerged = merge_blocks(outs.iter().map(|o| &o.aggs[lblock..]), rattrs.len());
    let mut aggs = finish_aggs(&q.left.aggs, lattrs, &lmerged);
    aggs.extend(finish_aggs(&q.right.aggs, rattrs, &rmerged));
    QueryOutput {
        aggs,
        proj_values: Vec::new(),
        rows: outs.iter().map(|o| o.rows).sum(),
        timings: merge_timings(outs),
    }
}

impl<E: Engine + Send> Engine for ShardedEngine<E> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn select(&mut self, q: &SelectQuery) -> QueryOutput {
        let attrs = distinct_attrs(&q.aggs);
        let shard_q = shard_select_query(q, &attrs);
        let outs = self.fan_out(|e| e.select(&shard_q));
        merge_select_outputs(q, &attrs, outs)
    }

    fn join(&mut self, q: &JoinQuery) -> QueryOutput {
        let lattrs = distinct_attrs(&q.left.aggs);
        let rattrs = distinct_attrs(&q.right.aggs);
        let shard_q = shard_join_query(q, &lattrs, &rattrs);
        let outs = self.fan_out(|e| e.join(&shard_q));
        merge_join_outputs(q, &lattrs, &rattrs, &outs)
    }

    fn insert(&mut self, row: &[Val]) {
        let s = self.inserted % self.shards.len();
        self.inserted += 1;
        self.shards[s].insert(row);
    }

    fn delete(&mut self, key: RowId) {
        let (s, local) = self.locate(key);
        self.shards[s].delete(local);
    }

    fn aux_tuples(&self) -> usize {
        self.shards.iter().map(E::aux_tuples).sum()
    }

    fn policy_switches(&self) -> u64 {
        self.shards.iter().map(E::policy_switches).sum()
    }

    fn set_workers(&mut self, workers: usize) {
        self.set_threads(workers);
        for shard in &mut self.shards {
            shard.set_workers(workers);
        }
    }
}

/// Intern a dynamically built engine name: `Engine::name` returns
/// `&'static str`, and routers over the same inner engine and shard
/// count should share one allocation instead of leaking per instance.
///
/// The registry is a hashed set, so lookups are O(1) in the number of
/// distinct names rather than a linear scan under the lock. Leak bound:
/// exactly one `Box::leak` allocation per distinct `(inner engine name,
/// shard count)` pair over the process lifetime — a small constant for
/// any real deployment (five engine names × the handful of shard counts
/// in use), never per router instance or per query.
fn interned_name(name: String) -> &'static str {
    use std::collections::HashSet;
    use std::sync::OnceLock;
    static NAMES: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    // Insert-only registry: a panicking holder cannot leave it
    // inconsistent, so recover rather than cascade the poison.
    let mut names = crackdb_core::lock_unpoisoned(NAMES.get_or_init(Default::default));
    if let Some(&n) = names.get(name.as_str()) {
        return n;
    }
    let leaked: &'static str = Box::leak(name.into_boxed_str());
    names.insert(leaked);
    leaked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plain::PlainEngine;
    use crackdb_columnstore::column::Column;
    use crackdb_columnstore::types::RangePred;

    fn table(n: usize) -> Table {
        let mut t = Table::new();
        t.add_column(
            "a",
            Column::new((0..n as i64).map(|i| (i * 37) % 100).collect()),
        );
        t.add_column("b", Column::new((0..n as i64).collect()));
        t
    }

    fn sharded(n: usize, shards: usize) -> ShardedEngine<PlainEngine> {
        ShardedEngine::build(table(n), shards, |_, t| PlainEngine::new(t))
    }

    #[test]
    fn select_merges_all_agg_functions() {
        let q = SelectQuery::aggregate(
            vec![(0, RangePred::open(10, 60))],
            vec![
                (1, AggFunc::Count),
                (1, AggFunc::Sum),
                (1, AggFunc::Min),
                (1, AggFunc::Max),
                (1, AggFunc::Avg),
            ],
        );
        let mut whole = PlainEngine::new(table(101));
        let expected = whole.select(&q);
        for shards in [1, 2, 3, 7] {
            let mut e = sharded(101, shards);
            let out = e.select(&q);
            assert_eq!(out.rows, expected.rows, "{shards} shards");
            assert_eq!(out.aggs, expected.aggs, "{shards} shards");
        }
    }

    #[test]
    fn avg_is_not_an_average_of_shard_averages() {
        // Uneven shards: [10, 10] and [70]. Averaging the shard averages
        // would give (10 + 70) / 2 = 40; the true average is 90 / 3 = 30.
        let mut t = Table::new();
        t.add_column("a", Column::new(vec![10, 10, 70]));
        let mut e = ShardedEngine::build(t, 2, |_, t| PlainEngine::new(t));
        let q = SelectQuery::aggregate(vec![], vec![(0, AggFunc::Avg)]);
        assert_eq!(e.select(&q).aggs, vec![Some(30)]);
    }

    #[test]
    fn projections_concatenate_across_shards() {
        let q = SelectQuery::project(vec![(0, RangePred::open(-1, 1000))], vec![1]);
        let mut e = sharded(20, 4);
        let out = e.select(&q);
        let mut vals = out.proj_values[0].clone();
        vals.sort_unstable();
        assert_eq!(vals, (0..20).collect::<Vec<i64>>());
        assert_eq!(out.rows, 20);
    }

    #[test]
    fn update_routing_matches_unsharded_keys() {
        let mut whole = PlainEngine::new(table(10));
        let mut e = sharded(10, 3);
        // Insert four rows (round-robin) and delete a mix of original
        // and inserted rows using *global* keys.
        for (i, v) in [500, 501, 502, 503].iter().enumerate() {
            whole.insert(&[*v, 1000 + i as i64]);
            e.insert(&[*v, 1000 + i as i64]);
        }
        for key in [0u32, 9, 11] {
            // 11 = second inserted row (global key 10 + 1).
            whole.delete(key);
            e.delete(key);
        }
        let q = SelectQuery::aggregate(
            vec![(0, RangePred::all())],
            vec![(1, AggFunc::Count), (1, AggFunc::Sum), (1, AggFunc::Max)],
        );
        let expected = whole.select(&q);
        let out = e.select(&q);
        assert_eq!(out.rows, expected.rows);
        assert_eq!(out.aggs, expected.aggs);
    }

    #[test]
    #[should_panic(expected = "never inserted")]
    fn deleting_unknown_insert_panics() {
        let mut e = sharded(10, 2);
        e.delete(10);
    }

    #[test]
    fn empty_shards_are_harmless() {
        let mut e = sharded(3, 7);
        let q = SelectQuery::aggregate(
            vec![(1, RangePred::all())],
            vec![(1, AggFunc::Count), (1, AggFunc::Min)],
        );
        let out = e.select(&q);
        assert_eq!(out.rows, 3);
        assert_eq!(out.aggs, vec![Some(3), Some(0)]);
    }

    #[test]
    fn batch_runner_budget_reaches_the_fan_out() {
        // A serial BatchRunner over a sharded engine must switch the
        // shard fan-out to serial too (Engine::set_workers propagation).
        let runner = crate::exec::BatchRunner::new(sharded(20, 4), 1);
        assert_eq!(runner.engine().threads(), 1);
        let runner = crate::exec::BatchRunner::new(sharded(20, 4), 3);
        assert_eq!(runner.engine().threads(), 3);
    }

    #[test]
    fn capped_fan_out_preserves_shard_order() {
        // 7 shards over a 2-worker budget → groups of 4 and 3; results
        // must still come back in shard order. Plain scans return keys
        // ascending and the shards are contiguous cuts, so the merged
        // projection is exactly column b in row order.
        let mut e = sharded(101, 7);
        e.set_threads(2);
        let q = SelectQuery::project(vec![(0, RangePred::all())], vec![1]);
        let out = e.select(&q);
        assert_eq!(out.proj_values[0], (0..101).collect::<Vec<i64>>());
        assert_eq!(out.rows, 101);
    }

    #[test]
    fn fan_out_preserves_panic_payload() {
        struct Bomb;
        impl Engine for Bomb {
            fn name(&self) -> &'static str {
                "bomb"
            }
            fn select(&mut self, _q: &SelectQuery) -> QueryOutput {
                panic!("shard 1 exploded");
            }
            fn join(&mut self, _q: &JoinQuery) -> QueryOutput {
                unreachable!()
            }
            fn insert(&mut self, _row: &[Val]) {}
            fn delete(&mut self, _key: RowId) {}
        }
        let mut e = ShardedEngine::from_parts(ShardCuts::even(4, 2), [Bomb, Bomb].into_iter());
        e.set_threads(2);
        let q = SelectQuery::aggregate(vec![], vec![]);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| e.select(&q)))
            .expect_err("shards panicked");
        assert_eq!(
            caught.downcast_ref::<&'static str>(),
            Some(&"shard 1 exploded"),
            "the shard's own payload must reach the caller"
        );
    }

    #[test]
    fn names_are_interned() {
        let a = sharded(10, 2);
        let b = sharded(20, 2);
        assert_eq!(a.name(), "Sharded MonetDB x2");
        assert!(std::ptr::eq(a.name(), b.name()), "same name, same alloc");
        assert_eq!(a.shard_count(), 2);
        assert_eq!(a.cuts().total_rows(), 10);
        assert_eq!(a.shards().len(), 2);
    }
}
