//! The shared query executor: one implementation of everything the
//! paper's five physical designs have in common, over the per-design
//! [`AccessPath`] abstraction.
//!
//! The executor owns:
//!
//! * selectivity-driven predicate ordering (§3.3/§3.6: every system
//!   evaluates from the most selective predicate; disjunctions pick the
//!   least selective head so the areas scanned outside the cracked
//!   region stay small);
//! * conjunctive / disjunctive combining, delegated per step to the
//!   path but built from the shared [`combine`] strategies;
//! * aggregate accumulation and projection materialization;
//! * [`Timings`] phase instrumentation;
//! * the data-parallel fast path for aggregate-only attributes (via
//!   [`AccessPath::partial_agg`] and the `columnstore` parallel
//!   kernels).
//!
//! The [`batch::BatchRunner`] session layer sits on top, running query
//! batches with the read-only kernels fanned out over worker threads,
//! and the [`shard::ShardedEngine`] router shards the table itself so
//! that cracking, too, runs partition-parallel.

pub mod batch;
pub mod combine;
pub mod path;
pub mod service;
pub mod shard;
pub mod snapshot;

pub use batch::BatchRunner;
pub use path::{AccessPath, RestrictCtx, RowSet};
pub use service::{Client, Service, ServiceConfig, ServiceError};
pub use shard::ShardedEngine;
pub use snapshot::{EngineSnapshot, SnapPlan};

use crate::query::{AggAcc, JoinSide, QueryError, QueryOutput, SelectQuery};
use crackdb_columnstore::types::{RangePred, RowId, Val};
use crackdb_cracking::{CrackKernel, CrackPolicy};
use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::Instant;

/// The one sanctioned raw environment read: this module (with
/// `crackdb-cracking`'s kernel dispatch) *is* the env registry that
/// lint L004 and clippy's disallowed-methods point everything else at.
fn registry_var(name: &str) -> Option<String> {
    #[allow(clippy::disallowed_methods)]
    std::env::var(name).ok()
}

/// The session-wide default worker count: the `CRACKDB_THREADS`
/// environment override when set (CI runs the whole suite at 1 and 4 so
/// the serial and parallel paths are both exercised), else one worker
/// per available hardware thread. Consumed by [`BatchRunner::auto`] and
/// the [`ShardedEngine`] fan-out.
pub fn auto_threads() -> usize {
    threads_override(registry_var("CRACKDB_THREADS").as_deref())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Parse a `CRACKDB_THREADS`-style override value; unset, garbage and
/// non-positive values mean "no override". Separated from the env read
/// so it is testable without process-global `set_var` (unsynchronized
/// with concurrent `env::var` readers on other test threads).
fn threads_override(value: Option<&str>) -> Option<usize> {
    value?.trim().parse().ok().filter(|&n: &usize| n > 0)
}

/// Parse a `CRACKDB_POLICY`-style override value: unset or empty means
/// the standard policy, anything else must name a crack policy
/// (`standard | stochastic | coarse | coarse:<min_piece> | adaptive`).
/// Like [`threads_override`], separated from the env read for
/// testability.
fn policy_override(value: Option<&str>) -> Result<CrackPolicy, String> {
    match value {
        None => Ok(CrackPolicy::Standard),
        Some(v) => CrackPolicy::parse(v).ok_or_else(|| {
            format!(
                "CRACKDB_POLICY={v:?} is not a crack policy \
                 (expected standard | stochastic | coarse | coarse:<min_piece> | adaptive)"
            )
        }),
    }
}

/// Validate the `CRACKDB_POLICY` environment selection, parsed once per
/// process. This is the *strict* entry point: startup paths that can
/// report an error cleanly — [`service::Service::start`], bench bins,
/// the env-validity test CI relies on — call it so a typo in a policy
/// matrix produces one clear failure instead of either a panic inside
/// every engine constructor or a silent fallback that vacuously
/// re-tests the standard policy while reporting green.
pub fn env_policy() -> Result<CrackPolicy, String> {
    static POLICY: OnceLock<Result<CrackPolicy, String>> = OnceLock::new();
    POLICY
        .get_or_init(|| policy_override(registry_var("CRACKDB_POLICY").as_deref()))
        .clone()
}

/// The crack policy engine constructors default to: the `CRACKDB_POLICY`
/// environment selection when set and valid, [`CrackPolicy::Standard`]
/// otherwise. *Non-fatal* by design — a library user embedding an
/// engine must not be brought down by an unrelated environment variable;
/// an invalid value logs one warning per process (and is reported as a
/// proper error by the strict [`env_policy`] at service startup).
pub fn policy_from_env() -> CrackPolicy {
    static WARNED: OnceLock<()> = OnceLock::new();
    match env_policy() {
        Ok(p) => p,
        Err(msg) => {
            WARNED.get_or_init(|| eprintln!("warning: {msg}; falling back to standard cracking"));
            CrackPolicy::Standard
        }
    }
}

/// Parse a `CRACKDB_KERNEL`-style override value: unset or empty means
/// the default block kernel, anything else must name a crack kernel
/// (`scalar | block`). Like [`threads_override`], separated from the
/// env read for testability.
fn kernel_override(value: Option<&str>) -> Result<CrackKernel, String> {
    match value {
        None => Ok(CrackKernel::Block),
        Some(v) => CrackKernel::parse(v).ok_or_else(|| {
            format!("CRACKDB_KERNEL={v:?} is not a crack kernel (expected scalar | block)")
        }),
    }
}

/// Validate the `CRACKDB_KERNEL` environment selection, parsed once per
/// process — the strict twin of `crackdb-cracking`'s lenient
/// [`crackdb_cracking::active_kernel`] dispatch, exactly as
/// [`env_policy`] is to [`policy_from_env`]: service startup and the
/// env-validity test CI relies on call this so a typo in the kernel
/// matrix fails loudly instead of silently re-testing the default
/// block kernel under a green "scalar" job.
pub fn env_kernel() -> Result<CrackKernel, String> {
    static KERNEL: OnceLock<Result<CrackKernel, String>> = OnceLock::new();
    KERNEL
        .get_or_init(|| kernel_override(registry_var("CRACKDB_KERNEL").as_deref()))
        .clone()
}

/// The kernel the process partitions with: the validated `CRACKDB_KERNEL`
/// selection, falling back to the default block kernel with one warning
/// on an invalid value (the warning itself is emitted by the dispatch in
/// `crackdb-cracking`, which every crack call funnels through).
pub fn kernel_from_env() -> CrackKernel {
    env_kernel().unwrap_or(CrackKernel::Block)
}

/// Parse a `CRACKDB_SNAPSHOT_READS`-style override value: unset or
/// empty means the default (fast path on), otherwise `1 | true | on`
/// enable and `0 | false | off` disable the lock-free snapshot read
/// path in [`service::Service`]. Like [`threads_override`], separated
/// from the env read for testability.
fn snapshot_reads_override(value: Option<&str>) -> Result<bool, String> {
    match value.map(str::trim) {
        None | Some("") => Ok(true),
        Some(v) => match v.to_ascii_lowercase().as_str() {
            "1" | "true" | "on" => Ok(true),
            "0" | "false" | "off" => Ok(false),
            _ => Err(format!(
                "CRACKDB_SNAPSHOT_READS={v:?} is not a snapshot-reads toggle \
                 (expected 1 | true | on | 0 | false | off)"
            )),
        },
    }
}

/// Validate the `CRACKDB_SNAPSHOT_READS` environment toggle, parsed
/// once per process — the strict entry point [`ServiceConfig`]
/// validation and the env-validity test CI relies on call, exactly as
/// [`env_policy`] / [`env_kernel`] are for their variables: a typo in
/// the CI snapshot-reads matrix must fail loudly, not silently re-test
/// the default while reporting green.
pub fn env_snapshot_reads() -> Result<bool, String> {
    static SNAPSHOT: OnceLock<Result<bool, String>> = OnceLock::new();
    SNAPSHOT
        .get_or_init(|| snapshot_reads_override(registry_var("CRACKDB_SNAPSHOT_READS").as_deref()))
        .clone()
}

/// The snapshot-reads default [`ServiceConfig`] uses: the validated
/// `CRACKDB_SNAPSHOT_READS` selection, falling back to enabled with
/// one warning on an invalid value (non-fatal for library embedders;
/// [`service::Service::with_config`] reports the strict error).
pub fn snapshot_reads_from_env() -> bool {
    static WARNED: OnceLock<()> = OnceLock::new();
    match env_snapshot_reads() {
        Ok(v) => v,
        Err(msg) => {
            WARNED.get_or_init(|| eprintln!("warning: {msg}; snapshot reads stay enabled"));
            true
        }
    }
}

/// Parse a `CRACKDB_SPILL_DIR`-style override value: unset or empty
/// means "no override" (spill-enabled engines then place their spill
/// files under the system temp dir); anything else is taken as a
/// directory path. Purely syntactic — existence is checked by the
/// strict [`env_spill_dir`], which can see the filesystem.
fn spill_dir_override(value: Option<&str>) -> Result<Option<PathBuf>, String> {
    match value.map(str::trim) {
        None | Some("") => Ok(None),
        Some(v) => Ok(Some(PathBuf::from(v))),
    }
}

/// Validate the `CRACKDB_SPILL_DIR` environment selection, parsed once
/// per process — the strict entry point [`ServiceConfig`] validation
/// and the env-validity test CI relies on call, exactly as
/// [`env_policy`] / [`env_kernel`] are for their variables: a spill
/// directory that exists but is not a directory must fail loudly at
/// startup, not as a confusing I/O error inside the first evicting
/// query. A non-existent path is fine (spill tiers create their own
/// unique subdirectory on first use).
pub fn env_spill_dir() -> Result<Option<PathBuf>, String> {
    static SPILL: OnceLock<Result<Option<PathBuf>, String>> = OnceLock::new();
    SPILL
        .get_or_init(|| {
            let dir = spill_dir_override(registry_var("CRACKDB_SPILL_DIR").as_deref())?;
            if let Some(d) = &dir {
                if d.exists() && !d.is_dir() {
                    return Err(format!(
                        "CRACKDB_SPILL_DIR={d:?} exists but is not a directory"
                    ));
                }
            }
            Ok(dir)
        })
        .clone()
}

/// The spill base directory spill-enabled engine constructors default
/// to: the validated `CRACKDB_SPILL_DIR` selection when set, the
/// system temp dir otherwise. *Non-fatal* by design, like
/// [`policy_from_env`]: an invalid value logs one warning per process
/// and falls back to the temp dir (and is reported as a proper error
/// by the strict [`env_spill_dir`] at service startup).
pub fn spill_dir_from_env() -> PathBuf {
    static WARNED: OnceLock<()> = OnceLock::new();
    match env_spill_dir() {
        Ok(Some(d)) => d,
        Ok(None) => std::env::temp_dir(),
        Err(msg) => {
            WARNED.get_or_init(|| eprintln!("warning: {msg}; spilling to the system temp dir"));
            std::env::temp_dir()
        }
    }
}

/// Order predicates by the path's selectivity estimates: ascending
/// (most selective first) for conjunctions, descending for disjunctions.
///
/// Predicates the path has *no* statistics for keep their plan
/// positions (the presorted baseline requires its head predicate to
/// stay first — its path reports no estimates at all); the predicates
/// that do have estimates are ordered among the remaining positions
/// instead of one unknown discarding all ordering.
fn order_preds<P: AccessPath + ?Sized>(
    path: &P,
    preds: &[(usize, RangePred)],
    disjunctive: bool,
) -> Vec<(usize, RangePred)> {
    if preds.len() < 2 {
        return preds.to_vec();
    }
    let estimates: Vec<Option<f64>> = preds
        .iter()
        .map(|(attr, pred)| path.estimate(*attr, pred))
        .collect();
    // Positions that hold an estimable predicate; the sorted estimable
    // predicates are placed back into exactly these slots.
    let slots: Vec<usize> = (0..preds.len())
        .filter(|&i| estimates[i].is_some())
        .collect();
    if slots.len() < 2 {
        return preds.to_vec();
    }
    let mut order = slots.clone();
    order.sort_by(|&a, &b| {
        let (ea, eb) = (estimates[a].unwrap(), estimates[b].unwrap());
        // total_cmp: degenerate statistics (empty tables, single-value
        // domains) must never panic the planner — a NaN simply sorts
        // last and the plan stays valid.
        let ord = ea.total_cmp(&eb);
        if disjunctive {
            ord.reverse()
        } else {
            ord
        }
    });
    let mut out = preds.to_vec();
    for (&slot, &src) in slots.iter().zip(order.iter()) {
        out[slot] = preds[src];
    }
    out
}

/// Execute a single-table query over any access path, panicking on a
/// storage-tier failure. In-RAM paths are infallible, so this is the
/// `select` implementation they share; spill-enabled engines call
/// [`try_run_select`] and surface the error instead.
pub fn run_select<P: AccessPath + ?Sized>(path: &mut P, q: &SelectQuery) -> QueryOutput {
    try_run_select(path, q).unwrap_or_else(|e| panic!("storage failure in infallible select: {e}"))
}

/// Execute a single-table query over any access path. This is the one
/// `select` implementation all five engines share; engines with a
/// storage tier get disk failures back as [`QueryError::Storage`].
pub fn try_run_select<P: AccessPath + ?Sized>(
    path: &mut P,
    q: &SelectQuery,
) -> Result<QueryOutput, QueryError> {
    let mut out = QueryOutput::default();

    // Attributes the reconstruction phase needs, deduplicated, aggregates
    // first (matching the plan shape of §3.2: one sideways operator per
    // map in the selection phase, reconstruction after).
    let mut fetch_attrs: Vec<usize> = Vec::new();
    for a in q
        .aggs
        .iter()
        .map(|&(a, _)| a)
        .chain(q.projs.iter().copied())
    {
        if !fetch_attrs.contains(&a) {
            fetch_attrs.push(a);
        }
    }

    let preds = order_preds(path, &q.preds, q.disjunctive);
    let ctx = RestrictCtx {
        preds: &preds,
        fetch_attrs: &fetch_attrs,
        disjunctive: q.disjunctive,
    };

    // --- Selection phase -------------------------------------------------
    let t0 = Instant::now();
    let rows = match preds.split_first() {
        None => path.unrestricted(&ctx),
        Some(((attr, pred), rest)) => {
            let mut rows = path.restrict(*attr, pred, &ctx);
            for (attr, pred) in rest {
                if q.disjunctive {
                    path.extend(&mut rows, *attr, pred, &ctx);
                } else {
                    path.refine(&mut rows, *attr, pred, &ctx);
                }
            }
            rows
        }
    };
    out.timings.select = t0.elapsed();

    // --- Reconstruction phase --------------------------------------------
    let t1 = Instant::now();
    let mut accs: Vec<AggAcc> = q.aggs.iter().map(|&(_, f)| AggAcc::new(f)).collect();
    let mut proj_vals: Vec<Vec<Val>> = q.projs.iter().map(|_| Vec::new()).collect();
    // Count per fetch attribute (row-count source for deferred plans).
    let mut first_attr_count = 0usize;

    // Aggregate-only attributes first try the path's partial-aggregate
    // fast path (parallel kernels); everything else streams.
    let mut stream_attrs: Vec<usize> = Vec::new();
    let mut partial_filled = vec![false; q.aggs.len()];
    let deferred = matches!(rows, RowSet::Deferred { .. } | RowSet::DeferredUnion { .. });
    if !deferred {
        for &attr in &fetch_attrs {
            let agg_idxs: Vec<usize> = (0..q.aggs.len()).filter(|&i| q.aggs[i].0 == attr).collect();
            let projected = q.projs.contains(&attr);
            if !projected && !agg_idxs.is_empty() {
                if let Some(p) = path.partial_agg(&rows, attr) {
                    for i in agg_idxs {
                        accs[i].absorb(&p);
                        partial_filled[i] = true;
                    }
                    continue;
                }
            }
            stream_attrs.push(attr);
        }
    } else {
        stream_attrs = fetch_attrs.clone();
        if stream_attrs.is_empty() {
            // Nothing to reconstruct, but the result cardinality (and the
            // adaptive reorganization) still require the fused pass: count
            // via the head attribute itself.
            match &rows {
                RowSet::Deferred { head, .. } => stream_attrs.push(head.0),
                RowSet::DeferredUnion { preds } => {
                    stream_attrs.push(preds.first().map_or(0, |p| p.0))
                }
                _ => {}
            }
        }
    }

    if !stream_attrs.is_empty() {
        let first_attr = stream_attrs[0];
        path.fetch(&rows, &stream_attrs, &mut |attr, v| {
            if attr == first_attr {
                first_attr_count += 1;
            }
            for (i, &(a, _)) in q.aggs.iter().enumerate() {
                if a == attr && !partial_filled[i] {
                    accs[i].push(v);
                }
            }
            for (i, &p) in q.projs.iter().enumerate() {
                if p == attr {
                    proj_vals[i].push(v);
                }
            }
        })?;
    }

    out.aggs = accs.iter().map(|a| a.finish()).collect();
    out.proj_values = proj_vals;
    out.rows = match rows.len() {
        Some(n) => n,
        // Chunk-wise plans learn the result size while streaming; every
        // fetched attribute yields exactly one value per qualifying tuple.
        None => first_attr_count,
    };
    // Partial maps interleave selection, alignment, fetching and
    // reconstruction chunk-wise; the paper reports a single per-query
    // cost for them (under selection).
    if deferred {
        out.timings.select += t1.elapsed();
    } else {
        out.timings.reconstruct = t1.elapsed();
    }
    Ok(out)
}

/// Aggregate one join side over the matched `(left_key, right_key)`
/// pairs: the post-join reconstruction loop shared by every engine's
/// join plan. `value_of(attr, key)` resolves a side-local tuple identity
/// to its attribute value.
pub fn agg_matched(
    matched: &[(RowId, RowId)],
    side: &JoinSide,
    left: bool,
    value_of: impl Fn(usize, RowId) -> Val,
) -> Vec<Option<Val>> {
    side.aggs
        .iter()
        .map(|&(attr, func)| {
            let mut acc = AggAcc::new(func);
            for &(lk, rk) in matched {
                acc.push(value_of(attr, if left { lk } else { rk }));
            }
            acc.finish()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crackdb_columnstore::column::{Column, Table};
    use crackdb_columnstore::ops::parallel::PartialAgg;
    use crackdb_columnstore::types::AggFunc;

    /// A minimal scan-based access path over one table, used to test the
    /// executor in isolation from the real engines.
    struct ScanPath {
        table: Table,
        partial_agg_calls: usize,
    }

    impl AccessPath for ScanPath {
        fn name(&self) -> &'static str {
            "test-scan"
        }

        fn restrict(&mut self, attr: usize, pred: &RangePred, _ctx: &RestrictCtx) -> RowSet {
            RowSet::keys(
                crackdb_columnstore::ops::select::select(self.table.column(attr), pred),
                true,
            )
        }

        fn refine(&mut self, rows: &mut RowSet, attr: usize, pred: &RangePred, _ctx: &RestrictCtx) {
            let RowSet::Keys { keys, .. } = rows else {
                unreachable!()
            };
            let col = self.table.column(attr);
            combine::refine_keys(keys, pred, |k| col.get(k));
        }

        fn extend(&mut self, rows: &mut RowSet, attr: usize, pred: &RangePred, _ctx: &RestrictCtx) {
            let RowSet::Keys { keys, .. } = rows else {
                unreachable!()
            };
            *keys =
                crackdb_columnstore::ops::select::union_scan(self.table.column(attr), keys, pred);
        }

        fn unrestricted(&mut self, _ctx: &RestrictCtx) -> RowSet {
            RowSet::keys((0..self.table.num_rows() as RowId).collect(), true)
        }

        fn fetch(
            &mut self,
            rows: &RowSet,
            attrs: &[usize],
            consume: &mut dyn FnMut(usize, Val),
        ) -> Result<(), QueryError> {
            let RowSet::Keys { keys, .. } = rows else {
                unreachable!()
            };
            for &attr in attrs {
                let col = self.table.column(attr);
                for &k in keys {
                    consume(attr, col.get(k));
                }
            }
            Ok(())
        }

        fn partial_agg(&mut self, rows: &RowSet, attr: usize) -> Option<PartialAgg> {
            self.partial_agg_calls += 1;
            let RowSet::Keys { keys, .. } = rows else {
                return None;
            };
            Some(crackdb_columnstore::ops::parallel::par_agg_gather(
                self.table.column(attr),
                keys,
            ))
        }
    }

    fn path() -> ScanPath {
        let mut t = Table::new();
        t.add_column("a", Column::new(vec![5, 1, 9, 3, 7]));
        t.add_column("b", Column::new(vec![50, 10, 90, 30, 70]));
        ScanPath {
            table: t,
            partial_agg_calls: 0,
        }
    }

    #[test]
    fn executor_runs_conjunction_with_partial_aggs() {
        let mut p = path();
        let q = SelectQuery::aggregate(
            vec![(0, RangePred::open(2, 8))],
            vec![(1, AggFunc::Max), (1, AggFunc::Min)],
        );
        let out = run_select(&mut p, &q);
        assert_eq!(out.rows, 3);
        assert_eq!(out.aggs, vec![Some(70), Some(30)]);
        assert_eq!(
            p.partial_agg_calls, 1,
            "one partial agg per distinct attribute"
        );
    }

    #[test]
    fn executor_streams_projected_agg_attrs() {
        let mut p = path();
        let q = SelectQuery {
            preds: vec![(0, RangePred::open(2, 8))],
            disjunctive: false,
            aggs: vec![(1, AggFunc::Count)],
            projs: vec![1],
        };
        let out = run_select(&mut p, &q);
        // Attribute 1 is both aggregated and projected: it must stream
        // (one pass) rather than use the partial-agg fast path.
        assert_eq!(p.partial_agg_calls, 0);
        assert_eq!(out.aggs, vec![Some(3)]);
        let mut vals = out.proj_values[0].clone();
        vals.sort_unstable();
        assert_eq!(vals, vec![30, 50, 70]);
    }

    #[test]
    fn threads_override_parses_strictly() {
        assert_eq!(threads_override(None), None);
        assert_eq!(threads_override(Some("")), None);
        assert_eq!(threads_override(Some("abc")), None);
        assert_eq!(threads_override(Some("0")), None);
        assert_eq!(threads_override(Some("-2")), None);
        assert_eq!(threads_override(Some("4")), Some(4));
        assert_eq!(threads_override(Some(" 8 ")), Some(8));
        assert!(auto_threads() >= 1);
    }

    #[test]
    fn policy_override_parses_strictly() {
        assert_eq!(policy_override(None), Ok(CrackPolicy::Standard));
        assert_eq!(policy_override(Some("")), Ok(CrackPolicy::Standard));
        assert_eq!(policy_override(Some("standard")), Ok(CrackPolicy::Standard));
        assert_eq!(
            policy_override(Some("stochastic")),
            Ok(CrackPolicy::stochastic())
        );
        assert_eq!(
            policy_override(Some("coarse:64")),
            Ok(CrackPolicy::CoarseGranular { min_piece: 64 })
        );
        assert_eq!(policy_override(Some("adaptive")), Ok(CrackPolicy::Adaptive));
        let err = policy_override(Some("nonsense")).unwrap_err();
        assert!(err.contains("nonsense"), "error names the bad value");
        assert!(err.contains("coarse:<min_piece>"), "error lists the forms");
    }

    /// The CI policy matrix exports `CRACKDB_POLICY` for entire test
    /// runs; a typo there must fail loudly exactly once — here — instead
    /// of panicking inside every engine constructor. Library users get
    /// the non-fatal [`policy_from_env`] fallback; this test is what
    /// keeps that fallback from letting a mistyped matrix vacuously
    /// re-test the standard policy while reporting green.
    #[test]
    fn env_policy_is_valid() {
        let p = env_policy().expect("CRACKDB_POLICY must be unset or a valid crack policy");
        assert_eq!(policy_from_env(), p, "lenient and strict reads agree");
    }

    #[test]
    fn kernel_override_parses_strictly() {
        assert_eq!(kernel_override(None), Ok(CrackKernel::Block));
        assert_eq!(kernel_override(Some("")), Ok(CrackKernel::Block));
        assert_eq!(kernel_override(Some("block")), Ok(CrackKernel::Block));
        assert_eq!(kernel_override(Some("scalar")), Ok(CrackKernel::Scalar));
        let err = kernel_override(Some("simd")).unwrap_err();
        assert!(err.contains("simd"), "error names the bad value");
        assert!(err.contains("scalar | block"), "error lists the forms");
    }

    /// The kernel twin of [`env_policy_is_valid`]: the CI kernel matrix
    /// exports `CRACKDB_KERNEL` for entire test runs, and a typo there
    /// must fail this test instead of letting the lenient dispatch fall
    /// back to the block kernel while a green "scalar" job reports
    /// scalar coverage it never ran.
    #[test]
    fn env_kernel_is_valid() {
        let k = env_kernel().expect("CRACKDB_KERNEL must be unset or a valid crack kernel");
        assert_eq!(kernel_from_env(), k, "lenient and strict reads agree");
        // The engine-side read and the cracking-side dispatch observe
        // the same environment, so a valid selection is what runs.
        assert_eq!(crackdb_cracking::active_kernel(), k);
    }

    /// A scan path that reports selectivity estimates only for a chosen
    /// subset of attributes, for exercising mixed known/unknown
    /// predicate ordering.
    struct MixedStatsPath {
        inner: ScanPath,
        /// `(attr, estimate)` pairs; attrs not listed have no stats.
        stats: Vec<(usize, f64)>,
    }

    impl AccessPath for MixedStatsPath {
        fn name(&self) -> &'static str {
            "test-mixed-stats"
        }
        fn estimate(&self, attr: usize, _pred: &RangePred) -> Option<f64> {
            self.stats
                .iter()
                .find(|&&(a, _)| a == attr)
                .map(|&(_, e)| e)
        }
        fn restrict(&mut self, attr: usize, pred: &RangePred, ctx: &RestrictCtx) -> RowSet {
            self.inner.restrict(attr, pred, ctx)
        }
        fn refine(&mut self, rows: &mut RowSet, attr: usize, pred: &RangePred, ctx: &RestrictCtx) {
            self.inner.refine(rows, attr, pred, ctx)
        }
        fn extend(&mut self, rows: &mut RowSet, attr: usize, pred: &RangePred, ctx: &RestrictCtx) {
            self.inner.extend(rows, attr, pred, ctx)
        }
        fn unrestricted(&mut self, ctx: &RestrictCtx) -> RowSet {
            self.inner.unrestricted(ctx)
        }
        fn fetch(
            &mut self,
            rows: &RowSet,
            attrs: &[usize],
            consume: &mut dyn FnMut(usize, Val),
        ) -> Result<(), QueryError> {
            self.inner.fetch(rows, attrs, consume)
        }
    }

    /// Three-column table (a, b, c) for ordering tests.
    fn mixed_path(stats: Vec<(usize, f64)>) -> MixedStatsPath {
        let mut t = Table::new();
        t.add_column("a", Column::new(vec![5, 1, 9, 3, 7, 2, 8]));
        t.add_column("b", Column::new(vec![50, 10, 90, 30, 70, 20, 80]));
        t.add_column("c", Column::new(vec![500, 100, 900, 300, 700, 200, 800]));
        MixedStatsPath {
            inner: ScanPath {
                table: t,
                partial_agg_calls: 0,
            },
            stats,
        }
    }

    /// Predicates without statistics keep their plan positions — in
    /// particular a stat-less head predicate stays first (the presorted
    /// baseline's requirement) — while the estimable subset is still
    /// ordered most-selective-first instead of being abandoned.
    #[test]
    fn order_preds_orders_estimable_subset_around_unknowns() {
        // attr 0 has no stats; attr 1 is unselective, attr 2 selective.
        let p = mixed_path(vec![(1, 0.9), (2, 0.1)]);
        let preds = vec![
            (0, RangePred::open(0, 100)),
            (1, RangePred::open(0, 100)),
            (2, RangePred::open(0, 1000)),
        ];
        let ordered = order_preds(&p, &preds, false);
        let attrs: Vec<usize> = ordered.iter().map(|&(a, _)| a).collect();
        // Unknown attr 0 pinned at slot 0; attrs 2 and 1 swap into the
        // estimable slots by ascending selectivity.
        assert_eq!(attrs, vec![0, 2, 1]);
        // Disjunctions order the estimable subset descending.
        let attrs_disj: Vec<usize> = order_preds(&p, &preds, true)
            .iter()
            .map(|&(a, _)| a)
            .collect();
        assert_eq!(attrs_disj, vec![0, 1, 2]);
        // Unknown predicate in the middle: slots {0, 2} get the sorted
        // estimable preds, slot 1 keeps its stat-less predicate.
        let p2 = mixed_path(vec![(0, 0.9), (2, 0.1)]);
        let attrs2: Vec<usize> = order_preds(&p2, &preds, false)
            .iter()
            .map(|&(a, _)| a)
            .collect();
        assert_eq!(attrs2, vec![2, 1, 0]);
        // Fewer than two estimable predicates: nothing to order.
        let p3 = mixed_path(vec![(1, 0.5)]);
        let attrs3: Vec<usize> = order_preds(&p3, &preds, false)
            .iter()
            .map(|&(a, _)| a)
            .collect();
        assert_eq!(attrs3, vec![0, 1, 2]);
    }

    /// Differential: the same query must produce identical answers with
    /// mixed known/unknown statistics (subset ordering active), full
    /// statistics, and no statistics at all — ordering is a plan
    /// choice, never a semantics choice.
    #[test]
    fn mixed_statistics_never_change_answers() {
        let qs = [
            SelectQuery {
                preds: vec![
                    (0, RangePred::open(2, 8)),
                    (1, RangePred::open(0, 75)),
                    (2, RangePred::open(150, 1000)),
                ],
                disjunctive: false,
                aggs: vec![(1, AggFunc::Count), (2, AggFunc::Sum)],
                projs: vec![0],
            },
            SelectQuery {
                preds: vec![
                    (0, RangePred::open(0, 3)),
                    (1, RangePred::open(75, 100)),
                    (2, RangePred::open(0, 250)),
                ],
                disjunctive: true,
                aggs: vec![(0, AggFunc::Max)],
                projs: vec![],
            },
        ];
        for q in qs {
            let stats_sets: Vec<Vec<(usize, f64)>> = vec![
                vec![],
                vec![(0, 0.4), (1, 0.6), (2, 0.2)],
                vec![(1, 0.6), (2, 0.2)],
                vec![(0, 0.4), (2, 0.2)],
                vec![(2, 0.2)],
            ];
            let mut outs = Vec::new();
            for stats in stats_sets {
                let mut p = mixed_path(stats);
                let mut out = run_select(&mut p, &q);
                for v in &mut out.proj_values {
                    v.sort_unstable();
                }
                outs.push((out.rows, out.aggs, out.proj_values));
            }
            for o in &outs[1..] {
                assert_eq!(o, &outs[0], "answers must be ordering-invariant");
            }
        }
    }

    #[test]
    fn snapshot_reads_override_parses_strictly() {
        assert_eq!(snapshot_reads_override(None), Ok(true));
        assert_eq!(snapshot_reads_override(Some("")), Ok(true));
        assert_eq!(snapshot_reads_override(Some("1")), Ok(true));
        assert_eq!(snapshot_reads_override(Some("ON")), Ok(true));
        assert_eq!(snapshot_reads_override(Some("true")), Ok(true));
        assert_eq!(snapshot_reads_override(Some("0")), Ok(false));
        assert_eq!(snapshot_reads_override(Some("off")), Ok(false));
        assert_eq!(snapshot_reads_override(Some(" false ")), Ok(false));
        let err = snapshot_reads_override(Some("maybe")).unwrap_err();
        assert!(err.contains("maybe"), "error names the bad value");
        assert!(err.contains("on"), "error lists the forms");
    }

    /// The CI snapshot-reads matrix exports `CRACKDB_SNAPSHOT_READS`
    /// for entire test runs; a typo there must fail loudly here instead
    /// of the lenient default silently re-testing the fast path while a
    /// green "forced off" job reports coverage it never ran.
    #[test]
    fn env_snapshot_reads_is_valid() {
        let v = env_snapshot_reads()
            .expect("CRACKDB_SNAPSHOT_READS must be unset or a valid on/off toggle");
        assert_eq!(
            snapshot_reads_from_env(),
            v,
            "lenient and strict reads agree"
        );
    }

    #[test]
    fn spill_dir_override_parses() {
        assert_eq!(spill_dir_override(None), Ok(None));
        assert_eq!(spill_dir_override(Some("")), Ok(None));
        assert_eq!(spill_dir_override(Some("  ")), Ok(None));
        assert_eq!(
            spill_dir_override(Some("/tmp/spills")),
            Ok(Some(PathBuf::from("/tmp/spills")))
        );
        assert_eq!(
            spill_dir_override(Some(" relative/dir ")),
            Ok(Some(PathBuf::from("relative/dir")))
        );
    }

    /// The CI oom job exports `CRACKDB_SPILL_DIR` for entire test runs;
    /// a value pointing at a non-directory must fail loudly here instead
    /// of the lenient default silently spilling to the temp dir while a
    /// green job reports spill-dir coverage it never ran.
    #[test]
    fn env_spill_dir_is_valid() {
        let d = env_spill_dir()
            .expect("CRACKDB_SPILL_DIR must be unset or name a (possibly absent) directory");
        match d {
            Some(dir) => assert_eq!(spill_dir_from_env(), dir, "lenient and strict reads agree"),
            None => assert_eq!(
                spill_dir_from_env(),
                std::env::temp_dir(),
                "unset falls back to the temp dir"
            ),
        }
    }

    #[test]
    fn executor_handles_empty_predicates() {
        let mut p = path();
        let q = SelectQuery::aggregate(vec![], vec![(0, AggFunc::Count)]);
        assert_eq!(run_select(&mut p, &q).aggs, vec![Some(5)]);
    }

    #[test]
    fn executor_disjunction_unions() {
        let mut p = path();
        let q = SelectQuery {
            preds: vec![(0, RangePred::open(0, 4)), (1, RangePred::open(60, 100))],
            disjunctive: true,
            aggs: vec![(0, AggFunc::Count)],
            projs: vec![],
        };
        // a in {1,3} plus b in {70,90} → 4 rows.
        assert_eq!(run_select(&mut p, &q).rows, 4);
    }
}
