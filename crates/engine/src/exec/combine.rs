//! The §3.3 combining strategies, shared by every access path and the
//! TPC-H access layer:
//!
//! * **intersection strategy** — positional refinement of key lists
//!   (plain scans, selection cracking, row stores);
//! * **union strategies** — ordered merge for sorted key lists,
//!   hash-set union for unordered ones;
//! * **bit-vector strategy** — create/refine qualifying bits over a
//!   contiguous positionally-aligned area (presorted copies, sideways
//!   maps).
//!
//! Engines supply only the value accessors; the strategy code exists
//! exactly once here.

use crackdb_columnstore::types::{RangePred, RowId, Val};
use crackdb_core::BitVec;
use std::collections::HashSet;

/// Intersection strategy: keep the keys whose value (via `value_of`)
/// satisfies `pred`. Preserves key order.
pub fn refine_keys(keys: &mut Vec<RowId>, pred: &RangePred, value_of: impl Fn(RowId) -> Val) {
    keys.retain(|&k| pred.matches(value_of(k)));
}

/// Union strategy for *unordered* key lists: append every key of `more`
/// not already present (cracker-select disjunctions).
pub fn union_keys_unordered(keys: &mut Vec<RowId>, more: impl IntoIterator<Item = RowId>) {
    let mut seen: HashSet<RowId> = keys.iter().copied().collect();
    for k in more {
        if seen.insert(k) {
            keys.push(k);
        }
    }
}

/// Bit-vector strategy, creation: bits over a positionally-aligned value
/// slice, set where `pred` holds.
pub fn create_bv(vals: &[Val], pred: &RangePred) -> BitVec {
    BitVec::from_fn(vals.len(), |i| pred.matches(vals[i]))
}

/// Bit-vector strategy, refinement: clear bits whose aligned value fails
/// `pred`.
pub fn refine_bv(bv: &mut BitVec, vals: &[Val], pred: &RangePred) {
    assert_eq!(bv.len(), vals.len(), "aligned area sizes must agree");
    bv.refine(|i| pred.matches(vals[i]));
}

/// Create-or-refine in one call (the common residual-predicate loop).
pub fn fold_bv(bv: &mut Option<BitVec>, vals: &[Val], pred: &RangePred) {
    match bv {
        None => *bv = Some(create_bv(vals, pred)),
        Some(bv) => refine_bv(bv, vals, pred),
    }
}

/// Materialize the values of an aligned slice under an optional
/// qualifying-bit vector (projection over an area).
pub fn project_area(vals: &[Val], bv: &Option<BitVec>) -> Vec<Val> {
    match bv {
        Some(bv) => bv.iter_ones().map(|i| vals[i]).collect(),
        None => vals.to_vec(),
    }
}

/// Materialize one projection column from a key list via a value
/// accessor (positional reconstruction).
pub fn project_keys(keys: &[RowId], value_of: impl Fn(RowId) -> Val) -> Vec<Val> {
    keys.iter().map(|&k| value_of(k)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refine_keys_intersects() {
        let vals = [10i64, 20, 30, 40];
        let mut keys = vec![0u32, 1, 2, 3];
        refine_keys(&mut keys, &RangePred::open(15, 35), |k| vals[k as usize]);
        assert_eq!(keys, vec![1, 2]);
    }

    #[test]
    fn union_unordered_dedups() {
        let mut keys = vec![5u32, 1, 9];
        union_keys_unordered(&mut keys, [1, 2, 9, 3]);
        assert_eq!(keys, vec![5, 1, 9, 2, 3]);
    }

    #[test]
    fn bv_strategy_roundtrip() {
        let vals = [1i64, 5, 9, 5, 1];
        let mut bv = Some(create_bv(
            &vals,
            &RangePred::greater(crackdb_columnstore::types::Bound::inclusive(5)),
        ));
        fold_bv(
            &mut bv,
            &vals,
            &RangePred::less(crackdb_columnstore::types::Bound::exclusive(9)),
        );
        assert_eq!(project_area(&vals, &bv), vec![5, 5]);
    }

    #[test]
    fn project_keys_gathers() {
        let vals = [7i64, 8, 9];
        assert_eq!(project_keys(&[2, 0], |k| vals[k as usize]), vec![9, 7]);
    }
}
