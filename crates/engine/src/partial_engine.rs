//! Partial sideways cracking as an executor: the §4 system under a
//! storage budget — now a first-class engine. Conjunctions run the fused
//! chunk-wise pass of §4.1; disjunctions run the all-areas union pass;
//! updates are staged globally and merged chunk-wise on access (§3.5);
//! equi-joins reuse the partitioned [`cracker_join`] of §3.4 over the
//! chunk-wise selection results.

use crate::exec::{self, AccessPath, RestrictCtx, RowSet};
use crate::query::{Engine, JoinQuery, JoinSide, QueryError, QueryOutput, SelectQuery, Timings};
use crackdb_columnstore::column::Table;
use crackdb_columnstore::types::{RangePred, RowId, Val};
use crackdb_core::{cracker_join, PartialStore};
use crackdb_cracking::crack::BoundKind;
use crackdb_cracking::{CrackPolicy, CrackedArray};
use std::time::Instant;

/// Partial-sideways-cracking executor.
pub struct PartialEngine {
    base: Table,
    second: Option<Table>,
    store: PartialStore,
    second_store: PartialStore,
}

impl PartialEngine {
    /// Single-table engine with optional storage budget (tuples). The
    /// crack policy defaults to the `CRACKDB_POLICY` environment
    /// selection (standard when unset), so CI can drive the whole
    /// differential surface once per policy.
    pub fn new(base: Table, domain: (Val, Val), budget: Option<usize>) -> Self {
        Self::with_policy(base, domain, budget, exec::policy_from_env())
    }

    /// Single-table engine with an explicit [`CrackPolicy`] for every
    /// partial set (chunk maps, chunks and resolvers included).
    pub fn with_policy(
        base: Table,
        domain: (Val, Val),
        budget: Option<usize>,
        policy: CrackPolicy,
    ) -> Self {
        let mut store = PartialStore::new(domain);
        store.budget = budget;
        store.set_policy(policy);
        let mut second_store = PartialStore::new(domain);
        second_store.set_policy(policy);
        PartialEngine {
            base,
            second: None,
            store,
            second_store,
        }
    }

    /// Two-table engine (join experiments). The second table gets its own
    /// (unbudgeted) partial store.
    pub fn with_second(
        base: Table,
        second: Table,
        domain: (Val, Val),
        budget: Option<usize>,
    ) -> Self {
        PartialEngine {
            second: Some(second),
            ..PartialEngine::new(base, domain, budget)
        }
    }

    /// Single-table engine with the disk spill tier enabled: chunks
    /// evicted by the budget serialize to per-column spill files under
    /// the `CRACKDB_SPILL_DIR` base directory (system temp dir when
    /// unset) and reload on re-access instead of recracking. Use
    /// [`Engine::try_select`] / [`Engine::try_join`] with a spilled
    /// engine — spill I/O failures surface as
    /// [`QueryError::Storage`](crate::query::QueryError::Storage).
    pub fn with_spill(base: Table, domain: (Val, Val), budget: Option<usize>) -> Self {
        Self::with_spill_dir(base, domain, budget, exec::spill_dir_from_env())
    }

    /// [`Self::with_spill`] with an explicit spill base directory (a
    /// unique per-store subdirectory is created beneath it on first
    /// eviction and removed when the engine drops).
    pub fn with_spill_dir(
        base: Table,
        domain: (Val, Val),
        budget: Option<usize>,
        dir: impl Into<std::path::PathBuf>,
    ) -> Self {
        Self::with_spill_policy(base, domain, budget, dir, exec::policy_from_env())
    }

    /// [`Self::with_spill_dir`] with an explicit [`CrackPolicy`] (the
    /// spill differential suite runs the whole spill surface once per
    /// policy without going through the environment hook).
    pub fn with_spill_policy(
        base: Table,
        domain: (Val, Val),
        budget: Option<usize>,
        dir: impl Into<std::path::PathBuf>,
        policy: CrackPolicy,
    ) -> Self {
        let mut e = PartialEngine::with_policy(base, domain, budget, policy);
        e.store.enable_spill(dir.into());
        e
    }

    /// Enable the §4.1 head-dropping policy: chunks whose largest piece is
    /// at most `threshold` tuples shed their head column after use.
    pub fn set_head_drop_threshold(&mut self, threshold: Option<usize>) {
        self.store.head_drop_threshold = threshold;
    }

    /// Access to the store (instrumentation: usage, chunk stats).
    pub fn store(&self) -> &PartialStore {
        &self.store
    }

    /// Override the crack policy of one head attribute's partial set in
    /// the primary store (mixed-policy engines). Must run before the
    /// set's first use.
    pub fn set_policy_for(&mut self, head_attr: usize, policy: CrackPolicy) {
        self.store.set_policy_for(head_attr, policy);
    }

    /// Cumulative adaptive-advisor switches across both stores' sets.
    pub fn policy_switches(&self) -> u64 {
        self.store.policy_switches() + self.second_store.policy_switches()
    }
}

/// One reconstructed join side: the join-attribute values plus the
/// `(attr, column)` pairs needed by the side's aggregates.
type SideRows = (Vec<Val>, Vec<(usize, Vec<Val>)>);

/// Chunk-wise selection + reconstruction of one join side: the fused
/// conjunctive pass streams each needed attribute's qualifying values in
/// a positionally consistent order (same tuples, same order per
/// attribute), so zipping the columns recovers the side's tuples.
/// Returns `(join values, (attr, column) pairs)`.
fn side_rows(
    store: &mut PartialStore,
    base: &Table,
    side: &JoinSide,
) -> Result<SideRows, QueryError> {
    let mut attrs = vec![side.join_attr];
    for &(a, _) in &side.aggs {
        if !attrs.contains(&a) {
            attrs.push(a);
        }
    }
    let preds: Vec<(usize, RangePred)> = if side.preds.is_empty() {
        vec![(side.join_attr, RangePred::all())]
    } else {
        side.preds.clone()
    };
    let mut cols: Vec<(usize, Vec<Val>)> = attrs.iter().map(|&a| (a, Vec::new())).collect();
    store.conjunctive_project_with(base, &preds, &attrs, |attr, v| {
        for (a, col) in cols.iter_mut() {
            if *a == attr {
                col.push(v);
            }
        }
    })?;
    let join_vals = cols
        .iter()
        .find(|(a, _)| *a == side.join_attr)
        .expect("join attribute collected")
        .1
        .clone();
    Ok((join_vals, cols))
}

/// Pre-partition a join input at shared equal-width cut points so
/// [`cracker_join`]'s partition pass pairs small, value-disjoint segments
/// (cache-resident hash tables) instead of one global table.
fn precrack(arr: &mut CrackedArray<RowId>, lo: Val, hi: Val, parts: Val) {
    if arr.is_empty() || hi <= lo {
        return;
    }
    let width = ((hi - lo) / parts).max(1);
    let mut v = lo + width;
    while v < hi {
        arr.ensure_boundary((v, BoundKind::Lt));
        v += width;
    }
}

impl AccessPath for PartialEngine {
    fn name(&self) -> &'static str {
        "Partial Sideways Cracking"
    }

    fn estimate(&self, attr: usize, pred: &RangePred) -> Option<f64> {
        Some(self.store.estimate(&self.base, attr, pred))
    }

    fn restrict(&mut self, attr: usize, pred: &RangePred, ctx: &RestrictCtx) -> RowSet {
        // Partial maps interleave selection, alignment, fetching and
        // reconstruction chunk-wise (§4.1): no materialized row set ever
        // exists, so the plan is recorded and executed fused in `fetch`.
        if ctx.disjunctive {
            return RowSet::DeferredUnion {
                preds: vec![(attr, *pred)],
            };
        }
        RowSet::Deferred {
            head: (attr, *pred),
            residual: Vec::new(),
        }
    }

    fn refine(&mut self, rows: &mut RowSet, attr: usize, pred: &RangePred, _ctx: &RestrictCtx) {
        let RowSet::Deferred { residual, .. } = rows else {
            unreachable!("partial conjunctive plans are deferred")
        };
        residual.push((attr, *pred));
    }

    fn extend(&mut self, rows: &mut RowSet, attr: usize, pred: &RangePred, _ctx: &RestrictCtx) {
        let RowSet::DeferredUnion { preds } = rows else {
            unreachable!("partial disjunctive plans are deferred unions")
        };
        preds.push((attr, *pred));
    }

    fn unrestricted(&mut self, _ctx: &RestrictCtx) -> RowSet {
        RowSet::Deferred {
            head: (0, RangePred::all()),
            residual: Vec::new(),
        }
    }

    fn fetch(
        &mut self,
        rows: &RowSet,
        attrs: &[usize],
        consume: &mut dyn FnMut(usize, Val),
    ) -> Result<(), QueryError> {
        match rows {
            // The fused chunk-wise pass: one traversal merges pending
            // updates, materializes, aligns and cracks the touched chunks
            // of every attribute and streams the qualifying values.
            RowSet::Deferred { head, residual } => self
                .store
                .set_mut(&self.base, head.0)
                .conjunctive_project_with(&self.base, &head.1, residual, attrs, consume)
                .map_err(QueryError::from),
            // Union form: all areas of the least selective predicate's
            // set, one OR bit vector per area.
            RowSet::DeferredUnion { preds } => {
                let head = preds.first().map_or(0, |p| p.0);
                self.store
                    .set_mut(&self.base, head)
                    .disjunctive_project_with(&self.base, preds, attrs, consume)
                    .map_err(QueryError::from)
            }
            _ => unreachable!("partial plans are deferred"),
        }
    }

    fn is_adaptive(&self) -> bool {
        true
    }
}

impl Engine for PartialEngine {
    fn name(&self) -> &'static str {
        AccessPath::name(self)
    }

    fn select(&mut self, q: &SelectQuery) -> QueryOutput {
        exec::run_select(self, q)
    }

    fn try_select(&mut self, q: &SelectQuery) -> Result<QueryOutput, QueryError> {
        exec::try_run_select(self, q)
    }

    fn join(&mut self, q: &JoinQuery) -> QueryOutput {
        self.try_join(q)
            .unwrap_or_else(|e| panic!("storage failure in infallible join: {e}"))
    }

    fn try_join(&mut self, q: &JoinQuery) -> Result<QueryOutput, QueryError> {
        let second = self.second.as_ref().expect("join needs a second table");
        let mut out = QueryOutput::default();
        let mut timings = Timings::default();

        // Selection + pre-join reconstruction, fused chunk-wise per side.
        let t0 = Instant::now();
        let (lvals, lcols) = side_rows(&mut self.store, &self.base, &q.left)?;
        let (rvals, rcols) = side_rows(&mut self.second_store, second, &q.right)?;
        timings.select = t0.elapsed();

        // §3.4 partitioned cracker join: both inputs become cracked
        // arrays over the join attribute, pre-partitioned at shared
        // equal-width cuts so each value-disjoint segment pair joins
        // through a small hash table.
        let t1 = Instant::now();
        let lo = lvals.iter().chain(&rvals).copied().min();
        let hi = lvals.iter().chain(&rvals).copied().max();
        let ln = lvals.len() as RowId;
        let rn = rvals.len() as RowId;
        let mut larr = CrackedArray::new(lvals, (0..ln).collect());
        let mut rarr = CrackedArray::new(rvals, (0..rn).collect());
        if let (Some(lo), Some(hi)) = (lo, hi) {
            precrack(&mut larr, lo, hi, 16);
            precrack(&mut rarr, lo, hi, 16);
        }
        let matched = cracker_join(&larr, &rarr);
        timings.join = t1.elapsed();
        out.rows = matched.len();

        // Post-join reconstruction: positions index the collected side
        // columns (small, already filtered — the sideways advantage).
        let t2 = Instant::now();
        let col_of = |cols: &[(usize, Vec<Val>)], attr: usize, i: RowId| -> Val {
            cols.iter()
                .find(|(a, _)| *a == attr)
                .expect("agg attribute collected")
                .1[i as usize]
        };
        out.aggs = exec::agg_matched(&matched, &q.left, true, |attr, i| col_of(&lcols, attr, i));
        out.aggs
            .extend(exec::agg_matched(&matched, &q.right, false, |attr, i| {
                col_of(&rcols, attr, i)
            }));
        timings.post_join = t2.elapsed();
        out.timings = timings;
        Ok(out)
    }

    fn insert(&mut self, row: &[Val]) {
        // §3.5: append to the base, stage everywhere; each partial set
        // merges the tuple into a chunk when a query next touches the
        // area it belongs to.
        let key = self.base.append_row(row);
        self.store.stage_insert(key);
    }

    fn delete(&mut self, key: RowId) {
        self.store.stage_delete(&self.base, key);
    }

    fn aux_tuples(&self) -> usize {
        self.store.usage() + self.second_store.usage()
    }

    fn policy_switches(&self) -> u64 {
        PartialEngine::policy_switches(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crackdb_columnstore::column::Column;
    use crackdb_columnstore::types::AggFunc;

    fn table() -> Table {
        let mut t = Table::new();
        t.add_column("a", Column::new((0..100).collect()));
        t.add_column("b", Column::new((0..100).map(|v| v * 3).collect()));
        t.add_column("c", Column::new((0..100).map(|v| v * 7).collect()));
        t
    }

    #[test]
    fn qi_shape_query() {
        // select C where 20 < A < 60 and 90 < B < 150.
        let mut e = PartialEngine::new(table(), (0, 100), None);
        let q = SelectQuery::project(
            vec![(0, RangePred::open(20, 60)), (1, RangePred::open(90, 150))],
            vec![2],
        );
        let out = e.select(&q);
        // B = 3a in (90,150) → a in (30,50); intersect a in (20,60) →
        // a in 31..=49 → 19 rows.
        assert_eq!(out.rows, 19);
        let mut vals = out.proj_values[0].clone();
        vals.sort_unstable();
        assert_eq!(vals, (31..50).map(|a| a * 7).collect::<Vec<_>>());
    }

    #[test]
    fn budget_holds_exactly_after_every_query() {
        let mut e = PartialEngine::new(table(), (0, 100), Some(50));
        for lo in [0, 20, 40, 60, 80] {
            let q = SelectQuery::aggregate(
                vec![(0, RangePred::open(lo, lo + 15))],
                vec![(1, AggFunc::Max), (2, AggFunc::Max)],
            );
            e.select(&q);
            assert!(
                e.aux_tuples() <= 50,
                "usage {} exceeds the budget post-query",
                e.aux_tuples()
            );
        }
    }

    #[test]
    fn disjunction_matches_scan() {
        let mut e = PartialEngine::new(table(), (0, 100), None);
        // a in (0,10) or b in (270,300) → a in 1..=9 plus a in 91..=99.
        let q = SelectQuery {
            preds: vec![(0, RangePred::open(0, 10)), (1, RangePred::open(270, 300))],
            disjunctive: true,
            aggs: vec![(2, AggFunc::Count), (2, AggFunc::Sum)],
            projs: vec![2],
        };
        let out = e.select(&q);
        assert_eq!(out.rows, 18);
        let expected: Vec<Val> = (1..10).chain(91..100).map(|a| a * 7).collect();
        let mut vals = out.proj_values[0].clone();
        vals.sort_unstable();
        assert_eq!(vals, expected);
        assert_eq!(out.aggs[0], Some(18));
        assert_eq!(out.aggs[1], Some(expected.iter().sum()));
        // Repeat — cracked chunks, same answer.
        assert_eq!(e.select(&q).aggs, out.aggs);
    }

    #[test]
    fn updates_merge_on_access() {
        let mut e = PartialEngine::new(table(), (0, 100), None);
        let q = SelectQuery::aggregate(
            vec![(0, RangePred::open(20, 60))],
            vec![(1, AggFunc::Count), (1, AggFunc::Max)],
        );
        assert_eq!(e.select(&q).aggs, vec![Some(39), Some(59 * 3)]);
        e.insert(&[30, 999, 998]);
        e.delete(59); // a = 59, b = 177
        let out = e.select(&q);
        assert_eq!(out.aggs, vec![Some(39), Some(999)]);
        // And again after the merge settled.
        assert_eq!(e.select(&q).aggs, out.aggs);
    }

    #[test]
    fn repeated_deletes_are_idempotent() {
        // Every engine tolerates a delete of an already-deleted key; the
        // partial path must skip the unresolvable second entry silently.
        let mut e = PartialEngine::new(table(), (0, 100), None);
        let q = SelectQuery::aggregate(
            vec![(0, RangePred::open(20, 60))],
            vec![(1, AggFunc::Count), (1, AggFunc::Sum)],
        );
        let before = e.select(&q);
        e.delete(30);
        e.delete(30);
        let out = e.select(&q);
        assert_eq!(out.aggs[0], before.aggs[0].map(|c| c - 1));
        assert_eq!(out.aggs[1], before.aggs[1].map(|s| s - 90));
        // Stays consistent on repeat.
        assert_eq!(e.select(&q).aggs, out.aggs);
    }

    #[test]
    fn join_matches_sideways() {
        let mut r = Table::new();
        r.add_column("r1", Column::new(vec![100, 200, 300, 400]));
        r.add_column("rsel", Column::new(vec![1, 2, 3, 4]));
        r.add_column("rj", Column::new(vec![7, 8, 9, 7]));
        let mut s = Table::new();
        s.add_column("s1", Column::new(vec![11, 22, 33]));
        s.add_column("ssel", Column::new(vec![5, 6, 7]));
        s.add_column("sj", Column::new(vec![7, 9, 7]));
        let mut e = PartialEngine::with_second(r, s, (0, 100), None);
        let q = JoinQuery {
            left: JoinSide {
                preds: vec![(1, RangePred::closed(2, 4))],
                join_attr: 2,
                aggs: vec![(0, AggFunc::Max)],
            },
            right: JoinSide {
                preds: vec![(1, RangePred::closed(5, 7))],
                join_attr: 2,
                aggs: vec![(0, AggFunc::Sum)],
            },
        };
        let out = e.join(&q);
        // Same scenario as the sideways test: 3 matches.
        assert_eq!(out.rows, 3);
        assert_eq!(out.aggs, vec![Some(400), Some(66)]);
    }
}
