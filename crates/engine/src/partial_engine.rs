//! Partial sideways cracking as an executor: the §4 system under a
//! storage budget.

use crate::exec::{self, AccessPath, RestrictCtx, RowSet};
use crate::query::{Engine, JoinQuery, QueryOutput, SelectQuery};
use crackdb_columnstore::column::Table;
use crackdb_columnstore::types::{RangePred, RowId, Val};
use crackdb_core::PartialStore;

/// Partial-sideways-cracking executor.
pub struct PartialEngine {
    base: Table,
    store: PartialStore,
}

impl PartialEngine {
    /// Single-table engine with optional storage budget (tuples).
    pub fn new(base: Table, domain: (Val, Val), budget: Option<usize>) -> Self {
        let mut store = PartialStore::new(domain);
        store.budget = budget;
        PartialEngine { base, store }
    }

    /// Enable the §4.1 head-dropping policy: chunks whose largest piece is
    /// at most `threshold` tuples shed their head column after use.
    pub fn set_head_drop_threshold(&mut self, threshold: Option<usize>) {
        self.store.head_drop_threshold = threshold;
    }

    /// Access to the store (instrumentation: usage, chunk stats).
    pub fn store(&self) -> &PartialStore {
        &self.store
    }
}

impl AccessPath for PartialEngine {
    fn name(&self) -> &'static str {
        "Partial Sideways Cracking"
    }

    fn estimate(&self, attr: usize, pred: &RangePred) -> Option<f64> {
        Some(self.store.estimate(&self.base, attr, pred))
    }

    fn restrict(&mut self, attr: usize, pred: &RangePred, _ctx: &RestrictCtx) -> RowSet {
        // Partial maps interleave selection, alignment, fetching and
        // reconstruction chunk-wise (§4.1): no materialized row set ever
        // exists, so the plan is recorded and executed fused in `fetch`.
        RowSet::Deferred {
            head: (attr, *pred),
            residual: Vec::new(),
        }
    }

    fn refine(&mut self, rows: &mut RowSet, attr: usize, pred: &RangePred, _ctx: &RestrictCtx) {
        let RowSet::Deferred { residual, .. } = rows else {
            unreachable!("partial plans are deferred")
        };
        residual.push((attr, *pred));
    }

    fn extend(&mut self, _rows: &mut RowSet, _attr: usize, _pred: &RangePred, _ctx: &RestrictCtx) {
        panic!("partial maps implement conjunctive plans (§4)");
    }

    fn unrestricted(&mut self, _ctx: &RestrictCtx) -> RowSet {
        RowSet::Deferred {
            head: (0, RangePred::all()),
            residual: Vec::new(),
        }
    }

    fn fetch(&mut self, rows: &RowSet, attrs: &[usize], consume: &mut dyn FnMut(usize, Val)) {
        let RowSet::Deferred { head, residual } = rows else {
            unreachable!("partial plans are deferred")
        };
        // The fused chunk-wise pass: one traversal materializes, aligns
        // and cracks the touched chunks of every attribute and streams
        // the qualifying values.
        self.store
            .set_mut(head.0)
            .conjunctive_project_with(&self.base, &head.1, residual, attrs, consume);
    }

    fn is_adaptive(&self) -> bool {
        true
    }
}

impl Engine for PartialEngine {
    fn name(&self) -> &'static str {
        AccessPath::name(self)
    }

    fn select(&mut self, q: &SelectQuery) -> QueryOutput {
        assert!(
            !q.disjunctive,
            "partial maps implement conjunctive plans (§4)"
        );
        exec::run_select(self, q)
    }

    fn join(&mut self, _q: &JoinQuery) -> QueryOutput {
        unimplemented!("the paper evaluates partial maps on single-table workloads (§4.2)")
    }

    fn insert(&mut self, _row: &[Val]) {
        unimplemented!(
            "updates on partial maps follow §3.5 per chunk; the storage experiments (§4.2) are read-only"
        )
    }

    fn delete(&mut self, _key: RowId) {
        unimplemented!(
            "updates on partial maps follow §3.5 per chunk; the storage experiments (§4.2) are read-only"
        )
    }

    fn aux_tuples(&self) -> usize {
        self.store.usage()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crackdb_columnstore::column::Column;
    use crackdb_columnstore::types::AggFunc;

    fn table() -> Table {
        let mut t = Table::new();
        t.add_column("a", Column::new((0..100).collect()));
        t.add_column("b", Column::new((0..100).map(|v| v * 3).collect()));
        t.add_column("c", Column::new((0..100).map(|v| v * 7).collect()));
        t
    }

    #[test]
    fn qi_shape_query() {
        // select C where 20 < A < 60 and 90 < B < 150.
        let mut e = PartialEngine::new(table(), (0, 100), None);
        let q = SelectQuery::project(
            vec![(0, RangePred::open(20, 60)), (1, RangePred::open(90, 150))],
            vec![2],
        );
        let out = e.select(&q);
        // B = 3a in (90,150) → a in (30,50); intersect a in (20,60) →
        // a in 31..=49 → 19 rows.
        assert_eq!(out.rows, 19);
        let mut vals = out.proj_values[0].clone();
        vals.sort_unstable();
        assert_eq!(vals, (31..50).map(|a| a * 7).collect::<Vec<_>>());
    }

    #[test]
    fn budget_limits_aux_storage() {
        let mut e = PartialEngine::new(table(), (0, 100), Some(50));
        for lo in [0, 20, 40, 60, 80] {
            let q = SelectQuery::aggregate(
                vec![(0, RangePred::open(lo, lo + 15))],
                vec![(1, AggFunc::Max), (2, AggFunc::Max)],
            );
            e.select(&q);
        }
        assert!(
            e.aux_tuples() <= 50 + 25,
            "usage {} way over budget",
            e.aux_tuples()
        );
    }
}
