//! Partial sideways cracking as an executor: the §4 system under a
//! storage budget.

use crate::query::{AggAcc, Engine, JoinQuery, QueryOutput, SelectQuery};
use crackdb_columnstore::column::Table;
use crackdb_columnstore::types::{RowId, Val};
use crackdb_core::PartialStore;
use std::time::Instant;

/// Partial-sideways-cracking executor.
pub struct PartialEngine {
    base: Table,
    store: PartialStore,
}

impl PartialEngine {
    /// Single-table engine with optional storage budget (tuples).
    pub fn new(base: Table, domain: (Val, Val), budget: Option<usize>) -> Self {
        let mut store = PartialStore::new(domain);
        store.budget = budget;
        PartialEngine { base, store }
    }

    /// Enable the §4.1 head-dropping policy: chunks whose largest piece is
    /// at most `threshold` tuples shed their head column after use.
    pub fn set_head_drop_threshold(&mut self, threshold: Option<usize>) {
        self.store.head_drop_threshold = threshold;
    }

    /// Access to the store (instrumentation: usage, chunk stats).
    pub fn store(&self) -> &PartialStore {
        &self.store
    }
}

impl Engine for PartialEngine {
    fn name(&self) -> &'static str {
        "Partial Sideways Cracking"
    }

    fn select(&mut self, q: &SelectQuery) -> QueryOutput {
        assert!(!q.disjunctive, "partial maps implement conjunctive plans (§4)");
        let mut out = QueryOutput::default();
        let mut accs: Vec<AggAcc> = q.aggs.iter().map(|&(_, f)| AggAcc::new(f)).collect();
        let mut projs: Vec<Vec<Val>> = q.projs.iter().map(|_| Vec::new()).collect();
        let aggs = q.aggs.clone();
        let proj_attrs = q.projs.clone();
        let mut attrs: Vec<usize> = Vec::new();
        for a in aggs.iter().map(|&(a, _)| a).chain(proj_attrs.iter().copied()) {
            if !attrs.contains(&a) {
                attrs.push(a);
            }
        }

        let t0 = Instant::now();
        self.store.conjunctive_project_with(&self.base, &q.preds, &attrs, |attr, v| {
            for (i, &(a, _)) in aggs.iter().enumerate() {
                if a == attr {
                    accs[i].push(v);
                }
            }
            for (i, &p) in proj_attrs.iter().enumerate() {
                if p == attr {
                    projs[i].push(v);
                }
            }
        });
        out.rows = accs
            .first()
            .map(|a| a.count())
            .or_else(|| projs.first().map(|p| p.len()))
            .unwrap_or(0);
        out.aggs = accs.iter().map(|a| a.finish()).collect();
        out.proj_values = projs;
        // Partial maps interleave selection, alignment, fetching and
        // reconstruction chunk-wise; the paper reports a single per-query
        // cost for them.
        out.timings.select = t0.elapsed();
        out
    }

    fn join(&mut self, _q: &JoinQuery) -> QueryOutput {
        unimplemented!("the paper evaluates partial maps on single-table workloads (§4.2)")
    }

    fn insert(&mut self, _row: &[Val]) {
        unimplemented!(
            "updates on partial maps follow §3.5 per chunk; the storage experiments (§4.2) are read-only"
        )
    }

    fn delete(&mut self, _key: RowId) {
        unimplemented!(
            "updates on partial maps follow §3.5 per chunk; the storage experiments (§4.2) are read-only"
        )
    }

    fn aux_tuples(&self) -> usize {
        self.store.usage()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crackdb_columnstore::column::Column;
    use crackdb_columnstore::types::{AggFunc, RangePred};

    fn table() -> Table {
        let mut t = Table::new();
        t.add_column("a", Column::new((0..100).collect()));
        t.add_column("b", Column::new((0..100).map(|v| v * 3).collect()));
        t.add_column("c", Column::new((0..100).map(|v| v * 7).collect()));
        t
    }

    #[test]
    fn qi_shape_query() {
        // select C where 20 < A < 60 and 90 < B < 150.
        let mut e = PartialEngine::new(table(), (0, 100), None);
        let q = SelectQuery::project(
            vec![(0, RangePred::open(20, 60)), (1, RangePred::open(90, 150))],
            vec![2],
        );
        let out = e.select(&q);
        // B = 3a in (90,150) → a in (30,50); intersect a in (20,60) →
        // a in 31..=49 → 19 rows.
        assert_eq!(out.rows, 19);
        let mut vals = out.proj_values[0].clone();
        vals.sort_unstable();
        assert_eq!(vals, (31..50).map(|a| a * 7).collect::<Vec<_>>());
    }

    #[test]
    fn budget_limits_aux_storage() {
        let mut e = PartialEngine::new(table(), (0, 100), Some(50));
        for lo in [0, 20, 40, 60, 80] {
            let q = SelectQuery::aggregate(
                vec![(0, RangePred::open(lo, lo + 15))],
                vec![(1, AggFunc::Max), (2, AggFunc::Max)],
            );
            e.select(&q);
        }
        assert!(e.aux_tuples() <= 50 + 25, "usage {} way over budget", e.aux_tuples());
    }
}
