//! The query shapes of the paper's experiments, and the common executor
//! interface every physical design implements.

use crackdb_columnstore::storage::StorageError;
use crackdb_columnstore::types::{AggFunc, RangePred, RowId, Val};
use std::fmt;
use std::time::Duration;

/// A typed query failure. In-RAM engines are infallible; engines with a
/// storage tier (segmented base columns, chunk spill files) surface disk
/// trouble here instead of panicking.
#[derive(Debug)]
pub enum QueryError {
    /// A storage-tier read or write failed (I/O error, checksum
    /// mismatch, truncated file).
    Storage(StorageError),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Storage(e) => Some(e),
        }
    }
}

impl From<StorageError> for QueryError {
    fn from(e: StorageError) -> Self {
        QueryError::Storage(e)
    }
}

/// A single-table query: conjunctive or disjunctive range predicates plus
/// aggregate and/or raw projections. Covers q1/q3 (§3.6), the `Qi`
/// queries (§4.2) and most TPC-H selection blocks.
#[derive(Debug, Clone)]
pub struct SelectQuery {
    /// `(attribute, predicate)` restrictions.
    pub preds: Vec<(usize, RangePred)>,
    /// `true` = OR-combined predicates; `false` = AND-combined.
    pub disjunctive: bool,
    /// Aggregate projections `(attribute, function)`.
    pub aggs: Vec<(usize, AggFunc)>,
    /// Raw projections (results materialized).
    pub projs: Vec<usize>,
}

impl SelectQuery {
    /// Conjunctive aggregation query (the `select max(..) where ...`
    /// shape of q1/q3).
    pub fn aggregate(preds: Vec<(usize, RangePred)>, aggs: Vec<(usize, AggFunc)>) -> Self {
        SelectQuery {
            preds,
            disjunctive: false,
            aggs,
            projs: Vec::new(),
        }
    }

    /// Conjunctive projection query (the `Qi` shape).
    pub fn project(preds: Vec<(usize, RangePred)>, projs: Vec<usize>) -> Self {
        SelectQuery {
            preds,
            disjunctive: false,
            aggs: Vec::new(),
            projs,
        }
    }
}

/// One side of a join query: its selection block plus the attributes
/// needed after the join.
#[derive(Debug, Clone)]
pub struct JoinSide {
    /// Conjunctive restrictions on this table.
    pub preds: Vec<(usize, RangePred)>,
    /// The join attribute.
    pub join_attr: usize,
    /// Aggregates computed over this side's attributes post-join.
    pub aggs: Vec<(usize, AggFunc)>,
}

/// The q2 shape (§3.6 Exp4): conjunctive selections on both tables, an
/// equi-join, aggregates over both sides.
#[derive(Debug, Clone)]
pub struct JoinQuery {
    /// Outer (left) side.
    pub left: JoinSide,
    /// Inner (right) side.
    pub right: JoinSide,
}

/// Wall-clock phase breakdown (the paper reports selection cost, tuple
/// reconstruction before/after joins, and join cost separately).
#[derive(Debug, Clone, Copy, Default)]
pub struct Timings {
    /// Selection work (scans, cracks, binary searches, bit vectors).
    pub select: Duration,
    /// Tuple reconstruction before any join (projection fetches).
    pub reconstruct: Duration,
    /// Join execution.
    pub join: Duration,
    /// Tuple reconstruction after the join.
    pub post_join: Duration,
}

impl Timings {
    /// Total across phases.
    pub fn total(&self) -> Duration {
        self.select + self.reconstruct + self.join + self.post_join
    }
}

/// Result of a query: aggregates in request order, materialized rows for
/// raw projections, result cardinality and phase timings.
#[derive(Debug, Clone, Default)]
pub struct QueryOutput {
    /// One value per requested aggregate (`None` on empty input for
    /// max/min).
    pub aggs: Vec<Option<Val>>,
    /// Materialized projection columns (one `Vec` per requested raw
    /// projection, in request order). Values are unordered.
    pub proj_values: Vec<Vec<Val>>,
    /// Number of qualifying tuples.
    pub rows: usize,
    /// Phase breakdown.
    pub timings: Timings,
}

/// The common executor interface: one implementation per physical design
/// (plain column-store, presorted, selection cracking, sideways cracking,
/// partial sideways cracking).
pub trait Engine {
    /// Human-readable system name (used in benchmark output).
    fn name(&self) -> &'static str;

    /// Execute a single-table query.
    fn select(&mut self, q: &SelectQuery) -> QueryOutput;

    /// Execute a two-table join query.
    fn join(&mut self, q: &JoinQuery) -> QueryOutput;

    /// Fallible select: engines with a storage tier override this to
    /// surface disk failures as typed errors. The default wraps the
    /// infallible [`Engine::select`].
    fn try_select(&mut self, q: &SelectQuery) -> Result<QueryOutput, QueryError> {
        Ok(self.select(q))
    }

    /// Fallible join; see [`Engine::try_select`].
    fn try_join(&mut self, q: &JoinQuery) -> Result<QueryOutput, QueryError> {
        Ok(self.join(q))
    }

    /// Append a new tuple (values in column order) to the primary table.
    fn insert(&mut self, row: &[Val]);

    /// Delete the tuple with base key `key` from the primary table.
    fn delete(&mut self, key: RowId);

    /// Auxiliary storage used (tuples), for storage-restriction plots.
    fn aux_tuples(&self) -> usize {
        0
    }

    /// Cumulative count of adaptive-advisor policy switches across the
    /// engine's cracker structures. Always 0 for engines configured with
    /// a static [`CrackPolicy`](crackdb_cracking::CrackPolicy).
    fn policy_switches(&self) -> u64 {
        0
    }

    /// Publishable picture of the engine's converged state for the
    /// lock-free read path (see
    /// [`EngineSnapshot`](crate::exec::snapshot::EngineSnapshot)).
    /// Engines without converged-piece tracking return `None` — their
    /// reads always take the sequenced worker hop. Cheap when nothing
    /// changed since the last call (engines fingerprint their state
    /// and hand back the cached `Arc`).
    fn snapshot(&mut self) -> Option<std::sync::Arc<crate::exec::snapshot::EngineSnapshot>> {
        None
    }

    /// Propagate a session worker budget into the engine (`1` = fully
    /// serial). Plain executors have no internal parallelism and ignore
    /// it; routers (the sharded engine) cap their fan-out with it. The
    /// batch layer calls this so that `BatchRunner::new(engine, 1)`
    /// means serial *everywhere*, not just in the scan kernels.
    fn set_workers(&mut self, workers: usize) {
        let _ = workers;
    }
}

/// Deterministic aggregate accumulator shared by all engines. The
/// fold/merge semantics live in [`PartialAgg`] (shared with the
/// data-parallel kernels), so serial and parallel aggregation cannot
/// diverge.
#[derive(Debug, Clone, Copy)]
pub struct AggAcc {
    func: AggFunc,
    agg: PartialAgg,
}

use crackdb_columnstore::ops::parallel::PartialAgg;

impl AggAcc {
    /// Fresh accumulator for `func`.
    pub fn new(func: AggFunc) -> Self {
        AggAcc {
            func,
            agg: PartialAgg::default(),
        }
    }

    /// Fold one value.
    #[inline(always)]
    pub fn push(&mut self, v: Val) {
        self.agg.push(v);
    }

    /// Number of values folded so far.
    pub fn count(&self) -> usize {
        self.agg.count as usize
    }

    /// Merge a chunk-level partial aggregate produced by the parallel
    /// kernels (`columnstore::ops::parallel`).
    pub fn absorb(&mut self, p: &PartialAgg) {
        self.agg.merge(p);
    }

    /// Final value (`None` for empty max/min; avg truncated to integer).
    pub fn finish(&self) -> Option<Val> {
        match self.func {
            AggFunc::Max => self.agg.max,
            AggFunc::Min => self.agg.min,
            AggFunc::Sum => Some(self.agg.sum),
            AggFunc::Count => Some(self.agg.count),
            AggFunc::Avg => {
                if self.agg.count == 0 {
                    None
                } else {
                    Some(self.agg.sum / self.agg.count)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agg_acc_matches_spec() {
        let mut m = AggAcc::new(AggFunc::Max);
        let mut c = AggAcc::new(AggFunc::Count);
        for v in [3, 9, 1] {
            m.push(v);
            c.push(v);
        }
        assert_eq!(m.finish(), Some(9));
        assert_eq!(c.finish(), Some(3));
        assert_eq!(AggAcc::new(AggFunc::Max).finish(), None);
        assert_eq!(AggAcc::new(AggFunc::Count).finish(), Some(0));
    }

    #[test]
    fn timings_total() {
        let t = Timings {
            select: Duration::from_millis(1),
            reconstruct: Duration::from_millis(2),
            join: Duration::from_millis(3),
            post_join: Duration::from_millis(4),
        };
        assert_eq!(t.total(), Duration::from_millis(10));
    }
}
