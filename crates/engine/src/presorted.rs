//! The presorted baseline ("ultimate physical design"): one fully sorted
//! copy of the table per selection attribute. Binary-search selections,
//! slice-read reconstructions — and a heavy, measured preparation step.

use crate::exec::{self, combine, AccessPath, RestrictCtx, RowSet};
use crate::query::{Engine, JoinQuery, QueryError, QueryOutput, SelectQuery, Timings};
use crackdb_columnstore::column::Table;
use crackdb_columnstore::ops::join::hash_join;
use crackdb_columnstore::ops::parallel::{self, PartialAgg};
use crackdb_columnstore::presorted::PresortedTable;
use crackdb_columnstore::types::{RangePred, RowId, Val};
use crackdb_core::BitVec;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Presorted column-store executor.
pub struct PresortedEngine {
    /// Construction-time snapshot only: copies are built from it once,
    /// and all reads go through the copies. Updates maintain the copies
    /// (inserts also append here so key allocation matches the other
    /// engines), but deletions are *not* reflected in `base` — never
    /// rebuild a copy from it after updates have been applied.
    base: Table,
    second: Option<Table>,
    /// One presorted copy per (table, selection attribute).
    copies: HashMap<(bool, usize), PresortedTable>,
    /// Wall time spent building copies (the paper reports presorting cost
    /// separately and excludes it from per-query numbers).
    pub presort_cost: Duration,
}

impl PresortedEngine {
    /// Build copies of `base` sorted on each of `sort_attrs`.
    pub fn new(base: Table, sort_attrs: &[usize]) -> Self {
        let mut e = PresortedEngine {
            base,
            second: None,
            copies: HashMap::new(),
            presort_cost: Duration::ZERO,
        };
        let t0 = Instant::now();
        for &a in sort_attrs {
            let copy = PresortedTable::build(&e.base, a);
            e.copies.insert((false, a), copy);
        }
        e.presort_cost = t0.elapsed();
        e
    }

    /// Two-table variant: also build copies of `second` on
    /// `second_sort_attrs`.
    pub fn with_second(
        base: Table,
        sort_attrs: &[usize],
        second: Table,
        second_sort_attrs: &[usize],
    ) -> Self {
        let mut e = PresortedEngine::new(base, sort_attrs);
        let t0 = Instant::now();
        for &a in second_sort_attrs {
            let copy = PresortedTable::build(&second, a);
            e.copies.insert((true, a), copy);
        }
        e.presort_cost += t0.elapsed();
        e.second = Some(second);
        e
    }

    fn copy_for(&self, second: bool, attr: usize) -> &PresortedTable {
        self.copies
            .get(&(second, attr))
            .unwrap_or_else(|| panic!("no presorted copy for attribute {attr}"))
    }

    /// Selection over a presorted copy (join path): binary search on the
    /// sort attribute, then sequential residual filtering within the
    /// range. Returns the copy, the range, and an optional residual bit
    /// vector.
    fn select_on_copy<'a>(
        &'a self,
        second: bool,
        preds: &[(usize, RangePred)],
    ) -> (&'a PresortedTable, (usize, usize), Option<BitVec>) {
        assert!(
            !preds.is_empty(),
            "presorted engine needs at least one predicate"
        );
        let (first_attr, first_pred) = preds[0];
        let copy = self.copy_for(second, first_attr);
        let range = copy.select_range(&first_pred);
        let mut bv: Option<BitVec> = None;
        for (attr, pred) in &preds[1..] {
            combine::fold_bv(&mut bv, copy.project(*attr, range), pred);
        }
        (copy, range, bv)
    }
}

impl AccessPath for PresortedEngine {
    fn name(&self) -> &'static str {
        "Presorted MonetDB"
    }

    fn restrict(&mut self, attr: usize, pred: &RangePred, ctx: &RestrictCtx) -> RowSet {
        let copy = self.copy_for(false, attr);
        let range = copy.select_range(pred);
        if ctx.disjunctive {
            // Disjunctions keep a bit vector over the whole copy: the
            // binary-searched range is marked wholesale and every further
            // predicate scans the aligned full columns (§3.3's plan shape
            // on sorted data).
            let n = copy.num_rows();
            let mut bv = BitVec::zeros(n);
            for i in range.0..range.1 {
                bv.set(i);
            }
            return RowSet::Area {
                head: (attr, *pred),
                range: (0, n),
                bv: Some(bv),
            };
        }
        RowSet::Area {
            head: (attr, *pred),
            range,
            bv: None,
        }
    }

    fn refine(&mut self, rows: &mut RowSet, attr: usize, pred: &RangePred, _ctx: &RestrictCtx) {
        let RowSet::Area { head, range, bv } = rows else {
            unreachable!("presorted selections produce areas")
        };
        // Residual filtering: sequential reads of the aligned copy slice
        // into the qualifying-bit vector.
        let copy = self.copy_for(false, head.0);
        combine::fold_bv(bv, copy.project(attr, *range), pred);
    }

    fn extend(&mut self, rows: &mut RowSet, attr: usize, pred: &RangePred, _ctx: &RestrictCtx) {
        let RowSet::Area {
            head, bv: Some(bv), ..
        } = rows
        else {
            unreachable!("disjunctive presorted plans carry a whole-copy bit vector")
        };
        let copy = self.copy_for(false, head.0);
        let vals = copy.column(attr);
        for (i, &v) in vals.iter().enumerate() {
            if !bv.get(i) && pred.matches(v) {
                bv.set(i);
            }
        }
    }

    fn unrestricted(&mut self, ctx: &RestrictCtx) -> RowSet {
        // No predicates: the whole of any copy (every copy holds every
        // column) — prefer one covering a fetched attribute.
        let attr = ctx
            .fetch_attrs
            .iter()
            .copied()
            .find(|&a| self.copies.contains_key(&(false, a)))
            .or_else(|| {
                self.copies
                    .keys()
                    .filter(|(second, _)| !second)
                    .map(|&(_, a)| a)
                    .min()
            })
            .expect("presorted engine needs at least one sorted copy");
        let n = self.copy_for(false, attr).num_rows();
        RowSet::Area {
            head: (attr, RangePred::all()),
            range: (0, n),
            bv: None,
        }
    }

    fn fetch(
        &mut self,
        rows: &RowSet,
        attrs: &[usize],
        consume: &mut dyn FnMut(usize, Val),
    ) -> Result<(), QueryError> {
        let RowSet::Area { head, range, bv } = rows else {
            unreachable!("presorted selections produce areas")
        };
        // Reconstruction: aligned slice reads.
        let copy = self.copy_for(false, head.0);
        for &attr in attrs {
            let vals = copy.project(attr, *range);
            match bv {
                Some(bv) => {
                    for i in bv.iter_ones() {
                        consume(attr, vals[i]);
                    }
                }
                None => {
                    for &v in vals {
                        consume(attr, v);
                    }
                }
            }
        }
        Ok(())
    }

    fn partial_agg(&mut self, rows: &RowSet, attr: usize) -> Option<PartialAgg> {
        // Contiguous slices hand straight to the parallel value kernel;
        // bit-vector-filtered areas stream instead.
        let RowSet::Area {
            head,
            range,
            bv: None,
        } = rows
        else {
            return None;
        };
        let copy = self.copy_for(false, head.0);
        Some(parallel::par_agg_values(copy.project(attr, *range)))
    }
}

impl Engine for PresortedEngine {
    fn name(&self) -> &'static str {
        AccessPath::name(self)
    }

    fn select(&mut self, q: &SelectQuery) -> QueryOutput {
        exec::run_select(self, q)
    }

    fn join(&mut self, q: &JoinQuery) -> QueryOutput {
        let mut out = QueryOutput::default();
        let mut timings = Timings::default();

        let t0 = Instant::now();
        let (lcopy, lrange, lbv) = self.select_on_copy(false, &q.left.preds);
        let (rcopy, rrange, rbv) = self.select_on_copy(true, &q.right.preds);
        timings.select = t0.elapsed();

        // Pre-join: join-attribute values from the clustered ranges;
        // carry *positions in the sorted copy* as tuple identities so
        // post-join reconstruction stays within the clustered area.
        let t1 = Instant::now();
        let collect_side =
            |copy: &PresortedTable, range: (usize, usize), bv: &Option<BitVec>, attr: usize| {
                let vals = copy.project(attr, range);
                let mut pairs: Vec<(RowId, Val)> = Vec::new();
                match bv {
                    Some(bv) => {
                        for i in bv.iter_ones() {
                            pairs.push(((range.0 + i) as RowId, vals[i]));
                        }
                    }
                    None => {
                        for (i, &v) in vals.iter().enumerate() {
                            pairs.push(((range.0 + i) as RowId, v));
                        }
                    }
                }
                pairs
            };
        let lpairs = collect_side(lcopy, lrange, &lbv, q.left.join_attr);
        let rpairs = collect_side(rcopy, rrange, &rbv, q.right.join_attr);
        timings.reconstruct = t1.elapsed();

        let t2 = Instant::now();
        let matched = hash_join(&lpairs, &rpairs);
        timings.join = t2.elapsed();
        out.rows = matched.len();

        // Post-join: positions point into the clustered sorted-copy area.
        let t3 = Instant::now();
        out.aggs = exec::agg_matched(&matched, &q.left, true, |attr, p| {
            lcopy.column(attr)[p as usize]
        });
        out.aggs
            .extend(exec::agg_matched(&matched, &q.right, false, |attr, p| {
                rcopy.column(attr)[p as usize]
            }));
        timings.post_join = t3.elapsed();
        out.timings = timings;
        out
    }

    fn insert(&mut self, row: &[Val]) {
        // Every sorted copy shifts O(n) values per insert — the §3.6
        // Exp6 maintenance cost that rules presorting out under updates.
        // Kept correct (not fast) so all five engines accept identical
        // update streams in the differential suites and exp6 can measure
        // exactly this trade-off.
        let key = self.base.append_row(row);
        for (&(second, _), copy) in self.copies.iter_mut() {
            if !second {
                copy.insert_row(row, key);
            }
        }
    }

    fn delete(&mut self, key: RowId) {
        // Physically removed from every copy; `base` keeps the row (it
        // is a construction-time snapshot — see the field docs).
        for (&(second, _), copy) in self.copies.iter_mut() {
            if !second {
                copy.delete_key(key);
            }
        }
    }

    fn aux_tuples(&self) -> usize {
        self.copies.values().map(|c| c.num_rows()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::JoinSide;
    use crackdb_columnstore::column::Column;
    use crackdb_columnstore::types::AggFunc;

    fn table() -> Table {
        let mut t = Table::new();
        t.add_column("a", Column::new(vec![5, 1, 9, 3, 7]));
        t.add_column("b", Column::new(vec![50, 10, 90, 30, 70]));
        t
    }

    #[test]
    fn select_matches_plain() {
        let mut e = PresortedEngine::new(table(), &[0]);
        let q = SelectQuery::aggregate(
            vec![(0, RangePred::open(2, 8))],
            vec![(1, AggFunc::Max), (1, AggFunc::Min)],
        );
        let out = e.select(&q);
        assert_eq!(out.rows, 3);
        assert_eq!(out.aggs, vec![Some(70), Some(30)]);
        assert!(e.presort_cost > Duration::ZERO);
    }

    #[test]
    fn residual_predicates() {
        let mut e = PresortedEngine::new(table(), &[0]);
        let q = SelectQuery::aggregate(
            vec![(0, RangePred::open(0, 10)), (1, RangePred::open(25, 75))],
            vec![(0, AggFunc::Count)],
        );
        let out = e.select(&q);
        assert_eq!(out.rows, 3);
    }

    #[test]
    fn updates_maintain_sorted_copies() {
        let mut e = PresortedEngine::new(table(), &[0, 1]);
        let q = SelectQuery::aggregate(
            vec![(0, RangePred::all())],
            vec![(1, AggFunc::Count), (1, AggFunc::Max)],
        );
        assert_eq!(e.select(&q).aggs, vec![Some(5), Some(90)]);
        e.insert(&[6, 95]);
        e.delete(2); // removes a=9 / b=90
        assert_eq!(e.select(&q).aggs, vec![Some(5), Some(95)]);
        // The copy sorted on b answers too (both copies maintained).
        let qb = SelectQuery::aggregate(
            vec![(1, RangePred::open(40, 100))],
            vec![(0, AggFunc::Count)],
        );
        assert_eq!(e.select(&qb).aggs, vec![Some(3)]); // b in {50, 70, 95}
    }

    #[test]
    fn disjunction_unions_over_the_copy() {
        let mut e = PresortedEngine::new(table(), &[0, 1]);
        let q = SelectQuery {
            preds: vec![(0, RangePred::open(0, 4)), (1, RangePred::open(60, 100))],
            disjunctive: true,
            aggs: vec![(0, AggFunc::Count)],
            projs: vec![1],
        };
        // a in {1,3} plus b in {70,90} → 4 rows.
        let out = e.select(&q);
        assert_eq!(out.rows, 4);
        let mut vals = out.proj_values[0].clone();
        vals.sort_unstable();
        assert_eq!(vals, vec![10, 30, 70, 90]);
    }

    #[test]
    fn no_predicate_query_uses_a_copy() {
        let mut e = PresortedEngine::new(table(), &[0]);
        let q = SelectQuery::aggregate(vec![], vec![(1, AggFunc::Sum)]);
        assert_eq!(e.select(&q).aggs, vec![Some(250)]);
    }

    #[test]
    fn join_on_copies() {
        let mut r = Table::new();
        r.add_column("r1", Column::new(vec![100, 200, 300]));
        r.add_column("rj", Column::new(vec![1, 2, 3]));
        let mut s = Table::new();
        s.add_column("s1", Column::new(vec![11, 22]));
        s.add_column("sj", Column::new(vec![2, 3]));
        let mut e = PresortedEngine::with_second(r, &[0], s, &[0]);
        let q = JoinQuery {
            left: JoinSide {
                preds: vec![(0, RangePred::closed(150, 400))],
                join_attr: 1,
                aggs: vec![(0, AggFunc::Max)],
            },
            right: JoinSide {
                preds: vec![(0, RangePred::closed(0, 100))],
                join_attr: 1,
                aggs: vec![(0, AggFunc::Sum)],
            },
        };
        let out = e.join(&q);
        assert_eq!(out.rows, 2);
        assert_eq!(out.aggs, vec![Some(300), Some(33)]);
    }
}
