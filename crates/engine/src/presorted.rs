//! The presorted baseline ("ultimate physical design"): one fully sorted
//! copy of the table per selection attribute. Binary-search selections,
//! slice-read reconstructions — and a heavy, measured preparation step.

use crate::exec::{self, combine, AccessPath, RestrictCtx, RowSet};
use crate::query::{Engine, JoinQuery, QueryOutput, SelectQuery, Timings};
use crackdb_columnstore::column::Table;
use crackdb_columnstore::ops::join::hash_join;
use crackdb_columnstore::ops::parallel::{self, PartialAgg};
use crackdb_columnstore::presorted::PresortedTable;
use crackdb_columnstore::types::{RangePred, RowId, Val};
use crackdb_core::BitVec;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Presorted column-store executor.
pub struct PresortedEngine {
    base: Table,
    second: Option<Table>,
    /// One presorted copy per (table, selection attribute).
    copies: HashMap<(bool, usize), PresortedTable>,
    /// Wall time spent building copies (the paper reports presorting cost
    /// separately and excludes it from per-query numbers).
    pub presort_cost: Duration,
}

impl PresortedEngine {
    /// Build copies of `base` sorted on each of `sort_attrs`.
    pub fn new(base: Table, sort_attrs: &[usize]) -> Self {
        let mut e = PresortedEngine {
            base,
            second: None,
            copies: HashMap::new(),
            presort_cost: Duration::ZERO,
        };
        let t0 = Instant::now();
        for &a in sort_attrs {
            let copy = PresortedTable::build(&e.base, a);
            e.copies.insert((false, a), copy);
        }
        e.presort_cost = t0.elapsed();
        e
    }

    /// Two-table variant: also build copies of `second` on
    /// `second_sort_attrs`.
    pub fn with_second(
        base: Table,
        sort_attrs: &[usize],
        second: Table,
        second_sort_attrs: &[usize],
    ) -> Self {
        let mut e = PresortedEngine::new(base, sort_attrs);
        let t0 = Instant::now();
        for &a in second_sort_attrs {
            let copy = PresortedTable::build(&second, a);
            e.copies.insert((true, a), copy);
        }
        e.presort_cost += t0.elapsed();
        e.second = Some(second);
        e
    }

    fn copy_for(&self, second: bool, attr: usize) -> &PresortedTable {
        self.copies
            .get(&(second, attr))
            .unwrap_or_else(|| panic!("no presorted copy for attribute {attr}"))
    }

    /// Selection over a presorted copy (join path): binary search on the
    /// sort attribute, then sequential residual filtering within the
    /// range. Returns the copy, the range, and an optional residual bit
    /// vector.
    fn select_on_copy<'a>(
        &'a self,
        second: bool,
        preds: &[(usize, RangePred)],
    ) -> (&'a PresortedTable, (usize, usize), Option<BitVec>) {
        assert!(
            !preds.is_empty(),
            "presorted engine needs at least one predicate"
        );
        let (first_attr, first_pred) = preds[0];
        let copy = self.copy_for(second, first_attr);
        let range = copy.select_range(&first_pred);
        let mut bv: Option<BitVec> = None;
        for (attr, pred) in &preds[1..] {
            combine::fold_bv(&mut bv, copy.project(*attr, range), pred);
        }
        (copy, range, bv)
    }
}

impl AccessPath for PresortedEngine {
    fn name(&self) -> &'static str {
        "Presorted MonetDB"
    }

    fn restrict(&mut self, attr: usize, pred: &RangePred, _ctx: &RestrictCtx) -> RowSet {
        let copy = self.copy_for(false, attr);
        let range = copy.select_range(pred);
        RowSet::Area {
            head: (attr, *pred),
            range,
            bv: None,
        }
    }

    fn refine(&mut self, rows: &mut RowSet, attr: usize, pred: &RangePred, _ctx: &RestrictCtx) {
        let RowSet::Area { head, range, bv } = rows else {
            unreachable!("presorted selections produce areas")
        };
        // Residual filtering: sequential reads of the aligned copy slice
        // into the qualifying-bit vector.
        let copy = self.copy_for(false, head.0);
        combine::fold_bv(bv, copy.project(attr, *range), pred);
    }

    fn extend(&mut self, _rows: &mut RowSet, _attr: usize, _pred: &RangePred, _ctx: &RestrictCtx) {
        panic!("presorted baseline implements conjunctions");
    }

    fn unrestricted(&mut self, _ctx: &RestrictCtx) -> RowSet {
        panic!("presorted engine needs at least one predicate");
    }

    fn fetch(&mut self, rows: &RowSet, attrs: &[usize], consume: &mut dyn FnMut(usize, Val)) {
        let RowSet::Area { head, range, bv } = rows else {
            unreachable!("presorted selections produce areas")
        };
        // Reconstruction: aligned slice reads.
        let copy = self.copy_for(false, head.0);
        for &attr in attrs {
            let vals = copy.project(attr, *range);
            match bv {
                Some(bv) => {
                    for i in bv.iter_ones() {
                        consume(attr, vals[i]);
                    }
                }
                None => {
                    for &v in vals {
                        consume(attr, v);
                    }
                }
            }
        }
    }

    fn partial_agg(&mut self, rows: &RowSet, attr: usize) -> Option<PartialAgg> {
        // Contiguous slices hand straight to the parallel value kernel;
        // bit-vector-filtered areas stream instead.
        let RowSet::Area {
            head,
            range,
            bv: None,
        } = rows
        else {
            return None;
        };
        let copy = self.copy_for(false, head.0);
        Some(parallel::par_agg_values(copy.project(attr, *range)))
    }
}

impl Engine for PresortedEngine {
    fn name(&self) -> &'static str {
        AccessPath::name(self)
    }

    fn select(&mut self, q: &SelectQuery) -> QueryOutput {
        assert!(!q.disjunctive, "presorted baseline implements conjunctions");
        exec::run_select(self, q)
    }

    fn join(&mut self, q: &JoinQuery) -> QueryOutput {
        let mut out = QueryOutput::default();
        let mut timings = Timings::default();

        let t0 = Instant::now();
        let (lcopy, lrange, lbv) = self.select_on_copy(false, &q.left.preds);
        let (rcopy, rrange, rbv) = self.select_on_copy(true, &q.right.preds);
        timings.select = t0.elapsed();

        // Pre-join: join-attribute values from the clustered ranges;
        // carry *positions in the sorted copy* as tuple identities so
        // post-join reconstruction stays within the clustered area.
        let t1 = Instant::now();
        let collect_side =
            |copy: &PresortedTable, range: (usize, usize), bv: &Option<BitVec>, attr: usize| {
                let vals = copy.project(attr, range);
                let mut pairs: Vec<(RowId, Val)> = Vec::new();
                match bv {
                    Some(bv) => {
                        for i in bv.iter_ones() {
                            pairs.push(((range.0 + i) as RowId, vals[i]));
                        }
                    }
                    None => {
                        for (i, &v) in vals.iter().enumerate() {
                            pairs.push(((range.0 + i) as RowId, v));
                        }
                    }
                }
                pairs
            };
        let lpairs = collect_side(lcopy, lrange, &lbv, q.left.join_attr);
        let rpairs = collect_side(rcopy, rrange, &rbv, q.right.join_attr);
        timings.reconstruct = t1.elapsed();

        let t2 = Instant::now();
        let matched = hash_join(&lpairs, &rpairs);
        timings.join = t2.elapsed();
        out.rows = matched.len();

        // Post-join: positions point into the clustered sorted-copy area.
        let t3 = Instant::now();
        out.aggs = exec::agg_matched(&matched, &q.left, true, |attr, p| {
            lcopy.column(attr)[p as usize]
        });
        out.aggs
            .extend(exec::agg_matched(&matched, &q.right, false, |attr, p| {
                rcopy.column(attr)[p as usize]
            }));
        timings.post_join = t3.elapsed();
        out.timings = timings;
        out
    }

    fn insert(&mut self, _row: &[Val]) {
        unimplemented!(
            "no efficient way to maintain multiple sorted copies under updates (paper §3.6 Exp6)"
        )
    }

    fn delete(&mut self, _key: RowId) {
        unimplemented!(
            "no efficient way to maintain multiple sorted copies under updates (paper §3.6 Exp6)"
        )
    }

    fn aux_tuples(&self) -> usize {
        self.copies.values().map(|c| c.num_rows()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::JoinSide;
    use crackdb_columnstore::column::Column;
    use crackdb_columnstore::types::AggFunc;

    fn table() -> Table {
        let mut t = Table::new();
        t.add_column("a", Column::new(vec![5, 1, 9, 3, 7]));
        t.add_column("b", Column::new(vec![50, 10, 90, 30, 70]));
        t
    }

    #[test]
    fn select_matches_plain() {
        let mut e = PresortedEngine::new(table(), &[0]);
        let q = SelectQuery::aggregate(
            vec![(0, RangePred::open(2, 8))],
            vec![(1, AggFunc::Max), (1, AggFunc::Min)],
        );
        let out = e.select(&q);
        assert_eq!(out.rows, 3);
        assert_eq!(out.aggs, vec![Some(70), Some(30)]);
        assert!(e.presort_cost > Duration::ZERO);
    }

    #[test]
    fn residual_predicates() {
        let mut e = PresortedEngine::new(table(), &[0]);
        let q = SelectQuery::aggregate(
            vec![(0, RangePred::open(0, 10)), (1, RangePred::open(25, 75))],
            vec![(0, AggFunc::Count)],
        );
        let out = e.select(&q);
        assert_eq!(out.rows, 3);
    }

    #[test]
    fn join_on_copies() {
        let mut r = Table::new();
        r.add_column("r1", Column::new(vec![100, 200, 300]));
        r.add_column("rj", Column::new(vec![1, 2, 3]));
        let mut s = Table::new();
        s.add_column("s1", Column::new(vec![11, 22]));
        s.add_column("sj", Column::new(vec![2, 3]));
        let mut e = PresortedEngine::with_second(r, &[0], s, &[0]);
        let q = JoinQuery {
            left: JoinSide {
                preds: vec![(0, RangePred::closed(150, 400))],
                join_attr: 1,
                aggs: vec![(0, AggFunc::Max)],
            },
            right: JoinSide {
                preds: vec![(0, RangePred::closed(0, 100))],
                join_attr: 1,
                aggs: vec![(0, AggFunc::Sum)],
            },
        };
        let out = e.join(&q);
        assert_eq!(out.rows, 2);
        assert_eq!(out.aggs, vec![Some(300), Some(33)]);
    }
}
