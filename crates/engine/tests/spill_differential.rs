//! Spill-tier differential testing: a partial engine whose budget forces
//! chunks through the disk spill tier (serialize → evict → reload on
//! re-access) must stay bit-for-bit identical to a never-evicted engine
//! and to the plain-scan baseline — across crack policies, under
//! interleaved updates (the spilled-chunk cursor is the staged-update
//! watermark), and with the `usage() <= budget` invariant holding after
//! every query. Plus the fault-injection regression: a corrupted spill
//! file fails exactly the queries that read it, loudly and typed, and
//! leaves the engine fully serviceable.

use crackdb_columnstore::column::{Column, Table};
use crackdb_columnstore::types::{AggFunc, RangePred, Val};
use crackdb_engine::{CrackPolicy, Engine, PartialEngine, PlainEngine, QueryError, SelectQuery};

const DOMAIN: (Val, Val) = (0, 1000);
/// Tiny on purpose: almost every query overflows it, so chunks cycle
/// through spill and reload constantly.
const TINY_BUDGET: usize = 120;

struct Lcg(u64);
impl Lcg {
    fn next(&mut self, m: i64) -> i64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((self.0 >> 33) as i64).rem_euclid(m)
    }
}

fn random_table(cols: usize, n: usize, seed: u64) -> Table {
    let mut rng = Lcg(seed);
    let mut t = Table::new();
    for c in 0..cols {
        t.add_column(
            format!("a{c}"),
            Column::new((0..n).map(|_| rng.next(DOMAIN.1)).collect()),
        );
    }
    t
}

fn random_select(rng: &mut Lcg, cols: usize) -> SelectQuery {
    let npreds = 1 + rng.next(2) as usize;
    let mut preds = Vec::new();
    let mut used = Vec::new();
    for _ in 0..npreds {
        let attr = rng.next(cols as i64) as usize;
        if used.contains(&attr) {
            continue;
        }
        used.push(attr);
        let lo = rng.next(DOMAIN.1 - 1);
        let hi = lo + 1 + rng.next(DOMAIN.1 - lo);
        preds.push((attr, RangePred::open(lo, hi)));
    }
    let agg_attr = rng.next(cols as i64) as usize;
    let mut q = SelectQuery::aggregate(
        preds,
        vec![
            (agg_attr, AggFunc::Count),
            (agg_attr, AggFunc::Max),
            (agg_attr, AggFunc::Min),
            (agg_attr, AggFunc::Sum),
        ],
    );
    // Raw projections too: spilled-and-reloaded chunks must reproduce
    // exact value multisets, not just aggregate summaries.
    q.projs = vec![rng.next(cols as i64) as usize];
    q
}

fn sorted(mut v: Vec<Val>) -> Vec<Val> {
    v.sort_unstable();
    v
}

/// The spill round-trip property: for every crack policy, a seeded
/// random query/update stream answers identically on (a) the plain
/// baseline, (b) an unbudgeted in-RAM partial engine, and (c) a
/// tiny-budget spill engine whose chunks round-trip through disk —
/// including un-merge (area reverts under eviction pressure) and staged
/// update replay on reloaded chunks. The budget invariant is asserted
/// after every single query.
#[test]
fn spilled_runs_match_never_evicted_bit_for_bit() {
    let policies = [
        CrackPolicy::Standard,
        CrackPolicy::stochastic(),
        CrackPolicy::CoarseGranular { min_piece: 16 },
    ];
    for policy in policies {
        let table = random_table(3, 400, 2026);
        let mut plain = PlainEngine::new(table.clone());
        let mut ram = PartialEngine::with_policy(table.clone(), DOMAIN, None, policy);
        let mut spilled = PartialEngine::with_spill_policy(
            table.clone(),
            DOMAIN,
            Some(TINY_BUDGET),
            std::env::temp_dir(),
            policy,
        );
        assert!(spilled.store().spill_enabled());

        let mut rng = Lcg(31337);
        let mut live_keys: Vec<u32> = (0..400).collect();
        let mut next_insert = 0i64;
        for i in 0..50 {
            if i % 4 == 3 {
                let row = [rng.next(DOMAIN.1), 7_000_000 + next_insert, next_insert];
                next_insert += 1;
                plain.insert(&row);
                ram.insert(&row);
                spilled.insert(&row);
                live_keys.push(399 + next_insert as u32);
                let victim = live_keys.swap_remove(rng.next(live_keys.len() as i64) as usize);
                plain.delete(victim);
                ram.delete(victim);
                spilled.delete(victim);
            }
            let q = random_select(&mut rng, 3);
            let expected = plain.select(&q);
            let r = ram.select(&q);
            let s = spilled
                .try_select(&q)
                .expect("a healthy spill tier never errors");
            for (name, out) in [("ram", &r), ("spilled", &s)] {
                assert_eq!(
                    out.rows,
                    expected.rows,
                    "policy {} query {i}: {name} rows",
                    policy.label()
                );
                assert_eq!(
                    out.aggs,
                    expected.aggs,
                    "policy {} query {i}: {name} aggs",
                    policy.label()
                );
                assert_eq!(
                    sorted(out.proj_values[0].clone()),
                    sorted(expected.proj_values[0].clone()),
                    "policy {} query {i}: {name} projection",
                    policy.label()
                );
            }
            assert!(
                spilled.store().usage() <= TINY_BUDGET,
                "policy {} query {i}: usage {} exceeds budget {TINY_BUDGET}",
                policy.label(),
                spilled.store().usage()
            );
        }
        let stats = spilled.store().stats_sum();
        assert!(
            stats.chunks_spilled > 0,
            "policy {}: the tiny budget must actually spill",
            policy.label()
        );
        assert!(
            stats.chunks_reloaded > 0,
            "policy {}: re-accessed chunks must reload from disk, not recrack",
            policy.label()
        );
    }
}

/// Un-merge interplay, directly: updates staged while a chunk sits on
/// disk must surface when it reloads (the spilled cursor is the
/// watermark), and dropping the last sibling while others are spilled
/// must NOT revert the area under the cold chunk's feet.
#[test]
fn updates_staged_while_spilled_replay_on_reload() {
    let mut t = Table::new();
    t.add_column("a", Column::new((0..300).collect()));
    t.add_column("b", Column::new((0..300).map(|v| v * 3).collect()));
    t.add_column("c", Column::new((0..300).map(|v| v * 7).collect()));
    let mut plain = PlainEngine::new(t.clone());
    let mut e = PartialEngine::with_spill_dir(t, (0, 300), Some(80), std::env::temp_dir());

    let qa = SelectQuery::aggregate(
        vec![(0, RangePred::open(10, 150))],
        vec![(1, AggFunc::Count), (1, AggFunc::Sum), (1, AggFunc::Max)],
    );
    let qb = SelectQuery::aggregate(
        vec![(0, RangePred::open(160, 290))],
        vec![(2, AggFunc::Count), (2, AggFunc::Sum)],
    );
    // Crack + fetch area A, then push it to disk by touching area B.
    assert_eq!(plain.select(&qa).aggs, e.try_select(&qa).unwrap().aggs);
    plain.select(&qb);
    e.try_select(&qb).unwrap();
    assert!(
        e.store().spilled_tuples() > 0,
        "the 80-tuple budget must have spilled the first area"
    );
    // Stage updates landing inside the spilled area while it is cold.
    plain.insert(&[100, 9999, 9998]);
    plain.delete(20);
    e.insert(&[100, 9999, 9998]);
    e.delete(20);
    // Reload: the staged insert and delete must replay into the
    // reloaded chunk exactly as they would have merged in RAM.
    let expected = plain.select(&qa);
    let out = e.try_select(&qa).unwrap();
    assert_eq!(out.rows, expected.rows);
    assert_eq!(out.aggs, expected.aggs);
    assert_eq!(
        out.aggs[2],
        Some(9999),
        "staged insert visible after reload"
    );
    assert!(e.store().usage() <= 80, "budget holds after reload");
}

/// The fault-injection regression (bugfix sweep): corrupting the spill
/// files makes exactly the reads that touch them fail — as a typed
/// `QueryError::Storage`, not a panic — and the engine stays fully
/// serviceable: retries recreate the lost chunks from the base and
/// return correct answers again.
#[test]
fn corrupted_spill_file_fails_loudly_and_engine_recovers() {
    use std::io::Write;

    let table = random_table(3, 400, 555);
    let mut plain = PlainEngine::new(table.clone());
    let mut e =
        PartialEngine::with_spill_dir(table, DOMAIN, Some(TINY_BUDGET), std::env::temp_dir());

    // Warm a few areas so several chunks are sitting in spill files.
    let mut rng = Lcg(9);
    let queries: Vec<SelectQuery> = (0..8).map(|_| random_select(&mut rng, 3)).collect();
    for q in &queries {
        e.try_select(q).expect("healthy tier");
    }
    assert!(e.store().spilled_tuples() > 0, "chunks must be on disk");

    // Flip every byte of every spill file: all cold chunks are now junk.
    let dir = e.store().spill_dir().expect("spill enabled").to_path_buf();
    let mut corrupted_files = 0;
    for entry in std::fs::read_dir(&dir).expect("spill dir exists") {
        let path = entry.expect("dir entry").path();
        let len = std::fs::metadata(&path).expect("metadata").len() as usize;
        let mut f = std::fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .expect("open spill file");
        f.write_all(&vec![0xFF; len]).expect("overwrite");
        corrupted_files += 1;
    }
    assert!(corrupted_files > 0, "spill files exist on disk");

    // Re-running the workload must hit the corruption at least once and
    // surface it as a typed storage error — never a panic. Every failed
    // reload consumes its slot, so retries converge back to health:
    // lost chunks are recreated from the base and answers are correct.
    let mut failures = 0;
    for (i, q) in queries.iter().enumerate() {
        let expected = plain.select(q);
        let out = loop {
            match e.try_select(q) {
                Ok(out) => break out,
                Err(err @ QueryError::Storage(_)) => {
                    failures += 1;
                    assert!(
                        err.to_string().contains("storage error"),
                        "typed error formats its tier context: {err}"
                    );
                    assert!(failures < 100, "failed reloads must converge");
                }
            }
        };
        assert_eq!(out.rows, expected.rows, "query {i} recovers rows");
        assert_eq!(out.aggs, expected.aggs, "query {i} recovers aggs");
        assert!(
            e.store().usage() <= TINY_BUDGET,
            "budget holds through faults"
        );
    }
    assert!(
        failures > 0,
        "at least one query must have read a corrupted record loudly"
    );

    // And the tier keeps working after the faults: new evictions write
    // fresh records that reload fine.
    for q in &queries {
        let expected = plain.select(q);
        let out = e.try_select(q).expect("tier healthy again");
        assert_eq!(out.aggs, expected.aggs);
    }
}
