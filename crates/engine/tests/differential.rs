//! Differential testing: every physical design must return identical
//! answers for identical query sequences — including under updates.

use crackdb_columnstore::column::{Column, Table};
use crackdb_columnstore::types::{AggFunc, RangePred, Val};
use crackdb_engine::{
    BatchRunner, CrackPolicy, Engine, JoinQuery, JoinSide, PartialEngine, PlainEngine,
    PresortedEngine, SelCrackEngine, SelectQuery, SidewaysEngine,
};

const DOMAIN: (Val, Val) = (0, 1000);

struct Lcg(u64);
impl Lcg {
    fn next(&mut self, m: i64) -> i64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((self.0 >> 33) as i64).rem_euclid(m)
    }
}

fn random_table(cols: usize, n: usize, seed: u64) -> Table {
    let mut rng = Lcg(seed);
    let mut t = Table::new();
    for c in 0..cols {
        t.add_column(
            format!("a{c}"),
            Column::new((0..n).map(|_| rng.next(DOMAIN.1)).collect()),
        );
    }
    t
}

fn random_select(rng: &mut Lcg, cols: usize) -> SelectQuery {
    let npreds = 1 + rng.next(2) as usize;
    let mut preds = Vec::new();
    let mut used = Vec::new();
    for _ in 0..npreds {
        let attr = rng.next(cols as i64) as usize;
        if used.contains(&attr) {
            continue;
        }
        used.push(attr);
        let lo = rng.next(DOMAIN.1 - 1);
        let hi = lo + 1 + rng.next(DOMAIN.1 - lo);
        preds.push((attr, RangePred::open(lo, hi)));
    }
    let agg_attr = rng.next(cols as i64) as usize;
    SelectQuery::aggregate(
        preds,
        vec![
            (agg_attr, AggFunc::Count),
            (agg_attr, AggFunc::Max),
            (agg_attr, AggFunc::Min),
            (agg_attr, AggFunc::Sum),
        ],
    )
}

#[test]
fn all_engines_agree_on_random_conjunctions() {
    let table = random_table(4, 500, 42);
    let mut plain = PlainEngine::new(table.clone());
    let mut presorted = PresortedEngine::new(table.clone(), &[0, 1, 2, 3]);
    let mut selcrack = SelCrackEngine::new(table.clone(), DOMAIN);
    let mut sideways = SidewaysEngine::new(table.clone(), DOMAIN);
    let mut partial = PartialEngine::new(table.clone(), DOMAIN, None);

    let mut rng = Lcg(7);
    for i in 0..40 {
        let q = random_select(&mut rng, 4);
        let expected = plain.select(&q);
        for (name, out) in [
            ("presorted", presorted.select(&q)),
            ("selcrack", selcrack.select(&q)),
            ("sideways", sideways.select(&q)),
            ("partial", partial.select(&q)),
        ] {
            assert_eq!(out.rows, expected.rows, "query {i}: {name} row count");
            assert_eq!(out.aggs, expected.aggs, "query {i}: {name} aggregates");
        }
    }
}

#[test]
fn engines_agree_under_updates() {
    let table = random_table(3, 300, 99);
    let mut plain = PlainEngine::new(table.clone());
    let mut others: Vec<(&str, Box<dyn Engine>)> = vec![
        (
            "selcrack",
            Box::new(SelCrackEngine::new(table.clone(), DOMAIN)),
        ),
        (
            "sideways",
            Box::new(SidewaysEngine::new(table.clone(), DOMAIN)),
        ),
        (
            "presorted",
            Box::new(PresortedEngine::new(table.clone(), &[0, 1, 2])),
        ),
        (
            "partial",
            Box::new(PartialEngine::new(table.clone(), DOMAIN, None)),
        ),
        (
            "partial+budget",
            Box::new(PartialEngine::new(table.clone(), DOMAIN, Some(250))),
        ),
    ];

    let mut rng = Lcg(123);
    let mut live_keys: Vec<u32> = (0..300).collect();
    let mut next_insert = 0i64;
    for i in 0..60 {
        // Interleave queries and updates.
        if i % 3 == 2 {
            let row = [
                rng.next(DOMAIN.1),
                1_000_000 + next_insert,
                2_000_000 + next_insert,
            ];
            next_insert += 1;
            plain.insert(&row);
            live_keys.push(299 + next_insert as u32);
            let victim_idx = rng.next(live_keys.len() as i64) as usize;
            let victim = live_keys.swap_remove(victim_idx);
            plain.delete(victim);
            for (_, e) in others.iter_mut() {
                e.insert(&row);
                e.delete(victim);
            }
        }
        let q = random_select(&mut rng, 3);
        let expected = plain.select(&q);
        for (name, e) in others.iter_mut() {
            let out = e.select(&q);
            assert_eq!(out.rows, expected.rows, "query {i}: {name} rows");
            assert_eq!(out.aggs, expected.aggs, "query {i}: {name} aggs");
        }
    }
}

#[test]
fn engines_agree_on_joins() {
    let left = random_table(4, 200, 5);
    let right = random_table(4, 150, 6);
    let mut plain = PlainEngine::with_second(left.clone(), right.clone());
    let mut presorted = PresortedEngine::with_second(left.clone(), &[1], right.clone(), &[1]);
    let mut selcrack = SelCrackEngine::with_second(left.clone(), right.clone(), DOMAIN);
    let mut sideways = SidewaysEngine::with_second(left.clone(), right.clone(), DOMAIN);
    let mut partial = PartialEngine::with_second(left.clone(), right.clone(), DOMAIN, None);
    let mut partial_b = PartialEngine::with_second(left.clone(), right.clone(), DOMAIN, Some(200));

    let mut rng = Lcg(31);
    for i in 0..15 {
        let llo = rng.next(800);
        let rlo = rng.next(800);
        let q = JoinQuery {
            left: JoinSide {
                preds: vec![(1, RangePred::open(llo, llo + 300))],
                join_attr: 3,
                aggs: vec![(0, AggFunc::Max), (0, AggFunc::Count)],
            },
            right: JoinSide {
                preds: vec![(1, RangePred::open(rlo, rlo + 300))],
                join_attr: 3,
                aggs: vec![(0, AggFunc::Sum)],
            },
        };
        let expected = plain.join(&q);
        for (name, out) in [
            ("presorted", presorted.join(&q)),
            ("selcrack", selcrack.join(&q)),
            ("sideways", sideways.join(&q)),
            ("partial", partial.join(&q)),
            ("partial+budget", partial_b.join(&q)),
        ] {
            assert_eq!(out.rows, expected.rows, "join {i}: {name} rows");
            assert_eq!(out.aggs, expected.aggs, "join {i}: {name} aggs");
        }
    }
}

#[test]
fn disjunctive_agreement() {
    let table = random_table(3, 400, 77);
    let mut plain = PlainEngine::new(table.clone());
    let mut sideways = SidewaysEngine::new(table.clone(), DOMAIN);
    let mut rng = Lcg(55);
    for i in 0..20 {
        let lo1 = rng.next(900);
        let lo2 = rng.next(900);
        let q = SelectQuery {
            preds: vec![
                (0, RangePred::open(lo1, lo1 + 100)),
                (1, RangePred::open(lo2, lo2 + 100)),
            ],
            disjunctive: true,
            aggs: vec![(2, AggFunc::Count), (2, AggFunc::Sum)],
            projs: vec![],
        };
        let expected = plain.select(&q);
        let sw = sideways.select(&q);
        assert_eq!(sw.rows, expected.rows, "disj {i}: rows");
        assert_eq!(sw.aggs, expected.aggs, "disj {i}: aggs");
    }
}

/// A randomized mixed workload (conjunctions, varying predicate counts,
/// aggregates *and* raw projections) through all five engines via the
/// shared access-path executor: every `QueryOutput` must be identical up
/// to row order of projections.
#[test]
fn all_engines_agree_on_projections_via_shared_executor() {
    let table = random_table(4, 400, 17);
    let mut plain = PlainEngine::new(table.clone());
    let mut presorted = PresortedEngine::new(table.clone(), &[0, 1, 2, 3]);
    let mut selcrack = SelCrackEngine::new(table.clone(), DOMAIN);
    let mut sideways = SidewaysEngine::new(table.clone(), DOMAIN);
    let mut partial = PartialEngine::new(table.clone(), DOMAIN, None);

    let mut rng = Lcg(2024);
    for i in 0..30 {
        let mut q = random_select(&mut rng, 4);
        // Project two attributes (possibly equal) on top of the aggregates.
        let p1 = rng.next(4) as usize;
        let p2 = rng.next(4) as usize;
        q.projs = vec![p1, p2];
        let expected = plain.select(&q);
        let mut expected_projs: Vec<Vec<Val>> = expected.proj_values.clone();
        for v in &mut expected_projs {
            v.sort_unstable();
        }
        for (name, out) in [
            ("presorted", presorted.select(&q)),
            ("selcrack", selcrack.select(&q)),
            ("sideways", sideways.select(&q)),
            ("partial", partial.select(&q)),
        ] {
            assert_eq!(out.rows, expected.rows, "query {i}: {name} row count");
            assert_eq!(out.aggs, expected.aggs, "query {i}: {name} aggregates");
            assert_eq!(out.proj_values.len(), expected_projs.len());
            for (j, vals) in out.proj_values.iter().enumerate() {
                let mut vals = vals.clone();
                vals.sort_unstable();
                assert_eq!(vals, expected_projs[j], "query {i}: {name} projection {j}");
            }
        }
    }
}

/// Disjunctions through all five engines: plain scans, presorted
/// whole-copy bit vectors, selection cracking, sideways cracking, and
/// partial sideways cracking's all-areas union pass (with and without a
/// budget).
#[test]
fn disjunctive_engines_agree() {
    let table = random_table(3, 400, 88);
    let mut plain = PlainEngine::new(table.clone());
    let mut selcrack = SelCrackEngine::new(table.clone(), DOMAIN);
    let mut sideways = SidewaysEngine::new(table.clone(), DOMAIN);
    let mut presorted = PresortedEngine::new(table.clone(), &[0, 1, 2]);
    let mut partial = PartialEngine::new(table.clone(), DOMAIN, None);
    let mut partial_b = PartialEngine::new(table.clone(), DOMAIN, Some(300));
    let mut rng = Lcg(404);
    for i in 0..20 {
        let lo1 = rng.next(900);
        let lo2 = rng.next(900);
        let q = SelectQuery {
            preds: vec![
                (0, RangePred::open(lo1, lo1 + 150)),
                (1, RangePred::open(lo2, lo2 + 150)),
            ],
            disjunctive: true,
            aggs: vec![(2, AggFunc::Count), (2, AggFunc::Sum), (2, AggFunc::Min)],
            projs: vec![],
        };
        let expected = plain.select(&q);
        for (name, out) in [
            ("selcrack", selcrack.select(&q)),
            ("sideways", sideways.select(&q)),
            ("presorted", presorted.select(&q)),
            ("partial", partial.select(&q)),
            ("partial+budget", partial_b.select(&q)),
        ] {
            assert_eq!(out.rows, expected.rows, "disj {i}: {name} rows");
            assert_eq!(out.aggs, expected.aggs, "disj {i}: {name} aggs");
        }
    }
}

/// The batch-execution layer must be answer-identical to serial
/// execution for every engine — including the adaptive ones, whose
/// cracking sequence stays serial inside a batch.
#[test]
fn batch_runner_matches_serial_for_all_engines() {
    // Large enough that the parallel scan/aggregate kernels engage.
    let table = random_table(3, 20_000, 3);
    let mut rng = Lcg(909);
    let queries: Vec<SelectQuery> = (0..12).map(|_| random_select(&mut rng, 3)).collect();

    fn check<E: Engine>(serial: &mut E, parallel: E, queries: &[SelectQuery], name: &str) {
        let expected: Vec<_> = queries.iter().map(|q| serial.select(q)).collect();
        let mut runner = BatchRunner::new(parallel, 4);
        let outs = runner.run(queries);
        for (i, (o, e)) in outs.iter().zip(&expected).enumerate() {
            assert_eq!(o.rows, e.rows, "{name} query {i}: batch rows");
            assert_eq!(o.aggs, e.aggs, "{name} query {i}: batch aggs");
        }
    }

    check(
        &mut PlainEngine::new(table.clone()),
        PlainEngine::new(table.clone()),
        &queries,
        "plain",
    );
    check(
        &mut SelCrackEngine::new(table.clone(), DOMAIN),
        SelCrackEngine::new(table.clone(), DOMAIN),
        &queries,
        "selcrack",
    );
    check(
        &mut SidewaysEngine::new(table.clone(), DOMAIN),
        SidewaysEngine::new(table.clone(), DOMAIN),
        &queries,
        "sideways",
    );
    check(
        &mut PartialEngine::new(table.clone(), DOMAIN, None),
        PartialEngine::new(table, DOMAIN, None),
        &queries,
        "partial",
    );
}

/// Every adaptive engine under every crack policy — explicitly, not via
/// the `CRACKDB_POLICY` env hook — must match the plain baseline on a
/// mixed query/update stream. `coarse:16` exercises both the crack and
/// the decline-and-filter paths on these table sizes; the default
/// `coarse` (1024-tuple leaves) never cracks at all here, stressing the
/// pure filtering fallback.
#[test]
fn adaptive_engines_agree_under_every_policy_explicitly() {
    let policies = [
        CrackPolicy::Standard,
        CrackPolicy::stochastic(),
        CrackPolicy::Stochastic { seed: 77 },
        CrackPolicy::coarse(),
        CrackPolicy::CoarseGranular { min_piece: 16 },
    ];
    for policy in policies {
        let table = random_table(3, 400, 4242);
        let mut plain = PlainEngine::new(table.clone());
        let mut others: Vec<(&str, Box<dyn Engine>)> = vec![
            (
                "selcrack",
                Box::new(SelCrackEngine::with_policy(table.clone(), DOMAIN, policy)),
            ),
            (
                "sideways",
                Box::new(SidewaysEngine::with_policy(table.clone(), DOMAIN, policy)),
            ),
            (
                "partial",
                Box::new(PartialEngine::with_policy(
                    table.clone(),
                    DOMAIN,
                    None,
                    policy,
                )),
            ),
            (
                "partial+budget",
                Box::new(PartialEngine::with_policy(
                    table.clone(),
                    DOMAIN,
                    Some(300),
                    policy,
                )),
            ),
        ];
        let mut rng = Lcg(1717);
        let mut live_keys: Vec<u32> = (0..400).collect();
        let mut next_insert = 0i64;
        for i in 0..40 {
            if i % 4 == 3 {
                let row = [rng.next(DOMAIN.1), 5_000_000 + next_insert, next_insert];
                next_insert += 1;
                plain.insert(&row);
                live_keys.push(399 + next_insert as u32);
                let victim = live_keys.swap_remove(rng.next(live_keys.len() as i64) as usize);
                plain.delete(victim);
                for (_, e) in others.iter_mut() {
                    e.insert(&row);
                    e.delete(victim);
                }
            }
            let mut q = random_select(&mut rng, 3);
            q.disjunctive = i % 5 == 4 && q.preds.len() > 1;
            let expected = plain.select(&q);
            for (name, e) in others.iter_mut() {
                let out = e.select(&q);
                assert_eq!(
                    out.rows,
                    expected.rows,
                    "policy {} query {i}: {name} rows",
                    policy.label()
                );
                assert_eq!(
                    out.aggs,
                    expected.aggs,
                    "policy {} query {i}: {name} aggs",
                    policy.label()
                );
            }
        }
    }
}

#[test]
fn partial_with_budget_agrees() {
    let table = random_table(4, 400, 11);
    let mut plain = PlainEngine::new(table.clone());
    let mut partial = PartialEngine::new(table.clone(), DOMAIN, Some(300));
    let mut rng = Lcg(66);
    for i in 0..40 {
        let q = random_select(&mut rng, 4);
        let expected = plain.select(&q);
        let p = partial.select(&q);
        assert_eq!(p.rows, expected.rows, "query {i}: rows");
        assert_eq!(p.aggs, expected.aggs, "query {i}: aggs");
    }
}
