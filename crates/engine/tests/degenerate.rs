//! Degenerate-input hardening: 0-row tables and single-value (or
//! inverted) attribute domains must never produce a NaN estimate — a
//! NaN used to panic the executor's predicate ordering
//! (`order_preds`) — and every engine must answer such queries exactly
//! like the plain baseline.

use crackdb_columnstore::column::{Column, Table};
use crackdb_columnstore::types::{AggFunc, RangePred, Val};
use crackdb_engine::{
    CrackPolicy, Engine, JoinQuery, JoinSide, PartialEngine, PlainEngine, PresortedEngine,
    SelCrackEngine, SelectQuery, ShardedEngine, SidewaysEngine,
};

fn empty_table(cols: usize) -> Table {
    let mut t = Table::new();
    for c in 0..cols {
        t.add_column(format!("a{c}"), Column::new(Vec::new()));
    }
    t
}

fn single_value_table(cols: usize, n: usize, v: Val) -> Table {
    let mut t = Table::new();
    for c in 0..cols {
        t.add_column(format!("a{c}"), Column::new(vec![v; n]));
    }
    t
}

fn queries() -> Vec<SelectQuery> {
    vec![
        SelectQuery::aggregate(
            vec![(0, RangePred::open(1, 9)), (1, RangePred::open(2, 8))],
            vec![
                (2, AggFunc::Count),
                (2, AggFunc::Sum),
                (2, AggFunc::Min),
                (2, AggFunc::Max),
                (2, AggFunc::Avg),
            ],
        ),
        SelectQuery::project(vec![(0, RangePred::closed(5, 5))], vec![1, 2]),
        SelectQuery::aggregate(vec![(1, RangePred::all())], vec![(0, AggFunc::Count)]),
    ]
}

fn check_engines(t: &Table, domain: (Val, Val), ctx: &str) {
    let queries = queries();
    let mut plain = PlainEngine::new(t.clone());
    let mut engines: Vec<(&str, Box<dyn Engine>)> = vec![
        (
            "presorted",
            Box::new(PresortedEngine::new(t.clone(), &[0, 1, 2])),
        ),
        ("selcrack", Box::new(SelCrackEngine::new(t.clone(), domain))),
        ("sideways", Box::new(SidewaysEngine::new(t.clone(), domain))),
        (
            "partial",
            Box::new(PartialEngine::new(t.clone(), domain, None)),
        ),
        (
            "partial+budget",
            Box::new(PartialEngine::new(t.clone(), domain, Some(10))),
        ),
        (
            "sharded sideways",
            Box::new(ShardedEngine::build(t.clone(), 3, |_, p| {
                SidewaysEngine::new(p, domain)
            })),
        ),
    ];
    for (i, q) in queries.iter().enumerate() {
        let expected = plain.select(q);
        for (name, e) in engines.iter_mut() {
            let out = e.select(q);
            assert_eq!(out.rows, expected.rows, "{ctx}: query {i} {name} rows");
            assert_eq!(out.aggs, expected.aggs, "{ctx}: query {i} {name} aggs");
            for (j, (got, want)) in out
                .proj_values
                .iter()
                .zip(&expected.proj_values)
                .enumerate()
            {
                let mut got = got.clone();
                let mut want = want.clone();
                got.sort_unstable();
                want.sort_unstable();
                assert_eq!(got, want, "{ctx}: query {i} {name} projection {j}");
            }
        }
    }
}

#[test]
fn zero_row_tables_answer_empty_everywhere() {
    check_engines(&empty_table(3), (0, 10), "empty table");
    // The degenerate (0, 0) domain on an empty table, too.
    check_engines(&empty_table(3), (0, 0), "empty table, empty domain");
}

#[test]
fn single_value_domains_never_panic_the_planner() {
    let t = single_value_table(3, 50, 5);
    check_engines(&t, (5, 5), "single-value domain");
    // Inverted domain registration must be tolerated as well.
    check_engines(&t, (9, 3), "inverted domain");
}

/// `SelCrackEngine::order_preds` orders a join side's predicates by
/// uniform selectivity estimates; it used to `partial_cmp(..).expect`
/// on them — the exact NaN panic the shared planner fixed with
/// `total_cmp` but this path missed. Drive multi-predicate conjunctions
/// through the SelCrack join path on every degenerate domain (and every
/// policy) and require plain-identical answers.
#[test]
fn selcrack_join_ordering_survives_degenerate_domains() {
    let tables: Vec<(Table, (Val, Val), &str)> = vec![
        (empty_table(3), (0, 0), "empty table, empty domain"),
        (single_value_table(3, 40, 5), (5, 5), "single-value domain"),
        (single_value_table(3, 40, 5), (9, 3), "inverted domain"),
    ];
    // Two predicates per side so order_preds actually compares the
    // (possibly degenerate) selectivity estimates.
    let q = JoinQuery {
        left: JoinSide {
            preds: vec![(0, RangePred::closed(5, 5)), (1, RangePred::open(0, 10))],
            join_attr: 2,
            aggs: vec![(0, AggFunc::Count), (1, AggFunc::Max)],
        },
        right: JoinSide {
            preds: vec![(1, RangePred::closed(5, 5)), (0, RangePred::open(4, 6))],
            join_attr: 2,
            aggs: vec![(0, AggFunc::Sum)],
        },
    };
    for (t, domain, ctx) in &tables {
        let mut plain = PlainEngine::with_second(t.clone(), t.clone());
        let expected = plain.join(&q);
        for policy in CrackPolicy::all() {
            let mut e = SelCrackEngine::with_second_policy(t.clone(), t.clone(), *domain, policy);
            let out = e.join(&q);
            assert_eq!(out.rows, expected.rows, "{ctx} ({}): rows", policy.label());
            assert_eq!(out.aggs, expected.aggs, "{ctx} ({}): aggs", policy.label());
        }
    }
}

/// Multi-predicate conjunctive *selects* through SelCrack on degenerate
/// domains, under every policy explicitly (not just the env hook).
#[test]
fn selcrack_conjunctions_on_degenerate_domains_under_all_policies() {
    let t = single_value_table(3, 50, 5);
    let q = SelectQuery::aggregate(
        vec![
            (0, RangePred::closed(5, 5)),
            (1, RangePred::open(0, 9)),
            (2, RangePred::closed(5, 5)),
        ],
        vec![(1, AggFunc::Count), (1, AggFunc::Sum), (2, AggFunc::Min)],
    );
    let mut plain = PlainEngine::new(t.clone());
    let expected = plain.select(&q);
    for domain in [(5, 5), (9, 3), (0, 0)] {
        for policy in CrackPolicy::all() {
            let mut e = SelCrackEngine::with_policy(t.clone(), domain, policy);
            let out = e.select(&q);
            assert_eq!(
                out.aggs,
                expected.aggs,
                "domain {domain:?} policy {}",
                policy.label()
            );
        }
    }
}

#[test]
fn single_value_domain_under_updates() {
    let t = single_value_table(3, 30, 5);
    let mut plain = PlainEngine::new(t.clone());
    let mut partial = PartialEngine::new(t.clone(), (5, 5), None);
    let mut sideways = SidewaysEngine::new(t.clone(), (5, 5));
    let q = SelectQuery::aggregate(
        vec![(0, RangePred::closed(5, 5))],
        vec![(1, AggFunc::Count), (1, AggFunc::Sum)],
    );
    for step in 0..6 {
        plain.insert(&[5, 5, 5]);
        partial.insert(&[5, 5, 5]);
        sideways.insert(&[5, 5, 5]);
        if step % 2 == 0 {
            plain.delete(step);
            partial.delete(step);
            sideways.delete(step);
        }
        let e = plain.select(&q);
        let p = partial.select(&q);
        let s = sideways.select(&q);
        assert_eq!(p.rows, e.rows, "step {step} partial");
        assert_eq!(p.aggs, e.aggs, "step {step} partial");
        assert_eq!(s.rows, e.rows, "step {step} sideways");
        assert_eq!(s.aggs, e.aggs, "step {step} sideways");
    }
}
