//! Update-path differential testing: the §5 insert/delete machinery
//! (ripple updates, pending-queues, tombstones, staged chunk-wise
//! merges, sorted-copy maintenance) exercised through `cargo test`
//! rather than only the exp6 benchmark binary.
//!
//! All five engines — plain, presorted, selection cracking, sideways
//! cracking and partial sideways cracking (with and without a storage
//! budget) — unsharded *and* behind `ShardedEngine` at shard counts 1,
//! 2 and 7 — receive the same interleaved insert/delete/select stream
//! and must agree with the plain baseline query by query. Partial
//! sideways cracking follows §3.5 chunk-wise (stage globally, merge on
//! access); the presorted baseline maintains its sorted copies the
//! expensive way the paper ascribes to it.

use crackdb_columnstore::column::Table;
use crackdb_columnstore::types::{AggFunc, RangePred, RowId, Val};
use crackdb_engine::{
    Engine, PartialEngine, PlainEngine, PresortedEngine, QueryOutput, SelCrackEngine, SelectQuery,
    ShardedEngine, SidewaysEngine,
};
use crackdb_rng::{rngs::StdRng, Rng, SeedableRng};
use crackdb_workloads::random_table;

const DOMAIN: (Val, Val) = (0, 1000);
const SHARD_COUNTS: [usize; 3] = [1, 2, 7];

/// One step of the interleaved workload.
enum Op {
    Insert(Vec<Val>),
    Delete(RowId),
    Select(SelectQuery),
}

/// Build a deterministic interleaved stream: inserts of fresh rows,
/// deletes of both original and previously inserted rows (always live
/// ones), and selects with aggregates and projections.
fn workload(cols: usize, initial_rows: usize, steps: usize, seed: u64) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ops = Vec::with_capacity(steps);
    let mut live: Vec<RowId> = (0..initial_rows as RowId).collect();
    let mut next_key = initial_rows as RowId;
    for i in 0..steps {
        match i % 4 {
            0 => {
                let row: Vec<Val> = (0..cols).map(|_| rng.gen_range(1..=DOMAIN.1)).collect();
                ops.push(Op::Insert(row));
                live.push(next_key);
                next_key += 1;
            }
            1 if live.len() > 1 => {
                let victim = live.swap_remove(rng.gen_range(0..live.len()));
                ops.push(Op::Delete(victim));
            }
            _ => {
                let attr = rng.gen_range(0..cols);
                let lo = rng.gen_range(0..DOMAIN.1 - 2);
                let hi = lo + 1 + rng.gen_range(1..=DOMAIN.1 - lo);
                let agg = rng.gen_range(0..cols);
                let mut q = SelectQuery::aggregate(
                    vec![(attr, RangePred::open(lo, hi))],
                    vec![
                        (agg, AggFunc::Count),
                        (agg, AggFunc::Sum),
                        (agg, AggFunc::Min),
                        (agg, AggFunc::Max),
                        (agg, AggFunc::Avg),
                    ],
                );
                if i % 8 == 6 {
                    q.projs = vec![rng.gen_range(0..cols)];
                }
                ops.push(Op::Select(q));
            }
        }
    }
    ops
}

/// Replay `ops` on `engine`, returning the outputs of the select steps.
fn replay<E: Engine>(engine: &mut E, ops: &[Op]) -> Vec<QueryOutput> {
    let mut outs = Vec::new();
    for op in ops {
        match op {
            Op::Insert(row) => engine.insert(row),
            Op::Delete(key) => engine.delete(*key),
            Op::Select(q) => outs.push(engine.select(q)),
        }
    }
    outs
}

fn assert_same(outs: &[QueryOutput], expected: &[QueryOutput], ctx: &str) {
    assert_eq!(outs.len(), expected.len(), "{ctx}: select count");
    for (i, (o, e)) in outs.iter().zip(expected).enumerate() {
        assert_eq!(o.rows, e.rows, "{ctx}: select {i} rows");
        assert_eq!(o.aggs, e.aggs, "{ctx}: select {i} aggs");
        for (j, (got, want)) in o.proj_values.iter().zip(&e.proj_values).enumerate() {
            let mut got = got.clone();
            let mut want = want.clone();
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "{ctx}: select {i} projection {j}");
        }
    }
}

/// The expected outputs come from the plain baseline, whose update path
/// (append + tombstones) is trivially correct.
fn expected_for(t: &Table, ops: &[Op]) -> Vec<QueryOutput> {
    replay(&mut PlainEngine::new(t.clone()), ops)
}

#[test]
fn unsharded_engines_agree_under_interleaved_updates() {
    let t = random_table(3, 311, DOMAIN.1, 61);
    let ops = workload(3, 311, 120, 62);
    let expected = expected_for(&t, &ops);
    assert_same(
        &replay(&mut SelCrackEngine::new(t.clone(), DOMAIN), &ops),
        &expected,
        "selcrack",
    );
    assert_same(
        &replay(&mut SidewaysEngine::new(t.clone(), DOMAIN), &ops),
        &expected,
        "sideways",
    );
    assert_same(
        &replay(&mut PresortedEngine::new(t.clone(), &[0, 1, 2]), &ops),
        &expected,
        "presorted",
    );
    assert_same(
        &replay(&mut PartialEngine::new(t.clone(), DOMAIN, None), &ops),
        &expected,
        "partial",
    );
}

/// §3.5 under §4 storage pressure: the partial engine must stay
/// bit-identical to the baseline while evicting chunks, and its usage
/// must respect the budget exactly after every query.
#[test]
fn partial_with_budget_agrees_and_respects_budget_under_updates() {
    let t = random_table(3, 311, DOMAIN.1, 61);
    let ops = workload(3, 311, 120, 62);
    let expected = expected_for(&t, &ops);
    for budget in [150, 400] {
        let mut e = PartialEngine::new(t.clone(), DOMAIN, Some(budget));
        let mut outs = Vec::new();
        for op in &ops {
            match op {
                Op::Insert(row) => e.insert(row),
                Op::Delete(key) => e.delete(*key),
                Op::Select(q) => {
                    outs.push(e.select(q));
                    assert!(
                        e.store().usage() <= budget,
                        "usage {} exceeds budget {budget} post-query",
                        e.store().usage()
                    );
                }
            }
        }
        assert_same(&outs, &expected, &format!("partial budget={budget}"));
    }
}

#[test]
fn sharded_plain_agrees_under_interleaved_updates() {
    let t = random_table(3, 307, DOMAIN.1, 63);
    let ops = workload(3, 307, 120, 64);
    let expected = expected_for(&t, &ops);
    for shards in SHARD_COUNTS {
        let mut e = ShardedEngine::build(t.clone(), shards, |_, p| PlainEngine::new(p));
        assert_same(
            &replay(&mut e, &ops),
            &expected,
            &format!("plain x{shards}"),
        );
    }
}

#[test]
fn sharded_selcrack_agrees_under_interleaved_updates() {
    let t = random_table(3, 305, DOMAIN.1, 65);
    let ops = workload(3, 305, 120, 66);
    let expected = expected_for(&t, &ops);
    for shards in SHARD_COUNTS {
        let mut e = ShardedEngine::build(t.clone(), shards, |_, p| SelCrackEngine::new(p, DOMAIN));
        assert_same(
            &replay(&mut e, &ops),
            &expected,
            &format!("selcrack x{shards}"),
        );
    }
}

#[test]
fn sharded_sideways_agrees_under_interleaved_updates() {
    let t = random_table(3, 303, DOMAIN.1, 67);
    let ops = workload(3, 303, 120, 68);
    let expected = expected_for(&t, &ops);
    for shards in SHARD_COUNTS {
        let mut e = ShardedEngine::build(t.clone(), shards, |_, p| SidewaysEngine::new(p, DOMAIN));
        assert_same(
            &replay(&mut e, &ops),
            &expected,
            &format!("sideways x{shards}"),
        );
    }
}

#[test]
fn sharded_partial_agrees_under_interleaved_updates() {
    let t = random_table(3, 309, DOMAIN.1, 69);
    let ops = workload(3, 309, 120, 70);
    let expected = expected_for(&t, &ops);
    for shards in SHARD_COUNTS {
        for budget in [None, Some(200)] {
            let mut e = ShardedEngine::build(t.clone(), shards, |_, p| {
                PartialEngine::new(p, DOMAIN, budget)
            });
            assert_same(
                &replay(&mut e, &ops),
                &expected,
                &format!("partial x{shards} budget={budget:?}"),
            );
        }
    }
}

#[test]
fn sharded_presorted_agrees_under_interleaved_updates() {
    let t = random_table(3, 301, DOMAIN.1, 73);
    let ops = workload(3, 301, 120, 74);
    let expected = expected_for(&t, &ops);
    for shards in SHARD_COUNTS {
        let mut e = ShardedEngine::build(t.clone(), shards, |_, p| {
            PresortedEngine::new(p, &[0, 1, 2])
        });
        assert_same(
            &replay(&mut e, &ops),
            &expected,
            &format!("presorted x{shards}"),
        );
    }
}

/// The exp6 shape: a burst of updates between query batches (the paper
/// interleaves X updates per 10 queries), at a heavier volume than the
/// mixed stream above — deletes target original and inserted rows alike.
#[test]
fn update_bursts_between_query_batches() {
    let cols = 3;
    let n0 = 400;
    let t = random_table(cols, n0, DOMAIN.1, 71);
    let mut rng = StdRng::seed_from_u64(72);
    let mut ops: Vec<Op> = Vec::new();
    let mut live: Vec<RowId> = (0..n0 as RowId).collect();
    let mut next_key = n0 as RowId;
    for batch in 0..6 {
        // Burst of 20 inserts + 20 deletes.
        for _ in 0..20 {
            let row: Vec<Val> = (0..cols).map(|_| rng.gen_range(1..=DOMAIN.1)).collect();
            ops.push(Op::Insert(row));
            live.push(next_key);
            next_key += 1;
        }
        for _ in 0..20 {
            let victim = live.swap_remove(rng.gen_range(0..live.len()));
            ops.push(Op::Delete(victim));
        }
        // Batch of 10 queries.
        for q in 0..10 {
            let lo = rng.gen_range(0..DOMAIN.1 / 2);
            ops.push(Op::Select(SelectQuery::aggregate(
                vec![(q % cols, RangePred::open(lo, lo + 100 + 50 * batch))],
                vec![
                    (0, AggFunc::Count),
                    (1, AggFunc::Sum),
                    (2, AggFunc::Max),
                    (2, AggFunc::Avg),
                ],
            )));
        }
    }
    let expected = expected_for(&t, &ops);
    assert_same(
        &replay(&mut SelCrackEngine::new(t.clone(), DOMAIN), &ops),
        &expected,
        "selcrack bursts",
    );
    assert_same(
        &replay(&mut SidewaysEngine::new(t.clone(), DOMAIN), &ops),
        &expected,
        "sideways bursts",
    );
    assert_same(
        &replay(&mut PresortedEngine::new(t.clone(), &[0, 1, 2]), &ops),
        &expected,
        "presorted bursts",
    );
    assert_same(
        &replay(&mut PartialEngine::new(t.clone(), DOMAIN, None), &ops),
        &expected,
        "partial bursts",
    );
    assert_same(
        &replay(&mut PartialEngine::new(t.clone(), DOMAIN, Some(250)), &ops),
        &expected,
        "partial bursts (budget)",
    );
    for shards in SHARD_COUNTS {
        let mut e = ShardedEngine::build(t.clone(), shards, |_, p| SidewaysEngine::new(p, DOMAIN));
        assert_same(
            &replay(&mut e, &ops),
            &expected,
            &format!("sideways bursts x{shards}"),
        );
        let mut e = ShardedEngine::build(t.clone(), shards, |_, p| {
            PartialEngine::new(p, DOMAIN, None)
        });
        assert_same(
            &replay(&mut e, &ops),
            &expected,
            &format!("partial bursts x{shards}"),
        );
    }
}
