//! Additional engine-level integration tests: three-way disjunctions,
//! mixed conjunctive/disjunctive sequences, storage-bounded sideways
//! engines, and TPC-H access-layer edge cases.

use crackdb_columnstore::column::{Column, Table};
use crackdb_columnstore::types::{AggFunc, RangePred, Val};
use crackdb_engine::{Engine, PlainEngine, SelectQuery, SidewaysEngine};

struct Lcg(u64);
impl Lcg {
    fn next(&mut self, m: i64) -> i64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((self.0 >> 33) as i64).rem_euclid(m)
    }
}

fn table(cols: usize, n: usize, domain: Val, seed: u64) -> Table {
    let mut rng = Lcg(seed);
    let mut t = Table::new();
    for c in 0..cols {
        t.add_column(
            format!("a{c}"),
            Column::new((0..n).map(|_| rng.next(domain)).collect()),
        );
    }
    t
}

#[test]
fn three_way_disjunction_matches_plain() {
    let t = table(4, 400, 500, 1);
    let mut plain = PlainEngine::new(t.clone());
    let mut sideways = SidewaysEngine::new(t.clone(), (0, 500));
    let mut rng = Lcg(2);
    for i in 0..25 {
        let mk = |rng: &mut Lcg| {
            let lo = rng.next(450);
            RangePred::open(lo, lo + 50)
        };
        let q = SelectQuery {
            preds: vec![(0, mk(&mut rng)), (1, mk(&mut rng)), (2, mk(&mut rng))],
            disjunctive: true,
            aggs: vec![(3, AggFunc::Count), (3, AggFunc::Sum), (3, AggFunc::Min)],
            projs: vec![],
        };
        let a = plain.select(&q);
        let b = sideways.select(&q);
        assert_eq!(a.rows, b.rows, "disjunction {i}");
        assert_eq!(a.aggs, b.aggs, "disjunction {i}");
    }
}

#[test]
fn interleaved_conjunctions_and_disjunctions() {
    // Conjunctive and disjunctive plans share the same maps; interleaving
    // them must keep alignment intact.
    let t = table(3, 300, 300, 3);
    let mut plain = PlainEngine::new(t.clone());
    let mut sideways = SidewaysEngine::new(t.clone(), (0, 300));
    let mut rng = Lcg(4);
    for i in 0..40 {
        let lo1 = rng.next(250);
        let lo2 = rng.next(250);
        let q = SelectQuery {
            preds: vec![
                (0, RangePred::open(lo1, lo1 + 60)),
                (1, RangePred::open(lo2, lo2 + 60)),
            ],
            disjunctive: i % 2 == 0,
            aggs: vec![(2, AggFunc::Count), (2, AggFunc::Max)],
            projs: vec![],
        };
        assert_eq!(plain.select(&q).aggs, sideways.select(&q).aggs, "query {i}");
    }
}

#[test]
fn budgeted_sideways_engine_still_correct() {
    // Budget forces whole-map drops between queries over many attributes.
    let n = 500;
    let t = table(8, n, 1000, 5);
    let mut plain = PlainEngine::new(t.clone());
    let mut sideways = SidewaysEngine::new(t.clone(), (0, 1000));
    sideways.set_budget(Some(2 * n)); // room for two maps
    let mut rng = Lcg(6);
    for i in 0..50 {
        let lo = rng.next(900);
        let proj = 1 + (i % 7);
        let q = SelectQuery::aggregate(
            vec![(0, RangePred::open(lo, lo + 100))],
            vec![(proj, AggFunc::Max), (proj, AggFunc::Count)],
        );
        assert_eq!(plain.select(&q).aggs, sideways.select(&q).aggs, "query {i}");
        assert!(
            sideways.aux_tuples() <= 3 * n,
            "budget leak: {} tuples",
            sideways.aux_tuples()
        );
    }
}

#[test]
fn one_sided_and_point_predicates_across_engines() {
    let t = table(2, 200, 100, 7);
    let mut plain = PlainEngine::new(t.clone());
    let mut sideways = SidewaysEngine::new(t.clone(), (0, 100));
    use crackdb_columnstore::types::Bound;
    let preds = [
        RangePred::less(Bound::exclusive(30)),
        RangePred::less(Bound::inclusive(30)),
        RangePred::greater(Bound::exclusive(70)),
        RangePred::greater(Bound::inclusive(70)),
        RangePred::point(42),
        RangePred::all(),
        RangePred::closed(10, 10),
        RangePred::open(99, 100),
    ];
    for (i, pred) in preds.iter().enumerate() {
        let q = SelectQuery::aggregate(
            vec![(0, *pred)],
            vec![(1, AggFunc::Count), (1, AggFunc::Sum)],
        );
        assert_eq!(plain.select(&q).aggs, sideways.select(&q).aggs, "pred {i}");
    }
}

#[test]
fn repeated_identical_queries_are_stable() {
    let t = table(3, 250, 250, 8);
    let mut sideways = SidewaysEngine::new(t, (0, 250));
    let q = SelectQuery::aggregate(
        vec![(0, RangePred::open(50, 120)), (1, RangePred::open(30, 200))],
        vec![(2, AggFunc::Sum)],
    );
    let first = sideways.select(&q);
    for _ in 0..10 {
        let again = sideways.select(&q);
        assert_eq!(again.rows, first.rows);
        assert_eq!(again.aggs, first.aggs);
    }
    // No new cracks after the first evaluation.
    let cracks = sideways.store().set(0).map(|s| s.stats.query_cracks);
    sideways.select(&q);
    assert_eq!(
        sideways.store().set(0).map(|s| s.stats.query_cracks),
        cracks
    );
}
