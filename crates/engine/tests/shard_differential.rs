//! Sharded-vs-unsharded differential testing: for every physical
//! design, `ShardedEngine<E>` at shard counts 1, 2 and 7 must return
//! results identical (up to projection row order, which is unordered by
//! contract) to the unsharded engine over seeded-PRNG workloads covering
//! conjunctions, disjunctions, projections and aggregates.

use crackdb_columnstore::column::Table;
use crackdb_columnstore::types::{AggFunc, RangePred, Val};
use crackdb_engine::{
    BatchRunner, Engine, JoinQuery, JoinSide, PartialEngine, PlainEngine, PresortedEngine,
    SelCrackEngine, SelectQuery, ShardedEngine, SidewaysEngine,
};
use crackdb_rng::{rngs::StdRng, Rng, SeedableRng};
use crackdb_workloads::{random_table, random_table_shards};

const DOMAIN: (Val, Val) = (0, 1000);
const SHARD_COUNTS: [usize; 3] = [1, 2, 7];

fn table(cols: usize, n: usize, seed: u64) -> Table {
    random_table(cols, n, DOMAIN.1, seed)
}

/// A random aggregate query: 1–2 conjunctive open-range predicates over
/// distinct attributes, the full function set (count/max/min/sum/avg)
/// over a random attribute.
fn random_select(rng: &mut StdRng, cols: usize) -> SelectQuery {
    let npreds = rng.gen_range(1usize..3);
    let mut preds: Vec<(usize, RangePred)> = Vec::new();
    for _ in 0..npreds {
        let attr = rng.gen_range(0..cols);
        if preds.iter().any(|&(a, _)| a == attr) {
            continue;
        }
        let lo = rng.gen_range(0..DOMAIN.1 - 1);
        let hi = lo + 1 + rng.gen_range(1..=DOMAIN.1 - lo);
        preds.push((attr, RangePred::open(lo, hi)));
    }
    let agg_attr = rng.gen_range(0..cols);
    SelectQuery::aggregate(
        preds,
        vec![
            (agg_attr, AggFunc::Count),
            (agg_attr, AggFunc::Max),
            (agg_attr, AggFunc::Min),
            (agg_attr, AggFunc::Sum),
            (agg_attr, AggFunc::Avg),
        ],
    )
}

/// Assert `out` equals `expected` up to projection row order.
fn assert_same(
    out: &crackdb_engine::QueryOutput,
    expected: &crackdb_engine::QueryOutput,
    ctx: &str,
) {
    assert_eq!(out.rows, expected.rows, "{ctx}: row count");
    assert_eq!(out.aggs, expected.aggs, "{ctx}: aggregates");
    assert_eq!(
        out.proj_values.len(),
        expected.proj_values.len(),
        "{ctx}: projection arity"
    );
    for (j, (got, want)) in out
        .proj_values
        .iter()
        .zip(&expected.proj_values)
        .enumerate()
    {
        let mut got = got.clone();
        let mut want = want.clone();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want, "{ctx}: projection {j} (sorted)");
    }
}

/// Drive `queries` through an unsharded engine and its sharded variants
/// at every shard count; results must agree query by query.
fn check_select_differential<E: Engine + Send>(
    name: &str,
    queries: &[SelectQuery],
    mut unsharded: E,
    mut make_sharded: impl FnMut(usize) -> ShardedEngine<E>,
) {
    let expected: Vec<_> = queries.iter().map(|q| unsharded.select(q)).collect();
    for shards in SHARD_COUNTS {
        let mut sharded = make_sharded(shards);
        for (i, (q, e)) in queries.iter().zip(&expected).enumerate() {
            let out = sharded.select(q);
            assert_same(&out, e, &format!("{name}, {shards} shards, query {i}"));
        }
    }
}

#[test]
fn plain_sharded_agrees_on_mixed_workload() {
    let t = table(4, 503, 11);
    let mut rng = StdRng::seed_from_u64(1);
    let mut queries: Vec<SelectQuery> = (0..30).map(|_| random_select(&mut rng, 4)).collect();
    // Mix in projections.
    for (i, q) in queries.iter_mut().enumerate() {
        if i % 3 == 0 {
            q.projs = vec![i % 4, (i + 1) % 4];
        }
    }
    check_select_differential("plain", &queries, PlainEngine::new(t.clone()), |s| {
        ShardedEngine::build(t.clone(), s, |_, part| PlainEngine::new(part))
    });
}

#[test]
fn presorted_sharded_agrees_on_mixed_workload() {
    let t = table(4, 490, 13);
    let mut rng = StdRng::seed_from_u64(2);
    let mut queries: Vec<SelectQuery> = (0..30).map(|_| random_select(&mut rng, 4)).collect();
    for (i, q) in queries.iter_mut().enumerate() {
        if i % 4 == 1 {
            q.projs = vec![i % 4];
        }
    }
    check_select_differential(
        "presorted",
        &queries,
        PresortedEngine::new(t.clone(), &[0, 1, 2, 3]),
        |s| {
            ShardedEngine::build(t.clone(), s, |_, part| {
                PresortedEngine::new(part, &[0, 1, 2, 3])
            })
        },
    );
}

#[test]
fn selcrack_sharded_agrees_on_mixed_workload() {
    let t = table(4, 511, 17);
    let mut rng = StdRng::seed_from_u64(3);
    let mut queries: Vec<SelectQuery> = (0..30).map(|_| random_select(&mut rng, 4)).collect();
    for (i, q) in queries.iter_mut().enumerate() {
        if i % 5 == 2 {
            q.projs = vec![(i + 2) % 4];
        }
    }
    check_select_differential(
        "selcrack",
        &queries,
        SelCrackEngine::new(t.clone(), DOMAIN),
        |s| ShardedEngine::build(t.clone(), s, |_, part| SelCrackEngine::new(part, DOMAIN)),
    );
}

#[test]
fn sideways_sharded_agrees_on_mixed_workload() {
    let t = table(4, 497, 19);
    let mut rng = StdRng::seed_from_u64(4);
    let mut queries: Vec<SelectQuery> = (0..30).map(|_| random_select(&mut rng, 4)).collect();
    for (i, q) in queries.iter_mut().enumerate() {
        if i % 3 == 1 {
            q.projs = vec![i % 4, (i + 3) % 4];
        }
    }
    check_select_differential(
        "sideways",
        &queries,
        SidewaysEngine::new(t.clone(), DOMAIN),
        |s| ShardedEngine::build(t.clone(), s, |_, part| SidewaysEngine::new(part, DOMAIN)),
    );
}

#[test]
fn partial_sharded_agrees_on_mixed_workload() {
    let t = table(4, 509, 23);
    let mut rng = StdRng::seed_from_u64(5);
    let mut queries: Vec<SelectQuery> = (0..30).map(|_| random_select(&mut rng, 4)).collect();
    for (i, q) in queries.iter_mut().enumerate() {
        if i % 4 == 3 {
            q.projs = vec![(i + 1) % 4];
        }
    }
    check_select_differential(
        "partial",
        &queries,
        PartialEngine::new(t.clone(), DOMAIN, None),
        |s| {
            ShardedEngine::build(t.clone(), s, |_, part| {
                PartialEngine::new(part, DOMAIN, None)
            })
        },
    );
}

/// Partial sideways cracking under a storage budget must also shard
/// cleanly (each shard gets its own budgeted chunk store).
#[test]
fn partial_with_budget_sharded_agrees() {
    let t = table(3, 450, 29);
    let mut rng = StdRng::seed_from_u64(6);
    let queries: Vec<SelectQuery> = (0..25).map(|_| random_select(&mut rng, 3)).collect();
    check_select_differential(
        "partial+budget",
        &queries,
        PartialEngine::new(t.clone(), DOMAIN, Some(300)),
        |s| {
            ShardedEngine::build(t.clone(), s, |_, part| {
                PartialEngine::new(part, DOMAIN, Some(300))
            })
        },
    );
}

/// Disjunctions through every engine that implements them.
#[test]
fn disjunctive_sharded_agreement() {
    let t = table(3, 480, 31);
    let mut rng = StdRng::seed_from_u64(7);
    let queries: Vec<SelectQuery> = (0..20)
        .map(|_| {
            let lo1 = rng.gen_range(0..850);
            let lo2 = rng.gen_range(0..850);
            SelectQuery {
                preds: vec![
                    (0, RangePred::open(lo1, lo1 + 150)),
                    (1, RangePred::open(lo2, lo2 + 150)),
                ],
                disjunctive: true,
                aggs: vec![
                    (2, AggFunc::Count),
                    (2, AggFunc::Sum),
                    (2, AggFunc::Min),
                    (2, AggFunc::Avg),
                ],
                projs: vec![2],
            }
        })
        .collect();
    check_select_differential("plain/disj", &queries, PlainEngine::new(t.clone()), |s| {
        ShardedEngine::build(t.clone(), s, |_, part| PlainEngine::new(part))
    });
    check_select_differential(
        "selcrack/disj",
        &queries,
        SelCrackEngine::new(t.clone(), DOMAIN),
        |s| ShardedEngine::build(t.clone(), s, |_, part| SelCrackEngine::new(part, DOMAIN)),
    );
    check_select_differential(
        "sideways/disj",
        &queries,
        SidewaysEngine::new(t.clone(), DOMAIN),
        |s| ShardedEngine::build(t.clone(), s, |_, part| SidewaysEngine::new(part, DOMAIN)),
    );
    check_select_differential(
        "presorted/disj",
        &queries,
        PresortedEngine::new(t.clone(), &[0, 1, 2]),
        |s| {
            ShardedEngine::build(t.clone(), s, |_, part| {
                PresortedEngine::new(part, &[0, 1, 2])
            })
        },
    );
    check_select_differential(
        "partial/disj",
        &queries,
        PartialEngine::new(t.clone(), DOMAIN, None),
        |s| {
            ShardedEngine::build(t.clone(), s, |_, part| {
                PartialEngine::new(part, DOMAIN, None)
            })
        },
    );
    check_select_differential(
        "partial/disj+budget",
        &queries,
        PartialEngine::new(t.clone(), DOMAIN, Some(350)),
        |s| {
            ShardedEngine::build(t.clone(), s, |_, part| {
                PartialEngine::new(part, DOMAIN, Some(350))
            })
        },
    );
}

/// Join queries: the primary table is sharded, the second replicated, so
/// per-shard joins must union to exactly the unsharded join.
#[test]
fn joins_sharded_agree() {
    let left = table(4, 240, 37);
    let right = table(4, 160, 41);
    let mut rng = StdRng::seed_from_u64(8);
    let queries: Vec<JoinQuery> = (0..10)
        .map(|_| {
            let llo = rng.gen_range(0..700);
            let rlo = rng.gen_range(0..700);
            JoinQuery {
                left: JoinSide {
                    preds: vec![(1, RangePred::open(llo, llo + 300))],
                    join_attr: 3,
                    aggs: vec![(0, AggFunc::Max), (0, AggFunc::Count), (0, AggFunc::Avg)],
                },
                right: JoinSide {
                    preds: vec![(1, RangePred::open(rlo, rlo + 300))],
                    join_attr: 3,
                    aggs: vec![(0, AggFunc::Sum), (0, AggFunc::Min)],
                },
            }
        })
        .collect();

    let mut plain = PlainEngine::with_second(left.clone(), right.clone());
    let mut selcrack = SelCrackEngine::with_second(left.clone(), right.clone(), DOMAIN);
    let mut sideways = SidewaysEngine::with_second(left.clone(), right.clone(), DOMAIN);
    let mut presorted = PresortedEngine::with_second(left.clone(), &[1], right.clone(), &[1]);
    let mut partial = PartialEngine::with_second(left.clone(), right.clone(), DOMAIN, None);
    let expected: Vec<_> = queries.iter().map(|q| plain.join(q)).collect();
    // Unsharded engines agree with each other first.
    for (i, (q, e)) in queries.iter().zip(&expected).enumerate() {
        for (name, out) in [
            ("selcrack", selcrack.join(q)),
            ("sideways", sideways.join(q)),
            ("presorted", presorted.join(q)),
            ("partial", partial.join(q)),
        ] {
            assert_eq!(out.rows, e.rows, "{name} join {i} rows");
            assert_eq!(out.aggs, e.aggs, "{name} join {i} aggs");
        }
    }
    for shards in SHARD_COUNTS {
        let mut sp = ShardedEngine::build_with_second(
            left.clone(),
            right.clone(),
            shards,
            |_, part, second| PlainEngine::with_second(part, second),
        );
        let mut ssc = ShardedEngine::build_with_second(
            left.clone(),
            right.clone(),
            shards,
            |_, part, second| SelCrackEngine::with_second(part, second, DOMAIN),
        );
        let mut ssw = ShardedEngine::build_with_second(
            left.clone(),
            right.clone(),
            shards,
            |_, part, second| SidewaysEngine::with_second(part, second, DOMAIN),
        );
        let mut spt = ShardedEngine::build_with_second(
            left.clone(),
            right.clone(),
            shards,
            |_, part, second| PartialEngine::with_second(part, second, DOMAIN, None),
        );
        let mut sptb = ShardedEngine::build_with_second(
            left.clone(),
            right.clone(),
            shards,
            |_, part, second| PartialEngine::with_second(part, second, DOMAIN, Some(150)),
        );
        for (i, (q, e)) in queries.iter().zip(&expected).enumerate() {
            for (name, out) in [
                ("plain", sp.join(q)),
                ("selcrack", ssc.join(q)),
                ("sideways", ssw.join(q)),
                ("partial", spt.join(q)),
                ("partial+budget", sptb.join(q)),
            ] {
                assert_eq!(out.rows, e.rows, "{name} sharded x{shards} join {i} rows");
                assert_eq!(out.aggs, e.aggs, "{name} sharded x{shards} join {i} aggs");
            }
        }
    }
}

/// The shard-aware workload builder composes with the pre-partitioned
/// constructor: `random_table_shards` + `ShardedEngine::from_shards`
/// must be answer- and key-stream-identical to partitioning the
/// unsharded table through `ShardedEngine::build` — including update
/// routing through the derived cuts.
#[test]
fn prepartitioned_workload_tables_match_build() {
    let mut rng = StdRng::seed_from_u64(12);
    let whole = random_table(3, 317, DOMAIN.1, 59);
    for shards in SHARD_COUNTS {
        let parts = random_table_shards(3, 317, DOMAIN.1, 59, shards);
        let mut from_parts =
            ShardedEngine::from_shards(parts, |_, p| SidewaysEngine::new(p, DOMAIN));
        let mut built =
            ShardedEngine::build(whole.clone(), shards, |_, p| SidewaysEngine::new(p, DOMAIN));
        assert_eq!(from_parts.cuts(), built.cuts(), "derived cuts must agree");
        for step in 0..20 {
            if step % 4 == 3 {
                let row = [rng.gen_range(1..=DOMAIN.1), 77, 88];
                from_parts.insert(&row);
                built.insert(&row);
                let victim = rng.gen_range(0..300) as u32;
                from_parts.delete(victim);
                built.delete(victim);
            }
            let q = random_select(&mut rng, 3);
            let a = from_parts.select(&q);
            let b = built.select(&q);
            assert_eq!(a.rows, b.rows, "x{shards} step {step} rows");
            assert_eq!(a.aggs, b.aggs, "x{shards} step {step} aggs");
        }
    }
}

/// More shards than rows: the router must tolerate empty shards for
/// every engine.
#[test]
fn more_shards_than_rows() {
    let t = table(3, 5, 43);
    let q = SelectQuery::aggregate(
        vec![(0, RangePred::all())],
        vec![
            (1, AggFunc::Count),
            (1, AggFunc::Sum),
            (1, AggFunc::Min),
            (1, AggFunc::Max),
        ],
    );
    let expected = PlainEngine::new(t.clone()).select(&q);
    let mut outs = vec![
        ShardedEngine::build(t.clone(), 7, |_, p| PlainEngine::new(p)).select(&q),
        ShardedEngine::build(t.clone(), 7, |_, p| SelCrackEngine::new(p, DOMAIN)).select(&q),
        ShardedEngine::build(t.clone(), 7, |_, p| SidewaysEngine::new(p, DOMAIN)).select(&q),
        ShardedEngine::build(t.clone(), 7, |_, p| PartialEngine::new(p, DOMAIN, None)).select(&q),
    ];
    for out in outs.drain(..) {
        assert_eq!(out.rows, expected.rows);
        assert_eq!(out.aggs, expected.aggs);
    }
}

/// The sharded router composes with the batch-execution session layer:
/// `BatchRunner<ShardedEngine<E>>` must match serial unsharded answers.
#[test]
fn batch_runner_over_sharded_engines_matches_serial() {
    let t = table(3, 20_000, 47);
    let mut rng = StdRng::seed_from_u64(9);
    let queries: Vec<SelectQuery> = (0..8).map(|_| random_select(&mut rng, 3)).collect();

    let mut serial = PlainEngine::new(t.clone());
    let expected: Vec<_> = queries.iter().map(|q| serial.select(q)).collect();

    for shards in [2, 4] {
        let sharded =
            ShardedEngine::build(t.clone(), shards, |_, p| SidewaysEngine::new(p, DOMAIN));
        let mut runner = BatchRunner::new(sharded, 2);
        let outs = runner.run(&queries);
        for (i, (o, e)) in outs.iter().zip(&expected).enumerate() {
            assert_eq!(o.rows, e.rows, "batch+shard x{shards} query {i} rows");
            assert_eq!(o.aggs, e.aggs, "batch+shard x{shards} query {i} aggs");
        }
    }
}

/// Shard counts must not depend on fan-out threading: forcing the
/// sequential fan-out path must give the same answers as the threaded
/// one (CI runs the whole suite at CRACKDB_THREADS=1 and =4, which
/// exercises both defaults).
#[test]
fn fan_out_threading_does_not_change_answers() {
    let t = table(3, 400, 53);
    let mut rng = StdRng::seed_from_u64(10);
    let queries: Vec<SelectQuery> = (0..15).map(|_| random_select(&mut rng, 3)).collect();
    let mut threaded = ShardedEngine::build(t.clone(), 4, |_, p| SelCrackEngine::new(p, DOMAIN));
    threaded.set_threads(4);
    let mut sequential = ShardedEngine::build(t.clone(), 4, |_, p| SelCrackEngine::new(p, DOMAIN));
    sequential.set_threads(1);
    for (i, q) in queries.iter().enumerate() {
        let a = threaded.select(q);
        let b = sequential.select(q);
        assert_eq!(a.rows, b.rows, "query {i} rows");
        assert_eq!(a.aggs, b.aggs, "query {i} aggs");
    }
}
