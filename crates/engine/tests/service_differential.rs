//! Concurrent differential testing of the query service: N client
//! threads fire interleaved insert/delete/select/disjunction streams
//! through `Service<E>`, and the answers must be *identical to a serial
//! replay* of the same stream on an unsharded engine.
//!
//! The service assigns every request a global sequence number (the
//! position in its total execution order) and returns it with each
//! reply. The test therefore does not need to constrain concurrency at
//! all: each client logs `(seq, op, answer)` for every call it made,
//! the logs are merged and sorted by sequence number — which must form
//! a gapless total order — and the merged stream is replayed serially,
//! in commit order, on a fresh unsharded engine. Every select's rows
//! and aggregates must match bit for bit (projections up to row order,
//! which is unordered by contract), and every insert's service-assigned
//! global key must equal the key the serial engine hands out. That is
//! the linearizability contract of the service, checked end to end for
//! all five engines, shard counts 1/2/7, and the standard + stochastic
//! crack policies.
//!
//! Clients only delete rows they own (their own service-assigned insert
//! keys, plus a disjoint slice of the original rows), so every delete
//! in the interleaved stream names a live row no matter how the
//! schedules interleave.

use crackdb_columnstore::types::{AggFunc, RangePred, RowId, Val};
use crackdb_engine::{
    Client, CrackPolicy, Engine, JoinQuery, JoinSide, PartialEngine, PlainEngine, PresortedEngine,
    QueryOutput, SelCrackEngine, SelectQuery, Service, ServiceConfig, ShardedEngine,
    SidewaysEngine,
};
use crackdb_rng::{rngs::StdRng, Rng, SeedableRng};
use crackdb_workloads::random_table;

const DOMAIN: (Val, Val) = (0, 1000);
const SHARD_COUNTS: [usize; 3] = [1, 2, 7];
/// The acceptance bar: eight concurrent closed-loop clients.
const CLIENTS: usize = 8;
const OPS_PER_CLIENT: usize = 28;

/// One committed operation as a client observed it: what was asked and
/// what the service answered, tagged with the global sequence number.
enum LoggedOp {
    Insert { row: Vec<Val>, key: RowId },
    Delete { key: RowId },
    Select { q: SelectQuery, out: QueryOutput },
}

/// A random select: conjunctive aggregates, disjunctions and
/// projections in a deterministic mix.
fn random_select(rng: &mut StdRng, cols: usize, i: usize) -> SelectQuery {
    let attr = rng.gen_range(0..cols);
    let lo = rng.gen_range(0..DOMAIN.1 - 2);
    let hi = lo + 1 + rng.gen_range(1..=DOMAIN.1 - lo);
    let agg = rng.gen_range(0..cols);
    let mut q = SelectQuery::aggregate(
        vec![(attr, RangePred::open(lo, hi))],
        vec![
            (agg, AggFunc::Count),
            (agg, AggFunc::Sum),
            (agg, AggFunc::Min),
            (agg, AggFunc::Max),
            (agg, AggFunc::Avg),
        ],
    );
    if i.is_multiple_of(3) {
        // Disjunction over a second attribute.
        let attr2 = (attr + 1) % cols;
        let lo2 = rng.gen_range(0..DOMAIN.1 - 2);
        q.preds.push((attr2, RangePred::open(lo2, lo2 + 150)));
        q.disjunctive = true;
    }
    if i % 4 == 1 {
        q.projs = vec![rng.gen_range(0..cols)];
    }
    q
}

/// One closed-loop client session: interleaved inserts, deletes of rows
/// this session owns, and selects. Returns the session's log.
fn client_session(
    client: &Client,
    c: usize,
    base_rows: usize,
    cols: usize,
    seed: u64,
) -> Vec<(u64, LoggedOp)> {
    let mut rng = StdRng::seed_from_u64(seed ^ (0xC11E * c as u64 + 1));
    let mut log = Vec::with_capacity(OPS_PER_CLIENT);
    // Rows this session may delete: its own inserts (keys the service
    // assigned and returned) and its disjoint slice of the base rows.
    let mut own_keys: Vec<RowId> = Vec::new();
    let mut base_cursor = c;
    for i in 0..OPS_PER_CLIENT {
        match i % 4 {
            0 => {
                let row: Vec<Val> = (0..cols).map(|_| rng.gen_range(1..=DOMAIN.1)).collect();
                let w = client.insert(&row).expect("insert admitted");
                let key = w.key.expect("inserts report their key");
                own_keys.push(key);
                log.push((w.seq, LoggedOp::Insert { row, key }));
            }
            1 => {
                // Delete an owned row: a previous own insert if any,
                // else the next base row of this session's slice.
                let key = if !own_keys.is_empty() && rng.gen_bool(0.5) {
                    let at = rng.gen_range(0..own_keys.len());
                    own_keys.swap_remove(at)
                } else if base_cursor < base_rows {
                    let key = base_cursor as RowId;
                    base_cursor += CLIENTS;
                    key
                } else {
                    continue;
                };
                let w = client.delete(key).expect("delete admitted");
                log.push((w.seq, LoggedOp::Delete { key }));
            }
            _ => {
                let q = random_select(&mut rng, cols, i);
                let r = client.select(&q).expect("select admitted");
                log.push((r.seq, LoggedOp::Select { q, out: r.output }));
            }
        }
    }
    log
}

/// Sorted-compare two projection column sets (row order is unordered by
/// contract; the service concatenates in shard order).
fn assert_projs_match(got: &[Vec<Val>], want: &[Vec<Val>], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: projection arity");
    for (j, (g, w)) in got.iter().zip(want).enumerate() {
        let mut g = g.clone();
        let mut w = w.clone();
        g.sort_unstable();
        w.sort_unstable();
        assert_eq!(g, w, "{ctx}: projection {j} (sorted)");
    }
}

/// Drive `CLIENTS` concurrent sessions through a service over
/// `make_sharded(shards)` for every shard count, then replay each
/// committed order serially on `make_serial()` and compare bit for bit.
fn check_service<E: Engine + Send + 'static>(
    name: &str,
    base_rows: usize,
    cols: usize,
    seed: u64,
    make_sharded: &dyn Fn(usize) -> ShardedEngine<E>,
    make_serial: &dyn Fn() -> E,
) {
    for shards in SHARD_COUNTS {
        let svc = Service::start(make_sharded(shards)).expect("service starts");
        let mut merged: Vec<(u64, LoggedOp)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..CLIENTS)
                .map(|c| {
                    let client = svc.client();
                    s.spawn(move || client_session(&client, c, base_rows, cols, seed))
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("client session completes"))
                .collect()
        });
        svc.shutdown();

        // The committed sequence numbers form a gapless total order.
        merged.sort_by_key(|(seq, _)| *seq);
        for (i, (seq, _)) in merged.iter().enumerate() {
            assert_eq!(
                *seq, i as u64,
                "{name}, {shards} shards: sequence numbers are a gapless total order"
            );
        }

        // Serial replay in commit order on an unsharded engine.
        let mut serial = make_serial();
        let mut inserts = 0usize;
        for (seq, op) in &merged {
            let ctx = format!("{name}, {shards} shards, seq {seq}");
            match op {
                LoggedOp::Insert { row, key } => {
                    assert_eq!(
                        *key as usize,
                        base_rows + inserts,
                        "{ctx}: the service-assigned key matches the serial key space"
                    );
                    inserts += 1;
                    serial.insert(row);
                }
                LoggedOp::Delete { key } => serial.delete(*key),
                LoggedOp::Select { q, out } => {
                    let want = serial.select(q);
                    assert_eq!(out.rows, want.rows, "{ctx}: rows");
                    assert_eq!(out.aggs, want.aggs, "{ctx}: aggregates");
                    assert_projs_match(&out.proj_values, &want.proj_values, &ctx);
                }
            }
        }
    }
}

/// The standard + stochastic policy pair every adaptive engine runs
/// under (plain and presorted never crack, so policies don't apply).
fn policies() -> [CrackPolicy; 2] {
    [CrackPolicy::Standard, CrackPolicy::stochastic()]
}

#[test]
fn concurrent_plain_matches_serial_replay() {
    let t = random_table(3, 307, DOMAIN.1, 201);
    check_service(
        "plain",
        307,
        3,
        211,
        &|s| ShardedEngine::build(t.clone(), s, |_, part| PlainEngine::new(part)),
        &|| PlainEngine::new(t.clone()),
    );
}

#[test]
fn concurrent_presorted_matches_serial_replay() {
    let t = random_table(3, 293, DOMAIN.1, 202);
    check_service(
        "presorted",
        293,
        3,
        223,
        &|s| {
            ShardedEngine::build(t.clone(), s, |_, part| {
                PresortedEngine::new(part, &[0, 1, 2])
            })
        },
        &|| PresortedEngine::new(t.clone(), &[0, 1, 2]),
    );
}

#[test]
fn concurrent_selcrack_matches_serial_replay() {
    let t = random_table(3, 311, DOMAIN.1, 203);
    for policy in policies() {
        check_service(
            &format!("selcrack/{}", policy.label()),
            311,
            3,
            227,
            &|s| {
                ShardedEngine::build(t.clone(), s, |_, part| {
                    SelCrackEngine::with_policy(part, DOMAIN, policy)
                })
            },
            &|| SelCrackEngine::with_policy(t.clone(), DOMAIN, policy),
        );
    }
}

#[test]
fn concurrent_sideways_matches_serial_replay() {
    let t = random_table(3, 299, DOMAIN.1, 204);
    for policy in policies() {
        check_service(
            &format!("sideways/{}", policy.label()),
            299,
            3,
            229,
            &|s| {
                ShardedEngine::build(t.clone(), s, |_, part| {
                    SidewaysEngine::with_policy(part, DOMAIN, policy)
                })
            },
            &|| SidewaysEngine::with_policy(t.clone(), DOMAIN, policy),
        );
    }
}

#[test]
fn concurrent_partial_matches_serial_replay() {
    let t = random_table(3, 303, DOMAIN.1, 205);
    for policy in policies() {
        check_service(
            &format!("partial/{}", policy.label()),
            303,
            3,
            233,
            &|s| {
                ShardedEngine::build(t.clone(), s, |_, part| {
                    PartialEngine::with_policy(part, DOMAIN, None, policy)
                })
            },
            &|| PartialEngine::with_policy(t.clone(), DOMAIN, None, policy),
        );
    }
}

/// The snapshot-read stress: a read-heavy concurrent mix over warmed
/// (converged) selection-cracking shards, with the lock-free fast path
/// explicitly forced on or off. The linearizability bar is identical
/// either way — gapless committed order, bit-for-bit serial replay —
/// and the snapshot-hit counter proves the fast path actually served
/// reads (or stayed completely cold when disabled).
fn check_snapshot_service(snapshot_reads: bool) {
    const ROWS: usize = 4096;
    const COLS: usize = 3;
    const STRESS_OPS: usize = 40;
    let t = random_table(COLS, ROWS, DOMAIN.1, 209);
    for shards in SHARD_COUNTS {
        let engine = ShardedEngine::build(t.clone(), shards, |_, part| {
            SelCrackEngine::with_policy(part, DOMAIN, CrackPolicy::Standard)
        });
        let config = ServiceConfig {
            snapshot_reads,
            ..ServiceConfig::default()
        };
        let svc = Service::with_config(engine, config).expect("service starts");

        // Warm-up from one client: two sweeps crack every shard's
        // catalog into converged pieces, and the second sweep's reads
        // can resolve without reorganizing anything — these are
        // sequenced operations like any other, so they join the log.
        let mut merged: Vec<(u64, LoggedOp)> = Vec::new();
        let warm = svc.client();
        for _ in 0..2 {
            for lo in (0..DOMAIN.1 - 8).step_by(8) {
                let q = SelectQuery::aggregate(
                    vec![(0, RangePred::open(lo, lo + 6))],
                    vec![(1, AggFunc::Count), (1, AggFunc::Sum)],
                );
                let r = warm.select(&q).expect("warmup select");
                merged.push((r.seq, LoggedOp::Select { q, out: r.output }));
            }
        }

        // Read-heavy concurrent phase: ~90% selects, 10% writes.
        merged.extend(std::thread::scope(|s| {
            let handles: Vec<_> = (0..CLIENTS)
                .map(|c| {
                    let client = svc.client();
                    s.spawn(move || {
                        let mut rng = StdRng::seed_from_u64(0x5AFE ^ (97 * c as u64 + 3));
                        let mut log = Vec::with_capacity(STRESS_OPS);
                        let mut own_keys: Vec<RowId> = Vec::new();
                        for i in 0..STRESS_OPS {
                            if i % 10 == 0 {
                                let row: Vec<Val> =
                                    (0..COLS).map(|_| rng.gen_range(1..=DOMAIN.1)).collect();
                                let w = client.insert(&row).expect("insert admitted");
                                own_keys.push(w.key.expect("inserts report their key"));
                                log.push((
                                    w.seq,
                                    LoggedOp::Insert {
                                        row,
                                        key: *own_keys.last().unwrap(),
                                    },
                                ));
                            } else if i % 10 == 5 && !own_keys.is_empty() {
                                let key = own_keys.swap_remove(rng.gen_range(0..own_keys.len()));
                                let w = client.delete(key).expect("delete admitted");
                                log.push((w.seq, LoggedOp::Delete { key }));
                            } else {
                                let q = random_select(&mut rng, COLS, i);
                                let r = client.select(&q).expect("select admitted");
                                log.push((r.seq, LoggedOp::Select { q, out: r.output }));
                            }
                        }
                        log
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("client session completes"))
                .collect::<Vec<_>>()
        }));

        let hits = svc.snapshot_hits();
        if snapshot_reads {
            assert!(
                hits > 0,
                "{shards} shards: converged warm reads must use the fast path"
            );
        } else {
            assert_eq!(
                hits, 0,
                "{shards} shards: disabled fast path must stay cold"
            );
        }
        svc.shutdown();

        merged.sort_by_key(|(seq, _)| *seq);
        for (i, (seq, _)) in merged.iter().enumerate() {
            assert_eq!(
                *seq, i as u64,
                "{shards} shards: committed order must be gapless even when \
                 snapshot reads commit without enqueueing work"
            );
        }
        let mut serial = SelCrackEngine::with_policy(t.clone(), DOMAIN, CrackPolicy::Standard);
        let mut inserts = 0usize;
        for (seq, op) in &merged {
            let ctx = format!("snapshot={snapshot_reads}, {shards} shards, seq {seq}");
            match op {
                LoggedOp::Insert { row, key } => {
                    assert_eq!(*key as usize, ROWS + inserts, "{ctx}: assigned key");
                    inserts += 1;
                    serial.insert(row);
                }
                LoggedOp::Delete { key } => serial.delete(*key),
                LoggedOp::Select { q, out } => {
                    let want = serial.select(q);
                    assert_eq!(out.rows, want.rows, "{ctx}: rows");
                    assert_eq!(out.aggs, want.aggs, "{ctx}: aggregates");
                    assert_projs_match(&out.proj_values, &want.proj_values, &ctx);
                }
            }
        }
    }
}

#[test]
fn snapshot_reads_on_read_heavy_matches_serial_replay() {
    check_snapshot_service(true);
}

#[test]
fn snapshot_reads_off_read_heavy_matches_serial_replay() {
    check_snapshot_service(false);
}

/// §4 storage pressure through the service: budgeted partial maps must
/// serve concurrent clients like everything else (each shard worker
/// owns its own budgeted chunk store).
#[test]
fn concurrent_partial_with_budget_matches_serial_replay() {
    let t = random_table(3, 289, DOMAIN.1, 206);
    check_service(
        "partial+budget",
        289,
        3,
        239,
        &|s| {
            ShardedEngine::build(t.clone(), s, |_, part| {
                PartialEngine::new(part, DOMAIN, Some(250))
            })
        },
        &|| PartialEngine::new(t.clone(), DOMAIN, Some(250)),
    );
}

/// Joins through client handles: concurrent join clients against a
/// two-table service must match the unsharded engine's answers for all
/// five engines.
#[test]
fn concurrent_joins_match_unsharded() {
    let left = random_table(4, 242, DOMAIN.1, 207);
    let right = random_table(4, 166, DOMAIN.1, 208);
    let queries: Vec<JoinQuery> = {
        let mut rng = StdRng::seed_from_u64(241);
        (0..8)
            .map(|_| {
                let llo = rng.gen_range(0..700);
                let rlo = rng.gen_range(0..700);
                JoinQuery {
                    left: JoinSide {
                        preds: vec![(1, RangePred::open(llo, llo + 300))],
                        join_attr: 3,
                        aggs: vec![(0, AggFunc::Max), (0, AggFunc::Count), (0, AggFunc::Avg)],
                    },
                    right: JoinSide {
                        preds: vec![(1, RangePred::open(rlo, rlo + 300))],
                        join_attr: 3,
                        aggs: vec![(0, AggFunc::Sum), (0, AggFunc::Min)],
                    },
                }
            })
            .collect()
    };

    fn check<E: Engine + Send + 'static>(
        name: &str,
        queries: &[JoinQuery],
        mut unsharded: E,
        sharded: ShardedEngine<E>,
    ) {
        let expected: Vec<QueryOutput> = queries.iter().map(|q| unsharded.join(q)).collect();
        let svc = Service::start(sharded).expect("service starts");
        std::thread::scope(|s| {
            for chunk in queries.chunks(2).zip(expected.chunks(2)) {
                let client = svc.client();
                s.spawn(move || {
                    for (q, e) in chunk.0.iter().zip(chunk.1) {
                        let r = client.join(q).expect("join admitted");
                        assert_eq!(r.output.rows, e.rows, "{name}: join rows");
                        assert_eq!(r.output.aggs, e.aggs, "{name}: join aggregates");
                    }
                });
            }
        });
        svc.shutdown();
    }

    check(
        "plain",
        &queries,
        PlainEngine::with_second(left.clone(), right.clone()),
        ShardedEngine::build_with_second(left.clone(), right.clone(), 3, |_, part, second| {
            PlainEngine::with_second(part, second)
        }),
    );
    check(
        "presorted",
        &queries,
        PresortedEngine::with_second(left.clone(), &[1], right.clone(), &[1]),
        ShardedEngine::build_with_second(left.clone(), right.clone(), 3, |_, part, second| {
            PresortedEngine::with_second(part, &[1], second, &[1])
        }),
    );
    check(
        "selcrack",
        &queries,
        SelCrackEngine::with_second(left.clone(), right.clone(), DOMAIN),
        ShardedEngine::build_with_second(left.clone(), right.clone(), 3, |_, part, second| {
            SelCrackEngine::with_second(part, second, DOMAIN)
        }),
    );
    check(
        "sideways",
        &queries,
        SidewaysEngine::with_second(left.clone(), right.clone(), DOMAIN),
        ShardedEngine::build_with_second(left.clone(), right.clone(), 3, |_, part, second| {
            SidewaysEngine::with_second(part, second, DOMAIN)
        }),
    );
    check(
        "partial",
        &queries,
        PartialEngine::with_second(left.clone(), right.clone(), DOMAIN, None),
        ShardedEngine::build_with_second(left.clone(), right.clone(), 3, |_, part, second| {
            PartialEngine::with_second(part, second, DOMAIN, None)
        }),
    );
}
