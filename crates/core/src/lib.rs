#![warn(missing_docs)]
//! # crackdb-core
//!
//! Sideways cracking and partial sideways cracking — the primary
//! contribution of *"Self-organizing Tuple Reconstruction in
//! Column-stores"* (Idreos, Kersten, Manegold; SIGMOD 2009).
//!
//! * [`set::MapSet`] — full cracker maps per head attribute, kept aligned
//!   through the cracker [`tape::Tape`]; the `sideways.select` operator
//!   family including the §3.3 bit-vector operators and on-demand update
//!   merging (§3.5).
//! * [`partial::PartialSet`] — §4's chunked, storage-bounded variant with
//!   chunk maps, per-area tapes, partial alignment, LFU chunk dropping,
//!   lazy index deletion and head-column dropping.
//! * [`bitvec::BitVec`] — the filtering bit vector.
//! * [`map`] — cracker map / key map structures.
//! * [`epoch`] — hand-rolled epoch-based reclamation backing the
//!   lock-free snapshot read path.

pub mod aggregate;
pub mod bitvec;
pub mod cracker_join;
pub mod epoch;
pub mod map;
pub mod partial;
pub mod set;
pub mod store;
pub mod tape;

pub use bitvec::BitVec;
pub use crackdb_columnstore::lock_unpoisoned;
pub use cracker_join::{cracker_join, flat_hash_join};
pub use epoch::{EpochDomain, EpochReader, Pin, Published};
pub use map::{CrackerMap, KeyMap};
pub use partial::{AreaEntry, PartialMap, PartialSet, PartialStats, SpillTier};
pub use set::MapSet;
pub use store::{ConjHandle, PartialStore, SidewaysStore};
pub use tape::{DeleteBatch, InsertBatch, Tape, TapeEntry};
