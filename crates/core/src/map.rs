//! Cracker maps (§3.1): the two-column `(head, tail)` tables that sideways
//! cracking materializes per attribute pair, plus the special key map
//! `M_A,key` used to resolve deletion positions (§3.5).

use crate::bitvec::BitVec;
use crackdb_columnstore::types::{RangePred, RowId, Val};
use crackdb_cracking::{CrackPolicy, CrackedArray, Span};

/// A cracker map `M_AB`: head = values of attribute `A`, tail = values of
/// attribute `B`, physically reorganized (cracked) on the head as a side
/// effect of queries, with a cursor into the set's tape recording how far
/// its reorganization history has progressed.
#[derive(Debug, Clone)]
pub struct CrackerMap {
    /// Attribute index of the tail (`B`).
    pub tail_attr: usize,
    /// The cracked head/tail arrays and their index.
    pub arr: CrackedArray<Val>,
    /// Tape position of the next entry this map has *not* yet applied.
    pub cursor: usize,
    /// How many queries touched this map (LFU storage management).
    pub accesses: u64,
}

impl CrackerMap {
    /// Seed a map from parallel head/tail value vectors with an empty
    /// reorganization history (cursor at tape position 0 — the map must
    /// replay the whole tape to align with its siblings).
    pub fn seed(tail_attr: usize, head: Vec<Val>, tail: Vec<Val>) -> Self {
        CrackerMap {
            tail_attr,
            arr: CrackedArray::new(head, tail),
            cursor: 0,
            accesses: 0,
        }
    }

    /// Storage footprint in tuples (the paper's unit: one map row = one
    /// tuple of budget).
    pub fn tuples(&self) -> usize {
        self.arr.len()
    }

    /// Crack by `pred` under `policy` (the set's policy — a map must
    /// always crack with its siblings' policy or alignment breaks).
    pub fn crack(&mut self, pred: &RangePred, policy: &CrackPolicy) -> Span {
        self.arr.crack_range_with(pred, policy)
    }

    /// Bit vector over `[range.0, range.1)` marking the head values that
    /// match `pred` — the qualifying filter an inexact (coarse-granular)
    /// span needs. Built word-at-a-time ([`BitVec::from_fn`]), with the
    /// head slice hoisted so the per-bit work is one range comparison.
    pub fn head_filter_bv(&self, range: (usize, usize), pred: &RangePred) -> BitVec {
        let heads = &self.arr.head()[range.0..range.1];
        BitVec::from_fn(heads.len(), |i| pred.matches(heads[i]))
    }

    /// Publish this map's converged pieces as an immutable snapshot
    /// (lock-free read path). `pending` are the values of staged
    /// updates this map has not applied yet (the set's batches past
    /// this map's cursor): pieces covering one stay unpublished. A map
    /// behind on its tape is convergence-tracked exactly like a
    /// cracker column — the tape replay only moves pieces whose
    /// identity changes, so reuse stays sound.
    pub fn converged_snapshot(
        &self,
        builder: &mut crackdb_cracking::SnapshotBuilder<Val>,
        pending: &[Val],
    ) -> std::sync::Arc<crackdb_cracking::ColumnSnapshot<Val>> {
        builder.build(&self.arr, pending)
    }
}

/// The key map `M_A,key`: head = values of `A`, tail = tuple keys. It is
/// aligned through the same tape and serves two purposes: resolving the
/// physical positions of deletions for all sibling maps, and providing
/// `(value, key)` results when a plan needs tuple identities (e.g. before
/// a join).
#[derive(Debug, Clone)]
pub struct KeyMap {
    /// The cracked head/key arrays and their index.
    pub arr: CrackedArray<RowId>,
    /// Tape position of the next entry not yet applied.
    pub cursor: usize,
    /// Access counter.
    pub accesses: u64,
}

impl KeyMap {
    /// Seed from parallel head/key vectors at tape position 0.
    pub fn seed(head: Vec<Val>, keys: Vec<RowId>) -> Self {
        KeyMap {
            arr: CrackedArray::new(head, keys),
            cursor: 0,
            accesses: 0,
        }
    }

    /// Storage footprint in tuples.
    pub fn tuples(&self) -> usize {
        self.arr.len()
    }

    /// Crack by `pred` under `policy` (see [`CrackerMap::crack`]).
    pub fn crack(&mut self, pred: &RangePred, policy: &CrackPolicy) -> Span {
        self.arr.crack_range_with(pred, policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crackdb_columnstore::types::RangePred;

    #[test]
    fn seed_and_crack() {
        let mut m = CrackerMap::seed(1, vec![3, 1, 2], vec![30, 10, 20]);
        let r = m.arr.crack_range(&RangePred::closed(2, 3));
        let (h, t) = m.arr.view(r);
        let mut pairs: Vec<_> = h.iter().zip(t).collect();
        pairs.sort();
        assert_eq!(pairs, vec![(&2, &20), (&3, &30)]);
        assert_eq!(m.cursor, 0);
    }

    #[test]
    fn key_map_tracks_keys() {
        let mut km = KeyMap::seed(vec![3, 1, 2], vec![0, 1, 2]);
        let r = km.arr.crack_range(&RangePred::point(1));
        let (_, keys) = km.arr.view(r);
        assert_eq!(keys, &[1]);
        assert_eq!(km.tuples(), 3);
    }
}
