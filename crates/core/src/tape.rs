//! The cracker tape `T_A` (§3.2): an append-only log of every operation
//! that physically reorganized any map of a map set.
//!
//! Each map carries a *cursor* into its set's tape; aligning a map means
//! replaying all entries between its cursor and the tape's end. Because
//! the crack and ripple kernels are deterministic, two maps whose cursors
//! point at the same entry are positionally identical ("physically
//! aligned").
//!
//! Besides cracks, the tape logs update batches (§3.5): the first time a
//! set merges pending insertions/deletions, the merged subset is recorded
//! so every other map replays exactly the same update at the same point.
//!
//! Every crack entry records the *effective* [`CrackPolicy`] it ran
//! under. Replay always uses the logged policy — never the owning set's
//! current one — so alignment stays bit-identical even when an adaptive
//! advisor has switched the set's effective policy since the entry was
//! written.

use crackdb_columnstore::types::{RangePred, RowId, Val};
use crackdb_cracking::CrackPolicy;

/// One logged reorganization.
#[derive(Debug, Clone, PartialEq)]
pub enum TapeEntry {
    /// A selection predicate that cracked some map of the set, plus the
    /// effective static policy the crack ran under.
    Crack(RangePred, CrackPolicy),
    /// Merge of insert batch `id` (index into [`Tape::insert_batches`]).
    Inserts(u32),
    /// Merge of delete batch `id` (index into [`Tape::delete_batches`]).
    Deletes(u32),
}

/// An insertion batch: the keys of the merged tuples. Attribute values are
/// read from the (append-only) base columns at replay time.
#[derive(Debug, Clone, Default)]
pub struct InsertBatch {
    /// Keys of the tuples merged by this batch.
    pub keys: Vec<RowId>,
}

/// A deletion batch: `(head value, key)` of each deleted tuple, plus the
/// physical positions at which the deletions were performed, recorded by
/// the key map (`M_A,key`) the first time the batch is replayed so that
/// every map deletes exactly the same physical slots.
#[derive(Debug, Clone, Default)]
pub struct DeleteBatch {
    /// Head value and key of each deleted tuple.
    pub items: Vec<(Val, RowId)>,
    /// Physical delete positions, in execution order, recorded at this
    /// batch's unique tape position. `None` until the key map first
    /// crosses the entry.
    pub resolved: Option<Vec<usize>>,
}

/// The tape of a map set, together with its update batches.
#[derive(Debug, Clone, Default)]
pub struct Tape {
    entries: Vec<TapeEntry>,
    /// Insert batches referenced by [`TapeEntry::Inserts`].
    pub insert_batches: Vec<InsertBatch>,
    /// Delete batches referenced by [`TapeEntry::Deletes`].
    pub delete_batches: Vec<DeleteBatch>,
}

impl Tape {
    /// Empty tape.
    pub fn new() -> Self {
        Tape::default()
    }

    /// Number of entries; also the cursor value meaning "fully aligned".
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entry at position `i`.
    pub fn entry(&self, i: usize) -> &TapeEntry {
        &self.entries[i]
    }

    /// Log a crack predicate and the effective policy it ran under;
    /// returns its tape position.
    pub fn log_crack(&mut self, pred: RangePred, policy: CrackPolicy) -> usize {
        self.entries.push(TapeEntry::Crack(pred, policy));
        self.entries.len() - 1
    }

    /// Log an insert batch; returns its tape position.
    pub fn log_inserts(&mut self, batch: InsertBatch) -> usize {
        let id = self.insert_batches.len() as u32;
        self.insert_batches.push(batch);
        self.entries.push(TapeEntry::Inserts(id));
        self.entries.len() - 1
    }

    /// Log a delete batch; returns its tape position.
    pub fn log_deletes(&mut self, batch: DeleteBatch) -> usize {
        let id = self.delete_batches.len() as u32;
        self.delete_batches.push(batch);
        self.entries.push(TapeEntry::Deletes(id));
        self.entries.len() - 1
    }

    /// Distance from `cursor` to the tape end — the paper's measure of how
    /// *unaligned* a map is (used to pick the most-aligned map for
    /// histogram estimates, §3.3).
    pub fn lag(&self, cursor: usize) -> usize {
        self.entries.len().saturating_sub(cursor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logging_and_lag() {
        let mut t = Tape::new();
        assert!(t.is_empty());
        let p0 = t.log_crack(RangePred::open(1, 5), CrackPolicy::Standard);
        let p1 = t.log_inserts(InsertBatch { keys: vec![7] });
        let p2 = t.log_deletes(DeleteBatch {
            items: vec![(3, 2)],
            resolved: None,
        });
        assert_eq!((p0, p1, p2), (0, 1, 2));
        assert_eq!(t.len(), 3);
        assert_eq!(t.lag(0), 3);
        assert_eq!(t.lag(3), 0);
        assert_eq!(t.lag(10), 0);
    }

    #[test]
    fn entries_are_replayable() {
        let mut t = Tape::new();
        t.log_crack(RangePred::open(1, 5), CrackPolicy::stochastic());
        t.log_inserts(InsertBatch { keys: vec![1, 2] });
        match t.entry(1) {
            TapeEntry::Inserts(id) => {
                assert_eq!(t.insert_batches[*id as usize].keys, vec![1, 2]);
            }
            other => panic!("unexpected entry {other:?}"),
        }
    }
}
