//! The partitioned cracker-join (§3.4 future work): "a join can be
//! performed in a partitioned-like way exploiting disjoint ranges in the
//! input maps".
//!
//! Two cracked arrays whose heads are the join attribute already come
//! range-partitioned by their cracker indices. Aligning the two piece
//! sequences yields pairs of small, value-disjoint segments that can be
//! joined independently with cache-resident hash tables — no global hash
//! table over either input. The more cracked the inputs, the smaller the
//! partitions, so the join gets faster as the system self-organizes.

use crackdb_columnstore::types::Val;
use crackdb_cracking::{BoundaryKey, CrackedArray};
use std::collections::HashMap;

/// Equi-join of two cracked arrays on their head values. Returns
/// `(left_tail, right_tail)` pairs of matching tuples.
///
/// Partition pass: the union of both indices' boundary keys splits the
/// value domain into segments; each input's tuples for a segment form a
/// contiguous position range (pieces never straddle a boundary of their
/// own index, and segments are refined by *both* indices, with piece
/// ranges intersected on the fly). Each segment pair is hash-joined
/// independently.
pub fn cracker_join<T: Copy, U: Copy>(
    left: &CrackedArray<T>,
    right: &CrackedArray<U>,
) -> Vec<(T, U)> {
    let lb = left.index().boundaries();
    let rb = right.index().boundaries();

    // Merge the two boundary-key sequences into the segment cut list.
    let mut cuts: Vec<BoundaryKey> = Vec::with_capacity(lb.len() + rb.len());
    let (mut i, mut j) = (0, 0);
    while i < lb.len() || j < rb.len() {
        let next = match (lb.get(i), rb.get(j)) {
            (Some(&(a, _)), Some(&(b, _))) => {
                if a <= b {
                    i += 1;
                    if a == b {
                        j += 1;
                    }
                    a
                } else {
                    j += 1;
                    b
                }
            }
            (Some(&(a, _)), None) => {
                i += 1;
                a
            }
            (None, Some(&(b, _))) => {
                j += 1;
                b
            }
            (None, None) => unreachable!(),
        };
        cuts.push(next);
    }

    // Walk segments. For each input, a cut key maps to a position: exact
    // boundary position if present in that input's index, otherwise the
    // segment continues inside one of its pieces and the tuples of the
    // segment are *not* contiguous — in that case we fall back to
    // filtering the enclosing piece by value. To keep partitions
    // contiguous we conservatively extend the segment to the input's own
    // next boundary and filter by the segment's value range during the
    // hash build/probe.
    let mut out = Vec::new();
    let mut prev: Option<BoundaryKey> = None;
    let mut table: HashMap<Val, Vec<T>> = HashMap::new();
    for k in cuts.iter().copied().map(Some).chain([None]) {
        let lseg = segment_range(left, prev, k);
        let rseg = segment_range(right, prev, k);
        if lseg.1 > lseg.0 && rseg.1 > rseg.0 {
            // Build on the smaller side, filtered to the segment's value
            // range; probe the other.
            table.clear();
            let in_segment = |v: Val| {
                let above = prev.is_none_or(|(pv, pk)| !pk.belongs_left(v, pv));
                let below = k.is_none_or(|(kv, kk)| kk.belongs_left(v, kv));
                above && below
            };
            let (lh, lt) = left.view(lseg);
            for (idx, &v) in lh.iter().enumerate() {
                if in_segment(v) {
                    table.entry(v).or_default().push(lt[idx]);
                }
            }
            let (rh, rt) = right.view(rseg);
            for (idx, &v) in rh.iter().enumerate() {
                if in_segment(v) {
                    if let Some(ls) = table.get(&v) {
                        for &l in ls {
                            out.push((l, rt[idx]));
                        }
                    }
                }
            }
        }
        prev = k;
    }
    out
}

/// Position range of `arr` covering the value segment `(lo, hi)`: exact
/// boundary positions when the input has them, otherwise rounded outward
/// to its own enclosing piece (the caller filters by value).
fn segment_range<T: Copy>(
    arr: &CrackedArray<T>,
    lo: Option<BoundaryKey>,
    hi: Option<BoundaryKey>,
) -> (usize, usize) {
    let n = arr.len();
    let start = match lo {
        None => 0,
        Some(k) => arr
            .index()
            .position_of(k)
            .unwrap_or_else(|| arr.index().enclosing_piece(k, n).0),
    };
    let end = match hi {
        None => n,
        Some(k) => arr
            .index()
            .position_of(k)
            .unwrap_or_else(|| arr.index().enclosing_piece(k, n).1),
    };
    (start, end.max(start))
}

/// Reference nested hash join (used by tests and the ablation bench).
pub fn flat_hash_join<T: Copy, U: Copy>(
    left: &CrackedArray<T>,
    right: &CrackedArray<U>,
) -> Vec<(T, U)> {
    let mut table: HashMap<Val, Vec<T>> = HashMap::with_capacity(left.len());
    for (i, &v) in left.head().iter().enumerate() {
        table.entry(v).or_default().push(left.tail()[i]);
    }
    let mut out = Vec::new();
    for (i, &v) in right.head().iter().enumerate() {
        if let Some(ls) = table.get(&v) {
            for &l in ls {
                out.push((l, right.tail()[i]));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crackdb_columnstore::types::RangePred;

    fn arr(vals: Vec<Val>) -> CrackedArray<u32> {
        let n = vals.len() as u32;
        CrackedArray::new(vals, (0..n).collect())
    }

    fn normalize(mut v: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
        v.sort_unstable();
        v
    }

    #[test]
    fn join_uncracked_inputs() {
        let l = arr(vec![1, 2, 3, 2]);
        let r = arr(vec![2, 3, 4]);
        let got = normalize(cracker_join(&l, &r));
        let expected = normalize(flat_hash_join(&l, &r));
        assert_eq!(got, expected);
        assert_eq!(got.len(), 3); // 2 matches twice + 3 once
    }

    #[test]
    fn join_with_cracked_inputs_matches_flat() {
        let mut l = arr((0..200).map(|i| (i * 13) % 50).collect());
        let mut r = arr((0..150).map(|i| (i * 7) % 50).collect());
        l.crack_range(&RangePred::open(10, 30));
        r.crack_range(&RangePred::open(5, 25));
        r.crack_range(&RangePred::open(35, 45));
        let got = normalize(cracker_join(&l, &r));
        let expected = normalize(flat_hash_join(&l, &r));
        assert_eq!(got, expected);
    }

    #[test]
    fn join_one_side_heavily_cracked() {
        let mut l = arr((0..300).map(|i| (i * 31) % 100).collect());
        let r = arr((0..100).map(|i| (i * 3) % 100).collect());
        for lo in (0..90).step_by(10) {
            l.crack_range(&RangePred::open(lo, lo + 10));
        }
        let got = normalize(cracker_join(&l, &r));
        assert_eq!(got, normalize(flat_hash_join(&l, &r)));
    }

    #[test]
    fn join_empty_sides() {
        let l = arr(vec![]);
        let r = arr(vec![1, 2]);
        assert!(cracker_join(&l, &r).is_empty());
        assert!(cracker_join(&r, &l).is_empty());
    }

    #[test]
    fn join_disjoint_ranges_produces_nothing() {
        let mut l = arr((0..100).collect());
        let mut r = arr((200..300).collect());
        l.crack_range(&RangePred::open(20, 60));
        r.crack_range(&RangePred::open(220, 260));
        assert!(cracker_join(&l, &r).is_empty());
    }

    #[test]
    fn randomized_equivalence() {
        let mut state = 3u64;
        let mut next = move |m: i64| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(12345);
            ((state >> 33) as i64).rem_euclid(m)
        };
        for round in 0..10 {
            let mut l = arr((0..120).map(|_| next(40)).collect());
            let mut r = arr((0..80).map(|_| next(40)).collect());
            for _ in 0..round {
                let lo = next(40);
                l.crack_range(&RangePred::open(lo, lo + 1 + next(10)));
                let lo = next(40);
                r.crack_range(&RangePred::open(lo, lo + 1 + next(10)));
            }
            assert_eq!(
                normalize(cracker_join(&l, &r)),
                normalize(flat_hash_join(&l, &r)),
                "round {round}"
            );
        }
    }
}
