//! Hand-rolled epoch-based reclamation for published snapshots.
//!
//! The snapshot read path (ROADMAP item 1) lets any number of reader
//! threads consume an immutable piece catalog while the shard's owner
//! thread keeps cracking and periodically publishes a replacement.
//! Replaced catalogs cannot be freed immediately — a reader may still
//! hold a reference — and the offline image has no crossbeam, so this
//! module hand-rolls the classic scheme:
//!
//! * a [`EpochDomain`] keeps a global epoch counter and a registry of
//!   reader slots;
//! * a reader [`pin`s](EpochDomain::pin) the current epoch on entry
//!   (storing it into its slot) and un-pins on exit ([`Pin`] drop);
//! * a [`Published<T>`] cell holds the current value behind an
//!   `AtomicPtr`; [`publish`](Published::publish) swaps in the new
//!   value, tags the old one with the current epoch, advances the
//!   epoch, and frees retired values only once every pinned slot has
//!   moved past their tag.
//!
//! ## Why this is safe (all orderings are `SeqCst`)
//!
//! Consider a reader R that obtained a reference to the *old* value
//! and the owner O that retires it. In the `SeqCst` total order:
//!
//! 1. R's pin store (slot ← epoch `e`) precedes R's pointer load
//!    (program order on R).
//! 2. R loaded the old pointer, so R's load precedes O's `swap`
//!    (otherwise R would have seen the new pointer).
//! 3. O tags the old pointer with the epoch at retire time `t`
//!    (`e <= t`, because the epoch only advances *after* the retire)
//!    and only then scans the slots.
//! 4. Either O's scan observes R's slot pinned at `e <= t` — then the
//!    free condition `min_pinned > t` fails and the value survives —
//!    or R's pin store follows O's scan in the total order; but then
//!    R's pointer load also follows O's `swap` (1 + 3), contradicting
//!    (2). So a pinned reader can never hold a freed value.
//!
//! Readers that pin *after* the scan necessarily load the new pointer,
//! so they never resurrect a retired value.

use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Mutex, Weak};

/// Slot value meaning "this reader is not currently pinned".
const QUIESCENT: u64 = u64::MAX;

// Epoch bookkeeping holds its locks only around `Vec` push/scan,
// which cannot leave the registry inconsistent, so the workspace-wide
// poison-recovering lock idiom applies.
use crate::lock_unpoisoned;

/// Per-reader pin slot: the epoch this reader entered at, or
/// [`QUIESCENT`].
struct Slot {
    pinned: AtomicU64,
}

/// A registry of reader slots plus the global epoch counter.
///
/// One domain is shared by the owner (publisher) and every reader of
/// the values it protects; a single domain can protect any number of
/// [`Published`] cells (the service uses one domain for all shards).
pub struct EpochDomain {
    epoch: AtomicU64,
    slots: Mutex<Vec<Weak<Slot>>>,
}

impl Default for EpochDomain {
    fn default() -> Self {
        Self::new()
    }
}

impl EpochDomain {
    /// Create a fresh domain with no registered readers.
    pub fn new() -> Self {
        EpochDomain {
            epoch: AtomicU64::new(0),
            slots: Mutex::new(Vec::new()),
        }
    }

    /// Register a new reader. Registration takes the registry lock —
    /// do it once per reader handle, not per read.
    pub fn register(&self) -> EpochReader {
        let slot = Arc::new(Slot {
            pinned: AtomicU64::new(QUIESCENT),
        });
        let mut slots = lock_unpoisoned(&self.slots);
        slots.retain(|w| w.strong_count() > 0);
        slots.push(Arc::downgrade(&slot));
        EpochReader { slot }
    }

    /// Pin the current epoch. While the returned guard lives, no value
    /// retired at or after this epoch is freed. Reads through
    /// [`Published::read`] borrow the guard, so a reference obtained
    /// under a pin cannot outlive it.
    pub fn pin<'r>(&self, reader: &'r EpochReader) -> Pin<'r> {
        debug_assert_eq!(
            reader.slot.pinned.load(SeqCst),
            QUIESCENT,
            "reader pinned twice"
        );
        reader.slot.pinned.store(self.epoch.load(SeqCst), SeqCst);
        Pin { slot: &reader.slot }
    }

    /// Advance the global epoch (called after retiring a value).
    fn advance(&self) {
        self.epoch.fetch_add(1, SeqCst);
    }

    /// Minimum epoch pinned by any live reader ([`QUIESCENT`] if none).
    fn min_pinned(&self) -> u64 {
        let mut slots = lock_unpoisoned(&self.slots);
        slots.retain(|w| w.strong_count() > 0);
        slots
            .iter()
            .filter_map(|w| w.upgrade())
            .map(|s| s.pinned.load(SeqCst))
            .min()
            .unwrap_or(QUIESCENT)
    }
}

/// A registered reader handle. Not `Sync`: one handle belongs to one
/// thread of control at a time (the service wraps each client's handle
/// in a mutex and falls back to the queued path on contention).
pub struct EpochReader {
    slot: Arc<Slot>,
}

/// An active pin; un-pins its reader's slot on drop.
pub struct Pin<'r> {
    slot: &'r Slot,
}

impl Drop for Pin<'_> {
    fn drop(&mut self) {
        self.slot.pinned.store(QUIESCENT, SeqCst);
    }
}

/// A value published behind an atomic pointer with epoch-deferred
/// reclamation of replaced values.
pub struct Published<T> {
    domain: Arc<EpochDomain>,
    ptr: AtomicPtr<T>,
    /// Retired values: `(retire_epoch, value)` — freed once every
    /// pinned slot is strictly past `retire_epoch`.
    limbo: Mutex<Vec<(u64, *mut T)>>,
}

// SAFETY: moving the cell to another thread moves ownership of every
// `Box<T>` behind `ptr` and `limbo` (they are freed exactly once, by
// `publish`/`collect_locked`/`Drop`, all through `&self`/`&mut self`
// on whichever thread holds the cell) — sound iff `T: Send`. Readers
// on *other* threads may still hold `&T` borrowed under an earlier
// pin, so the values must also tolerate shared cross-thread access —
// hence the additional `T: Sync` bound.
unsafe impl<T: Send + Sync> Send for Published<T> {}
// SAFETY: shared access is the cell's purpose and every `&self`
// method is thread-safe by construction: `ptr` is only read/swapped
// atomically, `limbo` is guarded by its mutex, and reclamation of a
// retired box requires `min_pinned > tag` (the module-level argument
// proves no live `&T` can still point at it). Handing `&T` to many
// threads at once requires `T: Sync`; retired values are *dropped* on
// the publishing thread, which requires `T: Send`.
unsafe impl<T: Send + Sync> Sync for Published<T> {}

impl<T> Published<T> {
    /// An empty cell ([`read`](Self::read) returns `None` until the
    /// first [`publish`](Self::publish)).
    pub fn new(domain: Arc<EpochDomain>) -> Self {
        Published {
            domain,
            ptr: AtomicPtr::new(std::ptr::null_mut()),
            limbo: Mutex::new(Vec::new()),
        }
    }

    /// The domain whose readers protect this cell.
    pub fn domain(&self) -> &Arc<EpochDomain> {
        &self.domain
    }

    /// Lock-free read of the current value. The reference borrows the
    /// pin, so it cannot escape the pinned section.
    pub fn read<'a>(&'a self, _pin: &'a Pin<'_>) -> Option<&'a T> {
        let p = self.ptr.load(SeqCst);
        if p.is_null() {
            None
        } else {
            // SAFETY: `p` was created by `Box::into_raw` in `publish`
            // and, per the module-level argument, cannot be freed
            // while `_pin` is live.
            Some(unsafe { &*p })
        }
    }

    /// Replace the current value. The old value is tagged with the
    /// current epoch, the epoch advances, and any sufficiently old
    /// retired values are freed.
    pub fn publish(&self, value: T) {
        let fresh = Box::into_raw(Box::new(value));
        let old = self.ptr.swap(fresh, SeqCst);
        if old.is_null() {
            return;
        }
        let mut limbo = lock_unpoisoned(&self.limbo);
        let retired_at = self.domain.epoch.load(SeqCst);
        limbo.push((retired_at, old));
        self.domain.advance();
        let floor = self.domain.min_pinned();
        Self::collect_locked(&mut limbo, floor);
    }

    /// Opportunistically free retired values (also runs on every
    /// publish). Useful for tests and idle owners.
    pub fn collect(&self) {
        let mut limbo = lock_unpoisoned(&self.limbo);
        let floor = self.domain.min_pinned();
        Self::collect_locked(&mut limbo, floor);
    }

    /// Number of retired-but-not-yet-freed values.
    pub fn limbo_len(&self) -> usize {
        lock_unpoisoned(&self.limbo).len()
    }

    fn collect_locked(limbo: &mut Vec<(u64, *mut T)>, floor: u64) {
        limbo.retain(|&(tag, p)| {
            if floor > tag {
                // SAFETY: every pinned reader entered at an epoch
                // > tag, hence after the swap that retired `p`; no
                // live reference can point at it (module argument).
                drop(unsafe { Box::from_raw(p) });
                false
            } else {
                true
            }
        });
    }
}

impl<T> Drop for Published<T> {
    fn drop(&mut self) {
        // Exclusive access: no pins can be outstanding on a cell being
        // dropped (readers borrow the cell through `&self`).
        let p = *self.ptr.get_mut();
        if !p.is_null() {
            // SAFETY: sole owner at drop time.
            drop(unsafe { Box::from_raw(p) });
        }
        for (_, p) in lock_unpoisoned(&self.limbo).drain(..) {
            // SAFETY: retired values are exclusively owned by limbo.
            drop(unsafe { Box::from_raw(p) });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize};

    /// Payload whose drop raises a shared flag, so readers can assert
    /// (while still pinned) that the value they dereferenced has not
    /// been reclaimed.
    struct Canary {
        a: u64,
        b: u64, // invariant: b == !a
        freed: Arc<AtomicBool>,
        drops: Arc<AtomicUsize>,
    }

    impl Canary {
        fn new(v: u64, drops: Arc<AtomicUsize>) -> Self {
            Canary {
                a: v,
                b: !v,
                freed: Arc::new(AtomicBool::new(false)),
                drops,
            }
        }
    }

    impl Drop for Canary {
        fn drop(&mut self) {
            self.freed.store(true, SeqCst);
            self.drops.fetch_add(1, SeqCst);
        }
    }

    #[test]
    fn read_before_first_publish_is_none() {
        let domain = Arc::new(EpochDomain::new());
        let cell: Published<u64> = Published::new(domain.clone());
        let reader = domain.register();
        let pin = domain.pin(&reader);
        assert!(cell.read(&pin).is_none());
    }

    #[test]
    fn publish_and_read_roundtrip() {
        let domain = Arc::new(EpochDomain::new());
        let cell = Published::new(domain.clone());
        cell.publish(41u64);
        cell.publish(42u64);
        let reader = domain.register();
        let pin = domain.pin(&reader);
        assert_eq!(cell.read(&pin), Some(&42));
    }

    #[test]
    fn retired_value_survives_while_pinned_and_frees_after() {
        let domain = Arc::new(EpochDomain::new());
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = Published::new(domain.clone());
        cell.publish(Canary::new(1, drops.clone()));
        let reader = domain.register();
        let pin = domain.pin(&reader);
        let seen = cell.read(&pin).unwrap();
        let seen_freed = seen.freed.clone();
        // Replace the value while the reader is pinned: the old value
        // must go to limbo, not be freed.
        cell.publish(Canary::new(2, drops.clone()));
        cell.collect();
        assert_eq!(cell.limbo_len(), 1);
        assert!(!seen_freed.load(SeqCst));
        assert_eq!(seen.a, 1);
        assert_eq!(seen.b, !1);
        drop(pin);
        cell.collect();
        assert_eq!(cell.limbo_len(), 0);
        assert!(seen_freed.load(SeqCst));
        assert_eq!(drops.load(SeqCst), 1);
    }

    #[test]
    fn drop_frees_current_and_limbo() {
        let domain = Arc::new(EpochDomain::new());
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = Published::new(domain.clone());
        cell.publish(Canary::new(1, drops.clone()));
        let reader = domain.register();
        {
            let pin = domain.pin(&reader);
            let _ = cell.read(&pin);
            cell.publish(Canary::new(2, drops.clone()));
        }
        drop(cell);
        assert_eq!(drops.load(SeqCst), 2);
    }

    /// Seeded stress: readers continuously pin/read/validate while the
    /// owner publishes thousands of versions. While a reader is
    /// pinned, the value it read must not have been dropped (checked
    /// through the canary's drop flag) and its internal invariant
    /// (`b == !a`) must hold.
    #[test]
    fn stress_no_reader_observes_a_retired_value() {
        const READERS: usize = 4;
        const VERSIONS: u64 = 4000;
        let domain = Arc::new(EpochDomain::new());
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = Arc::new(Published::<Canary>::new(domain.clone()));
        let published = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicBool::new(false));

        std::thread::scope(|s| {
            for _ in 0..READERS {
                let domain = domain.clone();
                let cell = cell.clone();
                let stop = stop.clone();
                s.spawn(move || {
                    let reader = domain.register();
                    let mut observed = 0u64;
                    while !stop.load(SeqCst) {
                        let pin = domain.pin(&reader);
                        if let Some(v) = cell.read(&pin) {
                            // Still pinned: the epoch scheme must keep
                            // this exact allocation alive.
                            assert!(!v.freed.load(SeqCst), "read a retired snapshot");
                            assert_eq!(v.b, !v.a, "torn/garbage canary payload");
                            assert!(v.a >= observed, "versions went backwards");
                            observed = v.a;
                        }
                    }
                });
            }
            for v in 1..=VERSIONS {
                cell.publish(Canary::new(v, drops.clone()));
                published.store(v, SeqCst);
            }
            stop.store(true, SeqCst);
        });
        // All readers gone: everything but the current value frees.
        cell.collect();
        assert_eq!(cell.limbo_len(), 0);
        assert_eq!(drops.load(SeqCst), VERSIONS as usize - 1);
    }

    #[test]
    fn unpinned_readers_do_not_block_reclamation() {
        let domain = Arc::new(EpochDomain::new());
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = Published::new(domain.clone());
        let _idle = domain.register(); // registered but never pinned
        cell.publish(Canary::new(1, drops.clone()));
        cell.publish(Canary::new(2, drops.clone()));
        assert_eq!(cell.limbo_len(), 0, "idle reader must not pin limbo");
        assert_eq!(drops.load(SeqCst), 1);
    }
}
