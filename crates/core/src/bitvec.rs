//! Bit vector used for multi-predicate filtering (§3.3).
//!
//! Conjunctive plans allocate one bit per tuple of the cracked result area
//! `w`; disjunctive plans allocate one bit per tuple of the whole map.
//! Only sequential patterns are used: create, refine (and/or), iterate.
//!
//! All sequential patterns run word-at-a-time over the `u64` blocks:
//! [`BitVec::from_fn`] builds whole words branch-free, [`BitVec::refine`]
//! and [`BitVec::set_where_unset`] visit only set (resp. zero) bits via
//! `trailing_zeros`, and [`BitVec::set_range`] edits at most two partial
//! words plus a `fill`. The naive bit-at-a-time loops survive only in the
//! property tests (`tests/` of this crate) as the reference oracle.

/// A fixed-length bit vector backed by `u64` blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitVec {
    blocks: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// All-zero bit vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        BitVec {
            blocks: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// All-one bit vector of `len` bits.
    pub fn ones(len: usize) -> Self {
        let mut bv = BitVec {
            blocks: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        bv.clear_tail();
        bv
    }

    /// Build from a predicate over indices. Words are assembled with the
    /// same branch-free comparison-as-arithmetic shape as the block
    /// crack kernels' membership masks (`m |= (f(i) as u64) << bit`), so
    /// simple predicates autovectorize.
    pub fn from_fn<F: FnMut(usize) -> bool>(len: usize, mut f: F) -> Self {
        let mut bv = Self::zeros(len);
        for (bi, block) in bv.blocks.iter_mut().enumerate() {
            let base = bi * 64;
            let word_bits = 64.min(len - base);
            let mut m = 0u64;
            for bit in 0..word_bits {
                m |= (f(base + bit) as u64) << bit;
            }
            *block = m;
        }
        bv
    }

    fn clear_tail(&mut self) {
        let extra = self.len % 64;
        if extra != 0 {
            if let Some(last) = self.blocks.last_mut() {
                *last &= (1u64 << extra) - 1;
            }
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the vector has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set bit `i`.
    #[inline(always)]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.blocks[i / 64] |= 1u64 << (i % 64);
    }

    /// Clear bit `i`.
    #[inline(always)]
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.blocks[i / 64] &= !(1u64 << (i % 64));
    }

    /// Read bit `i`.
    #[inline(always)]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.blocks[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// In-place AND with another vector of equal length (conjunctive
    /// refinement).
    pub fn and_with(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "bitvec length mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= b;
        }
    }

    /// In-place OR with another vector of equal length (disjunctive
    /// refinement).
    pub fn or_with(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "bitvec length mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= b;
        }
    }

    /// Refine in place: keep bit `i` only if `f(i)` holds (applied only to
    /// currently set bits — a sequential pass, as in
    /// `sideways.select_refine_bv`). Consumes whole words: zero words are
    /// skipped in one test, and within a word only the set bits are
    /// visited via `trailing_zeros`, so sparse vectors refine in
    /// O(set bits) rather than O(len).
    pub fn refine<F: FnMut(usize) -> bool>(&mut self, mut f: F) {
        for (bi, block) in self.blocks.iter_mut().enumerate() {
            let mut remaining = *block;
            while remaining != 0 {
                let tz = remaining.trailing_zeros();
                remaining &= remaining - 1;
                if !f(bi * 64 + tz as usize) {
                    *block &= !(1u64 << tz);
                }
            }
        }
    }

    /// Set all bits in `[lo, hi)`: at most two partial-word mask edits
    /// plus a word `fill` for the interior (the disjunction planner's
    /// create step, which used to set one bit per qualifying tuple).
    pub fn set_range(&mut self, lo: usize, hi: usize) {
        debug_assert!(lo <= hi && hi <= self.len);
        if lo >= hi {
            return;
        }
        let (first, last) = (lo / 64, (hi - 1) / 64);
        // Mask of bits [lo % 64, 64) resp. [0, (hi - 1) % 64].
        let head_mask = u64::MAX << (lo % 64);
        let tail_mask = u64::MAX >> (63 - (hi - 1) % 64);
        if first == last {
            self.blocks[first] |= head_mask & tail_mask;
            return;
        }
        self.blocks[first] |= head_mask;
        self.blocks[first + 1..last].fill(u64::MAX);
        self.blocks[last] |= tail_mask;
    }

    /// Set every currently-zero bit `i` for which `f(i)` holds — the
    /// disjunction residual-check pattern (`!bv.get(i) && pred(i)`),
    /// word-at-a-time: all-ones words are skipped in one test and only
    /// zero bits are visited via `trailing_zeros` on the complement.
    pub fn set_where_unset<F: FnMut(usize) -> bool>(&mut self, mut f: F) {
        let n = self.len;
        for (bi, block) in self.blocks.iter_mut().enumerate() {
            let base = bi * 64;
            let word_bits = 64.min(n - base);
            // Complement, with bits beyond `len` masked off so the tail
            // word's padding is never visited.
            let mut zeros = !*block;
            if word_bits < 64 {
                zeros &= (1u64 << word_bits) - 1;
            }
            while zeros != 0 {
                let tz = zeros.trailing_zeros();
                zeros &= zeros - 1;
                if f(base + tz as usize) {
                    *block |= 1u64 << tz;
                }
            }
        }
    }

    /// Iterate indices of set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.blocks.iter().enumerate().flat_map(|(bi, &block)| {
            let mut b = block;
            std::iter::from_fn(move || {
                if b == 0 {
                    None
                } else {
                    let tz = b.trailing_zeros() as usize;
                    b &= b - 1;
                    Some(bi * 64 + tz)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut bv = BitVec::zeros(130);
        assert!(!bv.get(0) && !bv.get(129));
        bv.set(0);
        bv.set(64);
        bv.set(129);
        assert!(bv.get(0) && bv.get(64) && bv.get(129));
        assert_eq!(bv.count_ones(), 3);
        bv.clear(64);
        assert!(!bv.get(64));
        assert_eq!(bv.count_ones(), 2);
    }

    #[test]
    fn ones_respects_length() {
        let bv = BitVec::ones(70);
        assert_eq!(bv.count_ones(), 70);
    }

    #[test]
    fn and_or() {
        let mut a = BitVec::from_fn(10, |i| i % 2 == 0);
        let b = BitVec::from_fn(10, |i| i % 3 == 0);
        let mut c = a.clone();
        a.and_with(&b);
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![0, 6]);
        c.or_with(&b);
        assert_eq!(c.iter_ones().collect::<Vec<_>>(), vec![0, 2, 3, 4, 6, 8, 9]);
    }

    #[test]
    fn refine_only_clears() {
        let mut bv = BitVec::ones(8);
        bv.refine(|i| i >= 4);
        assert_eq!(bv.iter_ones().collect::<Vec<_>>(), vec![4, 5, 6, 7]);
    }

    #[test]
    fn iter_ones_across_blocks() {
        let mut bv = BitVec::zeros(200);
        for i in [0, 63, 64, 127, 128, 199] {
            bv.set(i);
        }
        assert_eq!(
            bv.iter_ones().collect::<Vec<_>>(),
            vec![0, 63, 64, 127, 128, 199]
        );
    }

    #[test]
    fn empty_vector() {
        let bv = BitVec::zeros(0);
        assert!(bv.is_empty());
        assert_eq!(bv.iter_ones().count(), 0);
    }

    #[test]
    fn from_fn_matches_bitwise_reference() {
        for len in [0usize, 1, 63, 64, 65, 128, 200] {
            let bv = BitVec::from_fn(len, |i| i % 7 < 3);
            for i in 0..len {
                assert_eq!(bv.get(i), i % 7 < 3, "bit {i} of {len}");
            }
            assert_eq!(bv.count_ones(), (0..len).filter(|i| i % 7 < 3).count());
        }
    }

    #[test]
    fn set_range_edits_partial_and_full_words() {
        for (lo, hi) in [
            (0usize, 0usize),
            (0, 1),
            (3, 17),
            (0, 64),
            (63, 65),
            (64, 128),
            (10, 200),
            (190, 200),
            (0, 200),
        ] {
            let mut bv = BitVec::zeros(200);
            bv.set_range(lo, hi);
            for i in 0..200 {
                assert_eq!(bv.get(i), lo <= i && i < hi, "bit {i} for [{lo},{hi})");
            }
        }
        // set_range never clears existing bits.
        let mut bv = BitVec::zeros(100);
        bv.set(2);
        bv.set(99);
        bv.set_range(40, 60);
        assert!(bv.get(2) && bv.get(99));
        assert_eq!(bv.count_ones(), 22);
    }

    #[test]
    fn set_where_unset_only_touches_zero_bits() {
        let mut bv = BitVec::from_fn(130, |i| i % 2 == 0);
        let mut visited = Vec::new();
        bv.set_where_unset(|i| {
            visited.push(i);
            i % 3 == 0
        });
        // Only odd (zero) bits were offered, none beyond len.
        assert!(visited.iter().all(|&i| i % 2 == 1 && i < 130));
        assert_eq!(visited.len(), 65);
        for i in 0..130 {
            assert_eq!(bv.get(i), i % 2 == 0 || i % 3 == 0, "bit {i}");
        }
        // A full word is skipped without visiting any bit.
        let mut bv = BitVec::ones(64);
        bv.set_where_unset(|_| panic!("no zero bits to visit"));
    }

    #[test]
    fn refine_skips_cleared_words() {
        let mut bv = BitVec::zeros(256);
        bv.set(70);
        bv.set(200);
        let mut visited = Vec::new();
        bv.refine(|i| {
            visited.push(i);
            i > 100
        });
        assert_eq!(visited, vec![70, 200], "only set bits are visited");
        assert_eq!(bv.iter_ones().collect::<Vec<_>>(), vec![200]);
    }
}
