//! Bit vector used for multi-predicate filtering (§3.3).
//!
//! Conjunctive plans allocate one bit per tuple of the cracked result area
//! `w`; disjunctive plans allocate one bit per tuple of the whole map.
//! Only sequential patterns are used: create, refine (and/or), iterate.

/// A fixed-length bit vector backed by `u64` blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitVec {
    blocks: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// All-zero bit vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        BitVec {
            blocks: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// All-one bit vector of `len` bits.
    pub fn ones(len: usize) -> Self {
        let mut bv = BitVec {
            blocks: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        bv.clear_tail();
        bv
    }

    /// Build from a predicate over indices.
    pub fn from_fn<F: FnMut(usize) -> bool>(len: usize, mut f: F) -> Self {
        let mut bv = Self::zeros(len);
        for i in 0..len {
            if f(i) {
                bv.set(i);
            }
        }
        bv
    }

    fn clear_tail(&mut self) {
        let extra = self.len % 64;
        if extra != 0 {
            if let Some(last) = self.blocks.last_mut() {
                *last &= (1u64 << extra) - 1;
            }
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the vector has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set bit `i`.
    #[inline(always)]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.blocks[i / 64] |= 1u64 << (i % 64);
    }

    /// Clear bit `i`.
    #[inline(always)]
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.blocks[i / 64] &= !(1u64 << (i % 64));
    }

    /// Read bit `i`.
    #[inline(always)]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.blocks[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// In-place AND with another vector of equal length (conjunctive
    /// refinement).
    pub fn and_with(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "bitvec length mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= b;
        }
    }

    /// In-place OR with another vector of equal length (disjunctive
    /// refinement).
    pub fn or_with(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "bitvec length mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= b;
        }
    }

    /// Refine in place: keep bit `i` only if `f(i)` holds (applied only to
    /// currently set bits — a sequential pass, as in
    /// `sideways.select_refine_bv`).
    pub fn refine<F: FnMut(usize) -> bool>(&mut self, mut f: F) {
        for i in 0..self.len {
            if self.get(i) && !f(i) {
                self.clear(i);
            }
        }
    }

    /// Iterate indices of set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.blocks.iter().enumerate().flat_map(|(bi, &block)| {
            let mut b = block;
            std::iter::from_fn(move || {
                if b == 0 {
                    None
                } else {
                    let tz = b.trailing_zeros() as usize;
                    b &= b - 1;
                    Some(bi * 64 + tz)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut bv = BitVec::zeros(130);
        assert!(!bv.get(0) && !bv.get(129));
        bv.set(0);
        bv.set(64);
        bv.set(129);
        assert!(bv.get(0) && bv.get(64) && bv.get(129));
        assert_eq!(bv.count_ones(), 3);
        bv.clear(64);
        assert!(!bv.get(64));
        assert_eq!(bv.count_ones(), 2);
    }

    #[test]
    fn ones_respects_length() {
        let bv = BitVec::ones(70);
        assert_eq!(bv.count_ones(), 70);
    }

    #[test]
    fn and_or() {
        let mut a = BitVec::from_fn(10, |i| i % 2 == 0);
        let b = BitVec::from_fn(10, |i| i % 3 == 0);
        let mut c = a.clone();
        a.and_with(&b);
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![0, 6]);
        c.or_with(&b);
        assert_eq!(c.iter_ones().collect::<Vec<_>>(), vec![0, 2, 3, 4, 6, 8, 9]);
    }

    #[test]
    fn refine_only_clears() {
        let mut bv = BitVec::ones(8);
        bv.refine(|i| i >= 4);
        assert_eq!(bv.iter_ones().collect::<Vec<_>>(), vec![4, 5, 6, 7]);
    }

    #[test]
    fn iter_ones_across_blocks() {
        let mut bv = BitVec::zeros(200);
        for i in [0, 63, 64, 127, 128, 199] {
            bv.set(i);
        }
        assert_eq!(
            bv.iter_ones().collect::<Vec<_>>(),
            vec![0, 63, 64, 127, 128, 199]
        );
    }

    #[test]
    fn empty_vector() {
        let bv = BitVec::zeros(0);
        assert!(bv.is_empty());
        assert_eq!(bv.iter_ones().count(), 0);
    }
}
