//! Map sets `S_A` (§3.2–§3.5): the per-attribute collection of cracker
//! maps, their shared tape, adaptive alignment, the bit-vector operators
//! for multi-selection queries, and on-demand update merging.

use crate::bitvec::BitVec;
use crate::map::{CrackerMap, KeyMap};
use crate::tape::{DeleteBatch, InsertBatch, Tape, TapeEntry};
use crackdb_columnstore::column::Table;
use crackdb_columnstore::types::{RangePred, RowId, Val};
use crackdb_cracking::{CrackPolicy, PolicyAdvisor, Span};
use std::collections::{HashMap, HashSet};

/// Instrumentation counters for a map set.
#[derive(Debug, Clone, Copy, Default)]
pub struct SetStats {
    /// Maps seeded from base columns (includes recreations after drops).
    pub maps_created: u64,
    /// Tape entries replayed during alignment (all maps).
    pub entries_replayed: u64,
    /// Cracks performed directly by queries (not via alignment).
    pub query_cracks: u64,
}

/// A map set `S_A`: all cracker maps with head attribute `A`, the tape
/// `T_A`, the key map `M_A,key`, and staged (not yet merged) updates.
#[derive(Debug, Clone)]
pub struct MapSet {
    /// The head attribute all maps of this set share.
    pub head_attr: usize,
    /// The shared reorganization log.
    pub tape: Tape,
    maps: HashMap<usize, CrackerMap>,
    key_map: Option<KeyMap>,
    staged_inserts: Vec<RowId>,
    staged_deletes: Vec<(Val, RowId)>,
    /// Keys `[0, initial_len)` existed when the set was created; maps are
    /// always seeded from exactly this snapshot and then replay the tape,
    /// which keeps late-created maps deterministically aligned.
    initial_len: usize,
    initial_excluded: HashSet<RowId>,
    /// Policy selection shared by every map of the set: the configured
    /// [`CrackPolicy`] plus (when adaptive) the workload statistics that
    /// re-decide the effective static policy per query. Replay safety
    /// does not depend on this — every tape crack entry carries the
    /// effective policy it ran under, and alignment replays the logged
    /// policy, so siblings and future recreations crack identically no
    /// matter what the advisor has decided since.
    advisor: PolicyAdvisor,
    /// Counters.
    pub stats: SetStats,
}

impl MapSet {
    /// Create the (empty) set for `head_attr` over a base table snapshot:
    /// `initial_len` rows of which `excluded` are already deleted,
    /// cracking with the standard exact-bounds policy.
    pub fn new(head_attr: usize, initial_len: usize, excluded: HashSet<RowId>) -> Self {
        Self::with_policy(head_attr, initial_len, excluded, CrackPolicy::Standard)
    }

    /// Like [`Self::new`] with an explicit [`CrackPolicy`].
    pub fn with_policy(
        head_attr: usize,
        initial_len: usize,
        excluded: HashSet<RowId>,
        policy: CrackPolicy,
    ) -> Self {
        MapSet {
            head_attr,
            tape: Tape::new(),
            maps: HashMap::new(),
            key_map: None,
            staged_inserts: Vec::new(),
            staged_deletes: Vec::new(),
            initial_len,
            initial_excluded: excluded,
            // Maps crack (head, tail) *pairs*: every tape entry moves
            // two physical columns and late-created maps re-align by
            // replaying the tape, so coarse-quantized sweep cracks bury
            // stripe edges inside leaves that each replayed map then
            // re-filters. A sweep decision resolves to Standard here —
            // measured fastest on map sweeps since the block kernels.
            advisor: PolicyAdvisor::new_sweep_immune(policy),
            stats: SetStats::default(),
        }
    }

    /// The set's configured pivot-choice policy (possibly
    /// [`CrackPolicy::Adaptive`]).
    pub fn policy(&self) -> CrackPolicy {
        self.advisor.configured()
    }

    /// The static policy the next crack will run under (equals
    /// [`Self::policy`] unless configured adaptive).
    pub fn effective_policy(&self) -> CrackPolicy {
        self.advisor.effective()
    }

    /// How many times the advisor has switched the effective policy.
    pub fn policy_switches(&self) -> u64 {
        self.advisor.switches()
    }

    /// Observe one logical query against this set: feed the predicate to
    /// the advisor (against the best-aligned structure's shape) and
    /// re-decide the effective policy. Call once per query, not once per
    /// sibling map — the store entry points do this — so multi-map plans
    /// don't double-count the workload signal.
    pub fn note_query(&mut self, pred: &RangePred) {
        if !self.advisor.configured().is_adaptive() {
            return;
        }
        let shape = self
            .maps
            .values()
            .map(|m| (self.tape.lag(m.cursor), m.arr.index().len(), m.arr.len()))
            .chain(
                self.key_map
                    .as_ref()
                    .map(|k| (self.tape.lag(k.cursor), k.arr.index().len(), k.arr.len())),
            )
            .min_by_key(|&(lag, _, _)| lag);
        let (boundaries, len) = shape.map_or((0, self.initial_len), |(_, b, l)| (b, l));
        self.advisor.observe(pred, boundaries, len);
    }

    /// Does a map for `tail_attr` currently exist?
    pub fn has_map(&self, tail_attr: usize) -> bool {
        self.maps.contains_key(&tail_attr)
    }

    /// Read access to a map (if materialized).
    pub fn map(&self, tail_attr: usize) -> Option<&CrackerMap> {
        self.maps.get(&tail_attr)
    }

    /// Read access to the key map (if materialized).
    pub fn key_map(&self) -> Option<&KeyMap> {
        self.key_map.as_ref()
    }

    /// Storage footprint in tuples across all maps (and the key map).
    pub fn tuples(&self) -> usize {
        self.maps.values().map(|m| m.tuples()).sum::<usize>()
            + self.key_map.as_ref().map_or(0, |k| k.tuples())
    }

    /// Tail attributes of currently materialized maps.
    pub fn map_attrs(&self) -> Vec<usize> {
        self.maps.keys().copied().collect()
    }

    /// Drop the least-frequently-accessed map; returns the tuples freed.
    /// Used by the store's storage manager for *full* maps (§4.2 compares
    /// against this policy).
    pub fn drop_lfu_map(&mut self) -> usize {
        let victim = self
            .maps
            .iter()
            .min_by_key(|(_, m)| m.accesses)
            .map(|(&a, _)| a);
        victim
            .and_then(|a| self.maps.remove(&a))
            .map_or(0, |m| m.tuples())
    }

    /// Drop a specific map (storage management); returns tuples freed.
    pub fn drop_map(&mut self, tail_attr: usize) -> usize {
        self.maps.remove(&tail_attr).map_or(0, |m| m.tuples())
    }

    // ----- updates ---------------------------------------------------

    /// Stage an insertion: the tuple with key `key` was appended to the
    /// base table. Merged on demand when a query touches its value range.
    pub fn stage_insert(&mut self, key: RowId) {
        self.staged_inserts.push(key);
    }

    /// Stage a deletion of the tuple `key` whose head-attribute value is
    /// `head_val`.
    pub fn stage_delete(&mut self, head_val: Val, key: RowId) {
        self.staged_deletes.push((head_val, key));
    }

    /// Number of staged (unmerged) updates.
    pub fn staged(&self) -> usize {
        self.staged_inserts.len() + self.staged_deletes.len()
    }

    /// Move staged updates whose head value is relevant to `pred` into
    /// tape batches (Ripple merging at set granularity): every map will
    /// apply exactly these subsets, in tape order, during alignment.
    fn flush_staged(&mut self, pred: &RangePred, base: &Table) {
        if !self.staged_inserts.is_empty() {
            let head_col = base.column(self.head_attr);
            let mut merged = Vec::new();
            let mut i = 0;
            while i < self.staged_inserts.len() {
                let key = self.staged_inserts[i];
                if pred.matches(head_col.get(key)) {
                    merged.push(key);
                    self.staged_inserts.swap_remove(i);
                } else {
                    i += 1;
                }
            }
            if !merged.is_empty() {
                self.tape.log_inserts(InsertBatch { keys: merged });
            }
        }
        if !self.staged_deletes.is_empty() {
            let mut merged = Vec::new();
            let mut i = 0;
            while i < self.staged_deletes.len() {
                let (v, _) = self.staged_deletes[i];
                if pred.matches(v) {
                    merged.push(self.staged_deletes.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            if !merged.is_empty() {
                self.tape.log_deletes(DeleteBatch {
                    items: merged,
                    resolved: None,
                });
            }
        }
    }

    // ----- seeding & alignment ---------------------------------------

    fn seed_map(&mut self, base: &Table, tail_attr: usize) -> CrackerMap {
        let a = base.column(self.head_attr);
        let b = base.column(tail_attr);
        let mut head = Vec::with_capacity(self.initial_len);
        let mut tail = Vec::with_capacity(self.initial_len);
        for key in 0..self.initial_len as RowId {
            if !self.initial_excluded.contains(&key) {
                head.push(a.get(key));
                tail.push(b.get(key));
            }
        }
        self.stats.maps_created += 1;
        CrackerMap::seed(tail_attr, head, tail)
    }

    fn seed_key_map(&mut self, base: &Table) -> KeyMap {
        let a = base.column(self.head_attr);
        let mut head = Vec::with_capacity(self.initial_len);
        let mut keys = Vec::with_capacity(self.initial_len);
        for key in 0..self.initial_len as RowId {
            if !self.initial_excluded.contains(&key) {
                head.push(a.get(key));
                keys.push(key);
            }
        }
        KeyMap::seed(head, keys)
    }

    /// Align the key map up to (excluding) tape position `target`,
    /// resolving any unresolved delete batches it crosses.
    fn align_key_map_to(&mut self, target: usize, base: &Table) {
        let mut km = match self.key_map.take() {
            Some(km) => km,
            None => self.seed_key_map(base),
        };
        let head_col = base.column(self.head_attr);
        while km.cursor < target {
            match self.tape.entry(km.cursor).clone() {
                // Replay under the policy the crack originally ran with,
                // not the set's current effective policy — the advisor
                // may have switched since the entry was logged.
                TapeEntry::Crack(pred, policy) => {
                    km.crack(&pred, &policy);
                }
                TapeEntry::Inserts(id) => {
                    for &key in &self.tape.insert_batches[id as usize].keys {
                        km.arr.ripple_insert(head_col.get(key), key);
                    }
                }
                TapeEntry::Deletes(id) => {
                    let batch = &mut self.tape.delete_batches[id as usize];
                    match &batch.resolved {
                        Some(positions) => {
                            for &p in positions.clone().iter() {
                                km.arr.ripple_delete_at(p);
                            }
                        }
                        None => {
                            // The key map is the first to cross this
                            // entry: perform the deletions by key and
                            // record the physical positions for siblings.
                            let items = batch.items.clone();
                            let mut positions = Vec::with_capacity(items.len());
                            for (v, key) in items {
                                if let Some(p) = km.arr.ripple_delete(v, |&t| t == key) {
                                    positions.push(p);
                                }
                            }
                            self.tape.delete_batches[id as usize].resolved = Some(positions);
                        }
                    }
                }
            }
            km.cursor += 1;
            self.stats.entries_replayed += 1;
        }
        self.key_map = Some(km);
    }

    /// Align a (removed-from-the-registry) map up to tape position
    /// `target` by replaying entries from its cursor.
    fn align_map(&mut self, m: &mut CrackerMap, target: usize, base: &Table) {
        let head_col = base.column(self.head_attr);
        while m.cursor < target {
            match self.tape.entry(m.cursor).clone() {
                TapeEntry::Crack(pred, policy) => {
                    m.crack(&pred, &policy);
                }
                TapeEntry::Inserts(id) => {
                    let tail_col = base.column(m.tail_attr);
                    for &key in &self.tape.insert_batches[id as usize].keys {
                        m.arr.ripple_insert(head_col.get(key), tail_col.get(key));
                    }
                }
                TapeEntry::Deletes(id) => {
                    if self.tape.delete_batches[id as usize].resolved.is_none() {
                        self.align_key_map_to(m.cursor + 1, base);
                    }
                    let positions = self.tape.delete_batches[id as usize]
                        .resolved
                        .clone()
                        // INVARIANT: align_key_map_to above crossed this
                        // entry, and the key map resolves every delete
                        // batch it crosses, so `resolved` is always
                        // `Some` here.
                        .expect("key map resolved the batch");
                    for p in positions {
                        m.arr.ripple_delete_at(p);
                    }
                }
            }
            m.cursor += 1;
            self.stats.entries_replayed += 1;
        }
    }

    // ----- the sideways.select operator family ------------------------

    /// `sideways.select(A, v1, v2, B)` (§3.2): create the map if missing,
    /// merge relevant staged updates, align, crack by `pred` (under the
    /// set's policy), log the crack, and return the contiguous area.
    ///
    /// Under [`CrackPolicy::CoarseGranular`] the area may be a superset
    /// of the qualifying tuples; use [`Self::sideways_select_filtered`]
    /// when exact membership matters. View the area's values with
    /// [`Self::map`] + `arr.view(range)`.
    pub fn sideways_select(
        &mut self,
        base: &Table,
        tail_attr: usize,
        pred: &RangePred,
    ) -> (usize, usize) {
        self.sideways_select_span(base, tail_attr, pred).range()
    }

    /// The policy-aware core of [`Self::sideways_select`], returning the
    /// full [`Span`] (with exactness).
    fn sideways_select_span(&mut self, base: &Table, tail_attr: usize, pred: &RangePred) -> Span {
        self.flush_staged(pred, base);
        let mut m = match self.maps.remove(&tail_attr) {
            Some(m) => m,
            None => self.seed_map(base, tail_attr),
        };
        let target = self.tape.len();
        self.align_map(&mut m, target, base);
        let policy = self.advisor.effective();
        let before = m.arr.index().len();
        let span = m.crack(pred, &policy);
        if m.arr.index().len() > before {
            self.tape.log_crack(*pred, policy);
            self.stats.query_cracks += 1;
        }
        m.cursor = self.tape.len();
        m.accesses += 1;
        self.maps.insert(tail_attr, m);
        span
    }

    /// [`Self::sideways_select`] plus the qualifying-bit vector a
    /// non-exact span needs: `None` when every tuple in the area
    /// qualifies (standard and stochastic policies, or coarse-granular
    /// with matching boundaries), `Some(bv)` over the area otherwise
    /// (bits derived from the map's head values).
    pub fn sideways_select_filtered(
        &mut self,
        base: &Table,
        tail_attr: usize,
        pred: &RangePred,
    ) -> ((usize, usize), Option<BitVec>) {
        let span = self.sideways_select_span(base, tail_attr, pred);
        if span.exact {
            (span.range(), None)
        } else {
            let bv = self.maps[&tail_attr].head_filter_bv(span.range(), pred);
            (span.range(), Some(bv))
        }
    }

    /// Tail values of a previously selected area.
    pub fn view_tail(&self, tail_attr: usize, range: (usize, usize)) -> &[Val] {
        // INVARIANT: ranges only come from sideways_select(_filtered),
        // which materializes the map before returning.
        let m = self.maps.get(&tail_attr).expect("map exists after select");
        m.arr.view(range).1
    }

    /// Like [`Self::sideways_select`] but over the key map: returns the
    /// qualifying tuple keys (used when a plan needs tuple identities,
    /// e.g. to feed a join). Correct under every policy: an inexact
    /// coarse-granular span is filtered against head values.
    pub fn select_keys(&mut self, base: &Table, pred: &RangePred) -> Vec<RowId> {
        self.flush_staged(pred, base);
        let target = self.tape.len();
        self.align_key_map_to(target, base);
        // INVARIANT: align_key_map_to always leaves `key_map` populated.
        let mut km = self.key_map.take().expect("aligned above");
        let policy = self.advisor.effective();
        let before = km.arr.index().len();
        let span = km.crack(pred, &policy);
        if km.arr.index().len() > before {
            self.tape.log_crack(*pred, policy);
            self.stats.query_cracks += 1;
        }
        km.cursor = self.tape.len();
        km.accesses += 1;
        let (heads, tail_keys) = km.arr.view(span.range());
        let keys = if span.exact {
            tail_keys.to_vec()
        } else {
            heads
                .iter()
                .zip(tail_keys)
                .filter(|(&v, _)| pred.matches(v))
                .map(|(_, &k)| k)
                .collect()
        };
        self.key_map = Some(km);
        keys
    }

    /// `sideways.select_create_bv` (§3.3): select on the head predicate,
    /// then build a bit vector over the qualifying area from a predicate
    /// on the tail attribute.
    pub fn select_create_bv(
        &mut self,
        base: &Table,
        tail_attr: usize,
        head_pred: &RangePred,
        tail_pred: &RangePred,
    ) -> ((usize, usize), BitVec) {
        let (range, head_bv) = self.sideways_select_filtered(base, tail_attr, head_pred);
        let tails = self.view_tail(tail_attr, range);
        let bv = match head_bv {
            None => BitVec::from_fn(tails.len(), |i| tail_pred.matches(tails[i])),
            // Inexact head span (coarse-granular): AND the head filter in.
            Some(mut bv) => {
                bv.refine(|i| tail_pred.matches(tails[i]));
                bv
            }
        };
        (range, bv)
    }

    /// `sideways.select_refine_bv` (§3.3): clear bits of tuples whose tail
    /// value fails `tail_pred`. The map is aligned first, so the area is
    /// positionally identical to the one `bv` was created over.
    pub fn select_refine_bv(
        &mut self,
        base: &Table,
        tail_attr: usize,
        head_pred: &RangePred,
        tail_pred: &RangePred,
        bv: &mut BitVec,
    ) {
        let range = self.sideways_select(base, tail_attr, head_pred);
        let tails = self.view_tail(tail_attr, range);
        assert_eq!(
            tails.len(),
            bv.len(),
            "aligned maps must agree on the area size"
        );
        bv.refine(|i| tail_pred.matches(tails[i]));
    }

    /// `sideways.reconstruct` (§3.3): stream the tail values of the
    /// qualifying area whose bits are set.
    pub fn reconstruct_with<F: FnMut(Val)>(
        &mut self,
        base: &Table,
        tail_attr: usize,
        head_pred: &RangePred,
        bv: &BitVec,
        mut consume: F,
    ) {
        let range = self.sideways_select(base, tail_attr, head_pred);
        let tails = self.view_tail(tail_attr, range);
        assert_eq!(
            tails.len(),
            bv.len(),
            "aligned maps must agree on the area size"
        );
        for i in bv.iter_ones() {
            consume(tails[i]);
        }
    }

    // ----- disjunctive variants (§3.3) ---------------------------------

    /// Disjunctive first step: crack by the head predicate and return a
    /// bit vector sized to the whole map with the qualifying area's bits
    /// set.
    pub fn disj_create_bv(
        &mut self,
        base: &Table,
        tail_attr: usize,
        head_pred: &RangePred,
    ) -> ((usize, usize), BitVec) {
        // A disjunction examines every tuple, so *every* staged update is
        // relevant — merge them all first. A head-pred-scoped flush (the
        // conjunctive rule) would leave updates matching only the other
        // OR-predicates staged and therefore invisible to the pass: an
        // inserted tuple missing from the map entirely, or a deleted one
        // still contributing bits through its tail values.
        self.flush_staged(&RangePred::all(), base);
        let (range, head_bv) = self.sideways_select_filtered(base, tail_attr, head_pred);
        let n = self.maps[&tail_attr].arr.len();
        let mut bv = BitVec::zeros(n);
        match head_bv {
            // Exact span: a word-level range fill, not one set() per bit.
            None => bv.set_range(range.0, range.1),
            // Inexact head span: mark only the actually qualifying bits.
            Some(hbv) => {
                for i in hbv.iter_ones() {
                    bv.set(range.0 + i);
                }
            }
        }
        (range, bv)
    }

    /// Disjunctive refinement: scan the still-unset positions and set
    /// bits of tuples whose tail value satisfies `tail_pred`. (With an
    /// exact head span this visits exactly the areas outside the cracked
    /// area `w`, as in §3.3; with a coarse-granular inexact span it also
    /// re-examines the non-qualifying remainder of the leaf pieces.)
    pub fn disj_refine_bv(
        &mut self,
        base: &Table,
        tail_attr: usize,
        head_pred: &RangePred,
        tail_pred: &RangePred,
        bv: &mut BitVec,
    ) {
        self.sideways_select(base, tail_attr, head_pred);
        let m = &self.maps[&tail_attr];
        let n = m.arr.len();
        assert_eq!(n, bv.len(), "aligned maps must agree on total size");
        let tails = m.arr.tail();
        // Word-at-a-time over the complement: after the first OR-branch
        // set a dense area, its words are skipped wholesale.
        bv.set_where_unset(|i| tail_pred.matches(tails[i]));
    }

    /// Disjunctive reconstruction: stream tail values at all set bits
    /// (whole-map indexing).
    pub fn disj_reconstruct_with<F: FnMut(Val)>(
        &mut self,
        base: &Table,
        tail_attr: usize,
        head_pred: &RangePred,
        bv: &BitVec,
        mut consume: F,
    ) {
        self.sideways_select(base, tail_attr, head_pred);
        let m = &self.maps[&tail_attr];
        assert_eq!(
            m.arr.len(),
            bv.len(),
            "aligned maps must agree on total size"
        );
        let tails = m.arr.tail();
        for i in bv.iter_ones() {
            consume(tails[i]);
        }
    }

    // ----- self-organizing histogram (§3.3) ----------------------------

    /// Estimate the result size of `pred` using the most-aligned map's
    /// cracker index, falling back to a uniform assumption over `domain`
    /// when the set has no maps yet. `n` is the table cardinality.
    pub fn estimate(&self, pred: &RangePred, n: usize, domain: (Val, Val)) -> f64 {
        let best = self
            .maps
            .values()
            .map(|m| (self.tape.lag(m.cursor), m.arr.index(), m.arr.len()))
            .chain(
                self.key_map
                    .as_ref()
                    .map(|k| (self.tape.lag(k.cursor), k.arr.index(), k.arr.len())),
            )
            .min_by_key(|(lag, _, _)| *lag);
        match best {
            Some((_, index, len)) => index.estimate_size(pred, len, domain).estimate,
            None => uniform_estimate(pred, n, domain),
        }
    }
}

/// Uniform-distribution estimate of qualifying tuples with no index
/// knowledge at all. Total for degenerate inputs: empty tables yield
/// `0.0`, single-value and inverted domains are treated as unit spans —
/// never NaN, which would poison the executor's predicate ordering.
pub fn uniform_estimate(pred: &RangePred, n: usize, domain: (Val, Val)) -> f64 {
    let (d_lo, d_hi) = if domain.0 <= domain.1 {
        domain
    } else {
        (domain.1, domain.0)
    };
    let span = (d_hi - d_lo).max(1) as f64;
    let lo = pred.lo.map_or(d_lo, |b| b.value).clamp(d_lo, d_hi);
    let hi = pred.hi.map_or(d_hi, |b| b.value).clamp(d_lo, d_hi);
    let frac = ((hi - lo).max(0) as f64 / span).clamp(0.0, 1.0);
    frac * n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crackdb_columnstore::column::Column;

    /// The Figure 2 example relation.
    fn fig2_table() -> Table {
        let mut t = Table::new();
        t.add_column("a", Column::new(vec![7, 4, 1, 2, 8, 3, 6]));
        t.add_column("b", Column::new(vec![71, 41, 11, 21, 81, 31, 61]));
        t.add_column("c", Column::new(vec![72, 42, 12, 22, 82, 32, 62]));
        t
    }

    fn sorted(mut v: Vec<Val>) -> Vec<Val> {
        v.sort_unstable();
        v
    }

    #[test]
    fn figure2_alignment_scenario() {
        // Q1: select B where A < 3; Q2: select C where A < 5;
        // Q3: select B, C where A < 4 — maps must be aligned.
        let base = fig2_table();
        let mut s = MapSet::new(0, base.num_rows(), HashSet::new());
        let lt = |v| RangePred::less(crackdb_columnstore::types::Bound::exclusive(v));

        let r1 = s.sideways_select(&base, 1, &lt(3));
        assert_eq!(sorted(s.view_tail(1, r1).to_vec()), vec![11, 21]);

        let r2 = s.sideways_select(&base, 2, &lt(5));
        assert_eq!(sorted(s.view_tail(2, r2).to_vec()), vec![12, 22, 32, 42]);

        // Q3: both maps used; results must be positionally aligned.
        let rb = s.sideways_select(&base, 1, &lt(4));
        let rc = s.sideways_select(&base, 2, &lt(4));
        assert_eq!(rb, rc, "aligned maps produce identical areas");
        let b_vals = s.view_tail(1, rb).to_vec();
        let c_vals = s.view_tail(2, rc).to_vec();
        assert_eq!(sorted(b_vals.clone()), vec![11, 21, 31]);
        // Positional alignment: b and c of the same tuple share position.
        for (b, c) in b_vals.iter().zip(&c_vals) {
            assert_eq!(b + 1, *c, "tuple identity preserved positionally");
        }
    }

    #[test]
    fn maps_and_heads_stay_consistent() {
        let base = fig2_table();
        let mut s = MapSet::new(0, base.num_rows(), HashSet::new());
        for pred in [
            RangePred::open(1, 5),
            RangePred::open(2, 7),
            RangePred::open(0, 3),
            RangePred::point(6),
        ] {
            let r1 = s.sideways_select(&base, 1, &pred);
            let r2 = s.sideways_select(&base, 2, &pred);
            assert_eq!(r1, r2);
            s.map(1).unwrap().arr.check_partitioning();
            s.map(2).unwrap().arr.check_partitioning();
            // Heads of both maps are identical after alignment.
            assert_eq!(s.map(1).unwrap().arr.head(), s.map(2).unwrap().arr.head());
        }
    }

    #[test]
    fn conjunctive_bitvec_plan() {
        // select C where 1 < A < 8 and 20 < B < 70 over fig2.
        let base = fig2_table();
        let mut s = MapSet::new(0, base.num_rows(), HashSet::new());
        let head_pred = RangePred::open(1, 8);
        let (_, mut bv) = s.select_create_bv(&base, 1, &head_pred, &RangePred::open(20, 70));
        let mut out = Vec::new();
        s.reconstruct_with(&base, 2, &head_pred, &bv.clone(), |v| out.push(v));
        // Qualifying tuples: A in {2..7}\{1,8} with B in (20,70):
        // A=7(B=71 no), A=4(41 yes), A=2(21 yes), A=3(31 yes), A=6(61 yes).
        assert_eq!(sorted(out), vec![22, 32, 42, 62]);

        // Refine further with a predicate on C.
        s.select_refine_bv(&base, 2, &head_pred, &RangePred::open(30, 50), &mut bv);
        let mut out2 = Vec::new();
        s.reconstruct_with(&base, 2, &head_pred, &bv, |v| out2.push(v));
        assert_eq!(sorted(out2), vec![32, 42]);
    }

    #[test]
    fn disjunctive_bitvec_plan() {
        // select C where A < 2 or B > 70 over fig2.
        let base = fig2_table();
        let mut s = MapSet::new(0, base.num_rows(), HashSet::new());
        let head_pred = RangePred::less(crackdb_columnstore::types::Bound::exclusive(2));
        let (_, mut bv) = s.disj_create_bv(&base, 1, &head_pred);
        s.disj_refine_bv(
            &base,
            1,
            &head_pred,
            &RangePred::greater(crackdb_columnstore::types::Bound::exclusive(70)),
            &mut bv,
        );
        let mut out = Vec::new();
        s.disj_reconstruct_with(&base, 2, &head_pred, &bv, |v| out.push(v));
        // A=1 qualifies (A<2); B=71 (A=7), B=81 (A=8) qualify via B>70.
        assert_eq!(sorted(out), vec![12, 72, 82]);
    }

    /// Regression: a staged update relevant only to a *non-head*
    /// OR-predicate must still be visible to a disjunctive pass. The
    /// old pred-scoped flush left the tuple staged — an inserted row
    /// was missing from the map entirely, a deleted one kept setting
    /// bits via its tail values.
    #[test]
    fn disjunction_merges_updates_matching_other_predicates() {
        let mut base = fig2_table();
        let mut s = MapSet::new(0, base.num_rows(), HashSet::new());
        // head pred on A; the "other" predicate filters on B via refine.
        let head_pred = RangePred::open(0, 3); // a in {1, 2}
        let b_pred = RangePred::open(900, 1100);
        // Insert (a=100, b=1000, c=42): matches only the B predicate.
        let key = base.append_row(&[100, 1000, 42]);
        s.stage_insert(key);
        let (_, mut bv) = s.disj_create_bv(&base, 1, &head_pred);
        s.disj_refine_bv(&base, 1, &head_pred, &b_pred, &mut bv);
        let mut out = Vec::new();
        s.disj_reconstruct_with(&base, 2, &head_pred, &bv, |v| out.push(v));
        assert!(out.contains(&42), "insert matching only the B pred seen");
        assert_eq!(s.staged(), 0, "disjunctions merge every staged update");

        // And the deletion direction: delete that row; it must stop
        // contributing although its head value matches no A range.
        s.stage_delete(100, key);
        let (_, mut bv) = s.disj_create_bv(&base, 1, &head_pred);
        s.disj_refine_bv(&base, 1, &head_pred, &b_pred, &mut bv);
        let mut out = Vec::new();
        s.disj_reconstruct_with(&base, 2, &head_pred, &bv, |v| out.push(v));
        assert!(!out.contains(&42), "deleted tuple no longer contributes");
    }

    #[test]
    fn select_keys_matches_scan() {
        let base = fig2_table();
        let mut s = MapSet::new(0, base.num_rows(), HashSet::new());
        let pred = RangePred::open(2, 7);
        let mut keys = s.select_keys(&base, &pred);
        keys.sort_unstable();
        let expected = crackdb_columnstore::ops::select::select(base.column(0), &pred);
        assert_eq!(keys, expected);
    }

    #[test]
    fn inserts_merge_on_demand_and_align() {
        let mut base = fig2_table();
        let mut s = MapSet::new(0, base.num_rows(), HashSet::new());
        let pred = RangePred::open(1, 5);
        s.sideways_select(&base, 1, &pred);

        // Insert tuple (a=4, b=999, c=998).
        let key = base.append_row(&[4, 999, 998]);
        s.stage_insert(key);

        // A query in range merges it; first on map B only.
        let r = s.sideways_select(&base, 1, &pred);
        assert!(s.view_tail(1, r).contains(&999));

        // Map C created later must still align and contain the insert.
        let rc = s.sideways_select(&base, 2, &pred);
        assert_eq!(r, rc);
        assert!(s.view_tail(2, rc).contains(&998));
        // Positional identity.
        let b_pos = s.view_tail(1, r).iter().position(|&v| v == 999);
        let c_pos = s.view_tail(2, rc).iter().position(|&v| v == 998);
        assert_eq!(b_pos, c_pos);
    }

    #[test]
    fn inserts_out_of_range_stay_staged() {
        let mut base = fig2_table();
        let mut s = MapSet::new(0, base.num_rows(), HashSet::new());
        let key = base.append_row(&[100, 1000, 1001]);
        s.stage_insert(key);
        let r = s.sideways_select(&base, 1, &RangePred::open(1, 5));
        assert!(!s.view_tail(1, r).contains(&1000));
        assert_eq!(s.staged(), 1);
        // Now query the range containing it.
        let r2 = s.sideways_select(&base, 1, &RangePred::open(50, 200));
        assert!(s.view_tail(1, r2).contains(&1000));
        assert_eq!(s.staged(), 0);
    }

    #[test]
    fn deletes_merge_via_key_map() {
        let base = fig2_table();
        let mut s = MapSet::new(0, base.num_rows(), HashSet::new());
        let pred = RangePred::open(1, 5);
        s.sideways_select(&base, 1, &pred);
        s.sideways_select(&base, 2, &pred);

        // Delete tuple with key 3 (a=2, b=21, c=22).
        s.stage_delete(2, 3);

        let r = s.sideways_select(&base, 1, &pred);
        assert!(!s.view_tail(1, r).contains(&21));
        let rc = s.sideways_select(&base, 2, &pred);
        assert_eq!(r, rc);
        assert!(!s.view_tail(2, rc).contains(&22));
        // Maps still aligned.
        assert_eq!(s.map(1).unwrap().arr.head(), s.map(2).unwrap().arr.head());
        s.map(1).unwrap().arr.check_partitioning();
    }

    #[test]
    fn mixed_updates_keep_alignment() {
        let mut base = fig2_table();
        let mut s = MapSet::new(0, base.num_rows(), HashSet::new());
        let all = RangePred::all();
        s.sideways_select(&base, 1, &RangePred::open(2, 6));
        let k1 = base.append_row(&[5, 501, 502]);
        s.stage_insert(k1);
        s.stage_delete(7, 0);
        s.sideways_select(&base, 1, &all);
        let k2 = base.append_row(&[3, 301, 302]);
        s.stage_insert(k2);
        s.sideways_select(&base, 1, &RangePred::open(0, 9));
        // Map C created last replays everything.
        let rc = s.sideways_select(&base, 2, &all);
        let rb = s.sideways_select(&base, 1, &all);
        assert_eq!(rb, rc);
        assert_eq!(s.map(1).unwrap().arr.head(), s.map(2).unwrap().arr.head());
        let c_vals = s.view_tail(2, rc).to_vec();
        assert!(c_vals.contains(&502) && c_vals.contains(&302));
        assert!(!c_vals.contains(&72), "deleted tuple gone");
        assert_eq!(c_vals.len(), 8); // 7 original + 2 inserts - 1 delete
    }

    #[test]
    fn estimate_improves_with_cracking() {
        let vals: Vec<Val> = (0..1000).map(|i| (i * 37) % 1000).collect();
        let mut t = Table::new();
        t.add_column("a", Column::new(vals));
        t.add_column("b", Column::new((0..1000).collect()));
        let mut s = MapSet::new(0, 1000, HashSet::new());
        let pred = RangePred::open(100, 300);
        let naive = s.estimate(&pred, 1000, (0, 1000));
        assert!(
            (naive - 200.0).abs() < 20.0,
            "uniform estimate ~200, got {naive}"
        );
        s.sideways_select(base_ref(&t), 1, &pred);
        let exact = s.estimate(&pred, 1000, (0, 1000));
        // After cracking by exactly this predicate the estimate is exact.
        let true_count = crackdb_columnstore::ops::select::count(t.column(0), &pred);
        assert!((exact - true_count as f64).abs() < 1e-9);
    }

    fn base_ref(t: &Table) -> &Table {
        t
    }

    /// Sibling maps must stay physically aligned under every policy —
    /// including stochastic advisory pivots (regenerated bit-for-bit by
    /// tape replay) and coarse-granular declined splits — and produce
    /// scan-identical answers, with updates interleaved.
    #[test]
    fn maps_stay_aligned_and_correct_under_every_policy() {
        let policies = [
            CrackPolicy::Standard,
            CrackPolicy::stochastic(),
            CrackPolicy::Stochastic { seed: 7 },
            CrackPolicy::CoarseGranular { min_piece: 8 },
            CrackPolicy::CoarseGranular { min_piece: 1 << 20 },
            CrackPolicy::Adaptive,
        ];
        for policy in policies {
            let mut seed = 99u64;
            let mut next = |m: i64| -> i64 {
                seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((seed >> 33) as i64).rem_euclid(m)
            };
            let n = 3000usize;
            let mut base = Table::new();
            base.add_column("a", Column::new((0..n).map(|_| next(1000)).collect()));
            base.add_column("b", Column::new((0..n as Val).collect()));
            base.add_column("c", Column::new((0..n as Val).map(|v| v * 2).collect()));
            let mut s = MapSet::with_policy(0, n, HashSet::new(), policy);
            assert_eq!(s.policy(), policy);
            let mut tombstones: Vec<RowId> = Vec::new();
            for q in 0..25 {
                let lo = next(950);
                let pred = RangePred::open(lo, lo + 50);
                if q % 5 == 4 {
                    let key = base.append_row(&[next(1000), 10_000 + q, 20_000 + q]);
                    s.stage_insert(key);
                    let victim = (q % 7) as RowId;
                    if !tombstones.contains(&victim) {
                        s.stage_delete(base.column(0).get(victim), victim);
                        tombstones.push(victim);
                    }
                }
                // Alternate which map cracks first; the other aligns.
                s.note_query(&pred);
                let (first, second) = if q % 2 == 0 { (1, 2) } else { (2, 1) };
                let r1 = s.sideways_select(&base, first, &pred);
                let r2 = s.sideways_select(&base, second, &pred);
                assert_eq!(r1, r2, "{}: areas agree at query {q}", policy.label());
                assert_eq!(
                    s.map(1).unwrap().arr.head(),
                    s.map(2).unwrap().arr.head(),
                    "{}: heads aligned at query {q}",
                    policy.label()
                );
                s.map(1).unwrap().arr.check_partitioning();
                // Filtered select matches a scan of the live rows.
                let (range, bv) = s.sideways_select_filtered(&base, 1, &pred);
                let tails = s.view_tail(1, range);
                let mut got: Vec<Val> = match bv {
                    None => tails.to_vec(),
                    Some(bv) => bv.iter_ones().map(|i| tails[i]).collect(),
                };
                got.sort_unstable();
                let mut expected: Vec<Val> = (0..base.num_rows() as RowId)
                    .filter(|k| !tombstones.contains(k))
                    .filter(|&k| pred.matches(base.column(0).get(k)))
                    .map(|k| base.column(1).get(k))
                    .collect();
                expected.sort_unstable();
                assert_eq!(got, expected, "{}: query {q} results", policy.label());
            }
            // Advisory pivots appear only under the stochastic policy
            // (the table is large enough to trigger injection).
            let advisory = s.map(1).unwrap().arr.index().advisory_count();
            match policy {
                CrackPolicy::Stochastic { .. } => {
                    assert!(advisory > 0, "stochastic policy should inject pivots")
                }
                _ => assert_eq!(advisory, 0, "{}: no advisory pivots", policy.label()),
            }
        }
    }

    /// An adaptive set that switches policy mid-life must keep sibling
    /// maps aligned — including a map created *after* the switch, whose
    /// replay crosses cracks logged under different effective policies.
    #[test]
    fn adaptive_switch_keeps_late_created_maps_aligned() {
        let n = 4000usize;
        let mut base = Table::new();
        base.add_column("a", Column::new((0..n as Val).map(|v| (v * 37) % 4000).collect()));
        base.add_column("b", Column::new((0..n as Val).collect()));
        base.add_column("c", Column::new((0..n as Val).map(|v| v * 2).collect()));
        let mut s = MapSet::with_policy(0, n, HashSet::new(), CrackPolicy::Adaptive);
        // Scattered queries shatter the map until the boundary-density
        // rule flips the advisor to coarse mid-run. (Map sets are
        // sweep-immune, so the coarse downgrade is the switch an
        // adaptive set actually performs in production.)
        let mut x = 4242u64;
        for _ in 0..60 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let lo = ((x >> 33) % 3800) as Val;
            let pred = RangePred::open(lo, lo + 120);
            s.note_query(&pred);
            s.sideways_select(&base, 1, &pred);
        }
        assert!(
            s.policy_switches() >= 1,
            "boundary density should trigger at least one policy switch"
        );
        assert_eq!(s.effective_policy(), CrackPolicy::coarse());
        // Map C is created only now: its alignment replays cracks logged
        // under Standard *and* under CoarseGranular.
        let pred = RangePred::open(500, 700);
        s.note_query(&pred);
        let rc = s.sideways_select(&base, 2, &pred);
        let rb = s.sideways_select(&base, 1, &pred);
        assert_eq!(rb, rc, "areas agree across the policy switch");
        assert_eq!(
            s.map(1).unwrap().arr.head(),
            s.map(2).unwrap().arr.head(),
            "late-created map replays logged policies bit-for-bit"
        );
        s.map(1).unwrap().arr.check_partitioning();
        let b_vals = s.view_tail(1, rb).to_vec();
        let c_vals = s.view_tail(2, rc).to_vec();
        for (b, c) in b_vals.iter().zip(&c_vals) {
            assert_eq!(*b * 2, *c, "tuple identity preserved positionally");
        }
    }

    #[test]
    fn lfu_drop_and_recreate() {
        let base = fig2_table();
        let mut s = MapSet::new(0, base.num_rows(), HashSet::new());
        let pred = RangePred::open(1, 5);
        s.sideways_select(&base, 1, &pred);
        s.sideways_select(&base, 1, &pred);
        s.sideways_select(&base, 2, &pred);
        assert_eq!(s.tuples(), 14);
        let freed = s.drop_lfu_map();
        assert_eq!(freed, 7);
        assert!(!s.has_map(2), "map C had fewer accesses");
        // Recreate on demand, still correct and aligned.
        let rc = s.sideways_select(&base, 2, &pred);
        let rb = s.sideways_select(&base, 1, &pred);
        assert_eq!(rb, rc);
        assert_eq!(s.stats.maps_created, 3);
    }
}
