//! Map sets `S_A` (§3.2–§3.5): the per-attribute collection of cracker
//! maps, their shared tape, adaptive alignment, the bit-vector operators
//! for multi-selection queries, and on-demand update merging.

use crate::bitvec::BitVec;
use crate::map::{CrackerMap, KeyMap};
use crate::tape::{DeleteBatch, InsertBatch, Tape, TapeEntry};
use crackdb_columnstore::column::Table;
use crackdb_columnstore::types::{RangePred, RowId, Val};
use std::collections::{HashMap, HashSet};

/// Instrumentation counters for a map set.
#[derive(Debug, Clone, Copy, Default)]
pub struct SetStats {
    /// Maps seeded from base columns (includes recreations after drops).
    pub maps_created: u64,
    /// Tape entries replayed during alignment (all maps).
    pub entries_replayed: u64,
    /// Cracks performed directly by queries (not via alignment).
    pub query_cracks: u64,
}

/// A map set `S_A`: all cracker maps with head attribute `A`, the tape
/// `T_A`, the key map `M_A,key`, and staged (not yet merged) updates.
#[derive(Debug, Clone)]
pub struct MapSet {
    /// The head attribute all maps of this set share.
    pub head_attr: usize,
    /// The shared reorganization log.
    pub tape: Tape,
    maps: HashMap<usize, CrackerMap>,
    key_map: Option<KeyMap>,
    staged_inserts: Vec<RowId>,
    staged_deletes: Vec<(Val, RowId)>,
    /// Keys `[0, initial_len)` existed when the set was created; maps are
    /// always seeded from exactly this snapshot and then replay the tape,
    /// which keeps late-created maps deterministically aligned.
    initial_len: usize,
    initial_excluded: HashSet<RowId>,
    /// Counters.
    pub stats: SetStats,
}

impl MapSet {
    /// Create the (empty) set for `head_attr` over a base table snapshot:
    /// `initial_len` rows of which `excluded` are already deleted.
    pub fn new(head_attr: usize, initial_len: usize, excluded: HashSet<RowId>) -> Self {
        MapSet {
            head_attr,
            tape: Tape::new(),
            maps: HashMap::new(),
            key_map: None,
            staged_inserts: Vec::new(),
            staged_deletes: Vec::new(),
            initial_len,
            initial_excluded: excluded,
            stats: SetStats::default(),
        }
    }

    /// Does a map for `tail_attr` currently exist?
    pub fn has_map(&self, tail_attr: usize) -> bool {
        self.maps.contains_key(&tail_attr)
    }

    /// Read access to a map (if materialized).
    pub fn map(&self, tail_attr: usize) -> Option<&CrackerMap> {
        self.maps.get(&tail_attr)
    }

    /// Read access to the key map (if materialized).
    pub fn key_map(&self) -> Option<&KeyMap> {
        self.key_map.as_ref()
    }

    /// Storage footprint in tuples across all maps (and the key map).
    pub fn tuples(&self) -> usize {
        self.maps.values().map(|m| m.tuples()).sum::<usize>()
            + self.key_map.as_ref().map_or(0, |k| k.tuples())
    }

    /// Tail attributes of currently materialized maps.
    pub fn map_attrs(&self) -> Vec<usize> {
        self.maps.keys().copied().collect()
    }

    /// Drop the least-frequently-accessed map; returns the tuples freed.
    /// Used by the store's storage manager for *full* maps (§4.2 compares
    /// against this policy).
    pub fn drop_lfu_map(&mut self) -> usize {
        let victim = self
            .maps
            .iter()
            .min_by_key(|(_, m)| m.accesses)
            .map(|(&a, _)| a);
        match victim {
            Some(a) => {
                let m = self.maps.remove(&a).expect("victim exists");
                m.tuples()
            }
            None => 0,
        }
    }

    /// Drop a specific map (storage management); returns tuples freed.
    pub fn drop_map(&mut self, tail_attr: usize) -> usize {
        self.maps.remove(&tail_attr).map_or(0, |m| m.tuples())
    }

    // ----- updates ---------------------------------------------------

    /// Stage an insertion: the tuple with key `key` was appended to the
    /// base table. Merged on demand when a query touches its value range.
    pub fn stage_insert(&mut self, key: RowId) {
        self.staged_inserts.push(key);
    }

    /// Stage a deletion of the tuple `key` whose head-attribute value is
    /// `head_val`.
    pub fn stage_delete(&mut self, head_val: Val, key: RowId) {
        self.staged_deletes.push((head_val, key));
    }

    /// Number of staged (unmerged) updates.
    pub fn staged(&self) -> usize {
        self.staged_inserts.len() + self.staged_deletes.len()
    }

    /// Move staged updates whose head value is relevant to `pred` into
    /// tape batches (Ripple merging at set granularity): every map will
    /// apply exactly these subsets, in tape order, during alignment.
    fn flush_staged(&mut self, pred: &RangePred, base: &Table) {
        if !self.staged_inserts.is_empty() {
            let head_col = base.column(self.head_attr);
            let mut merged = Vec::new();
            let mut i = 0;
            while i < self.staged_inserts.len() {
                let key = self.staged_inserts[i];
                if pred.matches(head_col.get(key)) {
                    merged.push(key);
                    self.staged_inserts.swap_remove(i);
                } else {
                    i += 1;
                }
            }
            if !merged.is_empty() {
                self.tape.log_inserts(InsertBatch { keys: merged });
            }
        }
        if !self.staged_deletes.is_empty() {
            let mut merged = Vec::new();
            let mut i = 0;
            while i < self.staged_deletes.len() {
                let (v, _) = self.staged_deletes[i];
                if pred.matches(v) {
                    merged.push(self.staged_deletes.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            if !merged.is_empty() {
                self.tape.log_deletes(DeleteBatch {
                    items: merged,
                    resolved: None,
                });
            }
        }
    }

    // ----- seeding & alignment ---------------------------------------

    fn seed_map(&mut self, base: &Table, tail_attr: usize) -> CrackerMap {
        let a = base.column(self.head_attr);
        let b = base.column(tail_attr);
        let mut head = Vec::with_capacity(self.initial_len);
        let mut tail = Vec::with_capacity(self.initial_len);
        for key in 0..self.initial_len as RowId {
            if !self.initial_excluded.contains(&key) {
                head.push(a.get(key));
                tail.push(b.get(key));
            }
        }
        self.stats.maps_created += 1;
        CrackerMap::seed(tail_attr, head, tail)
    }

    fn seed_key_map(&mut self, base: &Table) -> KeyMap {
        let a = base.column(self.head_attr);
        let mut head = Vec::with_capacity(self.initial_len);
        let mut keys = Vec::with_capacity(self.initial_len);
        for key in 0..self.initial_len as RowId {
            if !self.initial_excluded.contains(&key) {
                head.push(a.get(key));
                keys.push(key);
            }
        }
        KeyMap::seed(head, keys)
    }

    /// Align the key map up to (excluding) tape position `target`,
    /// resolving any unresolved delete batches it crosses.
    fn align_key_map_to(&mut self, target: usize, base: &Table) {
        let mut km = match self.key_map.take() {
            Some(km) => km,
            None => self.seed_key_map(base),
        };
        let head_col = base.column(self.head_attr);
        while km.cursor < target {
            match self.tape.entry(km.cursor).clone() {
                TapeEntry::Crack(pred) => {
                    km.arr.crack_range(&pred);
                }
                TapeEntry::Inserts(id) => {
                    for &key in &self.tape.insert_batches[id as usize].keys {
                        km.arr.ripple_insert(head_col.get(key), key);
                    }
                }
                TapeEntry::Deletes(id) => {
                    let batch = &mut self.tape.delete_batches[id as usize];
                    match &batch.resolved {
                        Some(positions) => {
                            for &p in positions.clone().iter() {
                                km.arr.ripple_delete_at(p);
                            }
                        }
                        None => {
                            // The key map is the first to cross this
                            // entry: perform the deletions by key and
                            // record the physical positions for siblings.
                            let items = batch.items.clone();
                            let mut positions = Vec::with_capacity(items.len());
                            for (v, key) in items {
                                if let Some(p) = km.arr.ripple_delete(v, |&t| t == key) {
                                    positions.push(p);
                                }
                            }
                            self.tape.delete_batches[id as usize].resolved = Some(positions);
                        }
                    }
                }
            }
            km.cursor += 1;
            self.stats.entries_replayed += 1;
        }
        self.key_map = Some(km);
    }

    /// Align a (removed-from-the-registry) map up to tape position
    /// `target` by replaying entries from its cursor.
    fn align_map(&mut self, m: &mut CrackerMap, target: usize, base: &Table) {
        let head_col = base.column(self.head_attr);
        while m.cursor < target {
            match self.tape.entry(m.cursor).clone() {
                TapeEntry::Crack(pred) => {
                    m.arr.crack_range(&pred);
                }
                TapeEntry::Inserts(id) => {
                    let tail_col = base.column(m.tail_attr);
                    for &key in &self.tape.insert_batches[id as usize].keys {
                        m.arr.ripple_insert(head_col.get(key), tail_col.get(key));
                    }
                }
                TapeEntry::Deletes(id) => {
                    if self.tape.delete_batches[id as usize].resolved.is_none() {
                        self.align_key_map_to(m.cursor + 1, base);
                    }
                    let positions = self.tape.delete_batches[id as usize]
                        .resolved
                        .clone()
                        .expect("key map resolved the batch");
                    for p in positions {
                        m.arr.ripple_delete_at(p);
                    }
                }
            }
            m.cursor += 1;
            self.stats.entries_replayed += 1;
        }
    }

    // ----- the sideways.select operator family ------------------------

    /// `sideways.select(A, v1, v2, B)` (§3.2): create the map if missing,
    /// merge relevant staged updates, align, crack by `pred`, log the
    /// crack, and return the contiguous qualifying area.
    ///
    /// View the area's values with [`Self::map`] + `arr.view(range)`.
    pub fn sideways_select(
        &mut self,
        base: &Table,
        tail_attr: usize,
        pred: &RangePred,
    ) -> (usize, usize) {
        self.flush_staged(pred, base);
        let mut m = match self.maps.remove(&tail_attr) {
            Some(m) => m,
            None => self.seed_map(base, tail_attr),
        };
        let target = self.tape.len();
        self.align_map(&mut m, target, base);
        let before = m.arr.index().len();
        let range = m.arr.crack_range(pred);
        if m.arr.index().len() > before {
            self.tape.log_crack(*pred);
            self.stats.query_cracks += 1;
        }
        m.cursor = self.tape.len();
        m.accesses += 1;
        self.maps.insert(tail_attr, m);
        range
    }

    /// Tail values of a previously selected area.
    pub fn view_tail(&self, tail_attr: usize, range: (usize, usize)) -> &[Val] {
        let m = self.maps.get(&tail_attr).expect("map exists after select");
        m.arr.view(range).1
    }

    /// Like [`Self::sideways_select`] but over the key map: returns the
    /// qualifying tuple keys (used when a plan needs tuple identities,
    /// e.g. to feed a join).
    pub fn select_keys(&mut self, base: &Table, pred: &RangePred) -> Vec<RowId> {
        self.flush_staged(pred, base);
        let target = self.tape.len();
        self.align_key_map_to(target, base);
        let mut km = self.key_map.take().expect("aligned above");
        let before = km.arr.index().len();
        let range = km.arr.crack_range(pred);
        if km.arr.index().len() > before {
            self.tape.log_crack(*pred);
            self.stats.query_cracks += 1;
        }
        km.cursor = self.tape.len();
        km.accesses += 1;
        let keys = km.arr.view((range.0, range.1)).1.to_vec();
        self.key_map = Some(km);
        keys
    }

    /// `sideways.select_create_bv` (§3.3): select on the head predicate,
    /// then build a bit vector over the qualifying area from a predicate
    /// on the tail attribute.
    pub fn select_create_bv(
        &mut self,
        base: &Table,
        tail_attr: usize,
        head_pred: &RangePred,
        tail_pred: &RangePred,
    ) -> ((usize, usize), BitVec) {
        let range = self.sideways_select(base, tail_attr, head_pred);
        let tails = self.view_tail(tail_attr, range);
        let bv = BitVec::from_fn(tails.len(), |i| tail_pred.matches(tails[i]));
        (range, bv)
    }

    /// `sideways.select_refine_bv` (§3.3): clear bits of tuples whose tail
    /// value fails `tail_pred`. The map is aligned first, so the area is
    /// positionally identical to the one `bv` was created over.
    pub fn select_refine_bv(
        &mut self,
        base: &Table,
        tail_attr: usize,
        head_pred: &RangePred,
        tail_pred: &RangePred,
        bv: &mut BitVec,
    ) {
        let range = self.sideways_select(base, tail_attr, head_pred);
        let tails = self.view_tail(tail_attr, range);
        assert_eq!(
            tails.len(),
            bv.len(),
            "aligned maps must agree on the area size"
        );
        bv.refine(|i| tail_pred.matches(tails[i]));
    }

    /// `sideways.reconstruct` (§3.3): stream the tail values of the
    /// qualifying area whose bits are set.
    pub fn reconstruct_with<F: FnMut(Val)>(
        &mut self,
        base: &Table,
        tail_attr: usize,
        head_pred: &RangePred,
        bv: &BitVec,
        mut consume: F,
    ) {
        let range = self.sideways_select(base, tail_attr, head_pred);
        let tails = self.view_tail(tail_attr, range);
        assert_eq!(
            tails.len(),
            bv.len(),
            "aligned maps must agree on the area size"
        );
        for i in bv.iter_ones() {
            consume(tails[i]);
        }
    }

    // ----- disjunctive variants (§3.3) ---------------------------------

    /// Disjunctive first step: crack by the head predicate and return a
    /// bit vector sized to the whole map with the qualifying area's bits
    /// set.
    pub fn disj_create_bv(
        &mut self,
        base: &Table,
        tail_attr: usize,
        head_pred: &RangePred,
    ) -> ((usize, usize), BitVec) {
        let range = self.sideways_select(base, tail_attr, head_pred);
        let n = self.maps[&tail_attr].arr.len();
        let mut bv = BitVec::zeros(n);
        for i in range.0..range.1 {
            bv.set(i);
        }
        (range, bv)
    }

    /// Disjunctive refinement: scan the areas *outside* the cracked area
    /// `w` and set bits of tuples whose tail value satisfies `tail_pred`.
    pub fn disj_refine_bv(
        &mut self,
        base: &Table,
        tail_attr: usize,
        head_pred: &RangePred,
        tail_pred: &RangePred,
        bv: &mut BitVec,
    ) {
        let range = self.sideways_select(base, tail_attr, head_pred);
        let m = &self.maps[&tail_attr];
        let n = m.arr.len();
        assert_eq!(n, bv.len(), "aligned maps must agree on total size");
        let tails = m.arr.tail();
        for i in (0..range.0).chain(range.1..n) {
            if !bv.get(i) && tail_pred.matches(tails[i]) {
                bv.set(i);
            }
        }
    }

    /// Disjunctive reconstruction: stream tail values at all set bits
    /// (whole-map indexing).
    pub fn disj_reconstruct_with<F: FnMut(Val)>(
        &mut self,
        base: &Table,
        tail_attr: usize,
        head_pred: &RangePred,
        bv: &BitVec,
        mut consume: F,
    ) {
        self.sideways_select(base, tail_attr, head_pred);
        let m = &self.maps[&tail_attr];
        assert_eq!(
            m.arr.len(),
            bv.len(),
            "aligned maps must agree on total size"
        );
        let tails = m.arr.tail();
        for i in bv.iter_ones() {
            consume(tails[i]);
        }
    }

    // ----- self-organizing histogram (§3.3) ----------------------------

    /// Estimate the result size of `pred` using the most-aligned map's
    /// cracker index, falling back to a uniform assumption over `domain`
    /// when the set has no maps yet. `n` is the table cardinality.
    pub fn estimate(&self, pred: &RangePred, n: usize, domain: (Val, Val)) -> f64 {
        let best = self
            .maps
            .values()
            .map(|m| (self.tape.lag(m.cursor), m.arr.index(), m.arr.len()))
            .chain(
                self.key_map
                    .as_ref()
                    .map(|k| (self.tape.lag(k.cursor), k.arr.index(), k.arr.len())),
            )
            .min_by_key(|(lag, _, _)| *lag);
        match best {
            Some((_, index, len)) => index.estimate_size(pred, len, domain).estimate,
            None => uniform_estimate(pred, n, domain),
        }
    }
}

/// Uniform-distribution estimate of qualifying tuples with no index
/// knowledge at all. Total for degenerate inputs: empty tables yield
/// `0.0`, single-value and inverted domains are treated as unit spans —
/// never NaN, which would poison the executor's predicate ordering.
pub fn uniform_estimate(pred: &RangePred, n: usize, domain: (Val, Val)) -> f64 {
    let (d_lo, d_hi) = if domain.0 <= domain.1 {
        domain
    } else {
        (domain.1, domain.0)
    };
    let span = (d_hi - d_lo).max(1) as f64;
    let lo = pred.lo.map_or(d_lo, |b| b.value).clamp(d_lo, d_hi);
    let hi = pred.hi.map_or(d_hi, |b| b.value).clamp(d_lo, d_hi);
    let frac = ((hi - lo).max(0) as f64 / span).clamp(0.0, 1.0);
    frac * n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crackdb_columnstore::column::Column;

    /// The Figure 2 example relation.
    fn fig2_table() -> Table {
        let mut t = Table::new();
        t.add_column("a", Column::new(vec![7, 4, 1, 2, 8, 3, 6]));
        t.add_column("b", Column::new(vec![71, 41, 11, 21, 81, 31, 61]));
        t.add_column("c", Column::new(vec![72, 42, 12, 22, 82, 32, 62]));
        t
    }

    fn sorted(mut v: Vec<Val>) -> Vec<Val> {
        v.sort_unstable();
        v
    }

    #[test]
    fn figure2_alignment_scenario() {
        // Q1: select B where A < 3; Q2: select C where A < 5;
        // Q3: select B, C where A < 4 — maps must be aligned.
        let base = fig2_table();
        let mut s = MapSet::new(0, base.num_rows(), HashSet::new());
        let lt = |v| RangePred::less(crackdb_columnstore::types::Bound::exclusive(v));

        let r1 = s.sideways_select(&base, 1, &lt(3));
        assert_eq!(sorted(s.view_tail(1, r1).to_vec()), vec![11, 21]);

        let r2 = s.sideways_select(&base, 2, &lt(5));
        assert_eq!(sorted(s.view_tail(2, r2).to_vec()), vec![12, 22, 32, 42]);

        // Q3: both maps used; results must be positionally aligned.
        let rb = s.sideways_select(&base, 1, &lt(4));
        let rc = s.sideways_select(&base, 2, &lt(4));
        assert_eq!(rb, rc, "aligned maps produce identical areas");
        let b_vals = s.view_tail(1, rb).to_vec();
        let c_vals = s.view_tail(2, rc).to_vec();
        assert_eq!(sorted(b_vals.clone()), vec![11, 21, 31]);
        // Positional alignment: b and c of the same tuple share position.
        for (b, c) in b_vals.iter().zip(&c_vals) {
            assert_eq!(b + 1, *c, "tuple identity preserved positionally");
        }
    }

    #[test]
    fn maps_and_heads_stay_consistent() {
        let base = fig2_table();
        let mut s = MapSet::new(0, base.num_rows(), HashSet::new());
        for pred in [
            RangePred::open(1, 5),
            RangePred::open(2, 7),
            RangePred::open(0, 3),
            RangePred::point(6),
        ] {
            let r1 = s.sideways_select(&base, 1, &pred);
            let r2 = s.sideways_select(&base, 2, &pred);
            assert_eq!(r1, r2);
            s.map(1).unwrap().arr.check_partitioning();
            s.map(2).unwrap().arr.check_partitioning();
            // Heads of both maps are identical after alignment.
            assert_eq!(s.map(1).unwrap().arr.head(), s.map(2).unwrap().arr.head());
        }
    }

    #[test]
    fn conjunctive_bitvec_plan() {
        // select C where 1 < A < 8 and 20 < B < 70 over fig2.
        let base = fig2_table();
        let mut s = MapSet::new(0, base.num_rows(), HashSet::new());
        let head_pred = RangePred::open(1, 8);
        let (_, mut bv) = s.select_create_bv(&base, 1, &head_pred, &RangePred::open(20, 70));
        let mut out = Vec::new();
        s.reconstruct_with(&base, 2, &head_pred, &bv.clone(), |v| out.push(v));
        // Qualifying tuples: A in {2..7}\{1,8} with B in (20,70):
        // A=7(B=71 no), A=4(41 yes), A=2(21 yes), A=3(31 yes), A=6(61 yes).
        assert_eq!(sorted(out), vec![22, 32, 42, 62]);

        // Refine further with a predicate on C.
        s.select_refine_bv(&base, 2, &head_pred, &RangePred::open(30, 50), &mut bv);
        let mut out2 = Vec::new();
        s.reconstruct_with(&base, 2, &head_pred, &bv, |v| out2.push(v));
        assert_eq!(sorted(out2), vec![32, 42]);
    }

    #[test]
    fn disjunctive_bitvec_plan() {
        // select C where A < 2 or B > 70 over fig2.
        let base = fig2_table();
        let mut s = MapSet::new(0, base.num_rows(), HashSet::new());
        let head_pred = RangePred::less(crackdb_columnstore::types::Bound::exclusive(2));
        let (_, mut bv) = s.disj_create_bv(&base, 1, &head_pred);
        s.disj_refine_bv(
            &base,
            1,
            &head_pred,
            &RangePred::greater(crackdb_columnstore::types::Bound::exclusive(70)),
            &mut bv,
        );
        let mut out = Vec::new();
        s.disj_reconstruct_with(&base, 2, &head_pred, &bv, |v| out.push(v));
        // A=1 qualifies (A<2); B=71 (A=7), B=81 (A=8) qualify via B>70.
        assert_eq!(sorted(out), vec![12, 72, 82]);
    }

    #[test]
    fn select_keys_matches_scan() {
        let base = fig2_table();
        let mut s = MapSet::new(0, base.num_rows(), HashSet::new());
        let pred = RangePred::open(2, 7);
        let mut keys = s.select_keys(&base, &pred);
        keys.sort_unstable();
        let expected = crackdb_columnstore::ops::select::select(base.column(0), &pred);
        assert_eq!(keys, expected);
    }

    #[test]
    fn inserts_merge_on_demand_and_align() {
        let mut base = fig2_table();
        let mut s = MapSet::new(0, base.num_rows(), HashSet::new());
        let pred = RangePred::open(1, 5);
        s.sideways_select(&base, 1, &pred);

        // Insert tuple (a=4, b=999, c=998).
        let key = base.append_row(&[4, 999, 998]);
        s.stage_insert(key);

        // A query in range merges it; first on map B only.
        let r = s.sideways_select(&base, 1, &pred);
        assert!(s.view_tail(1, r).contains(&999));

        // Map C created later must still align and contain the insert.
        let rc = s.sideways_select(&base, 2, &pred);
        assert_eq!(r, rc);
        assert!(s.view_tail(2, rc).contains(&998));
        // Positional identity.
        let b_pos = s.view_tail(1, r).iter().position(|&v| v == 999);
        let c_pos = s.view_tail(2, rc).iter().position(|&v| v == 998);
        assert_eq!(b_pos, c_pos);
    }

    #[test]
    fn inserts_out_of_range_stay_staged() {
        let mut base = fig2_table();
        let mut s = MapSet::new(0, base.num_rows(), HashSet::new());
        let key = base.append_row(&[100, 1000, 1001]);
        s.stage_insert(key);
        let r = s.sideways_select(&base, 1, &RangePred::open(1, 5));
        assert!(!s.view_tail(1, r).contains(&1000));
        assert_eq!(s.staged(), 1);
        // Now query the range containing it.
        let r2 = s.sideways_select(&base, 1, &RangePred::open(50, 200));
        assert!(s.view_tail(1, r2).contains(&1000));
        assert_eq!(s.staged(), 0);
    }

    #[test]
    fn deletes_merge_via_key_map() {
        let base = fig2_table();
        let mut s = MapSet::new(0, base.num_rows(), HashSet::new());
        let pred = RangePred::open(1, 5);
        s.sideways_select(&base, 1, &pred);
        s.sideways_select(&base, 2, &pred);

        // Delete tuple with key 3 (a=2, b=21, c=22).
        s.stage_delete(2, 3);

        let r = s.sideways_select(&base, 1, &pred);
        assert!(!s.view_tail(1, r).contains(&21));
        let rc = s.sideways_select(&base, 2, &pred);
        assert_eq!(r, rc);
        assert!(!s.view_tail(2, rc).contains(&22));
        // Maps still aligned.
        assert_eq!(s.map(1).unwrap().arr.head(), s.map(2).unwrap().arr.head());
        s.map(1).unwrap().arr.check_partitioning();
    }

    #[test]
    fn mixed_updates_keep_alignment() {
        let mut base = fig2_table();
        let mut s = MapSet::new(0, base.num_rows(), HashSet::new());
        let all = RangePred::all();
        s.sideways_select(&base, 1, &RangePred::open(2, 6));
        let k1 = base.append_row(&[5, 501, 502]);
        s.stage_insert(k1);
        s.stage_delete(7, 0);
        s.sideways_select(&base, 1, &all);
        let k2 = base.append_row(&[3, 301, 302]);
        s.stage_insert(k2);
        s.sideways_select(&base, 1, &RangePred::open(0, 9));
        // Map C created last replays everything.
        let rc = s.sideways_select(&base, 2, &all);
        let rb = s.sideways_select(&base, 1, &all);
        assert_eq!(rb, rc);
        assert_eq!(s.map(1).unwrap().arr.head(), s.map(2).unwrap().arr.head());
        let c_vals = s.view_tail(2, rc).to_vec();
        assert!(c_vals.contains(&502) && c_vals.contains(&302));
        assert!(!c_vals.contains(&72), "deleted tuple gone");
        assert_eq!(c_vals.len(), 8); // 7 original + 2 inserts - 1 delete
    }

    #[test]
    fn estimate_improves_with_cracking() {
        let vals: Vec<Val> = (0..1000).map(|i| (i * 37) % 1000).collect();
        let mut t = Table::new();
        t.add_column("a", Column::new(vals));
        t.add_column("b", Column::new((0..1000).collect()));
        let mut s = MapSet::new(0, 1000, HashSet::new());
        let pred = RangePred::open(100, 300);
        let naive = s.estimate(&pred, 1000, (0, 1000));
        assert!(
            (naive - 200.0).abs() < 20.0,
            "uniform estimate ~200, got {naive}"
        );
        s.sideways_select(base_ref(&t), 1, &pred);
        let exact = s.estimate(&pred, 1000, (0, 1000));
        // After cracking by exactly this predicate the estimate is exact.
        let true_count = crackdb_columnstore::ops::select::count(t.column(0), &pred);
        assert!((exact - true_count as f64).abs() < 1e-9);
    }

    fn base_ref(t: &Table) -> &Table {
        t
    }

    #[test]
    fn lfu_drop_and_recreate() {
        let base = fig2_table();
        let mut s = MapSet::new(0, base.num_rows(), HashSet::new());
        let pred = RangePred::open(1, 5);
        s.sideways_select(&base, 1, &pred);
        s.sideways_select(&base, 1, &pred);
        s.sideways_select(&base, 2, &pred);
        assert_eq!(s.tuples(), 14);
        let freed = s.drop_lfu_map();
        assert_eq!(freed, 7);
        assert!(!s.has_map(2), "map C had fewer accesses");
        // Recreate on demand, still correct and aligned.
        let rc = s.sideways_select(&base, 2, &pred);
        let rb = s.sideways_select(&base, 1, &pred);
        assert_eq!(rb, rc);
        assert_eq!(s.stats.maps_created, 3);
    }
}
