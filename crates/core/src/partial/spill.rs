//! Disk spill tier for partial maps: evicted chunks serialize to
//! per-column spill files and *reload* on re-access instead of being
//! recracked from the base columns.
//!
//! This deliberately goes beyond §3.5 of the paper (which only discards
//! under the storage budget): a spilled chunk keeps its full state —
//! head (unless dropped), tail, cracker index, LFU counters and, most
//! importantly, its **tape cursor**, i.e. the staged-update watermark.
//! On reload the chunk re-enters the area exactly where it left and the
//! ordinary partial-alignment machinery replays whatever the tape
//! accumulated while it was cold, so un-merge/update-replay semantics
//! are preserved by construction: an area with spilled chunks stays
//! fetched and keeps its tape (it only reverts to unfetched — returning
//! merged updates to the staged lists — once *neither* resident nor
//! spilled chunks remain).
//!
//! Record format (little-endian, length-prefixed, checksummed):
//!
//! ```text
//! [ 0.. 4)  magic "CKSP"
//! [ 4.. 8)  u32 version (2)
//! [ 8..16)  u64 payload length
//! [16..  )  payload:
//!             u64 flags (bit0: head present)
//!             u64 tape cursor (staged-update watermark)
//!             u64 LFU access count
//!             u64 last-access clock (eviction recency; v2)
//!             u64 n (tuples)
//!             n × i64 head values     (only when bit0 set)
//!             n × i64 tail values
//!             u64 live boundary count
//!             per boundary: i64 value, u64 position,
//!                           u8 kind (0 = Lt, 1 = Le), u8 advisory,
//!                           6 bytes padding
//! [16+len)  u64 word-wise multiply-xor checksum of the payload
//! ```
//!
//! The checksum deliberately is *not* the byte-serial FNV-1a the segment
//! files use: spill records are written and verified on the query path
//! (every eviction and every reload), so the checksum runs word-at-a-time
//! — one multiply-xor mix per 8 payload bytes — to keep a reload
//! measurably cheaper than recracking the chunk from the base.
//!
//! Only *live* boundaries are serialized: lazily deleted shell nodes are
//! invisible to answers, so dropping them across a spill round-trip
//! cannot change any result.

use super::Chunk;
use crackdb_columnstore::lock_unpoisoned;
use crackdb_columnstore::storage::StorageError;
use crackdb_columnstore::types::Val;
use crackdb_cracking::crack::BoundKind;
use crackdb_cracking::CrackerIndex;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

const SPILL_MAGIC: [u8; 4] = *b"CKSP";
/// v2 added the last-access clock to the payload so eviction scoring
/// survives a spill round-trip. Decoding stays strict: a version we did
/// not write is corruption, not a compatibility case.
const SPILL_VERSION: u32 = 2;
const HEADER_LEN: usize = 16;

/// Location of one spilled chunk inside its column's spill file.
#[derive(Debug, Clone, Copy)]
pub struct SpillSlot {
    /// Byte offset of the record.
    pub offset: u64,
    /// Record length in bytes.
    pub bytes: u32,
    /// Slot capacity (>= bytes; slots are recycled first-fit).
    pub cap: u32,
    /// Tuples in the spilled chunk (for budget accounting on reload).
    pub tuples: u32,
}

/// One per-column spill file with a free list of released slots.
#[derive(Debug)]
struct SpillFile {
    file: File,
    end: u64,
    /// Released `(offset, cap)` slots, reused best-fit.
    free: Vec<(u64, u32)>,
}

#[derive(Debug)]
struct SpillShared {
    dir: PathBuf,
    label: String,
    files: Mutex<HashMap<usize, SpillFile>>,
}

impl SpillShared {
    fn path_for(&self, attr: usize) -> PathBuf {
        self.dir.join(format!("{}-col{attr}.spill", self.label))
    }
}

impl Drop for SpillShared {
    fn drop(&mut self) {
        // Best-effort cleanup: remove this tier's files, then the
        // directory if we were the last tier using it.
        if let Ok(files) = self.files.get_mut() {
            for attr in files.keys().copied().collect::<Vec<_>>() {
                std::fs::remove_file(self.path_for(attr)).ok();
            }
        }
        std::fs::remove_dir(&self.dir).ok();
    }
}

/// The spill tier of one [`super::PartialSet`]: per-tail-attribute spill
/// files under a directory. Cloning shares the files (a cloned set spills
/// into the same tier).
#[derive(Debug, Clone)]
pub struct SpillTier {
    inner: Arc<SpillShared>,
}

impl SpillTier {
    /// A tier writing files named `<label>-col<attr>.spill` under `dir`.
    /// The directory is created lazily on first write.
    pub fn new(dir: PathBuf, label: impl Into<String>) -> Self {
        SpillTier {
            inner: Arc::new(SpillShared {
                dir,
                label: label.into(),
                files: Mutex::new(HashMap::new()),
            }),
        }
    }

    /// Path of the spill file for `attr` (test hook for corruption
    /// injection; the file exists only after the first spill).
    pub fn file_path(&self, attr: usize) -> PathBuf {
        self.inner.path_for(attr)
    }

    /// Write one serialized chunk record to `attr`'s spill file, reusing
    /// a released slot when one fits.
    pub fn write(
        &self,
        attr: usize,
        record: &[u8],
        tuples: u32,
    ) -> Result<SpillSlot, StorageError> {
        let mut files = lock_unpoisoned(&self.inner.files);
        let sf = match files.entry(attr) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                std::fs::create_dir_all(&self.inner.dir).map_err(|err| {
                    StorageError::new(
                        format!("create spill dir {}", self.inner.dir.display()),
                        err,
                    )
                })?;
                let path = self.inner.path_for(attr);
                let file = OpenOptions::new()
                    .read(true)
                    .write(true)
                    .create(true)
                    .truncate(true)
                    .open(&path)
                    .map_err(|err| {
                        StorageError::new(format!("create spill file {}", path.display()), err)
                    })?;
                e.insert(SpillFile {
                    file,
                    end: 0,
                    free: Vec::new(),
                })
            }
        };
        let len = record.len() as u32;
        // Best fit among released slots; otherwise append.
        let reuse = sf
            .free
            .iter()
            .enumerate()
            .filter(|(_, &(_, cap))| cap >= len)
            .min_by_key(|(_, &(_, cap))| cap)
            .map(|(i, _)| i);
        let (offset, cap) = match reuse {
            Some(i) => sf.free.swap_remove(i),
            None => {
                let off = sf.end;
                sf.end += len as u64;
                (off, len)
            }
        };
        sf.file.write_all_at(record, offset).map_err(|err| {
            StorageError::new(
                format!(
                    "write spill record to {}",
                    self.inner.path_for(attr).display()
                ),
                err,
            )
        })?;
        Ok(SpillSlot {
            offset,
            bytes: len,
            cap,
            tuples,
        })
    }

    /// Read back a record written by [`SpillTier::write`].
    pub fn read(&self, attr: usize, slot: SpillSlot) -> Result<Vec<u8>, StorageError> {
        let mut buf = Vec::new();
        self.read_into(attr, slot, &mut buf)?;
        Ok(buf)
    }

    /// Read a record into a caller-owned buffer (resized to the record
    /// length), so reload loops recycle one allocation across chunks.
    pub fn read_into(
        &self,
        attr: usize,
        slot: SpillSlot,
        buf: &mut Vec<u8>,
    ) -> Result<(), StorageError> {
        let files = lock_unpoisoned(&self.inner.files);
        let sf = files.get(&attr).ok_or_else(|| {
            StorageError::corrupt(
                format!("read spill record for column {attr}"),
                "no spill file for this column",
            )
        })?;
        buf.resize(slot.bytes as usize, 0);
        sf.file.read_exact_at(buf, slot.offset).map_err(|err| {
            StorageError::new(
                format!(
                    "read spill record from {}",
                    self.inner.path_for(attr).display()
                ),
                err,
            )
        })
    }

    /// Return a slot's bytes to the free list for reuse.
    pub fn release(&self, attr: usize, slot: SpillSlot) {
        let mut files = lock_unpoisoned(&self.inner.files);
        if let Some(sf) = files.get_mut(&attr) {
            sf.free.push((slot.offset, slot.cap));
        }
    }
}

/// Word-wise payload checksum: one multiply-xor mix per 8-byte word
/// (zero-padded tail), seeded with the length so truncation to a
/// zero-prefix cannot collide. ~8x the throughput of byte-serial FNV-1a,
/// which matters because this runs on every spill write *and* reload.
fn spill_checksum(bytes: &[u8]) -> u64 {
    const M: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ (bytes.len() as u64).wrapping_mul(M);
    let mut words = bytes.chunks_exact(8);
    // One xor + multiply per word: multiplication by an odd constant is
    // invertible, so corrupting any single word always changes the sum.
    for w in &mut words {
        // INVARIANT: chunks_exact(8) yields exactly-8-byte slices.
        let x = u64::from_le_bytes(w.try_into().expect("8-byte word"));
        h = (h ^ x).wrapping_mul(M);
    }
    let rem = words.remainder();
    if !rem.is_empty() {
        let mut last = [0u8; 8];
        last[..rem.len()].copy_from_slice(rem);
        h = (h ^ u64::from_le_bytes(last)).wrapping_mul(M);
    }
    // Final avalanche so low-entropy payload differences spread across
    // the full 64 bits.
    h ^= h >> 29;
    h.wrapping_mul(M) ^ (h >> 32)
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Bulk-append a value array in one resize + word-wise copy loop (the
/// per-value `extend_from_slice` path is 8-byte-at-a-time and dominates
/// encode time for real chunk sizes).
fn put_vals(out: &mut Vec<u8>, vals: &[Val]) {
    let start = out.len();
    out.resize(start + vals.len() * 8, 0);
    for (dst, v) in out[start..].chunks_exact_mut(8).zip(vals) {
        dst.copy_from_slice(&v.to_le_bytes());
    }
}

/// Bulk-decode `n` values (the inverse of [`put_vals`]).
fn take_vals(r: &mut Reader<'_>, n: usize) -> Result<Vec<Val>, String> {
    let raw = r.take(n * 8)?;
    Ok(raw
        .chunks_exact(8)
        // INVARIANT: chunks_exact(8) yields exactly-8-byte slices.
        .map(|w| i64::from_le_bytes(w.try_into().expect("8-byte value")))
        .collect())
}

/// Cursor over a byte slice with bounds-checked little-endian reads.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.pos + n > self.buf.len() {
            return Err(format!(
                "record truncated: need {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u64(&mut self) -> Result<u64, String> {
        // INVARIANT: take(8) returned a slice of exactly 8 bytes.
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn i64(&mut self) -> Result<i64, String> {
        // INVARIANT: take(8) returned a slice of exactly 8 bytes.
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
}

/// Serialize a chunk into a fresh spill record buffer.
pub fn encode_chunk(chunk: &Chunk) -> Vec<u8> {
    let mut out = Vec::new();
    encode_chunk_into(chunk, &mut out);
    out
}

/// Serialize a chunk into a recycled buffer (cleared first): eviction
/// loops reuse one allocation across arbitrarily many chunks.
pub fn encode_chunk_into(chunk: &Chunk, out: &mut Vec<u8>) {
    let n = chunk.len();
    let head = chunk.head();
    let bounds = chunk.index().boundaries();
    let payload_len = 8 * 5 + head.map_or(0, |h| h.len() * 8) + n * 8 + 8 + bounds.len() * 24;
    out.clear();
    out.reserve(HEADER_LEN + payload_len + 8);
    out.extend_from_slice(&SPILL_MAGIC);
    out.extend_from_slice(&SPILL_VERSION.to_le_bytes());
    put_u64(out, payload_len as u64);
    let payload_start = out.len();
    let flags: u64 = if head.is_some() { 1 } else { 0 };
    put_u64(out, flags);
    put_u64(out, chunk.cursor as u64);
    put_u64(out, chunk.accesses);
    put_u64(out, chunk.last_access);
    put_u64(out, n as u64);
    if let Some(h) = head {
        put_vals(out, h);
    }
    put_vals(out, chunk.tail());
    put_u64(out, bounds.len() as u64);
    for ((val, kind), pos) in bounds {
        put_i64(out, val);
        put_u64(out, pos as u64);
        out.push(match kind {
            BoundKind::Lt => 0,
            BoundKind::Le => 1,
        });
        out.push(chunk.index().is_advisory((val, kind)) as u8);
        out.extend_from_slice(&[0u8; 6]);
    }
    debug_assert_eq!(out.len() - payload_start, payload_len);
    let sum = spill_checksum(&out[payload_start..]);
    put_u64(out, sum);
}

/// Deserialize a spill record back into a chunk, verifying magic,
/// length and checksum. Corruption and truncation surface as
/// [`StorageError`]s with `InvalidData` sources.
pub fn decode_chunk(bytes: &[u8], context: &str) -> Result<Chunk, StorageError> {
    decode_inner(bytes).map_err(|detail| StorageError::corrupt(context.to_string(), detail))
}

fn decode_inner(bytes: &[u8]) -> Result<Chunk, String> {
    if bytes.len() < HEADER_LEN + 8 {
        return Err(format!("record too short ({} bytes)", bytes.len()));
    }
    if bytes[..4] != SPILL_MAGIC {
        return Err("bad record magic".into());
    }
    // INVARIANT: fixed 4-byte subrange of the length-checked header.
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4"));
    if version != SPILL_VERSION {
        return Err(format!("unsupported record version {version}"));
    }
    // INVARIANT: fixed 8-byte subrange of the length-checked header.
    let payload_len = u64::from_le_bytes(bytes[8..16].try_into().expect("8")) as usize;
    if bytes.len() != HEADER_LEN + payload_len + 8 {
        return Err(format!(
            "record length mismatch: header says {} payload bytes, record has {}",
            payload_len,
            bytes.len() - HEADER_LEN - 8
        ));
    }
    let payload = &bytes[HEADER_LEN..HEADER_LEN + payload_len];
    let expected = u64::from_le_bytes(
        bytes[HEADER_LEN + payload_len..]
            .try_into()
            // INVARIANT: the length check above pins the record to
            // exactly HEADER_LEN + payload_len + 8 bytes: 8-byte tail.
            .expect("8-byte checksum"),
    );
    let actual = spill_checksum(payload);
    if actual != expected {
        return Err(format!(
            "record checksum mismatch (expected {expected:#x}, got {actual:#x})"
        ));
    }
    let mut r = Reader {
        buf: payload,
        pos: 0,
    };
    let flags = r.u64()?;
    let cursor = r.u64()? as usize;
    let accesses = r.u64()?;
    let last_access = r.u64()?;
    let n = r.u64()? as usize;
    let head = if flags & 1 != 0 {
        Some(take_vals(&mut r, n)?)
    } else {
        None
    };
    let tail = take_vals(&mut r, n)?;
    let nbounds = r.u64()? as usize;
    let mut index = CrackerIndex::new();
    for _ in 0..nbounds {
        let val = r.i64()?;
        let pos = r.u64()? as usize;
        let raw = r.take(8)?;
        let kind = match raw[0] {
            0 => BoundKind::Lt,
            1 => BoundKind::Le,
            other => return Err(format!("bad boundary kind byte {other}")),
        };
        if pos > n {
            return Err(format!("boundary position {pos} exceeds chunk length {n}"));
        }
        if raw[1] != 0 {
            index.record_advisory((val, kind), pos);
        } else {
            index.record((val, kind), pos);
        }
    }
    Ok(Chunk::from_spill_parts(
        head,
        tail,
        index,
        cursor,
        accesses,
        last_access,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crackdb_columnstore::types::RangePred;

    fn cracked_chunk() -> Chunk {
        let mut c = Chunk::seed(
            vec![12, 3, 5, 9, 15, 22, 7],
            vec![120, 30, 50, 90, 150, 220, 70],
            None,
        );
        c.crack_range(&RangePred::open(4, 13));
        c.cursor = 3;
        c.accesses = 9;
        c.last_access = 41;
        c
    }

    #[test]
    fn chunk_record_roundtrip() {
        let c = cracked_chunk();
        let rec = encode_chunk(&c);
        let d = decode_chunk(&rec, "test").unwrap();
        assert_eq!(d.head(), c.head());
        assert_eq!(d.tail(), c.tail());
        assert_eq!(d.cursor, 3);
        assert_eq!(d.accesses, 9);
        assert_eq!(d.last_access, 41);
        assert_eq!(d.index().boundaries(), c.index().boundaries());
        // range_of over the reloaded index matches.
        assert_eq!(
            d.range_of(&RangePred::open(4, 13)),
            c.range_of(&RangePred::open(4, 13))
        );
    }

    #[test]
    fn head_dropped_roundtrip() {
        let mut c = cracked_chunk();
        c.drop_head();
        let d = decode_chunk(&encode_chunk(&c), "test").unwrap();
        assert!(d.head_dropped());
        assert_eq!(d.tail(), c.tail());
    }

    #[test]
    fn corrupted_record_is_rejected() {
        let c = cracked_chunk();
        let mut rec = encode_chunk(&c);
        let mid = rec.len() / 2;
        rec[mid] ^= 0xFF;
        let err = decode_chunk(&rec, "test").unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn truncated_record_is_rejected() {
        let c = cracked_chunk();
        let rec = encode_chunk(&c);
        let err = decode_chunk(&rec[..rec.len() - 10], "test").unwrap_err();
        assert!(err.to_string().contains("mismatch"), "{err}");
    }

    #[test]
    fn tier_write_read_release_reuse() {
        let mut dir = std::env::temp_dir();
        dir.push(format!("crackdb-spilltier-test-{}", std::process::id()));
        let tier = SpillTier::new(dir.clone(), "set0");
        let rec = encode_chunk(&cracked_chunk());
        let slot = tier.write(1, &rec, 7).unwrap();
        assert_eq!(tier.read(1, slot).unwrap(), rec);
        tier.release(1, slot);
        // A same-size record reuses the released slot.
        let slot2 = tier.write(1, &rec, 7).unwrap();
        assert_eq!(slot2.offset, slot.offset);
        drop(tier); // removes files and the directory
        assert!(!dir.exists());
    }
}
