//! A chunk of a partial map (§4.1): an independently cracked two-column
//! table covering one value range (area) of the head attribute, with its
//! own cracker index and its own cursor into the *area tape*.
//!
//! The head column is droppable ("Dropping the Head Column", §4.1): a
//! chunk that is no longer being cracked can shed half its storage; if a
//! later query needs to crack it after all, the head is recovered
//! deterministically by re-seeding from the chunk map and replaying the
//! area tape up to the chunk's cursor.

use super::AreaEntry;
use crackdb_columnstore::column::Column;
use crackdb_columnstore::types::{RangePred, Val};
use crackdb_cracking::index::pred_keys;
use crackdb_cracking::{BoundaryKey, CrackPolicy, CrackedArray, CrackerIndex, Span};

/// One chunk of a partial map.
#[derive(Debug, Clone)]
pub struct Chunk {
    /// Head values; `None` after the head column was dropped.
    head: Option<Vec<Val>>,
    /// Tail (projected attribute) values.
    tail: Vec<Val>,
    /// Partitioning knowledge. Survives head drops, and (as a lazily
    /// deleted shell) even whole-chunk drops.
    index: CrackerIndex,
    /// Position in the area tape: entries `< cursor` have been applied.
    pub cursor: usize,
    /// LFU access counter.
    pub accesses: u64,
    /// Recency tiebreak for eviction.
    pub last_access: u64,
}

impl Chunk {
    /// Seed a fresh chunk from fetched head/tail values, optionally
    /// reviving a lazily deleted index shell (its nodes are reused as the
    /// tape replay re-records the same boundaries).
    pub fn seed(head: Vec<Val>, tail: Vec<Val>, shell: Option<CrackerIndex>) -> Self {
        assert_eq!(head.len(), tail.len());
        Chunk {
            head: Some(head),
            tail,
            index: shell.unwrap_or_default(),
            cursor: 0,
            accesses: 0,
            last_access: 0,
        }
    }

    /// Reassemble a chunk from deserialized spill-record parts. The
    /// cursor is the chunk's staged-update watermark: alignment resumes
    /// from it exactly as if the chunk had stayed resident, and the
    /// access bookkeeping (`accesses`, `last_access`) survives the
    /// round-trip so eviction scoring doesn't restart from cold.
    pub fn from_spill_parts(
        head: Option<Vec<Val>>,
        tail: Vec<Val>,
        index: CrackerIndex,
        cursor: usize,
        accesses: u64,
        last_access: u64,
    ) -> Self {
        if let Some(h) = &head {
            assert_eq!(h.len(), tail.len());
        }
        Chunk {
            head,
            tail,
            index,
            cursor,
            accesses,
            last_access,
        }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tail.len()
    }

    /// `true` when the chunk holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tail.is_empty()
    }

    /// Tail values (always present).
    pub fn tail(&self) -> &[Val] {
        &self.tail
    }

    /// Head values if not dropped.
    pub fn head(&self) -> Option<&[Val]> {
        self.head.as_deref()
    }

    /// `true` when the head column was dropped.
    pub fn head_dropped(&self) -> bool {
        self.head.is_none()
    }

    /// The chunk's cracker index.
    pub fn index(&self) -> &CrackerIndex {
        &self.index
    }

    /// Drop the head column, halving the chunk's value footprint at the
    /// price of losing the ability to crack without recovery.
    pub fn drop_head(&mut self) {
        self.head = None;
    }

    /// Restore a recovered head column (must be the deterministic rebuild
    /// for the current cursor — the caller guarantees this).
    pub fn restore_head(&mut self, head: Vec<Val>) {
        assert_eq!(head.len(), self.tail.len());
        self.head = Some(head);
    }

    /// Largest piece size under the current partitioning (drives the
    /// "pieces fit in cache → drop head" policy).
    pub fn max_piece(&self) -> usize {
        let mut prev = 0;
        let mut largest = 0;
        for (_, pos) in self.index.boundaries() {
            largest = largest.max(pos - prev);
            prev = pos;
        }
        largest.max(self.len() - prev)
    }

    /// Are all of `keys` (crack boundaries) already present in the index?
    pub fn has_boundaries(&self, keys: &[BoundaryKey]) -> bool {
        keys.iter().all(|k| self.index.position_of(*k).is_some())
    }

    /// Run `f` on the chunk as a [`CrackedArray`].
    ///
    /// # Panics
    /// If the head column was dropped (recover it first).
    fn with_array<R>(&mut self, f: impl FnOnce(&mut CrackedArray<Val>) -> R) -> R {
        // INVARIANT: every caller that can reach a crack restores a
        // dropped head first (rebuild_head / restore_head); the panic is
        // the documented contract for direct misuse.
        let head = self.head.take().expect("cracking requires the head column");
        let tail = std::mem::take(&mut self.tail);
        let index = std::mem::take(&mut self.index);
        let mut arr = CrackedArray::from_parts(head, tail, index);
        let r = f(&mut arr);
        let (head, tail, index) = arr.into_parts();
        self.head = Some(head);
        self.tail = tail;
        self.index = index;
        r
    }

    /// Apply one area-tape entry. Cracks reorganize under the entry's
    /// *logged* policy — sibling chunks replaying the same tape stay
    /// bit-identical regardless of what the owning set's effective
    /// policy is today (the policies are pure functions of the array
    /// state); the §3.5 update entries ripple one tuple in or out,
    /// reading the inserted tuple's head/tail values from the base
    /// columns (`head_col`, `tail_col`).
    pub fn apply(&mut self, entry: &AreaEntry, head_col: &Column, tail_col: &Column) {
        match *entry {
            AreaEntry::Crack(pred, policy) => {
                self.with_array(|a| {
                    a.crack_range_with(&pred, &policy);
                });
            }
            AreaEntry::Insert(key) => {
                self.with_array(|a| a.ripple_insert(head_col.get(key), tail_col.get(key)));
            }
            AreaEntry::Delete { pos, .. } => {
                self.with_array(|a| {
                    a.ripple_delete_at(pos);
                });
            }
        }
    }

    /// Replay tape entries `[cursor, target)` — *partial alignment*.
    pub fn align_to(
        &mut self,
        tape: &[AreaEntry],
        target: usize,
        head_col: &Column,
        tail_col: &Column,
    ) -> usize {
        let mut replayed = 0;
        while self.cursor < target.min(tape.len()) {
            let entry = tape[self.cursor];
            self.apply(&entry, head_col, tail_col);
            self.cursor += 1;
            replayed += 1;
        }
        replayed
    }

    /// Monitored alignment (§4.1 "Partial Alignment"): keep replaying
    /// entries until all `needed` boundaries exist or the tape ends.
    /// Returns `(entries_replayed, still_missing)`. (Under the
    /// coarse-granular policy the boundaries may never appear; the
    /// caller then cracks — or filters — per the policy's contract.)
    pub fn align_until_boundaries(
        &mut self,
        tape: &[AreaEntry],
        needed: &[BoundaryKey],
        head_col: &Column,
        tail_col: &Column,
    ) -> (usize, bool) {
        let mut replayed = 0;
        while !self.has_boundaries(needed) && self.cursor < tape.len() {
            let entry = tape[self.cursor];
            self.apply(&entry, head_col, tail_col);
            self.cursor += 1;
            replayed += 1;
        }
        (replayed, !self.has_boundaries(needed))
    }

    /// Crack the chunk by `pred` (standard policy) and return the
    /// qualifying local range.
    pub fn crack_range(&mut self, pred: &RangePred) -> (usize, usize) {
        self.with_array(|a| a.crack_range(pred))
    }

    /// Policy-aware crack: the returned [`Span`] is inexact when the
    /// coarse-granular policy declined to split a leaf piece.
    pub fn crack_range_with(&mut self, pred: &RangePred, policy: &CrackPolicy) -> Span {
        self.with_array(|a| a.crack_range_with(pred, policy))
    }

    /// The qualifying local range for `pred` assuming all its boundaries
    /// (clipped to this chunk) already exist — never reorganizes, so it
    /// works on head-dropped chunks.
    pub fn range_of(&self, pred: &RangePred) -> (usize, usize) {
        let n = self.len();
        let (lo_k, hi_k) = pred_keys(pred);
        let start = lo_k.map_or(0, |k| {
            self.index
                .position_of(k)
                .unwrap_or_else(|| self.index.enclosing_piece(k, n).0)
        });
        let end = hi_k.map_or(n, |k| {
            self.index
                .position_of(k)
                .unwrap_or_else(|| self.index.enclosing_piece(k, n).1)
        });
        (start, end.max(start))
    }

    /// Take the index out as a lazily deleted shell (chunk being
    /// dropped).
    pub fn into_shell(mut self) -> CrackerIndex {
        self.index.mark_all_deleted();
        self.index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crackdb_cracking::crack::BoundKind;

    const STD: CrackPolicy = CrackPolicy::Standard;

    fn chunk() -> Chunk {
        Chunk::seed(
            vec![12, 3, 5, 9, 15, 22, 7],
            vec![120, 30, 50, 90, 150, 220, 70],
            None,
        )
    }

    /// Placeholder base column for crack-only tapes (update entries read
    /// values from the base; cracks never do).
    fn no_col() -> Column {
        Column::new(Vec::new())
    }

    fn cracks(preds: &[RangePred]) -> Vec<AreaEntry> {
        preds.iter().map(|&p| AreaEntry::Crack(p, STD)).collect()
    }

    #[test]
    fn crack_and_view() {
        let mut c = chunk();
        let (s, e) = c.crack_range(&RangePred::open(4, 13));
        let mut vals: Vec<_> = c.tail()[s..e].to_vec();
        vals.sort_unstable();
        assert_eq!(vals, vec![50, 70, 90, 120]);
    }

    #[test]
    fn align_replays_tape() {
        let tape = cracks(&[RangePred::open(4, 13), RangePred::open(8, 20)]);
        let nc = no_col();
        let mut a = chunk();
        let mut b = chunk();
        // a applies entries as queries; b aligns later.
        a.apply(&tape[0], &nc, &nc);
        a.apply(&tape[1], &nc, &nc);
        a.cursor = 2;
        let replayed = b.align_to(&tape, 2, &nc, &nc);
        assert_eq!(replayed, 2);
        assert_eq!(a.head().unwrap(), b.head().unwrap());
        assert_eq!(a.tail(), b.tail());
    }

    #[test]
    fn monitored_alignment_stops_early() {
        let tape = cracks(&[
            RangePred::open(4, 13),
            RangePred::open(8, 20),
            RangePred::open(1, 6),
        ]);
        let nc = no_col();
        let mut c = chunk();
        // Boundary for "A > 8" appears in entry 1; alignment must stop
        // after applying it, leaving entry 2 unapplied.
        let needed = [(8, BoundKind::Le)];
        let (replayed, missing) = c.align_until_boundaries(&tape, &needed, &nc, &nc);
        assert_eq!(replayed, 2);
        assert!(!missing);
        assert_eq!(c.cursor, 2);
    }

    #[test]
    fn monitored_alignment_exhausts_tape() {
        let tape = cracks(&[RangePred::open(4, 13)]);
        let nc = no_col();
        let mut c = chunk();
        let needed = [(100, BoundKind::Lt)];
        let (_, missing) = c.align_until_boundaries(&tape, &needed, &nc, &nc);
        assert!(missing);
        assert_eq!(c.cursor, 1);
    }

    #[test]
    fn update_entries_replay_like_siblings() {
        // Two chunks of the same area replaying a tape with merged
        // updates end up physically identical.
        let head_col = Column::new(vec![0, 0, 0, 0, 0, 0, 0, 6]);
        let tail_col = Column::new(vec![0, 0, 0, 0, 0, 0, 0, 60]);
        let tape = vec![
            AreaEntry::Crack(RangePred::open(4, 13), STD),
            AreaEntry::Insert(7),
            AreaEntry::Delete {
                val: 9,
                key: 3,
                pos: 3,
            },
        ];
        let mut a = chunk();
        let mut b = chunk();
        a.align_to(&tape, 3, &head_col, &tail_col);
        b.align_to(&tape, 3, &head_col, &tail_col);
        assert_eq!(a.head().unwrap(), b.head().unwrap());
        assert_eq!(a.tail(), b.tail());
        assert_eq!(a.len(), 7); // 7 original + 1 insert - 1 delete
        assert!(a.tail().contains(&60));
    }

    #[test]
    fn head_drop_and_range_of() {
        let mut c = chunk();
        c.crack_range(&RangePred::open(4, 13));
        c.drop_head();
        assert!(c.head_dropped());
        let (s, e) = c.range_of(&RangePred::open(4, 13));
        let mut vals: Vec<_> = c.tail()[s..e].to_vec();
        vals.sort_unstable();
        assert_eq!(vals, vec![50, 70, 90, 120]);
    }

    #[test]
    #[should_panic(expected = "head column")]
    fn cracking_dropped_head_panics() {
        let mut c = chunk();
        c.drop_head();
        c.crack_range(&RangePred::open(4, 13));
    }

    #[test]
    fn shell_roundtrip_revives_knowledge() {
        let mut c = chunk();
        c.crack_range(&RangePred::open(4, 13));
        let nodes_before = c.index().boundaries().len();
        let shell = c.into_shell();
        // Recreate with the shell: replaying the same crack revives nodes.
        let mut c2 = Chunk::seed(
            vec![12, 3, 5, 9, 15, 22, 7],
            vec![120, 30, 50, 90, 150, 220, 70],
            Some(shell),
        );
        assert_eq!(c2.index().len(), 0, "shell starts all-deleted");
        c2.crack_range(&RangePred::open(4, 13));
        assert_eq!(c2.index().boundaries().len(), nodes_before);
        assert_eq!(c2.index().total_nodes(), nodes_before);
    }

    #[test]
    fn max_piece_shrinks_with_cracks() {
        let mut c = chunk();
        assert_eq!(c.max_piece(), 7);
        c.crack_range(&RangePred::open(4, 13));
        assert!(c.max_piece() < 7);
    }
}
