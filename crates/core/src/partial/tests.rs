//! Tests for partial sideways cracking: correctness against naive scans,
//! storage management, partial alignment, and head dropping.

use super::*;
use crackdb_columnstore::column::{Column, Table};
use crackdb_columnstore::types::{RangePred, Val};

/// Deterministic pseudo-random table: `cols` columns, `n` rows, values in
/// `[0, domain)`.
fn table(cols: usize, n: usize, domain: i64, seed: u64) -> Table {
    let mut state = seed;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as i64).rem_euclid(domain)
    };
    let mut t = Table::new();
    for c in 0..cols {
        t.add_column(
            format!("a{c}"),
            Column::new((0..n).map(|_| next()).collect()),
        );
    }
    t
}

/// Naive evaluation of `select projs where head_pred(A) and tail_sels`.
fn naive(
    t: &Table,
    head_attr: usize,
    head_pred: &RangePred,
    tail_sels: &[(usize, RangePred)],
    projs: &[usize],
) -> Vec<(usize, Vec<Val>)> {
    let mut out: Vec<(usize, Vec<Val>)> = projs.iter().map(|&p| (p, Vec::new())).collect();
    for row in 0..t.num_rows() {
        let row = row as u32;
        if !head_pred.matches(t.column(head_attr).get(row)) {
            continue;
        }
        if tail_sels
            .iter()
            .any(|(a, p)| !p.matches(t.column(*a).get(row)))
        {
            continue;
        }
        for (p, vals) in out.iter_mut() {
            vals.push(t.column(*p).get(row));
        }
    }
    out
}

fn collect(
    s: &mut PartialSet,
    t: &Table,
    head_pred: &RangePred,
    tail_sels: &[(usize, RangePred)],
    projs: &[usize],
) -> Vec<(usize, Vec<Val>)> {
    let mut got: Vec<(usize, Vec<Val>)> = projs.iter().map(|&p| (p, Vec::new())).collect();
    s.conjunctive_project_with(t, head_pred, tail_sels, projs, |attr, v| {
        got.iter_mut().find(|(p, _)| *p == attr).unwrap().1.push(v);
    })
    .unwrap();
    got
}

fn assert_same(mut a: Vec<(usize, Vec<Val>)>, mut b: Vec<(usize, Vec<Val>)>) {
    for (_, v) in a.iter_mut().chain(b.iter_mut()) {
        v.sort_unstable();
    }
    assert_eq!(a, b);
}

#[test]
fn single_selection_projection_matches_scan() {
    let t = table(3, 500, 1000, 7);
    let mut s = PartialSet::new(0);
    for (lo, hi) in [(100, 400), (50, 120), (380, 900), (0, 1000), (250, 260)] {
        let pred = RangePred::open(lo, hi);
        let got = collect(&mut s, &t, &pred, &[], &[1, 2]);
        assert_same(got, naive(&t, 0, &pred, &[], &[1, 2]));
    }
}

#[test]
fn conjunctive_matches_scan() {
    let t = table(4, 400, 500, 11);
    let mut s = PartialSet::new(0);
    for (a, b, c) in [(0, 250, 100), (100, 480, 300), (20, 70, 0)] {
        let head = RangePred::open(a, a + 200);
        let sels = vec![
            (1usize, RangePred::open(b - 250, b)),
            (2usize, RangePred::open(c, c + 300)),
        ];
        let got = collect(&mut s, &t, &head, &sels, &[3]);
        assert_same(got, naive(&t, 0, &head, &sels, &[3]));
    }
}

#[test]
fn random_query_sequence_differential() {
    let t = table(3, 300, 200, 13);
    let mut s = PartialSet::new(0);
    let mut state = 99u64;
    let mut next = move |m: i64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as i64).rem_euclid(m)
    };
    for _ in 0..60 {
        let lo = next(200);
        let hi = lo + 1 + next(60);
        let pred = RangePred::open(lo, hi);
        let got = collect(&mut s, &t, &pred, &[], &[1, 2]);
        assert_same(got, naive(&t, 0, &pred, &[], &[1, 2]));
    }
}

#[test]
fn repeat_query_cracks_nothing_new() {
    let t = table(2, 300, 1000, 3);
    let mut s = PartialSet::new(0);
    let pred = RangePred::open(200, 600);
    collect(&mut s, &t, &pred, &[], &[1]);
    let cracks = s.stats.query_cracks + s.stats.chunk_map_cracks;
    collect(&mut s, &t, &pred, &[], &[1]);
    assert_eq!(s.stats.query_cracks + s.stats.chunk_map_cracks, cracks);
}

#[test]
fn only_required_chunks_materialize() {
    let t = table(2, 1000, 1000, 5);
    let mut s = PartialSet::new(0);
    let pred = RangePred::open(400, 500);
    collect(&mut s, &t, &pred, &[], &[1]);
    // Roughly a tenth of the domain → roughly a tenth of the tuples.
    assert!(
        s.usage() < 300,
        "partial map materialized {} tuples",
        s.usage()
    );
    assert!(s.chunk_count() >= 1);
}

#[test]
fn budget_enforced_with_drops_and_recreation() {
    let t = table(3, 1000, 1000, 17);
    let mut s = PartialSet::new(0);
    s.budget = Some(600);
    let mut state = 5u64;
    let mut next = move |m: i64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as i64).rem_euclid(m)
    };
    for q in 0..40 {
        let lo = next(900);
        let pred = RangePred::open(lo, lo + 100);
        let proj = if q % 2 == 0 { 1 } else { 2 };
        let got = collect(&mut s, &t, &pred, &[], &[proj]);
        assert_same(got, naive(&t, 0, &pred, &[], &[proj]));
        assert!(
            s.usage() <= 600,
            "usage {} exceeds the budget post-query",
            s.usage()
        );
    }
    assert!(
        s.stats.chunks_dropped > 0,
        "budget pressure must drop chunks"
    );
}

#[test]
fn workload_shift_partial_alignment() {
    // Two "query types" over different tail attributes, alternating in
    // batches — the Fig. 13 scenario. Correctness must survive chunks
    // lagging behind each other.
    let t = table(3, 500, 500, 23);
    let mut s = PartialSet::new(0);
    let mut state = 1u64;
    let mut next = move |m: i64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as i64).rem_euclid(m)
    };
    for batch in 0..6 {
        let proj = 1 + (batch % 2) as usize;
        for _ in 0..10 {
            let lo = next(450);
            let pred = RangePred::open(lo, lo + 50);
            let got = collect(&mut s, &t, &pred, &[], &[proj]);
            assert_same(got, naive(&t, 0, &pred, &[], &[proj]));
        }
    }
}

#[test]
fn fetched_areas_are_frozen() {
    let t = table(2, 400, 400, 29);
    let mut s = PartialSet::new(0);
    collect(&mut s, &t, &RangePred::open(100, 300), &[], &[1]);
    let cm_cracks = s.stats.chunk_map_cracks;
    // A predicate cutting inside the fetched [100,300] area must crack
    // chunks, not the chunk map.
    collect(&mut s, &t, &RangePred::open(150, 250), &[], &[1]);
    assert_eq!(
        s.stats.chunk_map_cracks, cm_cracks,
        "fetched area was split"
    );
    assert!(s.stats.query_cracks > 0);
}

#[test]
fn head_dropping_with_recovery() {
    let t = table(2, 400, 400, 31);
    let mut s = PartialSet::new(0);
    s.head_drop_threshold = Some(1 << 30); // drop immediately after use
    let p1 = RangePred::open(100, 300);
    let got = collect(&mut s, &t, &p1, &[], &[1]);
    assert_same(got, naive(&t, 0, &p1, &[], &[1]));
    assert!(s.stats.heads_dropped > 0);
    // A new cut inside the same area forces head recovery.
    let p2 = RangePred::open(150, 250);
    let got = collect(&mut s, &t, &p2, &[], &[1]);
    assert_same(got, naive(&t, 0, &p2, &[], &[1]));
    assert!(s.stats.heads_recovered > 0);
}

#[test]
fn shell_reuse_on_recreation() {
    let t = table(2, 300, 300, 37);
    let mut s = PartialSet::new(0);
    collect(&mut s, &t, &RangePred::open(50, 250), &[], &[1]);
    collect(&mut s, &t, &RangePred::open(100, 200), &[], &[1]);
    // Drop a chunk explicitly while its area stays fetched via... a second
    // map referencing the same area.
    collect(&mut s, &t, &RangePred::open(50, 250), &[], &[1]);
    let area_ids: Vec<AreaId> = s.map(1).unwrap().chunks.keys().copied().collect();
    // Reference the areas from another attribute so shells are kept.
    collect(&mut s, &t, &RangePred::open(50, 250), &[], &[0]);
    for id in &area_ids {
        s.drop_chunk(1, *id);
    }
    assert!(s.map(1).unwrap().chunks.is_empty());
    // Recreate; results stay correct.
    let got = collect(&mut s, &t, &RangePred::open(100, 200), &[], &[1]);
    assert_same(got, naive(&t, 0, &RangePred::open(100, 200), &[], &[1]));
}

#[test]
fn empty_and_full_predicates() {
    let t = table(2, 100, 50, 41);
    let mut s = PartialSet::new(0);
    let got = collect(&mut s, &t, &RangePred::open(10, 10), &[], &[1]);
    assert!(got[0].1.is_empty());
    let got = collect(&mut s, &t, &RangePred::all(), &[], &[1]);
    assert_eq!(got[0].1.len(), 100);
}

/// Naive evaluation over a base with deleted keys masked out.
fn naive_live(
    t: &Table,
    dead: &[u32],
    head_attr: usize,
    head_pred: &RangePred,
    projs: &[usize],
) -> Vec<(usize, Vec<Val>)> {
    let mut out: Vec<(usize, Vec<Val>)> = projs.iter().map(|&p| (p, Vec::new())).collect();
    for row in 0..t.num_rows() {
        let row = row as u32;
        if dead.contains(&row) || !head_pred.matches(t.column(head_attr).get(row)) {
            continue;
        }
        for (p, vals) in out.iter_mut() {
            vals.push(t.column(*p).get(row));
        }
    }
    out
}

#[test]
fn staged_updates_merge_on_access() {
    let mut t = table(3, 300, 300, 47);
    let mut s = PartialSet::new(0);
    let pred = RangePred::open(50, 200);
    collect(&mut s, &t, &pred, &[], &[1]);

    // Insert two rows (one inside the touched range, one outside) and
    // delete two existing rows likewise.
    let k1 = t.append_row(&[100, 1111, 2222]);
    let k2 = t.append_row(&[250, 3333, 4444]);
    s.stage_insert(k1);
    s.stage_insert(k2);
    let in_range = |v: Val| v > 50 && v < 200;
    let d_in = (0..300u32)
        .find(|&k| in_range(t.column(0).get(k)))
        .expect("some row inside the range");
    let d_out = (0..300u32)
        .find(|&k| !in_range(t.column(0).get(k)))
        .expect("some row outside the range");
    s.stage_delete(t.column(0).get(d_in), d_in);
    s.stage_delete(t.column(0).get(d_out), d_out);
    assert_eq!(s.staged(), 4);

    // A query over (50,200) merges only the relevant updates.
    let got = collect(&mut s, &t, &pred, &[], &[1, 2]);
    assert_same(got, naive_live(&t, &[d_in, d_out], 0, &pred, &[1, 2]));
    assert!(s.staged() < 4, "in-range updates must merge");
    assert!(s.stats.updates_merged > 0);

    // A full-range query merges the rest; everything stays consistent.
    let all = RangePred::all();
    let got = collect(&mut s, &t, &all, &[], &[1, 2]);
    assert_same(got, naive_live(&t, &[d_in, d_out], 0, &all, &[1, 2]));
    assert_eq!(s.staged(), 0);
}

#[test]
fn recreated_chunk_picks_updates_up_for_free() {
    // §3.5 × §4.1: merge updates into an area, drop every chunk of the
    // area (it reverts to unfetched, updates return to the staged
    // lists), then query again — the recreated chunks must contain them.
    let mut t = table(2, 200, 200, 53);
    let mut s = PartialSet::new(0);
    let pred = RangePred::open(40, 160);
    collect(&mut s, &t, &pred, &[], &[1]);

    let k = t.append_row(&[100, 7777]);
    s.stage_insert(k);
    let dead = (0..200u32)
        .find(|&r| {
            let v = t.column(0).get(r);
            v > 40 && v < 160
        })
        .expect("some row inside the range");
    s.stage_delete(t.column(0).get(dead), dead);
    collect(&mut s, &t, &pred, &[], &[1]); // merge
    assert_eq!(s.staged(), 0);

    // Drop every chunk (all maps, all areas).
    let drops: Vec<(usize, AreaId)> = [0usize, 1]
        .iter()
        .flat_map(|&attr| {
            s.map(attr)
                .map(|m| m.chunks.keys().map(move |&a| (attr, a)).collect::<Vec<_>>())
                .unwrap_or_default()
        })
        .collect();
    for (attr, area) in drops {
        s.drop_chunk(attr, area);
    }
    assert_eq!(s.usage(), 0);
    assert!(s.staged() > 0, "unfetched areas un-merge their updates");

    let got = collect(&mut s, &t, &pred, &[], &[1]);
    assert_same(got, naive_live(&t, &[dead], 0, &pred, &[1]));
    assert_eq!(s.staged(), 0);
}

#[test]
fn budget_exact_under_update_and_eviction_pressure() {
    let mut t = table(3, 1000, 1000, 59);
    let mut s = PartialSet::new(0);
    s.budget = Some(600);
    let mut state = 5u64;
    let mut next = move |m: i64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as i64).rem_euclid(m)
    };
    let mut dead: Vec<u32> = Vec::new();
    let mut next_key = 1000u32;
    for q in 0..40 {
        // Interleave updates with queries.
        if q % 3 == 0 {
            let v = next(1000);
            let k = t.append_row(&[v, v * 2, v * 3]);
            s.stage_insert(k);
            assert_eq!(k, next_key);
            next_key += 1;
            let victim = next(1000) as u32 % 1000;
            if !dead.contains(&victim) {
                s.stage_delete(t.column(0).get(victim), victim);
                dead.push(victim);
            }
        }
        let lo = next(900);
        let pred = RangePred::open(lo, lo + 100);
        let proj = if q % 2 == 0 { 1 } else { 2 };
        let got = collect(&mut s, &t, &pred, &[], &[proj]);
        assert_same(got, naive_live(&t, &dead, 0, &pred, &[proj]));
        assert!(
            s.usage() <= 600,
            "usage {} exceeds the budget post-query",
            s.usage()
        );
    }
    assert!(
        s.stats.chunks_dropped > 0,
        "budget pressure must drop chunks"
    );
    assert!(s.stats.updates_merged > 0);
}

#[test]
fn disjunctive_matches_scan() {
    let t = table(3, 400, 400, 61);
    let mut s = PartialSet::new(0);
    for (a, b) in [(0, 300), (150, 100), (350, 0)] {
        let preds = vec![
            (0usize, RangePred::open(a, a + 60)),
            (1usize, RangePred::open(b, b + 60)),
        ];
        let mut got: Vec<(usize, Vec<Val>)> = vec![(2, Vec::new())];
        s.disjunctive_project_with(&t, &preds, &[2], |attr, v| {
            got.iter_mut().find(|(p, _)| *p == attr).unwrap().1.push(v);
        })
        .unwrap();
        // Naive union.
        let mut want = vec![(2usize, Vec::new())];
        for row in 0..t.num_rows() as u32 {
            if preds.iter().any(|(a, p)| p.matches(t.column(*a).get(row))) {
                want[0].1.push(t.column(2).get(row));
            }
        }
        assert_same(got, want);
    }
}

#[test]
fn projection_equals_selection_attribute() {
    // Project the same attribute that carries a tail selection.
    let t = table(3, 200, 100, 43);
    let mut s = PartialSet::new(0);
    let head = RangePred::open(20, 80);
    let sels = vec![(1usize, RangePred::open(10, 60))];
    let got = collect(&mut s, &t, &head, &sels, &[1]);
    assert_same(got, naive(&t, 0, &head, &sels, &[1]));
}
