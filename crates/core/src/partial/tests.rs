//! Tests for partial sideways cracking: correctness against naive scans,
//! storage management, partial alignment, and head dropping.

use super::*;
use crackdb_columnstore::column::{Column, Table};
use crackdb_columnstore::types::{RangePred, Val};

/// Deterministic pseudo-random table: `cols` columns, `n` rows, values in
/// `[0, domain)`.
fn table(cols: usize, n: usize, domain: i64, seed: u64) -> Table {
    let mut state = seed;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as i64).rem_euclid(domain)
    };
    let mut t = Table::new();
    for c in 0..cols {
        t.add_column(
            format!("a{c}"),
            Column::new((0..n).map(|_| next()).collect()),
        );
    }
    t
}

/// Naive evaluation of `select projs where head_pred(A) and tail_sels`.
fn naive(
    t: &Table,
    head_attr: usize,
    head_pred: &RangePred,
    tail_sels: &[(usize, RangePred)],
    projs: &[usize],
) -> Vec<(usize, Vec<Val>)> {
    let mut out: Vec<(usize, Vec<Val>)> = projs.iter().map(|&p| (p, Vec::new())).collect();
    for row in 0..t.num_rows() {
        let row = row as u32;
        if !head_pred.matches(t.column(head_attr).get(row)) {
            continue;
        }
        if tail_sels
            .iter()
            .any(|(a, p)| !p.matches(t.column(*a).get(row)))
        {
            continue;
        }
        for (p, vals) in out.iter_mut() {
            vals.push(t.column(*p).get(row));
        }
    }
    out
}

fn collect(
    s: &mut PartialSet,
    t: &Table,
    head_pred: &RangePred,
    tail_sels: &[(usize, RangePred)],
    projs: &[usize],
) -> Vec<(usize, Vec<Val>)> {
    let mut got: Vec<(usize, Vec<Val>)> = projs.iter().map(|&p| (p, Vec::new())).collect();
    s.conjunctive_project_with(t, head_pred, tail_sels, projs, |attr, v| {
        got.iter_mut().find(|(p, _)| *p == attr).unwrap().1.push(v);
    });
    got
}

fn assert_same(mut a: Vec<(usize, Vec<Val>)>, mut b: Vec<(usize, Vec<Val>)>) {
    for (_, v) in a.iter_mut().chain(b.iter_mut()) {
        v.sort_unstable();
    }
    assert_eq!(a, b);
}

#[test]
fn single_selection_projection_matches_scan() {
    let t = table(3, 500, 1000, 7);
    let mut s = PartialSet::new(0);
    for (lo, hi) in [(100, 400), (50, 120), (380, 900), (0, 1000), (250, 260)] {
        let pred = RangePred::open(lo, hi);
        let got = collect(&mut s, &t, &pred, &[], &[1, 2]);
        assert_same(got, naive(&t, 0, &pred, &[], &[1, 2]));
    }
}

#[test]
fn conjunctive_matches_scan() {
    let t = table(4, 400, 500, 11);
    let mut s = PartialSet::new(0);
    for (a, b, c) in [(0, 250, 100), (100, 480, 300), (20, 70, 0)] {
        let head = RangePred::open(a, a + 200);
        let sels = vec![
            (1usize, RangePred::open(b - 250, b)),
            (2usize, RangePred::open(c, c + 300)),
        ];
        let got = collect(&mut s, &t, &head, &sels, &[3]);
        assert_same(got, naive(&t, 0, &head, &sels, &[3]));
    }
}

#[test]
fn random_query_sequence_differential() {
    let t = table(3, 300, 200, 13);
    let mut s = PartialSet::new(0);
    let mut state = 99u64;
    let mut next = move |m: i64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as i64).rem_euclid(m)
    };
    for _ in 0..60 {
        let lo = next(200);
        let hi = lo + 1 + next(60);
        let pred = RangePred::open(lo, hi);
        let got = collect(&mut s, &t, &pred, &[], &[1, 2]);
        assert_same(got, naive(&t, 0, &pred, &[], &[1, 2]));
    }
}

#[test]
fn repeat_query_cracks_nothing_new() {
    let t = table(2, 300, 1000, 3);
    let mut s = PartialSet::new(0);
    let pred = RangePred::open(200, 600);
    collect(&mut s, &t, &pred, &[], &[1]);
    let cracks = s.stats.query_cracks + s.stats.chunk_map_cracks;
    collect(&mut s, &t, &pred, &[], &[1]);
    assert_eq!(s.stats.query_cracks + s.stats.chunk_map_cracks, cracks);
}

#[test]
fn only_required_chunks_materialize() {
    let t = table(2, 1000, 1000, 5);
    let mut s = PartialSet::new(0);
    let pred = RangePred::open(400, 500);
    collect(&mut s, &t, &pred, &[], &[1]);
    // Roughly a tenth of the domain → roughly a tenth of the tuples.
    assert!(
        s.usage() < 300,
        "partial map materialized {} tuples",
        s.usage()
    );
    assert!(s.chunk_count() >= 1);
}

#[test]
fn budget_enforced_with_drops_and_recreation() {
    let t = table(3, 1000, 1000, 17);
    let mut s = PartialSet::new(0);
    s.budget = Some(600);
    let mut state = 5u64;
    let mut next = move |m: i64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as i64).rem_euclid(m)
    };
    for q in 0..40 {
        let lo = next(900);
        let pred = RangePred::open(lo, lo + 100);
        let proj = if q % 2 == 0 { 1 } else { 2 };
        let got = collect(&mut s, &t, &pred, &[], &[proj]);
        assert_same(got, naive(&t, 0, &pred, &[], &[proj]));
        assert!(
            s.usage() <= 600 + 1000 / 4,
            "usage {} exceeded budget way beyond one fetch",
            s.usage()
        );
    }
    assert!(
        s.stats.chunks_dropped > 0,
        "budget pressure must drop chunks"
    );
}

#[test]
fn workload_shift_partial_alignment() {
    // Two "query types" over different tail attributes, alternating in
    // batches — the Fig. 13 scenario. Correctness must survive chunks
    // lagging behind each other.
    let t = table(3, 500, 500, 23);
    let mut s = PartialSet::new(0);
    let mut state = 1u64;
    let mut next = move |m: i64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as i64).rem_euclid(m)
    };
    for batch in 0..6 {
        let proj = 1 + (batch % 2) as usize;
        for _ in 0..10 {
            let lo = next(450);
            let pred = RangePred::open(lo, lo + 50);
            let got = collect(&mut s, &t, &pred, &[], &[proj]);
            assert_same(got, naive(&t, 0, &pred, &[], &[proj]));
        }
    }
}

#[test]
fn fetched_areas_are_frozen() {
    let t = table(2, 400, 400, 29);
    let mut s = PartialSet::new(0);
    collect(&mut s, &t, &RangePred::open(100, 300), &[], &[1]);
    let cm_cracks = s.stats.chunk_map_cracks;
    // A predicate cutting inside the fetched [100,300] area must crack
    // chunks, not the chunk map.
    collect(&mut s, &t, &RangePred::open(150, 250), &[], &[1]);
    assert_eq!(
        s.stats.chunk_map_cracks, cm_cracks,
        "fetched area was split"
    );
    assert!(s.stats.query_cracks > 0);
}

#[test]
fn head_dropping_with_recovery() {
    let t = table(2, 400, 400, 31);
    let mut s = PartialSet::new(0);
    s.head_drop_threshold = Some(1 << 30); // drop immediately after use
    let p1 = RangePred::open(100, 300);
    let got = collect(&mut s, &t, &p1, &[], &[1]);
    assert_same(got, naive(&t, 0, &p1, &[], &[1]));
    assert!(s.stats.heads_dropped > 0);
    // A new cut inside the same area forces head recovery.
    let p2 = RangePred::open(150, 250);
    let got = collect(&mut s, &t, &p2, &[], &[1]);
    assert_same(got, naive(&t, 0, &p2, &[], &[1]));
    assert!(s.stats.heads_recovered > 0);
}

#[test]
fn shell_reuse_on_recreation() {
    let t = table(2, 300, 300, 37);
    let mut s = PartialSet::new(0);
    collect(&mut s, &t, &RangePred::open(50, 250), &[], &[1]);
    collect(&mut s, &t, &RangePred::open(100, 200), &[], &[1]);
    // Drop a chunk explicitly while its area stays fetched via... a second
    // map referencing the same area.
    collect(&mut s, &t, &RangePred::open(50, 250), &[], &[1]);
    let area_ids: Vec<AreaId> = s.map(1).unwrap().chunks.keys().copied().collect();
    // Reference the areas from another attribute so shells are kept.
    collect(&mut s, &t, &RangePred::open(50, 250), &[], &[0]);
    for id in &area_ids {
        s.drop_chunk(1, *id);
    }
    assert!(s.map(1).unwrap().chunks.is_empty());
    // Recreate; results stay correct.
    let got = collect(&mut s, &t, &RangePred::open(100, 200), &[], &[1]);
    assert_same(got, naive(&t, 0, &RangePred::open(100, 200), &[], &[1]));
}

#[test]
fn empty_and_full_predicates() {
    let t = table(2, 100, 50, 41);
    let mut s = PartialSet::new(0);
    let got = collect(&mut s, &t, &RangePred::open(10, 10), &[], &[1]);
    assert!(got[0].1.is_empty());
    let got = collect(&mut s, &t, &RangePred::all(), &[], &[1]);
    assert_eq!(got[0].1.len(), 100);
}

#[test]
fn projection_equals_selection_attribute() {
    // Project the same attribute that carries a tail selection.
    let t = table(3, 200, 100, 43);
    let mut s = PartialSet::new(0);
    let head = RangePred::open(20, 80);
    let sels = vec![(1usize, RangePred::open(10, 60))];
    let got = collect(&mut s, &t, &head, &sels, &[1]);
    assert_same(got, naive(&t, 0, &head, &sels, &[1]));
}
