//! Partial sideways cracking (§4): maps materialized chunk-by-chunk,
//! driven by the workload, under a storage budget.
//!
//! A [`PartialSet`] owns:
//!
//! * the **chunk map** `H_A` — `(A, key)` pairs, cracked into *areas*;
//!   unfetched areas may be cracked further; fetched areas are frozen so
//!   that all chunks created from them stay alignment-compatible;
//! * per-area metadata: fetched state, the *area tape* of chunk-level
//!   cracks, the set of maps referencing the area, and lazily deleted
//!   index shells of dropped chunks;
//! * the partial maps themselves: one [`Chunk`] per (attribute, area)
//!   pair, created on demand, dropped under storage pressure (LFU),
//!   recreated when needed again.
//!
//! Queries proceed **chunk-wise** (§4.1): each operator loads, creates,
//! aligns, cracks and scans one chunk at a time, and alignment is
//! *partial* — a chunk not being cracked only needs to reach the maximum
//! cursor of the chunks used together with it, and even a to-be-cracked
//! chunk stops early when a tape entry already provides its boundary.
//!
//! **Updates (§3.5, chunk-wise):** insertions and deletions are staged
//! globally on the set and merged on access — when a query next touches
//! the area a pending tuple belongs to, the update becomes an area-tape
//! entry ([`AreaEntry::Insert`] / [`AreaEntry::Delete`]) that every chunk
//! of the area replays during alignment, exactly like a crack. Deletion
//! positions are resolved once per area by a *resolver* (the area's
//! `(head, key)` pairs aligned through the same tape — the chunk-wise
//! analogue of the key map `M_A,key`), so sibling chunks stay physically
//! identical. Partial alignment may skip trailing cracks (they only
//! reorganize) but never a merged update (it changes content). When an
//! area's last chunk is dropped the area reverts to unfetched, its tape
//! is discarded and its merged updates return to the staged lists — a
//! chunk recreated from the base later picks them up for free.
//!
//! **Storage tiers:** eviction is tiered when a [`SpillTier`] is
//! attached — RAM budget → spill file → (on spill failure) drop. A
//! spilled chunk serializes with its tape cursor (the staged-update
//! watermark) and *reloads* on re-access instead of being recracked; an
//! area with spilled chunks stays fetched, so merged updates are never
//! lost while a sibling is cold. Disk failures surface as
//! [`StorageError`]s through every public query entry point — never as
//! panics.

pub mod chunk;
pub mod spill;

pub use chunk::Chunk;
pub use spill::SpillTier;

use crate::bitvec::BitVec;
use crackdb_columnstore::column::Table;
use crackdb_columnstore::storage::StorageError;
use crackdb_columnstore::types::{RangePred, RowId, Val};
use crackdb_cracking::index::pred_keys;
use crackdb_cracking::{
    retention_score, BoundaryKey, CrackPolicy, CrackedArray, CrackerIndex, PolicyAdvisor,
};
use spill::SpillSlot;
use std::collections::{HashMap, HashSet};
use std::time::Instant;

/// Identity of an area: its start boundary in the chunk map (`None` for
/// the leftmost area). Stable while the area is fetched.
pub type AreaId = Option<BoundaryKey>;

/// Chunks checked out of the maps for one area — `(attr, chunk)` pairs —
/// plus a clone of the area's tape for replay.
type CheckedOutArea = (Vec<(usize, Chunk)>, Vec<AreaEntry>);

/// One entry of an area tape: the reorganization-and-update log every
/// chunk of the area replays during alignment (§3.5 applied per chunk).
#[derive(Debug, Clone, Copy)]
pub enum AreaEntry {
    /// A chunk-level crack, plus the effective static policy it ran
    /// under. Replay always uses the logged policy — never the set's
    /// current one — so sibling chunks and recreations stay bit-aligned
    /// across adaptive policy switches.
    Crack(RangePred, CrackPolicy),
    /// Tuple `key` (appended to the base table) ripple-inserted into the
    /// area; replaying chunks read its values from the base columns.
    Insert(RowId),
    /// Tuple `key` with head value `val` ripple-deleted at physical
    /// position `pos` (resolved by the area resolver at merge time, so
    /// every sibling chunk deletes the same slot).
    Delete {
        /// Head-attribute value of the deleted tuple.
        val: Val,
        /// Base-table key of the deleted tuple.
        key: RowId,
        /// Physical position within the area at this tape point.
        pos: usize,
    },
}

/// Position just past the last update entry of a tape: chunks may stop
/// partial alignment short of trailing cracks, never short of a merged
/// update.
fn update_floor(tape: &[AreaEntry]) -> usize {
    tape.iter()
        .rposition(|e| !matches!(e, AreaEntry::Crack(..)))
        .map_or(0, |i| i + 1)
}

/// The §3.5 position resolver of one area: the area's `(head, key)`
/// pairs, kept aligned to the tape end. It resolves a staged deletion
/// (head value + key) to the physical position all sibling chunks must
/// replay. Infrastructure like the chunk map — not counted against the
/// storage budget.
#[derive(Debug, Clone)]
struct Resolver {
    arr: CrackedArray<RowId>,
    cursor: usize,
}

/// Per-area metadata.
#[derive(Debug, Clone, Default)]
struct AreaInfo {
    fetched: bool,
    /// Chunk-level cracks and merged updates logged for this area,
    /// replayed by sibling chunks during (partial) alignment.
    tape: Vec<AreaEntry>,
    /// Tail attributes whose partial map currently holds a chunk of this
    /// area.
    refs: HashSet<usize>,
    /// Lazily deleted cracker-index shells of dropped chunks, reusable at
    /// recreation (§4.1 "lazy deletion").
    shells: HashMap<usize, CrackerIndex>,
    /// Delete-position resolver, created at the area's first update
    /// merge.
    resolver: Option<Resolver>,
    /// Chunks of this area currently on disk, by tail attribute. A
    /// spilled chunk keeps the area fetched (its record carries a cursor
    /// into the tape), so the tape must survive until it reloads.
    spilled: HashMap<usize, SpillSlot>,
}

/// A partial map: the workload-selected subset of `M_AB`, one chunk per
/// fetched area.
#[derive(Debug, Clone, Default)]
pub struct PartialMap {
    /// Chunks keyed by area.
    pub chunks: HashMap<AreaId, Chunk>,
}

/// Instrumentation counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct PartialStats {
    /// Chunks fetched (including recreations).
    pub chunks_created: u64,
    /// Chunks evicted by the storage manager.
    pub chunks_dropped: u64,
    /// Tuples materialized by fetches.
    pub tuples_fetched: u64,
    /// Area-tape entries replayed during alignment.
    pub entries_replayed: u64,
    /// Cracks performed directly by queries on chunks.
    pub query_cracks: u64,
    /// Cracks performed on the chunk map.
    pub chunk_map_cracks: u64,
    /// Head columns dropped.
    pub heads_dropped: u64,
    /// Head columns recovered (rebuilt) for further cracking.
    pub heads_recovered: u64,
    /// Staged updates merged into area tapes (§3.5).
    pub updates_merged: u64,
    /// Chunks evicted to the spill tier (instead of dropped).
    pub chunks_spilled: u64,
    /// Spilled chunks reloaded from disk on re-access.
    pub chunks_reloaded: u64,
    /// Tuples carried by reloaded chunks (per-tuple reload-cost metric).
    pub tuples_reloaded: u64,
    /// Nanoseconds spent serializing + writing spill records.
    pub spill_write_ns: u64,
    /// Nanoseconds spent reading + deserializing spill records.
    pub spill_read_ns: u64,
    /// Nanoseconds spent materializing chunks from the base columns
    /// (the recrack-from-scratch cost spilling avoids).
    pub fetch_ns: u64,
}

impl PartialStats {
    /// Accumulate another stats block (store-level aggregation).
    pub fn merge(&mut self, other: &PartialStats) {
        self.chunks_created += other.chunks_created;
        self.chunks_dropped += other.chunks_dropped;
        self.tuples_fetched += other.tuples_fetched;
        self.entries_replayed += other.entries_replayed;
        self.query_cracks += other.query_cracks;
        self.chunk_map_cracks += other.chunk_map_cracks;
        self.heads_dropped += other.heads_dropped;
        self.heads_recovered += other.heads_recovered;
        self.updates_merged += other.updates_merged;
        self.chunks_spilled += other.chunks_spilled;
        self.chunks_reloaded += other.chunks_reloaded;
        self.tuples_reloaded += other.tuples_reloaded;
        self.spill_write_ns += other.spill_write_ns;
        self.spill_read_ns += other.spill_read_ns;
        self.fetch_ns += other.fetch_ns;
    }
}

/// A reference to one area of the chunk map at query time.
#[derive(Debug, Clone, Copy)]
struct AreaRef {
    id: AreaId,
    start: usize,
    end: usize,
    end_key: Option<BoundaryKey>,
}

/// The partial map set `S_A` of one head attribute.
#[derive(Debug, Clone)]
pub struct PartialSet {
    /// Head attribute of every map in the set.
    pub head_attr: usize,
    chunk_map: Option<CrackedArray<RowId>>,
    areas: HashMap<AreaId, AreaInfo>,
    maps: HashMap<usize, PartialMap>,
    /// Inserted base keys not yet merged into any area.
    staged_inserts: Vec<RowId>,
    /// Deleted `(head value, key)` pairs not yet merged into any area.
    staged_deletes: Vec<(Val, RowId)>,
    /// Storage budget in tuples across all chunks (`None` = unlimited).
    pub budget: Option<usize>,
    clock: u64,
    /// When set, chunks whose largest piece is at most this many tuples
    /// drop their head column after use (§4.1 head dropping).
    pub head_drop_threshold: Option<usize>,
    /// Policy selection shared by the chunk map, every chunk and the
    /// per-area resolvers: the configured [`CrackPolicy`] plus (when
    /// adaptive) the workload statistics driving per-query re-decisions.
    /// Replay safety does not depend on it — every area-tape crack
    /// carries the effective policy it ran under, and alignment replays
    /// the logged policy, so sibling chunks and recreations crack
    /// identically no matter what the advisor has decided since.
    advisor: PolicyAdvisor,
    /// Counters.
    pub stats: PartialStats,
    /// Optional disk tier: evicted chunks spill here and reload on
    /// re-access instead of being recracked.
    spill: Option<SpillTier>,
    /// Recycled buffer for per-query area-tape snapshots (avoids a fresh
    /// allocation per processed area).
    tape_scratch: Vec<AreaEntry>,
    /// Recycled buffer for spill records: encode and read reuse it so
    /// multi-MB evictions/reloads don't pay a fresh allocation (and its
    /// page faults) per chunk.
    spill_scratch: Vec<u8>,
}

impl PartialSet {
    /// Empty partial set for `head_attr`, cracking with the standard
    /// exact-bounds policy.
    pub fn new(head_attr: usize) -> Self {
        Self::with_policy(head_attr, CrackPolicy::Standard)
    }

    /// Like [`Self::new`] with an explicit [`CrackPolicy`].
    pub fn with_policy(head_attr: usize, policy: CrackPolicy) -> Self {
        PartialSet {
            head_attr,
            chunk_map: None,
            areas: HashMap::new(),
            maps: HashMap::new(),
            staged_inserts: Vec::new(),
            staged_deletes: Vec::new(),
            budget: None,
            clock: 0,
            head_drop_threshold: None,
            // Chunked cracking bounds every crack at the segment size,
            // but a marching sweep still pays an exact crack per stripe
            // edge in every chunk it crosses — the advisor's coarse
            // sweep response applies here like on a plain cracker.
            advisor: PolicyAdvisor::new(policy),
            stats: PartialStats::default(),
            spill: None,
            tape_scratch: Vec::new(),
            spill_scratch: Vec::new(),
        }
    }

    /// Attach (or detach) the disk spill tier. With a tier attached,
    /// eviction spills instead of dropping.
    pub fn set_spill(&mut self, tier: Option<SpillTier>) {
        self.spill = tier;
    }

    /// `true` when a spill tier is attached.
    pub fn spill_enabled(&self) -> bool {
        self.spill.is_some()
    }

    /// The set's configured pivot-choice policy (possibly
    /// [`CrackPolicy::Adaptive`]).
    pub fn policy(&self) -> CrackPolicy {
        self.advisor.configured()
    }

    /// The static policy the next crack will run under (equals
    /// [`Self::policy`] unless configured adaptive).
    pub fn effective_policy(&self) -> CrackPolicy {
        self.advisor.effective()
    }

    /// How many times the advisor has switched the effective policy.
    pub fn policy_switches(&self) -> u64 {
        self.advisor.switches()
    }

    /// Observe one logical query: feed the predicate to the advisor
    /// (against the chunk map's shape) and re-decide the effective
    /// policy. Called once from each public query entry point.
    fn note_query(&mut self, pred: &RangePred) {
        if !self.advisor.configured().is_adaptive() {
            return;
        }
        let (boundaries, len) = self
            .chunk_map
            .as_ref()
            .map_or((0, 0), |cm| (cm.index().len(), cm.len()));
        self.advisor.observe(pred, boundaries, len);
    }

    /// Current chunk storage in tuples (the chunk map and the per-area
    /// resolvers are infrastructure, like a cracker column, and not
    /// counted against the budget). Computed from live chunk lengths so
    /// merged inserts and deletes are reflected exactly.
    pub fn usage(&self) -> usize {
        self.maps
            .values()
            .flat_map(|m| m.chunks.values())
            .map(Chunk::len)
            .sum()
    }

    /// Tuples currently held by the spill tier (on disk, *not* counted
    /// by [`Self::usage`] — the budget governs resident storage only).
    pub fn spilled_tuples(&self) -> usize {
        self.areas
            .values()
            .flat_map(|a| a.spilled.values())
            .map(|s| s.tuples as usize)
            .sum()
    }

    // ----- updates (§3.5) ---------------------------------------------

    /// Stage an insertion: the tuple with key `key` was appended to the
    /// base table. Merged into an area when a query next touches it.
    pub fn stage_insert(&mut self, key: RowId) {
        self.staged_inserts.push(key);
    }

    /// Stage a deletion of tuple `key` whose head-attribute value is
    /// `head_val`.
    pub fn stage_delete(&mut self, head_val: Val, key: RowId) {
        self.staged_deletes.push((head_val, key));
    }

    /// Number of staged (unmerged) updates.
    pub fn staged(&self) -> usize {
        self.staged_inserts.len() + self.staged_deletes.len()
    }

    /// Number of materialized chunks across all maps.
    pub fn chunk_count(&self) -> usize {
        self.maps.values().map(|m| m.chunks.len()).sum()
    }

    /// Read access to a partial map.
    pub fn map(&self, tail_attr: usize) -> Option<&PartialMap> {
        self.maps.get(&tail_attr)
    }

    fn ensure_chunk_map(&mut self, base: &Table) -> Result<(), StorageError> {
        if self.chunk_map.is_none() {
            // The seed is the *current* live snapshot: inserted rows are
            // already part of the base; rows with a staged deletion are
            // excluded. Everything staged so far is therefore subsumed by
            // the seed and cleared. The scan is segment-wise so a
            // file-backed base column streams through without evicting
            // its random-access cache.
            let col = base.column(self.head_attr);
            let dead: HashSet<RowId> = self.staged_deletes.iter().map(|&(_, k)| k).collect();
            let mut head = Vec::with_capacity(col.len());
            let mut keys = Vec::with_capacity(col.len());
            col.try_for_each_segment(|start, vals| {
                for (i, &v) in vals.iter().enumerate() {
                    let key = (start + i) as RowId;
                    if !dead.contains(&key) {
                        head.push(v);
                        keys.push(key);
                    }
                }
            })?;
            self.chunk_map = Some(CrackedArray::new(head, keys));
            self.staged_inserts.clear();
            self.staged_deletes.clear();
        }
        Ok(())
    }

    fn area_info(&mut self, id: AreaId) -> &mut AreaInfo {
        self.areas.entry(id).or_default()
    }

    /// Crack the chunk map at the predicate's cut points, but only inside
    /// unfetched areas (fetched areas are frozen; their chunks get
    /// cracked instead). The set's policy applies: stochastic advisory
    /// pivots split large unfetched areas (both halves stay unfetched,
    /// so freezing invariants hold), and the coarse-granular policy
    /// declines to split areas at or below its leaf size — the query
    /// then filters inside the chunks.
    fn crack_chunk_map_for(&mut self, pred: &RangePred) {
        let policy = self.advisor.effective();
        let (lo_k, hi_k) = pred_keys(pred);
        for key in [lo_k, hi_k].into_iter().flatten() {
            // INVARIANT: every public query path calls ensure_chunk_map
            // before reaching the internal helpers; field access keeps
            // the borrow disjoint from `areas`/`stats`.
            let cm = self.chunk_map.as_ref().expect("chunk map ensured");
            if cm.index().position_of(key).is_some() {
                continue;
            }
            let id: AreaId = cm
                .index()
                .boundaries()
                .iter()
                .rev()
                .find(|(k, _)| *k < key)
                .map(|(k, _)| *k);
            let fetched = self.areas.get(&id).is_some_and(|a| a.fetched);
            if !fetched {
                // INVARIANT: same — ensured by every public entry path.
                let cm = self.chunk_map.as_mut().expect("chunk map ensured");
                let before = cm.index().len();
                cm.crack_boundary(key, &policy);
                self.stats.chunk_map_cracks += (cm.index().len() - before) as u64;
            }
        }
    }

    /// Enumerate areas overlapping the predicate's qualifying region.
    ///
    /// Zero-row areas (two chunk-map boundaries at the same position)
    /// are skipped *unless* they carry state a query must still visit:
    /// an area with merged updates (fetched), or one a staged update's
    /// head value falls into — an inserted tuple may be the only content
    /// of an otherwise empty area, and skipping it would lose the merge.
    fn overlapping_areas(&self, base: &Table, pred: &RangePred) -> Vec<AreaRef> {
        let head_col = base.column(self.head_attr);
        // INVARIANT: ensure_chunk_map runs at every public entry point
        // before the internal helpers; field access keeps the borrow
        // disjoint from the sibling fields mutated below.
        let cm = self.chunk_map.as_ref().expect("chunk map ensured");
        let bs = cm.index().boundaries();
        let n = cm.len();
        let (lo_k, hi_k) = pred_keys(pred);
        let mut out = Vec::new();
        let mut start_key: AreaId = None;
        let mut start_pos = 0usize;
        for i in 0..=bs.len() {
            let (end_key, end_pos) = if i < bs.len() {
                (Some(bs[i].0), bs[i].1)
            } else {
                (None, n)
            };
            // Overlap test on cut-point order: area [start_key, end_key)
            // vs region (lo_k, hi_k).
            let below = match (end_key, lo_k) {
                (Some(e), Some(l)) => e <= l,
                _ => false,
            };
            let above = match (start_key, hi_k) {
                (Some(s), Some(h)) => s >= h,
                _ => false,
            };
            if !below && !above {
                let area = AreaRef {
                    id: start_key,
                    start: start_pos,
                    end: end_pos,
                    end_key,
                };
                let keep = end_pos > start_pos
                    || self.areas.get(&area.id).is_some_and(|a| a.fetched)
                    || self
                        .staged_inserts
                        .iter()
                        .any(|&k| Self::area_contains(&area, head_col.get(k)))
                    || self
                        .staged_deletes
                        .iter()
                        .any(|&(v, _)| Self::area_contains(&area, v));
                if keep {
                    out.push(area);
                }
            }
            start_key = end_key;
            start_pos = end_pos;
        }
        out
    }

    /// Does head value `v` fall inside `area`'s value range?
    fn area_contains(area: &AreaRef, v: Val) -> bool {
        let right_of_start = area.id.is_none_or(|(bv, kind)| !kind.belongs_left(v, bv));
        let left_of_end = area
            .end_key
            .is_none_or(|(bv, kind)| kind.belongs_left(v, bv));
        right_of_start && left_of_end
    }

    /// Merge staged updates whose head value falls inside `area` (§3.5
    /// merge-on-access at chunk granularity): inserts first, then
    /// deletes, each logged as an area-tape entry so every chunk of the
    /// area — including future recreations — replays the change during
    /// alignment. Deletion positions are resolved by the area resolver,
    /// seeded from the frozen chunk-map segment (the same seed every
    /// chunk starts from) and kept aligned to the tape end.
    fn flush_staged_for_area(&mut self, base: &Table, area: &AreaRef) {
        let head_col = base.column(self.head_attr);
        let mut ins = Vec::new();
        let mut i = 0;
        while i < self.staged_inserts.len() {
            let key = self.staged_inserts[i];
            if Self::area_contains(area, head_col.get(key)) {
                ins.push(self.staged_inserts.swap_remove(i));
            } else {
                i += 1;
            }
        }
        let mut dels = Vec::new();
        let mut i = 0;
        while i < self.staged_deletes.len() {
            if Self::area_contains(area, self.staged_deletes[i].0) {
                dels.push(self.staged_deletes.swap_remove(i));
            } else {
                i += 1;
            }
        }
        if ins.is_empty() && dels.is_empty() {
            return;
        }
        // INVARIANT: ensure_chunk_map runs at every public entry point
        // before the internal helpers; field access keeps the borrow
        // disjoint from the sibling fields mutated below.
        let cm = self.chunk_map.as_ref().expect("chunk map ensured");
        let (heads, keys) = cm.view((area.start, area.end));
        let info = self.areas.entry(area.id).or_default();
        // Merging freezes the area exactly like a fetch: the tape now
        // carries entries every future chunk must replay from this seed.
        info.fetched = true;
        let resolver = info.resolver.get_or_insert_with(|| Resolver {
            arr: CrackedArray::new(heads.to_vec(), keys.to_vec()),
            cursor: 0,
        });
        // Catch the resolver up with cracks logged since the last merge
        // (each replayed under its logged policy, like every sibling
        // chunk).
        while resolver.cursor < info.tape.len() {
            match info.tape[resolver.cursor] {
                AreaEntry::Crack(pred, policy) => {
                    resolver.arr.crack_range_with(&pred, &policy);
                }
                AreaEntry::Insert(key) => {
                    resolver.arr.ripple_insert(head_col.get(key), key);
                }
                AreaEntry::Delete { pos, .. } => {
                    resolver.arr.ripple_delete_at(pos);
                }
            }
            resolver.cursor += 1;
        }
        for key in ins {
            resolver.arr.ripple_insert(head_col.get(key), key);
            resolver.cursor += 1;
            info.tape.push(AreaEntry::Insert(key));
            self.stats.updates_merged += 1;
        }
        for (val, key) in dels {
            // A key the resolver no longer holds (e.g. a repeated delete
            // of the same key) is skipped silently — every engine treats
            // deletes idempotently, so the partial path must too.
            let Some(pos) = resolver.arr.ripple_delete(val, |&k| k == key) else {
                continue;
            };
            resolver.cursor += 1;
            info.tape.push(AreaEntry::Delete { val, key, pos });
            self.stats.updates_merged += 1;
        }
    }

    /// Predicate boundaries falling strictly inside an area (those require
    /// chunk-level cracks).
    fn keys_inside(pred: &RangePred, area: &AreaRef) -> Vec<BoundaryKey> {
        let (lo_k, hi_k) = pred_keys(pred);
        [lo_k, hi_k]
            .into_iter()
            .flatten()
            .filter(|k| {
                let after_start = area.id.is_none_or(|s| *k > s);
                let before_end = area.end_key.is_none_or(|e| *k < e);
                after_start && before_end
            })
            .collect()
    }

    /// Fetch (materialize) the chunk of `tail_attr` for an area, reviving
    /// a lazily deleted index shell when available.
    fn fetch_chunk(
        &mut self,
        base: &Table,
        tail_attr: usize,
        area: &AreaRef,
    ) -> Result<Chunk, StorageError> {
        let t0 = Instant::now();
        // INVARIANT: ensure_chunk_map runs at every public entry point
        // before the internal helpers; field access keeps the borrow
        // disjoint from the sibling fields mutated below.
        let cm = self.chunk_map.as_ref().expect("chunk map ensured");
        let (heads, keys) = cm.view((area.start, area.end));
        let tail_col = base.column(tail_attr);
        let head: Vec<Val> = heads.to_vec();
        let mut tail: Vec<Val> = Vec::with_capacity(keys.len());
        tail_col.try_gather(keys.iter().copied(), |v| tail.push(v))?;
        let info = self.areas.entry(area.id).or_default();
        info.fetched = true;
        info.refs.insert(tail_attr);
        let shell = info.shells.remove(&tail_attr);
        self.stats.chunks_created += 1;
        self.stats.tuples_fetched += head.len() as u64;
        self.stats.fetch_ns += t0.elapsed().as_nanos() as u64;
        let mut chunk = Chunk::seed(head, tail, shell);
        chunk.last_access = self.clock;
        Ok(chunk)
    }

    /// Evict cold chunks until `extra` more tuples fit in the budget.
    /// Chunks in `pinned` are untouchable.
    ///
    /// Victim choice minimizes [`retention_score`]: recency plus a
    /// log-frequency grace, so a chunk the workload hammered keeps a
    /// bounded head start over a once-touched one. Pure frequency (no
    /// aging) would always evict the chunks a workload shift just
    /// created — the previous batch's chunks carry large counts — and
    /// thrash; the recency-dominated score keeps the adaptation property
    /// §4.1 asks of the storage manager ("the system always keeps the
    /// chunks that are really necessary for the workload hot-set").
    fn make_room(
        &mut self,
        extra: usize,
        pinned: &HashSet<(usize, AreaId)>,
    ) -> Result<(), StorageError> {
        let Some(budget) = self.budget else {
            return Ok(());
        };
        // One scan establishes the current usage; each eviction then
        // subtracts the freed tuples, so the loop stays O(chunks) per
        // eviction (the victim scan) instead of rescanning every chunk
        // length per iteration.
        let mut usage = self.usage();
        while usage + extra > budget {
            // The (attr, area) identity breaks score ties so the victim
            // never depends on hash-map iteration order — eviction (and
            // therefore every downstream answer) stays deterministic.
            let victim = self
                .maps
                .iter()
                .flat_map(|(&attr, m)| {
                    m.chunks
                        .iter()
                        .map(move |(&aid, c)| {
                            ((attr, aid), retention_score(c.accesses, c.last_access))
                        })
                })
                .filter(|(key, _)| !pinned.contains(key))
                .min_by_key(|&((attr, aid), score)| (score, attr, aid))
                .map(|(key, _)| key);
            let Some((attr, aid)) = victim else { break };
            usage = usage.saturating_sub(self.evict_chunk(attr, aid)?);
        }
        Ok(())
    }

    /// Tiered eviction of one chunk: spill when a tier is attached,
    /// otherwise drop. A failed spill write falls back to dropping the
    /// chunk (so the budget invariant still holds) and then surfaces the
    /// error — loud, but never wedged.
    fn evict_chunk(&mut self, tail_attr: usize, area_id: AreaId) -> Result<usize, StorageError> {
        let Some(tier) = self.spill.clone() else {
            return Ok(self.drop_chunk(tail_attr, area_id));
        };
        let Some(map) = self.maps.get_mut(&tail_attr) else {
            return Ok(0);
        };
        let Some(chunk) = map.chunks.remove(&area_id) else {
            return Ok(0);
        };
        let freed = chunk.len();
        let t0 = Instant::now();
        let mut record = std::mem::take(&mut self.spill_scratch);
        spill::encode_chunk_into(&chunk, &mut record);
        let written = tier.write(tail_attr, &record, chunk.len() as u32);
        self.spill_scratch = record;
        self.stats.spill_write_ns += t0.elapsed().as_nanos() as u64;
        match written {
            Ok(slot) => {
                let info = self.areas.entry(area_id).or_default();
                info.refs.remove(&tail_attr);
                info.spilled.insert(tail_attr, slot);
                self.stats.chunks_spilled += 1;
                Ok(freed)
            }
            Err(e) => {
                // Put the chunk back and drop it through the ordinary
                // path so shells/un-merge bookkeeping stays consistent.
                map.chunks.insert(area_id, chunk);
                self.drop_chunk(tail_attr, area_id);
                Err(e)
            }
        }
    }

    /// Reload a spilled chunk of `tail_attr` for `area_id`. The slot has
    /// already been taken out of the area's spill table; on any failure
    /// the chunk is simply gone — the area keeps its tape, and the next
    /// access recreates the chunk from the base (replaying the tape), so
    /// one loud error leaves the set fully serviceable.
    fn reload_chunk(
        &mut self,
        tier: &SpillTier,
        tail_attr: usize,
        slot: SpillSlot,
    ) -> Result<Chunk, StorageError> {
        let t0 = Instant::now();
        let mut bytes = std::mem::take(&mut self.spill_scratch);
        let decoded = tier.read_into(tail_attr, slot, &mut bytes).and_then(|()| {
            spill::decode_chunk(
                &bytes,
                &format!("decode spilled chunk of column {tail_attr}"),
            )
        });
        self.spill_scratch = bytes;
        let chunk = decoded?;
        self.stats.spill_read_ns += t0.elapsed().as_nanos() as u64;
        self.stats.chunks_reloaded += 1;
        self.stats.tuples_reloaded += chunk.len() as u64;
        Ok(chunk)
    }

    /// Drop one chunk, keeping its index as a lazily deleted shell; if it
    /// was the area's last chunk — resident *or* spilled — the area
    /// reverts to unfetched and its tape is removed (§4.1) — merged
    /// updates return to the staged lists, so chunks recreated from the
    /// base later pick them up for free. While any sibling chunk sits in
    /// the spill tier the tape must survive: the spilled record's cursor
    /// points into it. Returns the tuples freed.
    pub fn drop_chunk(&mut self, tail_attr: usize, area_id: AreaId) -> usize {
        let Some(map) = self.maps.get_mut(&tail_attr) else {
            return 0;
        };
        let Some(chunk) = map.chunks.remove(&area_id) else {
            return 0;
        };
        let freed = chunk.len();
        self.stats.chunks_dropped += 1;
        let info = self.areas.entry(area_id).or_default();
        info.refs.remove(&tail_attr);
        if info.refs.is_empty() && info.spilled.is_empty() {
            info.fetched = false;
            info.shells.clear();
            info.resolver = None;
            for entry in info.tape.drain(..) {
                match entry {
                    AreaEntry::Insert(key) => self.staged_inserts.push(key),
                    AreaEntry::Delete { val, key, .. } => self.staged_deletes.push((val, key)),
                    AreaEntry::Crack(..) => {}
                }
            }
        } else {
            info.shells.insert(tail_attr, chunk.into_shell());
        }
        freed
    }

    /// Post-query budget enforcement: with nothing pinned, evict until
    /// `usage() <= budget` holds exactly. A single query may transiently
    /// exceed the budget while its own chunks are pinned; it must never
    /// *leave* it exceeded.
    fn enforce_budget(&mut self) -> Result<(), StorageError> {
        self.make_room(0, &HashSet::new())
    }

    /// Deterministically rebuild the head column of a head-dropped chunk:
    /// re-seed from the (frozen) chunk-map area and replay the area tape
    /// up to the chunk's cursor.
    fn rebuild_head(
        &mut self,
        base: &Table,
        tail_attr: usize,
        area: &AreaRef,
        cursor: usize,
        tape: &[AreaEntry],
    ) -> Result<Vec<Val>, StorageError> {
        // INVARIANT: ensure_chunk_map runs at every public entry point
        // before the internal helpers; field access keeps the borrow
        // disjoint from the sibling fields mutated below.
        let cm = self.chunk_map.as_ref().expect("chunk map ensured");
        let (heads, keys) = cm.view((area.start, area.end));
        let head_col = base.column(self.head_attr);
        let tail_col = base.column(tail_attr);
        let head: Vec<Val> = heads.to_vec();
        let mut tail: Vec<Val> = Vec::with_capacity(keys.len());
        tail_col.try_gather(keys.iter().copied(), |v| tail.push(v))?;
        let mut tmp = Chunk::seed(head, tail, None);
        tmp.align_to(tape, cursor, head_col, tail_col);
        self.stats.heads_recovered += 1;
        // INVARIANT: Chunk::seed is constructed with a head column and
        // align_to never drops it.
        Ok(tmp.head().expect("fresh chunk has a head").to_vec())
    }

    /// Single-selection, multi-projection query (`select P1.. from R where
    /// pred(A)`): stream each projection attribute's qualifying values.
    pub fn select_project_with<F: FnMut(usize, Val)>(
        &mut self,
        base: &Table,
        head_pred: &RangePred,
        projs: &[usize],
        consume: F,
    ) -> Result<(), StorageError> {
        self.conjunctive_project_with(base, head_pred, &[], projs, consume)
    }

    /// Conjunctive multi-selection query (§3.3 executed chunk-wise,
    /// §4.1): predicate on the head attribute plus `tail_sels` predicates
    /// on other attributes; streams qualifying values of each projection
    /// attribute via `consume(attr, value)`.
    pub fn conjunctive_project_with<F: FnMut(usize, Val)>(
        &mut self,
        base: &Table,
        head_pred: &RangePred,
        tail_sels: &[(usize, RangePred)],
        projs: &[usize],
        mut consume: F,
    ) -> Result<(), StorageError> {
        if head_pred.is_empty_range() || (tail_sels.is_empty() && projs.is_empty()) {
            return Ok(());
        }
        self.ensure_chunk_map(base)?;
        self.note_query(head_pred);
        self.crack_chunk_map_for(head_pred);
        self.clock += 1;

        let mut attrs: Vec<usize> = tail_sels.iter().map(|(a, _)| *a).collect();
        for &p in projs {
            if !attrs.contains(&p) {
                attrs.push(p);
            }
        }
        let areas = self.overlapping_areas(base, head_pred);
        for area in areas {
            self.process_area(
                base,
                &area,
                head_pred,
                tail_sels,
                projs,
                &attrs,
                &mut consume,
            )?;
        }
        self.enforce_budget()
    }

    /// Disjunctive multi-selection (§3.3 executed chunk-wise): predicates
    /// on distinct attributes combined with OR. A disjunction needs every
    /// tuple examined, so the pass covers *all* areas of the chunk map,
    /// builds a per-area OR bit vector over the predicate chunks, and
    /// streams the projection attributes' qualifying values.
    pub fn disjunctive_project_with<F: FnMut(usize, Val)>(
        &mut self,
        base: &Table,
        preds: &[(usize, RangePred)],
        projs: &[usize],
        mut consume: F,
    ) -> Result<(), StorageError> {
        if preds.is_empty() || projs.is_empty() {
            return Ok(());
        }
        self.ensure_chunk_map(base)?;
        // Adaptation still happens on the set's own predicate: its cut
        // points refine the chunk map for later conjunctive queries.
        if let Some((_, own)) = preds.iter().find(|(a, _)| *a == self.head_attr) {
            let own = *own;
            self.note_query(&own);
            self.crack_chunk_map_for(&own);
        }
        self.clock += 1;
        let mut attrs: Vec<usize> = Vec::new();
        for a in preds.iter().map(|(a, _)| *a).chain(projs.iter().copied()) {
            if !attrs.contains(&a) {
                attrs.push(a);
            }
        }
        let areas = self.overlapping_areas(base, &RangePred::all());
        for area in areas {
            self.process_area_disj(base, &area, preds, projs, &attrs, &mut consume)?;
        }
        self.enforce_budget()
    }

    /// Check the chunks of `attrs` out of one area for processing — the
    /// steps the conjunctive and disjunctive passes share:
    ///
    /// 1. materialize missing chunks (budget-checked, pinning the chunks
    ///    this query needs);
    /// 2. merge staged updates belonging to the area (§3.5) — this must
    ///    follow materialization: with the query's chunks holding
    ///    references the area can no longer revert to unfetched
    ///    mid-query (an eviction of the last sibling chunk would
    ///    un-merge the tape back to the staged lists);
    /// 3. take the chunks out of the maps;
    /// 4. partial alignment — bring every chunk to the maximum cursor
    ///    among them, and always past the last merged update (cracks
    ///    only reorganize; updates change content), recovering dropped
    ///    heads as needed.
    ///
    /// Returns the checked-out `(attr, chunk)` pairs plus the area-tape
    /// clone; hand the chunks back with [`Self::reinstall_chunks`].
    fn checkout_area_chunks(
        &mut self,
        base: &Table,
        area: &AreaRef,
        attrs: &[usize],
    ) -> Result<CheckedOutArea, StorageError> {
        let pinned: HashSet<(usize, AreaId)> = attrs.iter().map(|&a| (a, area.id)).collect();
        for &attr in attrs {
            let present = self
                .maps
                .get(&attr)
                .is_some_and(|m| m.chunks.contains_key(&area.id));
            if present {
                continue;
            }
            // Missing chunk: reload it from the spill tier when a spilled
            // sibling record exists (cheaper than recracking), otherwise
            // recreate it from the base columns. Either way the chunk's
            // tuples must first fit in the resident budget.
            let slot = self
                .areas
                .get_mut(&area.id)
                .and_then(|info| info.spilled.remove(&attr));
            let chunk = match (slot, self.spill.clone()) {
                (Some(slot), Some(tier)) => {
                    self.make_room(slot.tuples as usize, &pinned)?;
                    let loaded = self.reload_chunk(&tier, attr, slot);
                    // The slot is consumed on success *and* on failure: a
                    // bad record is released and the next access simply
                    // recreates the chunk from the base (the area kept
                    // its tape), so one loud error never wedges the set.
                    tier.release(attr, slot);
                    let mut chunk = loaded?;
                    chunk.last_access = self.clock;
                    self.areas.entry(area.id).or_default().refs.insert(attr);
                    chunk
                }
                _ => {
                    self.make_room(area.end - area.start, &pinned)?;
                    self.fetch_chunk(base, attr, area)?
                }
            };
            self.maps
                .entry(attr)
                .or_default()
                .chunks
                .insert(area.id, chunk);
        }
        self.flush_staged_for_area(base, area);
        // The loop above materialized (or reloaded) every chunk, so each
        // take-out succeeds; tolerating an absent entry keeps this path
        // panic-free without changing behaviour.
        let mut chunks: Vec<(usize, Chunk)> = Vec::with_capacity(attrs.len());
        for &attr in attrs {
            if let Some(c) = self
                .maps
                .get_mut(&attr)
                .and_then(|m| m.chunks.remove(&area.id))
            {
                chunks.push((attr, c));
            }
        }
        // Snapshot the tape into the recycled scratch buffer (returned to
        // the set by `recycle_tape` once the area is processed).
        let mut tape = std::mem::take(&mut self.tape_scratch);
        tape.clear();
        if let Some(a) = self.areas.get(&area.id) {
            tape.extend_from_slice(&a.tape);
        }
        let head_col = base.column(self.head_attr);
        let target = chunks
            .iter()
            .map(|(_, c)| c.cursor)
            .max()
            .unwrap_or(0)
            .max(update_floor(&tape));
        for (attr, c) in chunks.iter_mut() {
            if c.cursor < target && c.head_dropped() {
                let head = self.rebuild_head(base, *attr, area, c.cursor, &tape)?;
                c.restore_head(head);
            }
            self.stats.entries_replayed +=
                c.align_to(&tape, target, head_col, base.column(*attr)) as u64;
        }
        Ok((chunks, tape))
    }

    /// Return the per-query tape snapshot buffer for reuse.
    fn recycle_tape(&mut self, tape: Vec<AreaEntry>) {
        if tape.capacity() > self.tape_scratch.capacity() {
            self.tape_scratch = tape;
        }
    }

    /// Hand processed chunks back: access bookkeeping, the optional
    /// head-drop policy, and reinsertion into the maps.
    fn reinstall_chunks(&mut self, area_id: AreaId, chunks: Vec<(usize, Chunk)>) {
        let clock = self.clock;
        let threshold = self.head_drop_threshold;
        for (attr, mut c) in chunks {
            c.accesses += 1;
            c.last_access = clock;
            if let Some(t) = threshold {
                if !c.head_dropped() && c.max_piece() <= t {
                    c.drop_head();
                    self.stats.heads_dropped += 1;
                }
            }
            self.maps.entry(attr).or_default().chunks.insert(area_id, c);
        }
    }

    /// One area of a disjunctive pass: check out, OR-filter, stream.
    fn process_area_disj<F: FnMut(usize, Val)>(
        &mut self,
        base: &Table,
        area: &AreaRef,
        preds: &[(usize, RangePred)],
        projs: &[usize],
        attrs: &[usize],
        consume: &mut F,
    ) -> Result<(), StorageError> {
        let (chunks, tape) = self.checkout_area_chunks(base, area, attrs)?;

        // OR bit vector over the whole (aligned) area.
        let len = chunks.first().map_or(0, |(_, c)| c.len());
        let mut bv = BitVec::zeros(len);
        for (attr, pred) in preds {
            // checkout_area_chunks returns a chunk for every attr in
            // `attrs`, which includes every predicate attribute.
            let Some((_, c)) = chunks.iter().find(|(a, _)| a == attr) else {
                continue;
            };
            let tails = c.tail();
            for (i, &v) in tails.iter().enumerate() {
                if pred.matches(v) {
                    bv.set(i);
                }
            }
        }

        for &p in projs {
            let Some((_, c)) = chunks.iter().find(|(a, _)| *a == p) else {
                continue;
            };
            let tails = c.tail();
            for i in bv.iter_ones() {
                consume(p, tails[i]);
            }
        }

        self.reinstall_chunks(area.id, chunks);
        self.recycle_tape(tape);
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn process_area<F: FnMut(usize, Val)>(
        &mut self,
        base: &Table,
        area: &AreaRef,
        head_pred: &RangePred,
        tail_sels: &[(usize, RangePred)],
        projs: &[usize],
        attrs: &[usize],
        consume: &mut F,
    ) -> Result<(), StorageError> {
        // Materialize, merge staged updates, take out and align (§3.5 /
        // §4.1 shared machinery).
        let (mut chunks, tape) = self.checkout_area_chunks(base, area, attrs)?;
        let needed = Self::keys_inside(head_pred, area);
        let head_col = base.column(self.head_attr);
        let policy = self.advisor.effective();

        // Boundary handling with monitored alignment: replay further
        //    entries until the needed boundaries appear; crack (under the
        //    query's effective policy, logged on the tape) only if the
        //    tape never provides them.
        let mut range = (0, chunks.first().map_or(0, |(_, c)| c.len()));
        let mut exact = true;
        if !needed.is_empty() {
            let mut missing = false;
            for (attr, c) in chunks.iter_mut() {
                if !c.has_boundaries(&needed) && c.head_dropped() {
                    let head = self.rebuild_head(base, *attr, area, c.cursor, &tape)?;
                    c.restore_head(head);
                }
                let (replayed, m) =
                    c.align_until_boundaries(&tape, &needed, head_col, base.column(*attr));
                self.stats.entries_replayed += replayed as u64;
                missing = m;
            }
            if missing {
                // Every chunk is now at the tape end; crack them all with
                // the same policy (deterministically identical outcomes).
                let mut changed = false;
                for (attr, c) in chunks.iter_mut() {
                    if c.head_dropped() {
                        let head = self.rebuild_head(base, *attr, area, c.cursor, &tape)?;
                        c.restore_head(head);
                    }
                    let before = c.index().len();
                    c.crack_range_with(head_pred, &policy);
                    if c.index().len() > before {
                        changed = true;
                    }
                    self.stats.query_cracks += 1;
                }
                // Log only cracks that created boundaries — a declined
                // coarse-granular split must not grow the tape on every
                // repeat of the same query.
                if changed {
                    let info = self.area_info(area.id);
                    info.tape.push(AreaEntry::Crack(*head_pred, policy));
                    let new_len = info.tape.len();
                    for (_, c) in chunks.iter_mut() {
                        c.cursor = new_len;
                    }
                }
            }
            range = chunks[0].1.range_of(head_pred);
            exact = chunks[0].1.has_boundaries(&needed);
            for (_, c) in &chunks {
                debug_assert_eq!(c.range_of(head_pred), range, "aligned chunks agree");
            }
        }

        // Head filter for an inexact (coarse-granular) range: the range
        // is a superset delimited by leaf pieces, so qualifying tuples
        // are identified by the head values. The heads were restored
        // above (an inexact range implies the missing-crack path ran).
        let head_bv = if exact {
            None
        } else {
            let heads = chunks[0]
                .1
                .head()
                // INVARIANT: an inexact range means the missing-crack
                // path above ran (coarse-granular declined a split), and
                // that path restores every dropped head before cracking.
                .expect("head restored for the policy crack");
            let heads = &heads[range.0..range.1];
            Some(BitVec::from_fn(heads.len(), |i| {
                head_pred.matches(heads[i])
            }))
        };

        // Bit-vector filtering over the qualifying local range.
        let bv = if tail_sels.is_empty() {
            head_bv
        } else {
            let mut bv: Option<BitVec> = head_bv;
            for (attr, pred) in tail_sels {
                // `attrs` contains every selection attribute, so the
                // checkout returned a chunk for each.
                let Some((_, c)) = chunks.iter().find(|(a, _)| a == attr) else {
                    continue;
                };
                let tails = &c.tail()[range.0..range.1];
                match &mut bv {
                    None => {
                        bv = Some(BitVec::from_fn(tails.len(), |i| pred.matches(tails[i])));
                    }
                    Some(bv) => bv.refine(|i| pred.matches(tails[i])),
                }
            }
            bv
        };

        // Stream projections.
        for &p in projs {
            let Some((_, c)) = chunks.iter().find(|(a, _)| *a == p) else {
                continue;
            };
            let tails = &c.tail()[range.0..range.1];
            match &bv {
                None => {
                    for &v in tails {
                        consume(p, v);
                    }
                }
                Some(bv) => {
                    for i in bv.iter_ones() {
                        consume(p, tails[i]);
                    }
                }
            }
        }

        self.reinstall_chunks(area.id, chunks);
        self.recycle_tape(tape);
        Ok(())
    }
}

#[cfg(test)]
mod tests;
