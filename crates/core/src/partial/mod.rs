//! Partial sideways cracking (§4): maps materialized chunk-by-chunk,
//! driven by the workload, under a storage budget.
//!
//! A [`PartialSet`] owns:
//!
//! * the **chunk map** `H_A` — `(A, key)` pairs, cracked into *areas*;
//!   unfetched areas may be cracked further; fetched areas are frozen so
//!   that all chunks created from them stay alignment-compatible;
//! * per-area metadata: fetched state, the *area tape* of chunk-level
//!   cracks, the set of maps referencing the area, and lazily deleted
//!   index shells of dropped chunks;
//! * the partial maps themselves: one [`Chunk`] per (attribute, area)
//!   pair, created on demand, dropped under storage pressure (LFU),
//!   recreated when needed again.
//!
//! Queries proceed **chunk-wise** (§4.1): each operator loads, creates,
//! aligns, cracks and scans one chunk at a time, and alignment is
//! *partial* — a chunk not being cracked only needs to reach the maximum
//! cursor of the chunks used together with it, and even a to-be-cracked
//! chunk stops early when a tape entry already provides its boundary.

pub mod chunk;

pub use chunk::Chunk;

use crate::bitvec::BitVec;
use crackdb_columnstore::column::Table;
use crackdb_columnstore::types::{RangePred, RowId, Val};
use crackdb_cracking::index::pred_keys;
use crackdb_cracking::{BoundaryKey, CrackedArray, CrackerIndex};
use std::collections::{HashMap, HashSet};

/// Identity of an area: its start boundary in the chunk map (`None` for
/// the leftmost area). Stable while the area is fetched.
pub type AreaId = Option<BoundaryKey>;

/// Per-area metadata.
#[derive(Debug, Clone, Default)]
struct AreaInfo {
    fetched: bool,
    /// Chunk-level cracks logged for this area, replayed by sibling
    /// chunks during (partial) alignment.
    tape: Vec<RangePred>,
    /// Tail attributes whose partial map currently holds a chunk of this
    /// area.
    refs: HashSet<usize>,
    /// Lazily deleted cracker-index shells of dropped chunks, reusable at
    /// recreation (§4.1 "lazy deletion").
    shells: HashMap<usize, CrackerIndex>,
}

/// A partial map: the workload-selected subset of `M_AB`, one chunk per
/// fetched area.
#[derive(Debug, Clone, Default)]
pub struct PartialMap {
    /// Chunks keyed by area.
    pub chunks: HashMap<AreaId, Chunk>,
}

/// Instrumentation counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct PartialStats {
    /// Chunks fetched (including recreations).
    pub chunks_created: u64,
    /// Chunks evicted by the storage manager.
    pub chunks_dropped: u64,
    /// Tuples materialized by fetches.
    pub tuples_fetched: u64,
    /// Area-tape entries replayed during alignment.
    pub entries_replayed: u64,
    /// Cracks performed directly by queries on chunks.
    pub query_cracks: u64,
    /// Cracks performed on the chunk map.
    pub chunk_map_cracks: u64,
    /// Head columns dropped.
    pub heads_dropped: u64,
    /// Head columns recovered (rebuilt) for further cracking.
    pub heads_recovered: u64,
}

/// A reference to one area of the chunk map at query time.
#[derive(Debug, Clone, Copy)]
struct AreaRef {
    id: AreaId,
    start: usize,
    end: usize,
    end_key: Option<BoundaryKey>,
}

/// The partial map set `S_A` of one head attribute.
#[derive(Debug, Clone)]
pub struct PartialSet {
    /// Head attribute of every map in the set.
    pub head_attr: usize,
    chunk_map: Option<CrackedArray<RowId>>,
    areas: HashMap<AreaId, AreaInfo>,
    maps: HashMap<usize, PartialMap>,
    /// Storage budget in tuples across all chunks (`None` = unlimited).
    pub budget: Option<usize>,
    usage: usize,
    clock: u64,
    /// When set, chunks whose largest piece is at most this many tuples
    /// drop their head column after use (§4.1 head dropping).
    pub head_drop_threshold: Option<usize>,
    /// Counters.
    pub stats: PartialStats,
}

impl PartialSet {
    /// Empty partial set for `head_attr`.
    pub fn new(head_attr: usize) -> Self {
        PartialSet {
            head_attr,
            chunk_map: None,
            areas: HashMap::new(),
            maps: HashMap::new(),
            budget: None,
            usage: 0,
            clock: 0,
            head_drop_threshold: None,
            stats: PartialStats::default(),
        }
    }

    /// Current chunk storage in tuples (the chunk map, like a cracker
    /// column, is infrastructure and not counted against the budget).
    pub fn usage(&self) -> usize {
        self.usage
    }

    /// Number of materialized chunks across all maps.
    pub fn chunk_count(&self) -> usize {
        self.maps.values().map(|m| m.chunks.len()).sum()
    }

    /// Read access to a partial map.
    pub fn map(&self, tail_attr: usize) -> Option<&PartialMap> {
        self.maps.get(&tail_attr)
    }

    fn ensure_chunk_map(&mut self, base: &Table) {
        if self.chunk_map.is_none() {
            let col = base.column(self.head_attr);
            let head = col.values().to_vec();
            let keys: Vec<RowId> = (0..col.len() as RowId).collect();
            self.chunk_map = Some(CrackedArray::new(head, keys));
        }
    }

    fn area_info(&mut self, id: AreaId) -> &mut AreaInfo {
        self.areas.entry(id).or_default()
    }

    /// Crack the chunk map at the predicate's cut points, but only inside
    /// unfetched areas (fetched areas are frozen; their chunks get
    /// cracked instead).
    fn crack_chunk_map_for(&mut self, pred: &RangePred) {
        let (lo_k, hi_k) = pred_keys(pred);
        for key in [lo_k, hi_k].into_iter().flatten() {
            let cm = self.chunk_map.as_ref().expect("chunk map ensured");
            if cm.index().position_of(key).is_some() {
                continue;
            }
            let id: AreaId = cm
                .index()
                .boundaries()
                .iter()
                .rev()
                .find(|(k, _)| *k < key)
                .map(|(k, _)| *k);
            let fetched = self.areas.get(&id).is_some_and(|a| a.fetched);
            if !fetched {
                self.chunk_map
                    .as_mut()
                    .expect("chunk map ensured")
                    .ensure_boundary(key);
                self.stats.chunk_map_cracks += 1;
            }
        }
    }

    /// Enumerate areas overlapping the predicate's qualifying region.
    fn overlapping_areas(&self, pred: &RangePred) -> Vec<AreaRef> {
        let cm = self.chunk_map.as_ref().expect("chunk map ensured");
        let bs = cm.index().boundaries();
        let n = cm.len();
        let (lo_k, hi_k) = pred_keys(pred);
        let mut out = Vec::new();
        let mut start_key: AreaId = None;
        let mut start_pos = 0usize;
        for i in 0..=bs.len() {
            let (end_key, end_pos) = if i < bs.len() {
                (Some(bs[i].0), bs[i].1)
            } else {
                (None, n)
            };
            // Overlap test on cut-point order: area [start_key, end_key)
            // vs region (lo_k, hi_k).
            let below = match (end_key, lo_k) {
                (Some(e), Some(l)) => e <= l,
                _ => false,
            };
            let above = match (start_key, hi_k) {
                (Some(s), Some(h)) => s >= h,
                _ => false,
            };
            if !below && !above && end_pos > start_pos {
                out.push(AreaRef {
                    id: start_key,
                    start: start_pos,
                    end: end_pos,
                    end_key,
                });
            }
            start_key = end_key;
            start_pos = end_pos;
        }
        out
    }

    /// Predicate boundaries falling strictly inside an area (those require
    /// chunk-level cracks).
    fn keys_inside(pred: &RangePred, area: &AreaRef) -> Vec<BoundaryKey> {
        let (lo_k, hi_k) = pred_keys(pred);
        [lo_k, hi_k]
            .into_iter()
            .flatten()
            .filter(|k| {
                let after_start = area.id.is_none_or(|s| *k > s);
                let before_end = area.end_key.is_none_or(|e| *k < e);
                after_start && before_end
            })
            .collect()
    }

    /// Fetch (materialize) the chunk of `tail_attr` for an area, reviving
    /// a lazily deleted index shell when available.
    fn fetch_chunk(&mut self, base: &Table, tail_attr: usize, area: &AreaRef) -> Chunk {
        let cm = self.chunk_map.as_ref().expect("chunk map ensured");
        let (heads, keys) = cm.view((area.start, area.end));
        let tail_col = base.column(tail_attr);
        let head: Vec<Val> = heads.to_vec();
        let tail: Vec<Val> = keys.iter().map(|&k| tail_col.get(k)).collect();
        let info = self.areas.entry(area.id).or_default();
        info.fetched = true;
        info.refs.insert(tail_attr);
        let shell = info.shells.remove(&tail_attr);
        self.usage += head.len();
        self.stats.chunks_created += 1;
        self.stats.tuples_fetched += head.len() as u64;
        let mut chunk = Chunk::seed(head, tail, shell);
        chunk.last_access = self.clock;
        chunk
    }

    /// Evict cold chunks until `extra` more tuples fit in the budget.
    /// Chunks in `pinned` are untouchable.
    ///
    /// Victim choice is least-recently-used with access frequency as the
    /// tiebreak. Pure frequency (no aging) would always evict the chunks
    /// a workload shift just created — the previous batch's chunks carry
    /// large counts — and thrash; recency keeps the adaptation property
    /// §4.1 asks of the storage manager ("the system always keeps the
    /// chunks that are really necessary for the workload hot-set").
    fn make_room(&mut self, extra: usize, pinned: &HashSet<(usize, AreaId)>) {
        let Some(budget) = self.budget else { return };
        while self.usage + extra > budget {
            let victim = self
                .maps
                .iter()
                .flat_map(|(&attr, m)| {
                    m.chunks
                        .iter()
                        .map(move |(&aid, c)| ((attr, aid), (c.last_access, c.accesses)))
                })
                .filter(|(key, _)| !pinned.contains(key))
                .min_by_key(|(_, score)| *score)
                .map(|(key, _)| key);
            let Some((attr, aid)) = victim else { break };
            self.drop_chunk(attr, aid);
        }
    }

    /// Drop one chunk, keeping its index as a lazily deleted shell; if it
    /// was the area's last chunk, the area reverts to unfetched and its
    /// tape is removed (§4.1).
    pub fn drop_chunk(&mut self, tail_attr: usize, area_id: AreaId) {
        let Some(map) = self.maps.get_mut(&tail_attr) else {
            return;
        };
        let Some(chunk) = map.chunks.remove(&area_id) else {
            return;
        };
        self.usage -= chunk.len();
        self.stats.chunks_dropped += 1;
        let info = self.areas.entry(area_id).or_default();
        info.refs.remove(&tail_attr);
        if info.refs.is_empty() {
            info.fetched = false;
            info.tape.clear();
            info.shells.clear();
        } else {
            info.shells.insert(tail_attr, chunk.into_shell());
        }
    }

    /// Deterministically rebuild the head column of a head-dropped chunk:
    /// re-seed from the (frozen) chunk-map area and replay the area tape
    /// up to the chunk's cursor.
    fn rebuild_head(
        &mut self,
        base: &Table,
        tail_attr: usize,
        area: &AreaRef,
        cursor: usize,
    ) -> Vec<Val> {
        let cm = self.chunk_map.as_ref().expect("chunk map ensured");
        let (heads, keys) = cm.view((area.start, area.end));
        let tail_col = base.column(tail_attr);
        let head: Vec<Val> = heads.to_vec();
        let tail: Vec<Val> = keys.iter().map(|&k| tail_col.get(k)).collect();
        let mut tmp = Chunk::seed(head, tail, None);
        let tape = self
            .areas
            .get(&area.id)
            .map(|a| a.tape.clone())
            .unwrap_or_default();
        tmp.align_to(&tape, cursor);
        self.stats.heads_recovered += 1;
        tmp.head().expect("fresh chunk has a head").to_vec()
    }

    /// Single-selection, multi-projection query (`select P1.. from R where
    /// pred(A)`): stream each projection attribute's qualifying values.
    pub fn select_project_with<F: FnMut(usize, Val)>(
        &mut self,
        base: &Table,
        head_pred: &RangePred,
        projs: &[usize],
        consume: F,
    ) {
        self.conjunctive_project_with(base, head_pred, &[], projs, consume)
    }

    /// Conjunctive multi-selection query (§3.3 executed chunk-wise,
    /// §4.1): predicate on the head attribute plus `tail_sels` predicates
    /// on other attributes; streams qualifying values of each projection
    /// attribute via `consume(attr, value)`.
    pub fn conjunctive_project_with<F: FnMut(usize, Val)>(
        &mut self,
        base: &Table,
        head_pred: &RangePred,
        tail_sels: &[(usize, RangePred)],
        projs: &[usize],
        mut consume: F,
    ) {
        if head_pred.is_empty_range() || (tail_sels.is_empty() && projs.is_empty()) {
            return;
        }
        self.ensure_chunk_map(base);
        self.crack_chunk_map_for(head_pred);
        self.clock += 1;

        let mut attrs: Vec<usize> = tail_sels.iter().map(|(a, _)| *a).collect();
        for &p in projs {
            if !attrs.contains(&p) {
                attrs.push(p);
            }
        }
        let areas = self.overlapping_areas(head_pred);
        for area in areas {
            self.process_area(
                base,
                &area,
                head_pred,
                tail_sels,
                projs,
                &attrs,
                &mut consume,
            );
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn process_area<F: FnMut(usize, Val)>(
        &mut self,
        base: &Table,
        area: &AreaRef,
        head_pred: &RangePred,
        tail_sels: &[(usize, RangePred)],
        projs: &[usize],
        attrs: &[usize],
        consume: &mut F,
    ) {
        // 1. Materialize missing chunks (budget-checked, pinning the
        //    chunks this query needs).
        let pinned: HashSet<(usize, AreaId)> = attrs.iter().map(|&a| (a, area.id)).collect();
        for &attr in attrs {
            let present = self
                .maps
                .get(&attr)
                .is_some_and(|m| m.chunks.contains_key(&area.id));
            if !present {
                self.make_room(area.end - area.start, &pinned);
                let chunk = self.fetch_chunk(base, attr, area);
                self.maps
                    .entry(attr)
                    .or_default()
                    .chunks
                    .insert(area.id, chunk);
            }
        }

        // 2. Take the chunks out for processing.
        let mut chunks: Vec<(usize, Chunk)> = attrs
            .iter()
            .map(|&attr| {
                let c = self
                    .maps
                    .get_mut(&attr)
                    .expect("map materialized")
                    .chunks
                    .remove(&area.id)
                    .expect("chunk materialized");
                (attr, c)
            })
            .collect();

        let tape = self
            .areas
            .get(&area.id)
            .map(|a| a.tape.clone())
            .unwrap_or_default();
        let needed = Self::keys_inside(head_pred, area);

        // 3. Partial alignment: bring every used chunk to the maximum
        //    cursor among them.
        let target = chunks.iter().map(|(_, c)| c.cursor).max().unwrap_or(0);
        for (attr, c) in chunks.iter_mut() {
            if c.cursor < target && c.head_dropped() {
                let head = self.rebuild_head(base, *attr, area, c.cursor);
                c.restore_head(head);
            }
            self.stats.entries_replayed += c.align_to(&tape, target) as u64;
        }

        // 4. Boundary handling with monitored alignment: replay further
        //    entries until the needed boundaries appear; crack only if the
        //    tape never provides them.
        let mut range = (0, chunks.first().map_or(0, |(_, c)| c.len()));
        if !needed.is_empty() {
            let mut missing = false;
            for (attr, c) in chunks.iter_mut() {
                if !c.has_boundaries(&needed) && c.head_dropped() {
                    let head = self.rebuild_head(base, *attr, area, c.cursor);
                    c.restore_head(head);
                }
                let (replayed, m) = c.align_until_boundaries(&tape, &needed);
                self.stats.entries_replayed += replayed as u64;
                missing = m;
            }
            if missing {
                for (attr, c) in chunks.iter_mut() {
                    if c.head_dropped() {
                        let head = self.rebuild_head(base, *attr, area, c.cursor);
                        c.restore_head(head);
                    }
                    c.crack_range(head_pred);
                    self.stats.query_cracks += 1;
                }
                let info = self.area_info(area.id);
                info.tape.push(*head_pred);
                let new_len = info.tape.len();
                for (_, c) in chunks.iter_mut() {
                    c.cursor = new_len;
                }
            }
            range = chunks[0].1.range_of(head_pred);
            for (_, c) in &chunks {
                debug_assert_eq!(c.range_of(head_pred), range, "aligned chunks agree");
            }
        }

        // 5. Bit-vector filtering over the qualifying local range.
        let bv = if tail_sels.is_empty() {
            None
        } else {
            let mut bv: Option<BitVec> = None;
            for (attr, pred) in tail_sels {
                let (_, c) = chunks
                    .iter()
                    .find(|(a, _)| a == attr)
                    .expect("selection chunk present");
                let tails = &c.tail()[range.0..range.1];
                match &mut bv {
                    None => {
                        bv = Some(BitVec::from_fn(tails.len(), |i| pred.matches(tails[i])));
                    }
                    Some(bv) => bv.refine(|i| pred.matches(tails[i])),
                }
            }
            bv
        };

        // 6. Stream projections.
        for &p in projs {
            let (_, c) = chunks
                .iter()
                .find(|(a, _)| *a == p)
                .expect("projection chunk");
            let tails = &c.tail()[range.0..range.1];
            match &bv {
                None => {
                    for &v in tails {
                        consume(p, v);
                    }
                }
                Some(bv) => {
                    for i in bv.iter_ones() {
                        consume(p, tails[i]);
                    }
                }
            }
        }

        // 7. Bookkeeping, optional head dropping, and reinstalling.
        let clock = self.clock;
        let threshold = self.head_drop_threshold;
        for (attr, mut c) in chunks {
            c.accesses += 1;
            c.last_access = clock;
            if let Some(t) = threshold {
                if !c.head_dropped() && c.max_piece() <= t {
                    c.drop_head();
                    self.stats.heads_dropped += 1;
                }
            }
            self.maps.entry(attr).or_default().chunks.insert(area.id, c);
        }
    }
}

#[cfg(test)]
mod tests;
