//! Piece-aware aggregation (§3.4): "many operators can exploit the
//! clustering information in the maps, e.g., a max can consider only the
//! last piece of a map". The paper leaves this as future work; this
//! module implements it for min/max/count over the head attribute of any
//! cracked array.
//!
//! The idea: the cracker index bounds the values of every piece, so a
//! `max` only needs to scan the highest non-empty piece (then lower ones
//! only if that piece turns out empty), and a `count` over a range whose
//! bounds match existing cracks is pure index arithmetic.

use crackdb_columnstore::types::{RangePred, Val};
use crackdb_cracking::index::pred_keys;
use crackdb_cracking::CrackedArray;

/// Maximum head value, scanning pieces from the top until one is
/// non-empty. On a well-cracked array this touches a tiny suffix.
pub fn head_max<T: Copy>(arr: &CrackedArray<T>) -> Option<Val> {
    let bs = arr.index().boundaries();
    let n = arr.len();
    let mut end = n;
    // Piece starts in descending order: boundary positions + position 0.
    for start in bs.iter().rev().map(|&(_, p)| p).chain([0]) {
        if start < end {
            if let Some(m) = arr.head()[start..end].iter().copied().max() {
                return Some(m);
            }
        }
        end = end.min(start);
        if end == 0 {
            break;
        }
    }
    None
}

/// Minimum head value, scanning pieces from the bottom.
pub fn head_min<T: Copy>(arr: &CrackedArray<T>) -> Option<Val> {
    let bs = arr.index().boundaries();
    let n = arr.len();
    let mut start = 0;
    for end in bs.iter().map(|&(_, p)| p).chain([n]) {
        if start < end {
            if let Some(m) = arr.head()[start..end].iter().copied().min() {
                return Some(m);
            }
        }
        start = start.max(end);
        if start >= n {
            break;
        }
    }
    None
}

/// Count of tuples qualifying `pred` — pure index arithmetic when both
/// bounds match existing cracks, otherwise an exact count that scans only
/// the (at most two) boundary pieces.
pub fn head_count<T: Copy>(arr: &CrackedArray<T>, pred: &RangePred) -> usize {
    if pred.is_empty_range() {
        return 0;
    }
    let n = arr.len();
    let (lo_k, hi_k) = pred_keys(pred);
    let index = arr.index();
    // Resolve each bound either exactly or to its enclosing piece, then
    // count false hits only inside the boundary pieces.
    let (lo_exact, lo_piece) = match lo_k {
        None => (Some(0), None),
        Some(k) => match index.position_of(k) {
            Some(p) => (Some(p), None),
            None => (None, Some(index.enclosing_piece(k, n))),
        },
    };
    let (hi_exact, hi_piece) = match hi_k {
        None => (Some(n), None),
        Some(k) => match index.position_of(k) {
            Some(p) => (Some(p), None),
            None => (None, Some(index.enclosing_piece(k, n))),
        },
    };
    let head = arr.head();
    let count_in = |range: (usize, usize)| {
        head[range.0..range.1]
            .iter()
            .filter(|&&v| pred.matches(v))
            .count()
    };
    match (lo_exact, hi_exact, lo_piece, hi_piece) {
        (Some(a), Some(b), _, _) => b.saturating_sub(a),
        (Some(a), None, _, Some(hp)) => {
            // Fully-qualifying middle + scan of the upper boundary piece.
            hp.0.saturating_sub(a) + count_in(hp)
        }
        (None, Some(b), Some(lp), _) => b.saturating_sub(lp.1) + count_in((lp.0, lp.1.min(b))),
        (None, None, Some(lp), Some(hp)) => {
            if lp == hp {
                count_in(lp)
            } else {
                count_in(lp) + hp.0.saturating_sub(lp.1) + count_in(hp)
            }
        }
        _ => unreachable!("bound is either exact or has an enclosing piece"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crackdb_columnstore::types::RangePred;

    fn arr() -> CrackedArray<u32> {
        let head = vec![12, 3, 5, 9, 15, 22, 7, 26, 4, 2, 24, 11, 16];
        let tail: Vec<u32> = (0..13).collect();
        CrackedArray::new(head, tail)
    }

    #[test]
    fn max_min_on_uncracked() {
        let a = arr();
        assert_eq!(head_max(&a), Some(26));
        assert_eq!(head_min(&a), Some(2));
    }

    #[test]
    fn max_min_after_cracks_touch_few_pieces() {
        let mut a = arr();
        a.crack_range(&RangePred::open(10, 15));
        a.crack_range(&RangePred::open(4, 22));
        assert_eq!(head_max(&a), Some(26));
        assert_eq!(head_min(&a), Some(2));
    }

    #[test]
    fn max_with_empty_top_piece() {
        let mut a = arr();
        // Crack at a value above everything: the top piece is empty.
        a.crack_range(&RangePred::open(100, 200));
        assert_eq!(head_max(&a), Some(26));
    }

    #[test]
    fn count_exact_when_cracked() {
        let mut a = arr();
        let (s, e) = a.crack_range(&RangePred::open(10, 15));
        assert_eq!(head_count(&a, &RangePred::open(10, 15)), e - s);
    }

    #[test]
    fn count_scans_only_boundary_pieces() {
        let mut a = arr();
        a.crack_range(&RangePred::open(10, 15));
        // Uncracked predicate: still exact.
        for pred in [
            RangePred::open(5, 20),
            RangePred::open(0, 100),
            RangePred::closed(2, 2),
            RangePred::open(11, 12),
        ] {
            let expected = a.head().iter().filter(|&&v| pred.matches(v)).count();
            assert_eq!(head_count(&a, &pred), expected, "{pred:?}");
        }
    }

    #[test]
    fn count_empty_pred() {
        let a = arr();
        assert_eq!(head_count(&a, &RangePred::open(5, 5)), 0);
    }

    #[test]
    fn randomized_counts_match_scans() {
        let head: Vec<i64> = (0..500).map(|i| (i * 97) % 500).collect();
        let tail: Vec<u32> = (0..500).collect();
        let mut a = CrackedArray::new(head, tail);
        let mut state = 17u64;
        let mut next = move |m: i64| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
            ((state >> 33) as i64).rem_euclid(m)
        };
        for _ in 0..30 {
            let lo = next(500);
            let pred = RangePred::open(lo, lo + 1 + next(100));
            a.crack_range(&pred);
            let probe = RangePred::open(next(500), next(500) + 50);
            let expected = a.head().iter().filter(|&&v| probe.matches(v)).count();
            assert_eq!(head_count(&a, &probe), expected);
        }
    }
}
