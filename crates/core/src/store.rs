//! Query-level orchestration over map sets: the §3.3 map-set choice via
//! self-organizing histograms, full-map storage management (the policy
//! §4.2 benchmarks partial maps against), and the partial-store wrapper.

use crate::bitvec::BitVec;
use crate::partial::PartialSet;
use crate::set::{uniform_estimate, MapSet};
use crackdb_columnstore::column::Table;
use crackdb_columnstore::types::{RangePred, RowId, Val};
use crackdb_cracking::CrackPolicy;
use std::collections::{HashMap, HashSet};

/// Result handle of a conjunctive multi-selection: the chosen map set,
/// the cracked area, and the qualifying-bit vector over that area.
#[derive(Debug, Clone)]
pub struct ConjHandle {
    /// Head attribute of the chosen set.
    pub set_attr: usize,
    /// The chosen set's own predicate.
    pub head_pred: RangePred,
    /// Contiguous qualifying area in every aligned map of the set.
    pub range: (usize, usize),
    /// Bits over `range`: set = tuple satisfies all predicates.
    pub bv: Option<BitVec>,
}

impl ConjHandle {
    /// Number of tuples satisfying all predicates.
    pub fn result_size(&self) -> usize {
        match &self.bv {
            Some(bv) => bv.count_ones(),
            None => self.range.1 - self.range.0,
        }
    }
}

/// Registry of full-map [`MapSet`]s with histogram-driven set choice and
/// LFU whole-map storage management.
#[derive(Debug, Clone, Default)]
pub struct SidewaysStore {
    sets: HashMap<usize, MapSet>,
    /// Value domain per attribute (for zero-knowledge estimates).
    domains: HashMap<usize, (Val, Val)>,
    default_domain: (Val, Val),
    /// Pivot-choice policy handed to every map set created by the store.
    policy: CrackPolicy,
    /// Per-attribute policy overrides (mixed-policy stores): a set for
    /// attribute `a` is created with `overrides[a]` when present, the
    /// store default otherwise.
    overrides: HashMap<usize, CrackPolicy>,
    /// Storage budget in tuples across all maps (`None` = unlimited).
    pub budget: Option<usize>,
    /// Maps dropped by the storage manager (instrumentation).
    pub maps_dropped: u64,
}

impl SidewaysStore {
    /// Empty store with a default attribute value domain used for
    /// estimates before any knowledge exists.
    pub fn new(default_domain: (Val, Val)) -> Self {
        SidewaysStore {
            default_domain,
            ..Default::default()
        }
    }

    /// Set the pivot-choice policy for all *future* map sets.
    ///
    /// # Panics
    /// If any set already exists — a set's policy is fixed for its
    /// lifetime (tape replay must stay deterministic).
    pub fn set_policy(&mut self, policy: CrackPolicy) {
        assert!(
            self.sets.is_empty(),
            "crack policy must be chosen before any map set exists"
        );
        self.policy = policy;
    }

    /// The store's default pivot-choice policy.
    pub fn policy(&self) -> CrackPolicy {
        self.policy
    }

    /// Override the policy for one attribute's *future* map set (mixed-
    /// policy stores).
    ///
    /// # Panics
    /// If that attribute's set already exists — a set's configured
    /// policy is fixed for its lifetime.
    pub fn set_policy_for(&mut self, attr: usize, policy: CrackPolicy) {
        assert!(
            !self.sets.contains_key(&attr),
            "crack policy must be chosen before the map set exists"
        );
        self.overrides.insert(attr, policy);
    }

    /// The policy a set for `attr` is (or would be) created with.
    pub fn policy_for(&self, attr: usize) -> CrackPolicy {
        self.overrides.get(&attr).copied().unwrap_or(self.policy)
    }

    /// Total effective-policy switches across all sets' advisors.
    pub fn policy_switches(&self) -> u64 {
        self.sets.values().map(|s| s.policy_switches()).sum()
    }

    /// Register a per-attribute value domain.
    pub fn set_domain(&mut self, attr: usize, domain: (Val, Val)) {
        self.domains.insert(attr, domain);
    }

    fn domain(&self, attr: usize) -> (Val, Val) {
        self.domains
            .get(&attr)
            .copied()
            .unwrap_or(self.default_domain)
    }

    /// Access (creating on demand) the map set of `head_attr`. `excluded`
    /// are the base-table keys already deleted at creation time.
    pub fn ensure_set(
        &mut self,
        base: &Table,
        head_attr: usize,
        excluded: &HashSet<RowId>,
    ) -> &mut MapSet {
        let policy = self.policy_for(head_attr);
        self.sets.entry(head_attr).or_insert_with(|| {
            MapSet::with_policy(head_attr, base.num_rows(), excluded.clone(), policy)
        })
    }

    /// Read access to a set.
    pub fn set(&self, head_attr: usize) -> Option<&MapSet> {
        self.sets.get(&head_attr)
    }

    /// Total storage in tuples across all sets.
    pub fn tuples(&self) -> usize {
        self.sets.values().map(|s| s.tuples()).sum()
    }

    /// Stage an insertion (tuple `key` appended to base) into every
    /// existing set.
    pub fn stage_insert(&mut self, key: RowId) {
        for s in self.sets.values_mut() {
            s.stage_insert(key);
        }
    }

    /// Stage a deletion of tuple `key` into every existing set (head
    /// values read from the base table).
    pub fn stage_delete(&mut self, base: &Table, key: RowId) {
        for s in self.sets.values_mut() {
            let v = base.column(s.head_attr).get(key);
            s.stage_delete(v, key);
        }
    }

    /// §3.3 map-set choice for conjunctions: the most selective
    /// predicate's attribute, judged by the most-aligned map's cracker
    /// index (or a uniform assumption when no knowledge exists).
    pub fn choose_set_conj(&self, base: &Table, preds: &[(usize, RangePred)]) -> usize {
        self.choose_set(base, preds, false)
    }

    /// Map-set choice for disjunctions: the *least* selective attribute,
    /// so the areas scanned outside the cracked region stay small.
    pub fn choose_set_disj(&self, base: &Table, preds: &[(usize, RangePred)]) -> usize {
        self.choose_set(base, preds, true)
    }

    /// §3.3 self-organizing estimate for one predicate: the attribute's
    /// map-set histogram when one exists, a uniform assumption otherwise.
    pub fn estimate(&self, base: &Table, attr: usize, pred: &RangePred) -> f64 {
        let n = base.num_rows();
        match self.sets.get(&attr) {
            Some(s) => s.estimate(pred, n, self.domain(attr)),
            None => uniform_estimate(pred, n, self.domain(attr)),
        }
    }

    fn choose_set(&self, base: &Table, preds: &[(usize, RangePred)], largest: bool) -> usize {
        self.choose_idx(base, preds, largest)
            .map_or(0, |i| preds[i].0)
    }

    /// Index into `preds` of the chosen set's predicate (`None` only for
    /// an empty slice).
    fn choose_idx(&self, base: &Table, preds: &[(usize, RangePred)], largest: bool) -> Option<usize> {
        let score =
            |&(attr, pred): &(usize, RangePred)| -> f64 { self.estimate(base, attr, &pred) };
        preds
            .iter()
            .enumerate()
            .min_by(|a, b| {
                let (sa, sb) = (score(a.1), score(b.1));
                // total_cmp: a NaN estimate (degenerate domain statistics)
                // must never panic the planner; it just sorts last.
                let ord = sa.total_cmp(&sb);
                if largest {
                    ord.reverse()
                } else {
                    ord
                }
            })
            .map(|(i, _)| i)
    }

    /// Enforce the full-map budget before `needed` new tuples are
    /// materialized, never dropping maps in `pinned` (`(set, tail)`
    /// pairs). Drops whole least-frequently-accessed maps (§4.2's
    /// full-map policy).
    fn make_room(&mut self, needed: usize, pinned: &HashSet<(usize, usize)>) {
        let Some(budget) = self.budget else { return };
        loop {
            let usage = self.tuples();
            if usage + needed <= budget {
                return;
            }
            // Tie-break on the (set, tail) identity: eviction must not
            // depend on hash-map iteration order.
            let victim = self
                .sets
                .iter()
                .flat_map(|(&sa, s)| {
                    s.map_attrs().into_iter().filter_map(move |ta| {
                        let m = s.map(ta)?;
                        Some(((sa, ta), m.accesses))
                    })
                })
                .filter(|(key, _)| !pinned.contains(key))
                .min_by_key(|&((sa, ta), acc)| (acc, sa, ta))
                .map(|(key, _)| key);
            let Some((sa, ta)) = victim else { return };
            if let Some(s) = self.sets.get_mut(&sa) {
                s.drop_map(ta);
                self.maps_dropped += 1;
            } else {
                return;
            }
        }
    }

    /// Reserve budget room for a query that will touch `tail_attrs` maps
    /// of set `set_attr` (creating the missing ones).
    fn reserve(&mut self, base: &Table, set_attr: usize, tail_attrs: &[usize]) {
        if self.budget.is_none() {
            return;
        }
        let pinned: HashSet<(usize, usize)> = tail_attrs.iter().map(|&t| (set_attr, t)).collect();
        let missing: usize = {
            let s = self.sets.get(&set_attr);
            tail_attrs
                .iter()
                .filter(|&&t| s.is_none_or(|s| !s.has_map(t)))
                .count()
        };
        if missing > 0 {
            self.make_room(missing * base.num_rows(), &pinned);
        }
    }

    /// Public budget hook for executors driving map sets directly: make
    /// room for the maps of `tail_attrs` under `set_attr` before they are
    /// materialized (no-op without a budget).
    pub fn reserve_for(&mut self, base: &Table, set_attr: usize, tail_attrs: &[usize]) {
        self.reserve(base, set_attr, tail_attrs);
    }

    /// Mutable access to the map set of `head_attr`, created on demand
    /// from the current base snapshot (excluding already-deleted keys).
    /// Combine with [`Self::reserve_for`] when a budget is active.
    pub fn set_mut_ensured(
        &mut self,
        base: &Table,
        head_attr: usize,
        excluded: &HashSet<RowId>,
    ) -> &mut MapSet {
        self.ensure_set(base, head_attr, excluded)
    }

    /// Single-selection, multi-projection query: stream each projection
    /// attribute's qualifying values via `consume(attr, value)`.
    pub fn select_project_with<F: FnMut(usize, Val)>(
        &mut self,
        base: &Table,
        sel_attr: usize,
        pred: &RangePred,
        projs: &[usize],
        excluded: &HashSet<RowId>,
        mut consume: F,
    ) {
        self.reserve(base, sel_attr, projs);
        let s = self.ensure_set(base, sel_attr, excluded);
        s.note_query(pred);
        for &p in projs {
            let (range, head_bv) = s.sideways_select_filtered(base, p, pred);
            let tails = s.view_tail(p, range);
            match head_bv {
                None => {
                    for &v in tails {
                        consume(p, v);
                    }
                }
                // Inexact (coarse-granular) area: stream qualifying bits.
                Some(bv) => {
                    for i in bv.iter_ones() {
                        consume(p, tails[i]);
                    }
                }
            }
        }
    }

    /// Conjunctive multi-selection (§3.3): returns the handle describing
    /// the qualifying tuples; follow with [`Self::reconstruct_with`] per
    /// projection attribute.
    pub fn conjunctive_bv(
        &mut self,
        base: &Table,
        preds: &[(usize, RangePred)],
        extra_attrs: &[usize],
        excluded: &HashSet<RowId>,
    ) -> ConjHandle {
        let chosen = self.choose_idx(base, preds, false).unwrap_or(0);
        let (set_attr, head_pred) = match preds.get(chosen) {
            Some(&(a, p)) => (a, p),
            None => {
                // Empty predicate list: nothing qualifies.
                return ConjHandle {
                    set_attr: 0,
                    head_pred: RangePred::all(),
                    range: (0, 0),
                    bv: None,
                };
            }
        };
        let tails: Vec<(usize, RangePred)> = preds
            .iter()
            .filter(|(a, _)| *a != set_attr)
            .cloned()
            .collect();
        let mut needed: Vec<usize> = tails.iter().map(|(a, _)| *a).collect();
        for &a in extra_attrs {
            if !needed.contains(&a) {
                needed.push(a);
            }
        }
        self.reserve(base, set_attr, &needed);
        let s = self.ensure_set(base, set_attr, excluded);
        s.note_query(&head_pred);

        if tails.is_empty() {
            // Pure single-selection: no residual bit vector needed. Run
            // the sideways.select of every needed map now — the query
            // plan's selection phase contains one operator per map
            // (§3.2), so later reconstructions find the maps aligned.
            // (A coarse-granular inexact area still carries its head
            // filter so reconstructions stream only qualifying tuples;
            // aligned maps share the area, so the filter is computed
            // once — on the last map — not per alignment step.)
            for &attr in needed.iter().rev().skip(1) {
                s.sideways_select(base, attr, &head_pred);
            }
            let (range, bv) = match needed.last() {
                Some(&attr) => s.sideways_select_filtered(base, attr, &head_pred),
                None => (s.select_keys(base, &head_pred).len().pipe_range(), None),
            };
            return ConjHandle {
                set_attr,
                head_pred,
                range,
                bv,
            };
        }

        let (range, mut bv) = s.select_create_bv(base, tails[0].0, &head_pred, &tails[0].1);
        for (attr, pred) in &tails[1..] {
            s.select_refine_bv(base, *attr, &head_pred, pred, &mut bv);
        }
        // Align the projection/aggregation maps now, in the selection
        // phase (one sideways operator per map in the plan, §3.3).
        for &attr in &needed {
            if !tails.iter().any(|(a, _)| *a == attr) {
                s.sideways_select(base, attr, &head_pred);
            }
        }
        ConjHandle {
            set_attr,
            head_pred,
            range,
            bv: Some(bv),
        }
    }

    /// Stream tail values of `tail_attr` for the qualifying tuples of a
    /// conjunctive handle (`sideways.reconstruct`).
    pub fn reconstruct_with<F: FnMut(Val)>(
        &mut self,
        base: &Table,
        handle: &ConjHandle,
        tail_attr: usize,
        mut consume: F,
    ) {
        let Some(s) = self.sets.get_mut(&handle.set_attr) else {
            return; // stale handle: the set was dropped since
        };
        match &handle.bv {
            Some(bv) => s.reconstruct_with(base, tail_attr, &handle.head_pred, bv, consume),
            None => {
                let range = s.sideways_select(base, tail_attr, &handle.head_pred);
                for &v in s.view_tail(tail_attr, range) {
                    consume(v);
                }
            }
        }
    }

    /// Aligned tail slice of one map under the handle's head predicate —
    /// gives positional access for join plans (positions are relative to
    /// `range.0`).
    pub fn tail_slice(&mut self, base: &Table, handle: &ConjHandle, tail_attr: usize) -> &[Val] {
        let Some(s) = self.sets.get_mut(&handle.set_attr) else {
            return &[]; // stale handle: the set was dropped since
        };
        let range = s.sideways_select(base, tail_attr, &handle.head_pred);
        debug_assert_eq!(range, handle.range, "aligned maps agree on the area");
        s.view_tail(tail_attr, range)
    }

    /// Disjunctive multi-selection (§3.3): all predicates on distinct
    /// attributes combined with OR; streams the projection attributes'
    /// qualifying values.
    pub fn disjunctive_project_with<F: FnMut(usize, Val)>(
        &mut self,
        base: &Table,
        preds: &[(usize, RangePred)],
        projs: &[usize],
        excluded: &HashSet<RowId>,
        mut consume: F,
    ) {
        let chosen = self.choose_idx(base, preds, true).unwrap_or(0);
        let Some(&(set_attr, head_pred)) = preds.get(chosen) else {
            return; // empty predicate list: nothing qualifies
        };
        let tails: Vec<(usize, RangePred)> = preds
            .iter()
            .filter(|(a, _)| *a != set_attr)
            .cloned()
            .collect();
        let mut needed: Vec<usize> = tails.iter().map(|(a, _)| *a).collect();
        for &a in projs {
            if !needed.contains(&a) {
                needed.push(a);
            }
        }
        self.reserve(base, set_attr, &needed);
        let s = self.ensure_set(base, set_attr, excluded);
        s.note_query(&head_pred);

        // First map: any needed map (prefer a selection map).
        let first_attr = needed.first().copied().unwrap_or(set_attr);
        let (_, mut bv) = s.disj_create_bv(base, first_attr, &head_pred);
        for (attr, pred) in &tails {
            s.disj_refine_bv(base, *attr, &head_pred, pred, &mut bv);
        }
        for &p in projs {
            s.disj_reconstruct_with(base, p, &head_pred, &bv, |v| consume(p, v));
        }
    }
}

/// Tiny helper to express "range of n keys" for the degenerate
/// keys-only path.
trait PipeRange {
    fn pipe_range(self) -> (usize, usize);
}
impl PipeRange for usize {
    fn pipe_range(self) -> (usize, usize) {
        (0, self)
    }
}

/// Registry of [`PartialSet`]s sharing one global storage budget.
#[derive(Debug, Clone, Default)]
pub struct PartialStore {
    sets: HashMap<usize, PartialSet>,
    /// Global chunk budget in tuples (`None` = unlimited).
    pub budget: Option<usize>,
    /// Head-drop policy forwarded to sets.
    pub head_drop_threshold: Option<usize>,
    /// Pivot-choice policy handed to every partial set created by the
    /// store.
    policy: CrackPolicy,
    /// Per-attribute policy overrides (mixed-policy stores).
    overrides: HashMap<usize, CrackPolicy>,
    domains: HashMap<usize, (Val, Val)>,
    default_domain: (Val, Val),
    /// Every key deleted so far: sets created later must exclude them
    /// from their chunk-map seed (existing sets merge them lazily per
    /// area, §3.5).
    deleted: HashSet<RowId>,
    /// When set, newly created sets get a disk spill tier writing under
    /// this directory (tiered eviction: RAM budget → spill → drop).
    spill_dir: Option<std::path::PathBuf>,
}

impl PartialStore {
    /// Empty store.
    pub fn new(default_domain: (Val, Val)) -> Self {
        PartialStore {
            default_domain,
            ..Default::default()
        }
    }

    /// Register a per-attribute value domain (set-choice estimates).
    pub fn set_domain(&mut self, attr: usize, domain: (Val, Val)) {
        self.domains.insert(attr, domain);
    }

    /// Enable the disk spill tier: every *future* set evicts into spill
    /// files under a unique subdirectory of `base_dir` (removed
    /// best-effort when the sets drop). Existing sets are unaffected.
    pub fn enable_spill(&mut self, base_dir: std::path::PathBuf) {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let unique = format!(
            "crackdb-spill-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        );
        self.spill_dir = Some(base_dir.join(unique));
    }

    /// `true` when new sets will be created with a spill tier.
    pub fn spill_enabled(&self) -> bool {
        self.spill_dir.is_some()
    }

    /// The unique spill directory (when enabled) — instrumentation and
    /// fault-injection tests locate the spill files through this.
    pub fn spill_dir(&self) -> Option<&std::path::Path> {
        self.spill_dir.as_deref()
    }

    /// Tuples currently held on disk across all sets' spill tiers.
    pub fn spilled_tuples(&self) -> usize {
        self.sets.values().map(|s| s.spilled_tuples()).sum()
    }

    /// Aggregate instrumentation counters across all sets.
    pub fn stats_sum(&self) -> crate::partial::PartialStats {
        let mut acc = crate::partial::PartialStats::default();
        for s in self.sets.values() {
            acc.merge(&s.stats);
        }
        acc
    }

    /// Set the pivot-choice policy for all *future* partial sets.
    ///
    /// # Panics
    /// If any set already exists — a set's policy is fixed for its
    /// lifetime (area-tape replay must stay deterministic).
    pub fn set_policy(&mut self, policy: CrackPolicy) {
        assert!(
            self.sets.is_empty(),
            "crack policy must be chosen before any partial set exists"
        );
        self.policy = policy;
    }

    /// The store's default pivot-choice policy.
    pub fn policy(&self) -> CrackPolicy {
        self.policy
    }

    /// Override the policy for one attribute's *future* partial set.
    ///
    /// # Panics
    /// If that attribute's set already exists — a set's configured
    /// policy is fixed for its lifetime.
    pub fn set_policy_for(&mut self, attr: usize, policy: CrackPolicy) {
        assert!(
            !self.sets.contains_key(&attr),
            "crack policy must be chosen before the partial set exists"
        );
        self.overrides.insert(attr, policy);
    }

    /// The policy a set for `attr` is (or would be) created with.
    pub fn policy_for(&self, attr: usize) -> CrackPolicy {
        self.overrides.get(&attr).copied().unwrap_or(self.policy)
    }

    /// Total effective-policy switches across all sets' advisors.
    pub fn policy_switches(&self) -> u64 {
        self.sets.values().map(|s| s.policy_switches()).sum()
    }

    fn domain(&self, attr: usize) -> (Val, Val) {
        self.domains
            .get(&attr)
            .copied()
            .unwrap_or(self.default_domain)
    }

    /// Zero-knowledge estimate for one predicate: partial sets keep no
    /// cross-query histogram, so §4's set choice uses the uniform domain
    /// assumption.
    pub fn estimate(&self, base: &Table, attr: usize, pred: &RangePred) -> f64 {
        uniform_estimate(pred, base.num_rows(), self.domain(attr))
    }

    /// Total chunk storage across all sets.
    pub fn usage(&self) -> usize {
        self.sets.values().map(|s| s.usage()).sum()
    }

    /// Read access to a set.
    pub fn set(&self, head_attr: usize) -> Option<&PartialSet> {
        self.sets.get(&head_attr)
    }

    /// Stage an insertion (tuple `key` appended to the base) into every
    /// existing set; sets created later see the row in their seed.
    pub fn stage_insert(&mut self, key: RowId) {
        for s in self.sets.values_mut() {
            s.stage_insert(key);
        }
    }

    /// Stage a deletion of tuple `key` into every existing set (head
    /// values read from the base table) and remember it for the seeds of
    /// sets created later.
    pub fn stage_delete(&mut self, base: &Table, key: RowId) {
        for s in self.sets.values_mut() {
            let v = base.column(s.head_attr).get(key);
            s.stage_delete(v, key);
        }
        self.deleted.insert(key);
    }

    /// Mutable access (creating on demand) with the budget share updated
    /// to the global remainder. `base` provides head values for deletions
    /// a newly created set must still exclude.
    pub fn set_mut(&mut self, base: &Table, head_attr: usize) -> &mut PartialSet {
        let other: usize = self
            .sets
            .iter()
            .filter(|(&a, _)| a != head_attr)
            .map(|(_, s)| s.usage())
            .sum();
        let budget = self.budget.map(|b| b.saturating_sub(other));
        let hd = self.head_drop_threshold;
        let policy = self.overrides.get(&head_attr).copied().unwrap_or(self.policy);
        let deleted = &self.deleted;
        let spill_dir = &self.spill_dir;
        let s = self.sets.entry(head_attr).or_insert_with(|| {
            let mut s = PartialSet::with_policy(head_attr, policy);
            s.set_spill(
                spill_dir
                    .as_ref()
                    .map(|d| crate::partial::SpillTier::new(d.clone(), format!("set{head_attr}"))),
            );
            // Pre-stage past deletions: the set's chunk-map seed (taken
            // at its first query) subsumes staged deletes by exclusion.
            for &k in deleted {
                s.stage_delete(base.column(head_attr).get(k), k);
            }
            s
        });
        s.budget = budget;
        s.head_drop_threshold = hd;
        s
    }

    /// Conjunctive query with histogram-based set choice (uniform
    /// fallback), executed chunk-wise on the chosen partial set.
    pub fn conjunctive_project_with<F: FnMut(usize, Val)>(
        &mut self,
        base: &Table,
        preds: &[(usize, RangePred)],
        projs: &[usize],
        consume: F,
    ) -> Result<(), crackdb_columnstore::storage::StorageError> {
        let n = base.num_rows();
        let Some(&(chosen, head_pred)) = preds.iter().min_by(|a, b| {
            let sa = uniform_estimate(&a.1, n, self.domain(a.0));
            let sb = uniform_estimate(&b.1, n, self.domain(b.0));
            sa.total_cmp(&sb)
        }) else {
            return Ok(()); // empty predicate list: nothing qualifies
        };
        let tails: Vec<(usize, RangePred)> = preds
            .iter()
            .filter(|(a, _)| *a != chosen)
            .cloned()
            .collect();
        self.set_mut(base, chosen)
            .conjunctive_project_with(base, &head_pred, &tails, projs, consume)
    }

    /// Disjunctive query executed chunk-wise on the *least* selective
    /// predicate's set (so its own cracked areas stay large and the scan
    /// outside them small — the §3.3 disjunctive set choice).
    pub fn disjunctive_project_with<F: FnMut(usize, Val)>(
        &mut self,
        base: &Table,
        preds: &[(usize, RangePred)],
        projs: &[usize],
        consume: F,
    ) -> Result<(), crackdb_columnstore::storage::StorageError> {
        let n = base.num_rows();
        let Some(&(chosen, _)) = preds.iter().max_by(|a, b| {
            let sa = uniform_estimate(&a.1, n, self.domain(a.0));
            let sb = uniform_estimate(&b.1, n, self.domain(b.0));
            sa.total_cmp(&sb)
        }) else {
            return Ok(()); // empty predicate list: nothing qualifies
        };
        self.set_mut(base, chosen)
            .disjunctive_project_with(base, preds, projs, consume)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crackdb_columnstore::column::Column;

    fn table() -> Table {
        let mut t = Table::new();
        // attr 0: 0..100; attr 1: reversed; attr 2: doubled.
        t.add_column("a", Column::new((0..100).collect()));
        t.add_column("b", Column::new((0..100).rev().collect()));
        t.add_column("c", Column::new((0..100).map(|v| v * 2).collect()));
        t
    }

    #[test]
    fn choose_most_selective_set() {
        let store = SidewaysStore::new((0, 100));
        let base = table();
        let preds = vec![
            (0usize, RangePred::open(0, 50)),  // ~50%
            (1usize, RangePred::open(10, 15)), // ~5%
        ];
        assert_eq!(store.choose_set_conj(&base, &preds), 1);
        assert_eq!(store.choose_set_disj(&base, &preds), 0);
    }

    #[test]
    fn conjunctive_roundtrip() {
        let mut store = SidewaysStore::new((0, 100));
        let base = table();
        let none = HashSet::new();
        let preds = vec![
            (0usize, RangePred::open(20, 40)),
            (1usize, RangePred::open(50, 75)),
        ];
        let h = store.conjunctive_bv(&base, &preds, &[2], &none);
        // a in (20,40) => rows 21..=39; b = 99-row in (50,75) => rows 25..=48.
        // Intersection rows 25..=39 => 15 rows.
        assert_eq!(h.result_size(), 15);
        let mut out = Vec::new();
        store.reconstruct_with(&base, &h, 2, |v| out.push(v));
        out.sort_unstable();
        let expected: Vec<Val> = (25..40).map(|r| r * 2).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn disjunctive_roundtrip() {
        let mut store = SidewaysStore::new((0, 100));
        let base = table();
        let none = HashSet::new();
        let preds = vec![
            (0usize, RangePred::open(-1, 5)),   // rows 0..=4
            (1usize, RangePred::open(94, 100)), // b in (94,100) => rows 0..=4... careful
        ];
        // b = 99-row in (94,100) => row in 0..=4 — same rows; union = 5 rows.
        let mut out = Vec::new();
        store.disjunctive_project_with(&base, &preds, &[2], &none, |_, v| out.push(v));
        out.sort_unstable();
        assert_eq!(out, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn full_map_budget_drops_lfu() {
        let mut store = SidewaysStore::new((0, 100));
        store.budget = Some(250); // room for 2.5 maps of 100
        let base = table();
        let none = HashSet::new();
        let pred = RangePred::open(10, 30);
        store.select_project_with(&base, 0, &pred, &[1], &none, |_, _| {});
        store.select_project_with(&base, 0, &pred, &[1], &none, |_, _| {});
        store.select_project_with(&base, 0, &pred, &[2], &none, |_, _| {});
        assert!(store.tuples() <= 250);
        // A third projection attribute forces an eviction.
        store.select_project_with(&base, 1, &pred, &[2], &none, |_, _| {});
        assert!(store.tuples() <= 250 + 100);
        assert!(store.maps_dropped >= 1);
    }

    #[test]
    fn partial_store_updates_reach_late_created_sets() {
        let mut store = PartialStore::new((0, 100));
        let mut base = table();
        // Query set 0 first so it exists before the updates.
        let preds0 = vec![(0usize, RangePred::open(10, 30))];
        store
            .conjunctive_project_with(&base, &preds0, &[2], |_, _| {})
            .unwrap();
        // Insert one row, delete one original row (key 20: a=20, b=79).
        let key = base.append_row(&[25, 60, 999]);
        store.stage_insert(key);
        store.stage_delete(&base, 20);
        // Set 0 (existing) merges lazily.
        let mut out = Vec::new();
        store
            .conjunctive_project_with(&base, &preds0, &[2], |_, v| out.push(v))
            .unwrap();
        assert!(out.contains(&999), "staged insert merged on access");
        assert!(!out.contains(&40), "staged delete merged on access");
        // Set 1 is created only now: its seed must exclude the deleted
        // key and include the inserted row.
        let preds1 = vec![(1usize, RangePred::open(55, 80))];
        let mut out = Vec::new();
        store
            .conjunctive_project_with(&base, &preds1, &[2], |_, v| out.push(v))
            .unwrap();
        assert!(out.contains(&999), "late set sees the inserted row");
        assert!(!out.contains(&40), "late set excludes the deleted row");
    }

    #[test]
    fn partial_store_disjunctive_matches_naive() {
        let mut store = PartialStore::new((0, 100));
        let base = table();
        let preds = vec![
            (0usize, RangePred::open(-1, 5)),   // rows 0..=4
            (1usize, RangePred::open(94, 100)), // b = 99-row in (94,100) → rows 0..=4
        ];
        let mut out = Vec::new();
        store
            .disjunctive_project_with(&base, &preds, &[2], |_, v| out.push(v))
            .unwrap();
        out.sort_unstable();
        assert_eq!(out, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn partial_store_conjunctive() {
        let mut store = PartialStore::new((0, 100));
        let base = table();
        let preds = vec![
            (0usize, RangePred::open(20, 40)),
            (1usize, RangePred::open(50, 75)),
        ];
        let mut out = Vec::new();
        store
            .conjunctive_project_with(&base, &preds, &[2], |_, v| out.push(v))
            .unwrap();
        out.sort_unstable();
        let expected: Vec<Val> = (25..40).map(|r| r * 2).collect();
        assert_eq!(out, expected);
        assert!(store.usage() > 0);
    }
}
