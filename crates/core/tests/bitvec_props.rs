//! Seeded-PRNG equivalence properties: the word-level `BitVec`
//! operations against naive bit-at-a-time reference loops.
//!
//! `BitVec`'s sequential patterns (build, refine, set-range, fill-zeros,
//! iterate) all run word-at-a-time over `u64` blocks. These properties
//! pin them to the obvious per-bit loops at awkward lengths (word
//! boundaries, partial tail words, empty) so the masking arithmetic can
//! never silently drop or invent bits — in particular in the tail
//! word's padding region.

use crackdb_core::bitvec::BitVec;

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn below(&mut self, m: usize) -> usize {
        (self.next() % m.max(1) as u64) as usize
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.next() % 100 < percent
    }
}

/// Lengths that stress every word-boundary case.
const LENGTHS: &[usize] = &[0, 1, 5, 63, 64, 65, 127, 128, 129, 200, 640, 1000];

#[test]
fn from_fn_matches_naive_bits() {
    let mut rng = Lcg(1);
    for &len in LENGTHS {
        let bits: Vec<bool> = (0..len).map(|_| rng.chance(30)).collect();
        let bv = BitVec::from_fn(len, |i| bits[i]);
        let mut naive = BitVec::zeros(len);
        for (i, &b) in bits.iter().enumerate() {
            if b {
                naive.set(i);
            }
        }
        assert_eq!(bv, naive, "len {len}");
        assert_eq!(bv.count_ones(), bits.iter().filter(|&&b| b).count());
    }
}

#[test]
fn iter_ones_matches_naive_scan() {
    let mut rng = Lcg(2);
    for &len in LENGTHS {
        for density in [0, 3, 50, 97, 100] {
            let bv = BitVec::from_fn(len, |_| rng.chance(density));
            let word: Vec<usize> = bv.iter_ones().collect();
            let naive: Vec<usize> = (0..len).filter(|&i| bv.get(i)).collect();
            assert_eq!(word, naive, "len {len} density {density}");
        }
    }
}

#[test]
fn refine_matches_naive_loop() {
    let mut rng = Lcg(3);
    for &len in LENGTHS {
        let keep: Vec<bool> = (0..len).map(|_| rng.chance(60)).collect();
        let mut word = BitVec::from_fn(len, |i| i % 3 != 1);
        let mut naive = word.clone();
        word.refine(|i| keep[i]);
        for (i, &k) in keep.iter().enumerate() {
            if naive.get(i) && !k {
                naive.clear(i);
            }
        }
        assert_eq!(word, naive, "len {len}");
    }
}

#[test]
fn set_range_matches_naive_loop() {
    let mut rng = Lcg(4);
    for &len in LENGTHS {
        for _ in 0..8 {
            let lo = rng.below(len + 1);
            let hi = lo + rng.below(len - lo + 1);
            let mut word = BitVec::from_fn(len, |_| rng.chance(10));
            let mut naive = word.clone();
            word.set_range(lo, hi);
            for i in lo..hi {
                naive.set(i);
            }
            assert_eq!(word, naive, "len {len} range [{lo}, {hi})");
        }
    }
}

#[test]
fn set_where_unset_matches_naive_loop() {
    let mut rng = Lcg(5);
    for &len in LENGTHS {
        let want: Vec<bool> = (0..len).map(|_| rng.chance(40)).collect();
        let mut word = BitVec::from_fn(len, |_| rng.chance(50));
        let mut naive = word.clone();
        word.set_where_unset(|i| want[i]);
        for (i, &w) in want.iter().enumerate() {
            if !naive.get(i) && w {
                naive.set(i);
            }
        }
        assert_eq!(word, naive, "len {len}");
    }
}

#[test]
fn and_or_count_roundtrip_at_word_boundaries() {
    let mut rng = Lcg(6);
    for &len in LENGTHS {
        let a = BitVec::from_fn(len, |_| rng.chance(50));
        let b = BitVec::from_fn(len, |_| rng.chance(50));
        let mut and = a.clone();
        and.and_with(&b);
        let mut or = a.clone();
        or.or_with(&b);
        for i in 0..len {
            assert_eq!(and.get(i), a.get(i) && b.get(i));
            assert_eq!(or.get(i), a.get(i) || b.get(i));
        }
        // Inclusion–exclusion over the whole vector.
        assert_eq!(
            and.count_ones() + or.count_ones(),
            a.count_ones() + b.count_ones(),
            "len {len}"
        );
    }
}
