//! Property-based tests of sideways cracking's core invariants:
//! alignment, bit-vector plans, and partial-map equivalence.

use crackdb_columnstore::column::{Column, Table};
use crackdb_columnstore::types::{RangePred, Val};
use crackdb_core::{MapSet, PartialSet};
use proptest::prelude::*;
use std::collections::HashSet;

fn table(cols: Vec<Vec<Val>>) -> Table {
    let mut t = Table::new();
    for (i, c) in cols.into_iter().enumerate() {
        t.add_column(format!("a{i}"), Column::new(c));
    }
    t
}

fn pred(lo: Val, width: Val) -> RangePred {
    RangePred::open(lo, lo + width + 1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After any interleaving of sideways selects over two maps, both
    /// maps hold identical heads (physical alignment) and answer
    /// consistently with a naive scan.
    #[test]
    fn maps_stay_aligned(
        a in prop::collection::vec(0i64..60, 2..100),
        queries in prop::collection::vec((0i64..60, 0i64..30, 0usize..2), 1..15),
    ) {
        let n = a.len();
        let b: Vec<Val> = (0..n as Val).map(|i| i + 1000).collect();
        let c: Vec<Val> = (0..n as Val).map(|i| i + 2000).collect();
        let t = table(vec![a.clone(), b, c]);
        let mut set = MapSet::new(0, n, HashSet::new());
        for (lo, w, which) in queries {
            let p = pred(lo, w);
            let attr = 1 + which;
            let range = set.sideways_select(&t, attr, &p);
            let got: HashSet<Val> = set.view_tail(attr, range).iter().copied().collect();
            let expected: HashSet<Val> = (0..n)
                .filter(|&i| p.matches(a[i]))
                .map(|i| t.column(attr).get(i as u32))
                .collect();
            prop_assert_eq!(got, expected);
            // Alignment invariant: maps whose cursors point at the same
            // tape position are physically identical. (A map unused by
            // recent queries deliberately lags — it aligns on demand.)
            if let (Some(m1), Some(m2)) = (set.map(1), set.map(2)) {
                if m1.cursor == m2.cursor {
                    prop_assert_eq!(m1.arr.head(), m2.arr.head());
                }
            }
        }
    }

    /// Conjunctive bit-vector plans equal naive evaluation for any pair
    /// of predicates.
    #[test]
    fn conjunctive_plans_correct(
        a in prop::collection::vec(0i64..40, 2..80),
        q in prop::collection::vec((0i64..40, 0i64..20, 0i64..40, 0i64..20), 1..10),
    ) {
        let n = a.len();
        let b: Vec<Val> = a.iter().map(|v| (v * 7 + 3) % 40).collect();
        let d: Vec<Val> = (0..n as Val).collect();
        let t = table(vec![a.clone(), b.clone(), d]);
        let mut set = MapSet::new(0, n, HashSet::new());
        for (alo, aw, blo, bw) in q {
            let ap = pred(alo, aw);
            let bp = pred(blo, bw);
            let (_, bv) = set.select_create_bv(&t, 1, &ap, &bp);
            let mut got = Vec::new();
            set.reconstruct_with(&t, 2, &ap, &bv, |v| got.push(v));
            got.sort_unstable();
            let mut expected: Vec<Val> = (0..n)
                .filter(|&i| ap.matches(a[i]) && bp.matches(b[i]))
                .map(|i| i as Val)
                .collect();
            expected.sort_unstable();
            prop_assert_eq!(got, expected);
        }
    }

    /// Partial maps under any budget answer exactly like a naive scan,
    /// and never exceed the budget by more than one in-flight area fetch
    /// per touched map.
    #[test]
    fn partial_maps_budget_correct(
        a in prop::collection::vec(0i64..50, 4..120),
        queries in prop::collection::vec((0i64..50, 0i64..25, 0usize..3), 1..20),
        budget_frac in 1usize..4,
    ) {
        let n = a.len();
        let cols: Vec<Vec<Val>> = (0..4)
            .map(|c| {
                if c == 0 {
                    a.clone()
                } else {
                    (0..n as Val).map(|i| i + 1000 * c as Val).collect()
                }
            })
            .collect();
        let t = table(cols);
        let budget = (n * budget_frac).max(4);
        let mut set = PartialSet::new(0);
        set.budget = Some(budget);
        for (lo, w, proj) in queries {
            let p = pred(lo, w);
            let attr = 1 + proj;
            let mut got = Vec::new();
            set.select_project_with(&t, &p, &[attr], |_, v| got.push(v));
            got.sort_unstable();
            let mut expected: Vec<Val> = (0..n)
                .filter(|&i| p.matches(a[i]))
                .map(|i| t.column(attr).get(i as u32))
                .collect();
            expected.sort_unstable();
            prop_assert_eq!(got, expected);
            prop_assert!(
                set.usage() <= budget + 3 * n,
                "usage {} far exceeds budget {}",
                set.usage(),
                budget
            );
        }
    }

    /// The §3.3 histogram estimate always brackets the true result size
    /// between its lower and upper bounds.
    #[test]
    fn histogram_bounds_hold(
        a in prop::collection::vec(0i64..100, 2..150),
        queries in prop::collection::vec((0i64..100, 0i64..40), 1..10),
        probe in (0i64..100, 0i64..40),
    ) {
        let n = a.len();
        let b: Vec<Val> = (0..n as Val).collect();
        let t = table(vec![a.clone(), b]);
        let mut set = MapSet::new(0, n, HashSet::new());
        for (lo, w) in queries {
            set.sideways_select(&t, 1, &pred(lo, w));
        }
        let p = pred(probe.0, probe.1);
        let truth = a.iter().filter(|&&v| p.matches(v)).count();
        let m = set.map(1).expect("map created");
        let est = m.arr.index().estimate_size(&p, m.arr.len(), (0, 100));
        prop_assert!(est.lower <= truth, "lower {} > truth {}", est.lower, truth);
        prop_assert!(est.upper >= truth, "upper {} < truth {}", est.upper, truth);
        prop_assert!(est.estimate >= est.lower as f64 - 1e-9);
        prop_assert!(est.estimate <= est.upper as f64 + 1e-9);
    }
}
